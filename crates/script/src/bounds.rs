//! Static cost-bound analysis over compiled Pyrite bytecode.
//!
//! The paper treats LLM spend as a first-class, optimizable resource:
//! an analytics runtime should know what a plan *can* cost before it
//! runs it. This module is the analysis that makes that possible for
//! Pyrite programs — an abstract interpreter over [`crate::bytecode`]
//! instruction streams that produces a sound [`CostBound`]:
//!
//! * **`fuel_max`** — an upper bound on the fuel a completing run can
//!   charge. Fuel is charged only by explicit [`Insn::Burn`]
//!   instructions plus one dynamic unit per `CallName` that falls
//!   through to callee-value resolution; the analysis charges every
//!   `CallName` that may reach user code the extra unit, so the bound
//!   over-approximates both paths.
//! * **`calls_per_tool`** — per-name worst-case counts of external
//!   (host-function / builtin) calls, from the call graph and loop trip
//!   bounds.
//! * **`usd_max_per_tier`** — dollars, per model tier, assuming every
//!   billable tool call bills at most the
//!   [`TOOL_CALL_MAX_INPUT_TOKENS`]/[`TOOL_CALL_MAX_OUTPUT_TOKENS`]
//!   token envelope.
//!
//! **Soundness contract.** For every program that runs to completion,
//! actual fuel ≤ `fuel_max`, actual per-tool calls ≤ the per-tool
//! bound, and billed dollars ≤ `usd_max` for the executing tier.
//! Programs the analysis cannot bound degrade to `unbounded` — never a
//! wrong finite number. Error paths need no bound: a program that
//! faults did not complete. One documented environment assumption: the
//! host-function set does not shadow builtin names (`range`, `len`, …);
//! the VM resolves host functions first, so a tool named `range` could
//! invalidate trip counts. Callers that know the tool registry (the
//! agents runtime does) degrade the bound to unbounded on a collision.
//!
//! **How it works.**
//! 1. Basic blocks and a CFG per chunk; irreducible graphs (never
//!    produced by the compiler) bail to unbounded.
//! 2. Interval dataflow with widening at loop headers, over a small
//!    lattice: integer intervals, string/list/dict length intervals,
//!    and function-value sets. Any call havocs list/dict lengths
//!    (values are `Rc`-shared and mutable through aliases); string
//!    lengths and rebindings survive — callees cannot rebind globals.
//! 3. Loop trip bounds: `for` loops are bounded by the iterable's
//!    length interval at `IterNew` (iteration snapshots the sequence);
//!    counted `while` loops match the compiler's shape — a single-block
//!    `v < K` / `v <= K` header whose every in-loop store to `v` is a
//!    positive constant increment on every path to every latch — and
//!    bound trips by `ceil((K_hi − v_lo) / c_min)`.
//! 4. Per-chunk usage: loops collapse innermost-first into super-nodes
//!    costing `(trips + 1) × max-path-through-body`, then a longest-path
//!    DP over the remaining DAG joins paths by pointwise max. Function
//!    summaries compose bottom-up over the call graph; recursion (an
//!    SCC) and indirect calls through unknown values are unbounded.

use crate::ast::BinOp;
use crate::bytecode::{Chunk, CompiledProgram, Const, Insn, NO_REG};
use aida_llm::models::{ModelCatalog, ModelId};
use std::collections::{BTreeMap, BTreeSet, HashMap};

/// Per-tool-call billing envelope: input tokens. A bound's dollar
/// figures hold for runtimes whose per-call billing never exceeds this
/// envelope (the simulated tool harness bills well under it).
pub const TOOL_CALL_MAX_INPUT_TOKENS: usize = 4096;

/// Per-tool-call billing envelope: output tokens.
pub const TOOL_CALL_MAX_OUTPUT_TOKENS: usize = 1024;

/// Builtin names (sorted). Calls to these are counted in
/// `calls_per_tool` (a host function may legally shadow one) but are
/// not billable, and their result shapes are modeled precisely under
/// the no-shadowing assumption.
pub const BUILTIN_NAMES: &[&str] = &[
    "abs",
    "bool",
    "enumerate",
    "float",
    "int",
    "len",
    "max",
    "min",
    "print",
    "range",
    "round",
    "sorted",
    "str",
    "sum",
];

/// True when `name` is a Pyrite builtin.
pub fn is_builtin(name: &str) -> bool {
    BUILTIN_NAMES.binary_search(&name).is_ok()
}

/// The maximum dollars one billable tool call can cost at `tier`,
/// under the token envelope above.
pub fn usd_per_tool_call(catalog: &ModelCatalog, tier: ModelId) -> f64 {
    catalog
        .spec(tier)
        .cost(TOOL_CALL_MAX_INPUT_TOKENS, TOOL_CALL_MAX_OUTPUT_TOKENS)
}

// ---------------------------------------------------------------------------
// Bound arithmetic
// ---------------------------------------------------------------------------

/// A worst-case count: a finite value or provably-unboundable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Bound {
    /// At most this many.
    Finite(u64),
    /// No finite bound could be established.
    Unbounded,
}

impl Bound {
    /// Saturating addition; `Unbounded` absorbs.
    #[allow(clippy::should_implement_trait)] // not `Add`: absorbing, not a group op
    pub fn add(self, other: Bound) -> Bound {
        match (self, other) {
            (Bound::Finite(a), Bound::Finite(b)) => Bound::Finite(a.saturating_add(b)),
            _ => Bound::Unbounded,
        }
    }

    /// Saturating multiplication; `Unbounded × 0 = 0` (a loop that uses
    /// nothing costs nothing no matter how often it spins).
    #[allow(clippy::should_implement_trait)] // not `Mul`: see the 0-absorption rule
    pub fn mul(self, other: Bound) -> Bound {
        match (self, other) {
            (Bound::Finite(0), _) | (_, Bound::Finite(0)) => Bound::Finite(0),
            (Bound::Finite(a), Bound::Finite(b)) => Bound::Finite(a.saturating_mul(b)),
            _ => Bound::Unbounded,
        }
    }

    /// The larger bound (`Unbounded` dominates).
    pub fn max(self, other: Bound) -> Bound {
        std::cmp::max(self, other)
    }

    /// True for `Finite`.
    pub fn is_finite(self) -> bool {
        matches!(self, Bound::Finite(_))
    }
}

impl std::fmt::Display for Bound {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Bound::Finite(n) => write!(f, "{n}"),
            Bound::Unbounded => write!(f, "inf"),
        }
    }
}

/// A sound static cost bound for one compiled program.
#[derive(Debug, Clone, PartialEq)]
pub struct CostBound {
    /// Upper bound on fuel charged by any completing run.
    pub fuel_max: Bound,
    /// Worst-case external-call counts per callee name (host functions
    /// *and* builtins — the VM resolves host functions first, so any
    /// external name may reach a tool).
    pub calls_per_tool: BTreeMap<String, Bound>,
    /// When true, the callable-name set itself is unknown (an indirect
    /// call through an unknown value): any tool may be called any
    /// number of times, and `calls_per_tool` is only a partial view.
    pub calls_open: bool,
    /// Worst-case dollars per model tier over billable (non-builtin)
    /// calls; `f64::INFINITY` when no finite bound exists.
    pub usd_max_per_tier: BTreeMap<ModelId, f64>,
    /// True when any dimension (fuel, a call count, or the call set)
    /// has no finite bound.
    pub unbounded: bool,
}

impl Default for CostBound {
    fn default() -> Self {
        CostBound::unbounded_all()
    }
}

impl CostBound {
    /// The fully-degraded bound: nothing is known.
    pub fn unbounded_all() -> CostBound {
        let usd = ModelId::ALL
            .iter()
            .map(|&tier| (tier, f64::INFINITY))
            .collect();
        CostBound {
            fuel_max: Bound::Unbounded,
            calls_per_tool: BTreeMap::new(),
            calls_open: true,
            usd_max_per_tier: usd,
            unbounded: true,
        }
    }

    /// Worst-case calls to `tool`: absence means proven-never-called
    /// unless the call set is open.
    pub fn call_bound(&self, tool: &str) -> Bound {
        if self.calls_open {
            return Bound::Unbounded;
        }
        self.calls_per_tool
            .get(tool)
            .copied()
            .unwrap_or(Bound::Finite(0))
    }

    /// Worst-case dollars when executing at `tier`.
    pub fn usd_max(&self, tier: ModelId) -> f64 {
        self.usd_max_per_tier
            .get(&tier)
            .copied()
            .unwrap_or(f64::INFINITY)
    }

    /// Worst-case dollars over every tier (the conservative gate
    /// figure when the executing tier is unknown at admission).
    pub fn worst_usd_max(&self) -> f64 {
        self.usd_max_per_tier
            .values()
            .fold(0.0_f64, |acc, &v| acc.max(v))
    }

    /// One-line human rendering (EXPLAIN ANALYZE, reports).
    pub fn render(&self) -> String {
        if self.calls_open {
            return "fuel<=inf calls=open usd<=inf".into();
        }
        let calls: Vec<String> = self
            .calls_per_tool
            .iter()
            .map(|(name, b)| format!("{name}<={b}"))
            .collect();
        let usd = self.worst_usd_max();
        let usd = if usd.is_finite() {
            format!("{usd:.4}")
        } else {
            "inf".into()
        };
        format!(
            "fuel<={} calls=[{}] usd<=${usd}",
            self.fuel_max,
            calls.join(" "),
        )
    }

    /// Builds the tier price map (and `unbounded` flag) from the call
    /// counts: billable = every non-builtin external name.
    fn finish(fuel: Bound, calls: BTreeMap<String, Bound>, open: bool) -> CostBound {
        let catalog = ModelCatalog::default();
        let mut usd = BTreeMap::new();
        let mut any_unbounded = open || !fuel.is_finite();
        for &tier in ModelId::ALL.iter() {
            let per_call = usd_per_tool_call(&catalog, tier);
            let mut total = 0.0_f64;
            for (name, bound) in &calls {
                if is_builtin(name) {
                    continue;
                }
                match bound {
                    Bound::Finite(n) => total += (*n as f64) * per_call,
                    Bound::Unbounded => total = f64::INFINITY,
                }
            }
            if open {
                total = f64::INFINITY;
            }
            usd.insert(tier, total);
        }
        any_unbounded |= calls.values().any(|b| !b.is_finite());
        CostBound {
            fuel_max: fuel,
            calls_per_tool: calls,
            calls_open: open,
            usd_max_per_tier: usd,
            unbounded: any_unbounded,
        }
    }
}

// ---------------------------------------------------------------------------
// Abstract values
// ---------------------------------------------------------------------------

/// Interval infinity sentinels. Concrete Pyrite ints are `i64`, so the
/// `i128` sentinels can never be produced by saturating arithmetic on
/// finite inputs within the widening-bounded number of steps.
const IPOS: i128 = i128::MAX;
const INEG: i128 = i128::MIN;
/// Length infinity sentinel.
const LINF: u64 = u64::MAX;

/// One abstract value.
#[derive(Debug, Clone, PartialEq)]
enum AbsVal {
    /// Unreachable / no value.
    Bottom,
    /// Integer (or bool, as 0/1) in `[lo, hi]`.
    Int { lo: i128, hi: i128 },
    /// Immutable string with `[lo, hi]` chars (iteration/`len` count).
    StrLen { lo: u64, hi: u64 },
    /// List with `[lo, hi]` elements. Mutable through aliases: any
    /// call or index-store havocs the upper bound.
    ListLen { lo: u64, hi: u64 },
    /// Dict with `[lo, hi]` keys (same aliasing caveat).
    DictLen { lo: u64, hi: u64 },
    /// A user function value: one of these compiled-function indices.
    Funcs(BTreeSet<u16>),
    /// Anything.
    Top,
}

use AbsVal::*;

fn ladd(a: u64, b: u64) -> u64 {
    if a == LINF {
        LINF
    } else {
        a.saturating_add(b)
    }
}

fn iadd(a: i128, b: i128) -> i128 {
    if a == IPOS || b == IPOS {
        IPOS
    } else if a == INEG || b == INEG {
        INEG
    } else {
        a.saturating_add(b)
    }
}

fn isub(a: i128, b: i128) -> i128 {
    if a == IPOS || b == INEG {
        IPOS
    } else if a == INEG || b == IPOS {
        INEG
    } else {
        a.saturating_sub(b)
    }
}

/// Signed product with infinity sentinels (`0 × ∞ = 0`).
fn imul(a: i128, b: i128) -> i128 {
    if a == 0 || b == 0 {
        return 0;
    }
    let inf_a = a == IPOS || a == INEG;
    let inf_b = b == IPOS || b == INEG;
    if inf_a || inf_b {
        let negative = (a < 0) != (b < 0);
        return if negative { INEG } else { IPOS };
    }
    a.saturating_mul(b)
}

fn hull_u(alo: u64, ahi: u64, blo: u64, bhi: u64) -> (u64, u64) {
    (alo.min(blo), ahi.max(bhi))
}

fn join(a: &AbsVal, b: &AbsVal) -> AbsVal {
    match (a, b) {
        (Bottom, x) | (x, Bottom) => x.clone(),
        (Int { lo: al, hi: ah }, Int { lo: bl, hi: bh }) => Int {
            lo: *al.min(bl),
            hi: *ah.max(bh),
        },
        (StrLen { lo: al, hi: ah }, StrLen { lo: bl, hi: bh }) => {
            let (lo, hi) = hull_u(*al, *ah, *bl, *bh);
            StrLen { lo, hi }
        }
        (ListLen { lo: al, hi: ah }, ListLen { lo: bl, hi: bh }) => {
            let (lo, hi) = hull_u(*al, *ah, *bl, *bh);
            ListLen { lo, hi }
        }
        (DictLen { lo: al, hi: ah }, DictLen { lo: bl, hi: bh }) => {
            let (lo, hi) = hull_u(*al, *ah, *bl, *bh);
            DictLen { lo, hi }
        }
        (Funcs(s1), Funcs(s2)) => Funcs(s1.union(s2).copied().collect()),
        _ => Top,
    }
}

/// Widening: keep stable bounds, blow moving ones to infinity so loop
/// fixpoints converge in a bounded number of sweeps.
fn widen(old: &AbsVal, new: &AbsVal) -> AbsVal {
    let joined = join(old, new);
    match (old, &joined) {
        (Int { lo: ol, hi: oh }, Int { lo: jl, hi: jh }) => Int {
            lo: if jl < ol { INEG } else { *jl },
            hi: if jh > oh { IPOS } else { *jh },
        },
        (StrLen { lo: ol, hi: oh }, StrLen { lo: jl, hi: jh }) => StrLen {
            lo: if jl < ol { 0 } else { *jl },
            hi: if jh > oh { LINF } else { *jh },
        },
        (ListLen { lo: ol, hi: oh }, ListLen { lo: jl, hi: jh }) => ListLen {
            lo: if jl < ol { 0 } else { *jl },
            hi: if jh > oh { LINF } else { *jh },
        },
        (DictLen { lo: ol, hi: oh }, DictLen { lo: jl, hi: jh }) => DictLen {
            lo: if jl < ol { 0 } else { *jl },
            hi: if jh > oh { LINF } else { *jh },
        },
        _ => joined,
    }
}

/// The length interval of an iterable abstraction, if it has one.
fn len_of(v: &AbsVal) -> Option<(u64, u64)> {
    match v {
        StrLen { lo, hi } | ListLen { lo, hi } | DictLen { lo, hi } => Some((*lo, *hi)),
        _ => None,
    }
}

/// A variable binding: the abstract value plus whether the slot may be
/// unset at runtime (falling through to globals / a name error).
#[derive(Debug, Clone, PartialEq)]
struct Binding {
    val: AbsVal,
    maybe_unset: bool,
}

impl Binding {
    fn unset() -> Binding {
        Binding {
            val: Bottom,
            maybe_unset: true,
        }
    }

    fn set(val: AbsVal) -> Binding {
        Binding {
            val,
            maybe_unset: false,
        }
    }

    fn join(&self, other: &Binding) -> Binding {
        Binding {
            val: join(&self.val, &other.val),
            maybe_unset: self.maybe_unset || other.maybe_unset,
        }
    }

    fn widen(&self, other: &Binding) -> Binding {
        Binding {
            val: widen(&self.val, &other.val),
            maybe_unset: self.maybe_unset || other.maybe_unset,
        }
    }
}

/// Dataflow state at one program point.
#[derive(Debug, Clone, PartialEq)]
struct State {
    /// False once execution provably faults (error paths never
    /// complete, so nothing downstream needs a bound).
    live: bool,
    regs: Vec<AbsVal>,
    /// Function chunks: slot-indexed locals. Empty for main.
    locals: Vec<Binding>,
    /// Main chunk: flow-sensitive globals by name index. Empty for
    /// function chunks (which read the immutable entry summary).
    globals: Vec<Binding>,
}

impl State {
    fn join_into(&mut self, other: &State, widen_point: bool) -> bool {
        if !other.live {
            return false;
        }
        if !self.live {
            *self = other.clone();
            return true;
        }
        let mut changed = false;
        for (a, b) in self.regs.iter_mut().zip(&other.regs) {
            let next = if widen_point { widen(a, b) } else { join(a, b) };
            if next != *a {
                *a = next;
                changed = true;
            }
        }
        for (a, b) in self.locals.iter_mut().zip(&other.locals) {
            let next = if widen_point { a.widen(b) } else { a.join(b) };
            if next != *a {
                *a = next;
                changed = true;
            }
        }
        for (a, b) in self.globals.iter_mut().zip(&other.globals) {
            let next = if widen_point { a.widen(b) } else { a.join(b) };
            if next != *a {
                *a = next;
                changed = true;
            }
        }
        changed
    }
}

// ---------------------------------------------------------------------------
// CFG
// ---------------------------------------------------------------------------

#[derive(Debug, Clone)]
struct Block {
    /// Instruction index range `[start, end)`.
    start: usize,
    end: usize,
    succs: Vec<usize>,
}

/// True when the instruction ends a basic block.
fn is_terminator(insn: &Insn) -> bool {
    matches!(
        insn,
        Insn::Jump { .. }
            | Insn::JumpFalse { .. }
            | Insn::JumpTrue { .. }
            | Insn::IterNext { .. }
            | Insn::Ret { .. }
            | Insn::Halt
            | Insn::LoopMisuse { .. }
    )
}

fn jump_targets(insn: &Insn) -> Vec<usize> {
    match insn {
        Insn::Jump { to } => vec![*to as usize],
        Insn::JumpFalse { to, .. } | Insn::JumpTrue { to, .. } => vec![*to as usize],
        Insn::IterNext { done, .. } => vec![*done as usize],
        _ => Vec::new(),
    }
}

/// Splits a chunk into basic blocks with successor edges.
fn build_blocks(chunk: &Chunk) -> Vec<Block> {
    let code = &chunk.code;
    let mut leaders: BTreeSet<usize> = BTreeSet::new();
    leaders.insert(0);
    for (i, insn) in code.iter().enumerate() {
        for t in jump_targets(insn) {
            leaders.insert(t);
        }
        if is_terminator(insn) && i + 1 < code.len() {
            leaders.insert(i + 1);
        }
    }
    let starts: Vec<usize> = leaders.into_iter().filter(|&s| s < code.len()).collect();
    let index_of: HashMap<usize, usize> = starts.iter().enumerate().map(|(b, &s)| (s, b)).collect();
    let mut blocks = Vec::with_capacity(starts.len());
    for (b, &start) in starts.iter().enumerate() {
        let end = starts.get(b + 1).copied().unwrap_or(code.len());
        let last = &code[end - 1];
        let mut succs = Vec::new();
        match last {
            Insn::Ret { .. } | Insn::Halt | Insn::LoopMisuse { .. } => {}
            Insn::Jump { to } => succs.push(index_of[&(*to as usize)]),
            Insn::JumpFalse { to, .. } | Insn::JumpTrue { to, .. } => {
                if end < code.len() {
                    succs.push(index_of[&end]);
                }
                succs.push(index_of[&(*to as usize)]);
            }
            Insn::IterNext { done, .. } => {
                if end < code.len() {
                    succs.push(index_of[&end]);
                }
                succs.push(index_of[&(*done as usize)]);
            }
            _ => {
                if end < code.len() {
                    succs.push(index_of[&end]);
                }
            }
        }
        succs.dedup();
        blocks.push(Block { start, end, succs });
    }
    blocks
}

fn predecessors(blocks: &[Block]) -> Vec<Vec<usize>> {
    let mut preds = vec![Vec::new(); blocks.len()];
    for (b, blk) in blocks.iter().enumerate() {
        for &s in &blk.succs {
            preds[s].push(b);
        }
    }
    preds
}

/// Reverse postorder from block 0 (unreachable blocks excluded).
fn reverse_postorder(blocks: &[Block]) -> Vec<usize> {
    let mut seen = vec![false; blocks.len()];
    let mut post = Vec::new();
    // Iterative DFS with an explicit frame stack.
    let mut stack: Vec<(usize, usize)> = vec![(0, 0)];
    seen[0] = true;
    while let Some(frame) = stack.last_mut() {
        let node = frame.0;
        if frame.1 < blocks[node].succs.len() {
            let s = blocks[node].succs[frame.1];
            frame.1 += 1;
            if !seen[s] {
                seen[s] = true;
                stack.push((s, 0));
            }
        } else {
            post.push(node);
            stack.pop();
        }
    }
    post.reverse();
    post
}

/// Iterative dominator computation (Cooper–Harvey–Kennedy).
fn dominators(blocks: &[Block], rpo: &[usize], preds: &[Vec<usize>]) -> Vec<Option<usize>> {
    let mut rpo_index = vec![usize::MAX; blocks.len()];
    for (i, &b) in rpo.iter().enumerate() {
        rpo_index[b] = i;
    }
    let mut idom: Vec<Option<usize>> = vec![None; blocks.len()];
    idom[0] = Some(0);
    let intersect = |idom: &[Option<usize>], rpo_index: &[usize], mut a: usize, mut b: usize| {
        while a != b {
            while rpo_index[a] > rpo_index[b] {
                a = idom[a].expect("processed");
            }
            while rpo_index[b] > rpo_index[a] {
                b = idom[b].expect("processed");
            }
        }
        a
    };
    let mut changed = true;
    while changed {
        changed = false;
        for &b in rpo.iter().skip(1) {
            let mut new_idom: Option<usize> = None;
            for &p in &preds[b] {
                if rpo_index[p] == usize::MAX || idom[p].is_none() {
                    continue;
                }
                new_idom = Some(match new_idom {
                    None => p,
                    Some(cur) => intersect(&idom, &rpo_index, cur, p),
                });
            }
            if new_idom != idom[b] {
                idom[b] = new_idom;
                changed = true;
            }
        }
    }
    idom
}

fn dominates(idom: &[Option<usize>], a: usize, b: usize) -> bool {
    let mut cur = b;
    loop {
        if cur == a {
            return true;
        }
        match idom[cur] {
            Some(d) if d != cur => cur = d,
            _ => return false,
        }
    }
}

#[derive(Debug, Clone)]
struct Loop {
    header: usize,
    /// All blocks in the natural loop (header included).
    body: BTreeSet<usize>,
    latches: Vec<usize>,
}

/// Natural loops from retreating edges; `None` if the CFG is
/// irreducible (a retreating edge whose target does not dominate its
/// source — the compiler never emits one).
fn find_loops(blocks: &[Block], rpo: &[usize], preds: &[Vec<usize>]) -> Option<Vec<Loop>> {
    let idom = dominators(blocks, rpo, preds);
    let mut rpo_index = vec![usize::MAX; blocks.len()];
    for (i, &b) in rpo.iter().enumerate() {
        rpo_index[b] = i;
    }
    let mut by_header: BTreeMap<usize, Loop> = BTreeMap::new();
    for &u in rpo {
        for &v in &blocks[u].succs {
            if rpo_index[v] == usize::MAX || rpo_index[v] > rpo_index[u] {
                continue;
            }
            // Retreating edge u -> v.
            if !dominates(&idom, v, u) {
                return None;
            }
            let l = by_header.entry(v).or_insert_with(|| Loop {
                header: v,
                body: BTreeSet::from([v]),
                latches: Vec::new(),
            });
            l.latches.push(u);
            // Backward walk from the latch, stopping at the header.
            let mut stack = vec![u];
            while let Some(n) = stack.pop() {
                if l.body.insert(n) {
                    for &p in &preds[n] {
                        if rpo_index[p] != usize::MAX {
                            stack.push(p);
                        }
                    }
                }
            }
        }
    }
    Some(by_header.into_values().collect())
}

// ---------------------------------------------------------------------------
// Per-chunk abstract interpretation
// ---------------------------------------------------------------------------

/// Immutable context shared by the transfer function.
struct ChunkCx<'p> {
    program: &'p CompiledProgram,
    is_main: bool,
    /// Entry global environment (function chunks only).
    genv: &'p [Binding],
}

impl<'p> ChunkCx<'p> {
    fn name(&self, ix: u16) -> &str {
        &self.program.names[ix as usize]
    }

    /// The global binding visible at this point.
    fn global<'s>(&'s self, st: &'s State, name: u16) -> &'s Binding {
        if self.is_main {
            &st.globals[name as usize]
        } else {
            &self.genv[name as usize]
        }
    }

    /// Composite local-then-global resolution, mirroring the VM's
    /// `Load`/`CallName` fallthrough.
    fn binding_of(&self, st: &State, name: u16, slot: u16) -> Binding {
        if slot != NO_REG && !self.is_main {
            let l = &st.locals[slot as usize];
            if !l.maybe_unset {
                return l.clone();
            }
            let g = self.global(st, name);
            return Binding {
                val: join(&l.val, &g.val),
                maybe_unset: g.maybe_unset,
            };
        }
        self.global(st, name).clone()
    }
}

fn abs_const(c: &Const) -> AbsVal {
    match c {
        Const::Int(v) => Int {
            lo: *v as i128,
            hi: *v as i128,
        },
        Const::Bool(b) => {
            let v = *b as i128;
            Int { lo: v, hi: v }
        }
        Const::Str(s) => {
            let n = s.chars().count() as u64;
            StrLen { lo: n, hi: n }
        }
        Const::Float(_) | Const::None => Top,
    }
}

/// Any call may mutate lists/dicts through `Rc` aliases; lengths lose
/// their upper bounds. Strings are immutable and survive.
fn havoc_mutables(st: &mut State) {
    let degrade = |v: &mut AbsVal| match v {
        ListLen { lo, hi } => {
            *lo = 0;
            *hi = LINF;
        }
        DictLen { lo, hi } => {
            *lo = 0;
            *hi = LINF;
        }
        _ => {}
    };
    for r in &mut st.regs {
        degrade(r);
    }
    for b in &mut st.locals {
        degrade(&mut b.val);
    }
    for b in &mut st.globals {
        degrade(&mut b.val);
    }
}

/// Index stores can only grow dict key sets (list lengths are stable).
fn bump_dicts(st: &mut State) {
    let bump = |v: &mut AbsVal| {
        if let DictLen { hi, .. } = v {
            *hi = ladd(*hi, 1);
        }
    };
    for r in &mut st.regs {
        bump(r);
    }
    for b in &mut st.locals {
        bump(&mut b.val);
    }
    for b in &mut st.globals {
        bump(&mut b.val);
    }
}

fn abs_bin(op: BinOp, a: &AbsVal, b: &AbsVal) -> AbsVal {
    match op {
        BinOp::Add => match (a, b) {
            (Int { lo: al, hi: ah }, Int { lo: bl, hi: bh }) => Int {
                lo: iadd(*al, *bl),
                hi: iadd(*ah, *bh),
            },
            (StrLen { lo: al, hi: ah }, StrLen { lo: bl, hi: bh }) => StrLen {
                lo: ladd(*al, *bl),
                hi: ladd(*ah, *bh),
            },
            (ListLen { lo: al, hi: ah }, ListLen { lo: bl, hi: bh }) => ListLen {
                lo: ladd(*al, *bl),
                hi: ladd(*ah, *bh),
            },
            _ => Top,
        },
        BinOp::Sub => match (a, b) {
            (Int { lo: al, hi: ah }, Int { lo: bl, hi: bh }) => Int {
                lo: isub(*al, *bh),
                hi: isub(*ah, *bl),
            },
            _ => Top,
        },
        BinOp::Mul => match (a, b) {
            (Int { lo: al, hi: ah }, Int { lo: bl, hi: bh }) => {
                let products = [
                    imul(*al, *bl),
                    imul(*al, *bh),
                    imul(*ah, *bl),
                    imul(*ah, *bh),
                ];
                Int {
                    lo: *products.iter().min().expect("non-empty"),
                    hi: *products.iter().max().expect("non-empty"),
                }
            }
            _ => Top,
        },
        BinOp::Eq
        | BinOp::NotEq
        | BinOp::Lt
        | BinOp::LtEq
        | BinOp::Gt
        | BinOp::GtEq
        | BinOp::In
        | BinOp::NotIn => Int { lo: 0, hi: 1 },
        _ => Top,
    }
}

/// Result abstraction for a definitely-external call that resolves to
/// a builtin (under the documented no-shadowing assumption).
fn abs_builtin(name: &str, args: &[AbsVal]) -> AbsVal {
    match name {
        "range" => {
            let clamp = |v: i128| -> u64 {
                if v <= 0 {
                    0
                } else if v >= LINF as i128 {
                    LINF
                } else {
                    v as u64
                }
            };
            match args {
                [Int { lo, hi }] => ListLen {
                    lo: clamp(*lo),
                    hi: clamp(*hi),
                },
                [Int { lo: sl, hi: sh }, Int { lo: el, hi: eh }] => ListLen {
                    lo: clamp(isub(*el, *sh)),
                    hi: clamp(isub(*eh, *sl)),
                },
                // Unknown step sign or non-constant args: unknown size.
                _ => ListLen { lo: 0, hi: LINF },
            }
        }
        "len" => match args.first().and_then(len_of) {
            Some((lo, hi)) => Int {
                lo: lo as i128,
                hi: if hi == LINF { IPOS } else { hi as i128 },
            },
            None => Top,
        },
        "sorted" | "enumerate" => match args.first() {
            Some(ListLen { lo, hi }) => ListLen { lo: *lo, hi: *hi },
            _ => ListLen { lo: 0, hi: LINF },
        },
        "str" => StrLen { lo: 0, hi: LINF },
        "bool" => Int { lo: 0, hi: 1 },
        "abs" => match args.first() {
            Some(Int { lo, hi }) => {
                if *lo == INEG || *hi == IPOS {
                    Int { lo: 0, hi: IPOS }
                } else {
                    let (l, h) = (lo.abs(), hi.abs());
                    Int {
                        lo: if *lo <= 0 && *hi >= 0 { 0 } else { l.min(h) },
                        hi: l.max(h),
                    }
                }
            }
            _ => Top,
        },
        _ => Top,
    }
}

/// How one call site resolves, for both dataflow and usage accounting.
enum CallKind {
    /// Definitely host-or-builtin (never shadowed here).
    External,
    /// May be external (unset path) and/or these user functions.
    User {
        funcs: BTreeSet<u16>,
        also_external: bool,
    },
    /// Callee value unknown: could be anything, including a foreign
    /// function value.
    Open,
    /// Definitely a non-callable value: a type error, never completes.
    Error,
}

fn classify_callee(b: &Binding) -> CallKind {
    match &b.val {
        Bottom => CallKind::External,
        Funcs(s) => CallKind::User {
            funcs: s.clone(),
            also_external: b.maybe_unset,
        },
        Top => CallKind::Open,
        _ => {
            if b.maybe_unset {
                CallKind::User {
                    funcs: BTreeSet::new(),
                    also_external: true,
                }
            } else {
                CallKind::Error
            }
        }
    }
}

/// Phase-A transfer for one instruction (dataflow only; usage is
/// accounted separately in [`block_usage`]).
fn transfer(cx: &ChunkCx, st: &mut State, insn: &Insn) {
    if !st.live {
        return;
    }
    match insn {
        Insn::Burn { .. }
        | Insn::DictKey { .. }
        | Insn::Jump { .. }
        | Insn::JumpFalse { .. }
        | Insn::JumpTrue { .. }
        | Insn::IterNew { .. }
        | Insn::IterPop
        | Insn::SetLast { .. }
        | Insn::Ret { .. }
        | Insn::Halt => {}
        Insn::LoopMisuse { .. } => st.live = false,
        Insn::Const { dst, idx } => {
            st.regs[*dst as usize] = abs_const(&cx.program.consts[*idx as usize]);
        }
        Insn::Load {
            dst, name, slot, ..
        } => {
            let b = cx.binding_of(st, *name, *slot);
            if b.val == Bottom {
                // No path binds this name: the load always faults.
                st.live = false;
            } else {
                st.regs[*dst as usize] = b.val;
            }
        }
        Insn::Store { name, slot, src } => {
            let val = st.regs[*src as usize].clone();
            if *slot != NO_REG && !cx.is_main {
                st.locals[*slot as usize] = Binding::set(val);
            } else {
                st.globals[*name as usize] = Binding::set(val);
            }
        }
        Insn::MakeList { dst, n, .. } => {
            st.regs[*dst as usize] = ListLen {
                lo: *n as u64,
                hi: *n as u64,
            };
        }
        Insn::NewDict { dst } => {
            st.regs[*dst as usize] = DictLen { lo: 0, hi: 0 };
        }
        Insn::DictSet { dict, .. } => {
            // Fresh dict literal target (VM invariant): insert may add
            // one key or overwrite.
            if let DictLen { hi, .. } = &mut st.regs[*dict as usize] {
                *hi = ladd(*hi, 1);
            }
        }
        Insn::Bin { op, dst, a, b, .. } => {
            st.regs[*dst as usize] = abs_bin(
                *op,
                &st.regs[*a as usize].clone(),
                &st.regs[*b as usize].clone(),
            );
        }
        Insn::Neg { dst, src, .. } => {
            st.regs[*dst as usize] = match &st.regs[*src as usize] {
                Int { lo, hi } => Int {
                    lo: isub(0, *hi),
                    hi: isub(0, *lo),
                },
                _ => Top,
            };
        }
        Insn::Not { dst, .. } => {
            st.regs[*dst as usize] = Int { lo: 0, hi: 1 };
        }
        Insn::GetIndex { dst, .. } => {
            st.regs[*dst as usize] = Top;
        }
        Insn::SetIndex { .. } => bump_dicts(st),
        Insn::SliceIdx { reg, .. } => {
            if !matches!(st.regs[*reg as usize], Int { .. }) {
                st.regs[*reg as usize] = Top;
            }
        }
        Insn::Slice { dst, obj, .. } => {
            st.regs[*dst as usize] = match &st.regs[*obj as usize] {
                StrLen { hi, .. } => StrLen { lo: 0, hi: *hi },
                ListLen { hi, .. } => ListLen { lo: 0, hi: *hi },
                _ => Top,
            };
        }
        Insn::MakeFunc { dst, idx } => {
            st.regs[*dst as usize] = Funcs(BTreeSet::from([*idx]));
        }
        Insn::IterNext { dst, .. } => {
            st.regs[*dst as usize] = Top;
        }
        Insn::Bind { vars, .. } => {
            for &(name, slot) in &cx.program.var_lists[*vars as usize] {
                if slot != NO_REG && !cx.is_main {
                    st.locals[slot as usize] = Binding::set(Top);
                } else {
                    st.globals[name as usize] = Binding::set(Top);
                }
            }
        }
        Insn::Push { list, .. } => {
            // Fresh comprehension accumulator (VM invariant): exactly
            // one element appended, nothing else aliases it yet.
            if let ListLen { lo, hi } = &mut st.regs[*list as usize] {
                *lo = ladd(*lo, 1);
                *hi = ladd(*hi, 1);
            } else {
                st.regs[*list as usize] = Top;
            }
        }
        Insn::CallName {
            dst,
            name,
            slot,
            base,
            argc,
            ..
        } => {
            let b = cx.binding_of(st, *name, *slot);
            match classify_callee(&b) {
                CallKind::External => {
                    let name_str = cx.name(*name);
                    if is_builtin(name_str) {
                        let args: Vec<AbsVal> = (0..*argc)
                            .map(|i| st.regs[(*base + i) as usize].clone())
                            .collect();
                        st.regs[*dst as usize] = abs_builtin(name_str, &args);
                    } else {
                        havoc_mutables(st);
                        st.regs[*dst as usize] = Top;
                    }
                }
                CallKind::Error => st.live = false,
                _ => {
                    havoc_mutables(st);
                    st.regs[*dst as usize] = Top;
                }
            }
        }
        Insn::CallValue { dst, .. } | Insn::CallMethod { dst, .. } => {
            havoc_mutables(st);
            st.regs[*dst as usize] = Top;
        }
    }
}

// ---------------------------------------------------------------------------
// Usage accounting
// ---------------------------------------------------------------------------

/// Worst-case resource usage along some execution region: fuel plus
/// per-callee-name external call counts.
#[derive(Debug, Clone, PartialEq, Default)]
struct Usage {
    fuel_unbounded: bool,
    fuel: u64,
    calls: BTreeMap<u16, Bound>,
    open: bool,
}

impl Usage {
    fn fuel_bound(&self) -> Bound {
        if self.fuel_unbounded {
            Bound::Unbounded
        } else {
            Bound::Finite(self.fuel)
        }
    }

    fn add_fuel(&mut self, n: u64) {
        self.fuel = self.fuel.saturating_add(n);
    }

    fn add_call(&mut self, name: u16, n: Bound) {
        let cur = self.calls.entry(name).or_insert(Bound::Finite(0));
        *cur = cur.add(n);
    }

    fn mark_open(&mut self) {
        self.open = true;
        self.fuel_unbounded = true;
    }

    /// Sequential composition: costs add.
    fn add(&mut self, other: &Usage) {
        self.fuel_unbounded |= other.fuel_unbounded;
        self.fuel = self.fuel.saturating_add(other.fuel);
        for (&name, &b) in &other.calls {
            self.add_call(name, b);
        }
        self.open |= other.open;
    }

    /// Alternative composition: pointwise max over paths.
    fn max_with(&mut self, other: &Usage) {
        self.fuel_unbounded |= other.fuel_unbounded;
        self.fuel = self.fuel.max(other.fuel);
        for (&name, &b) in &other.calls {
            let cur = self.calls.entry(name).or_insert(Bound::Finite(0));
            *cur = (*cur).max(b);
        }
        self.open |= other.open;
    }

    /// One region repeated at most `times`.
    fn scale(&self, times: Bound) -> Usage {
        let mut out = Usage::default();
        match self.fuel_bound().mul(times) {
            Bound::Finite(f) => out.fuel = f,
            Bound::Unbounded => out.fuel_unbounded = true,
        }
        for (&name, &b) in &self.calls {
            let scaled = b.mul(times);
            if scaled != Bound::Finite(0) {
                out.calls.insert(name, scaled);
            }
        }
        out.open = self.open;
        if self.open {
            out.fuel_unbounded = true;
        }
        out
    }

    fn unbounded_all() -> Usage {
        Usage {
            fuel_unbounded: true,
            fuel: 0,
            calls: BTreeMap::new(),
            open: true,
        }
    }
}

/// Per-function summaries, indexed by compiled-function index.
type Summaries = Vec<Option<Usage>>;

/// Usage of one basic block, resolving call sites against the
/// dataflow state threaded through the block.
fn block_usage(
    cx: &ChunkCx,
    entry: Option<&State>,
    block: &Block,
    code: &[Insn],
    summaries: &Summaries,
) -> Usage {
    let mut usage = Usage::default();
    let Some(entry) = entry else {
        return usage; // Unreachable block: costs nothing.
    };
    let mut st = entry.clone();
    for insn in &code[block.start..block.end] {
        if !st.live {
            break;
        }
        match insn {
            Insn::Burn { n, .. } => usage.add_fuel(*n as u64),
            Insn::CallName { name, slot, .. } => {
                let b = cx.binding_of(&st, *name, *slot);
                match classify_callee(&b) {
                    CallKind::External => usage.add_call(*name, Bound::Finite(1)),
                    CallKind::User {
                        funcs,
                        also_external,
                    } => {
                        if also_external {
                            usage.add_call(*name, Bound::Finite(1));
                        }
                        if !funcs.is_empty() {
                            // The interpreter burns one fuel resolving
                            // the callee value before dispatch.
                            usage.add_fuel(1);
                            usage.add(&callee_usage(&funcs, summaries));
                        }
                    }
                    CallKind::Open => usage.mark_open(),
                    CallKind::Error => {}
                }
            }
            Insn::CallValue { callee, .. } => match &st.regs[*callee as usize] {
                Funcs(s) => usage.add(&callee_usage(s, summaries)),
                Bottom | Int { .. } | StrLen { .. } | ListLen { .. } | DictLen { .. } => {}
                Top => usage.mark_open(),
            },
            _ => {}
        }
        transfer(cx, &mut st, insn);
    }
    usage
}

/// Worst case over a set of possible user callees.
fn callee_usage(funcs: &BTreeSet<u16>, summaries: &Summaries) -> Usage {
    let mut worst = Usage::default();
    for &f in funcs {
        match summaries.get(f as usize).and_then(|s| s.as_ref()) {
            Some(s) => worst.max_with(s),
            None => worst.max_with(&Usage::unbounded_all()),
        }
    }
    worst
}

// ---------------------------------------------------------------------------
// Trip-count inference
// ---------------------------------------------------------------------------

/// A variable identity for induction-variable reasoning.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum VarKey {
    Global(u16),
    Local(u16),
}

fn var_key(cx: &ChunkCx, name: u16, slot: u16) -> VarKey {
    if slot != NO_REG && !cx.is_main {
        VarKey::Local(slot)
    } else {
        VarKey::Global(name)
    }
}

/// Block-local symbolic shapes for the while-loop peephole.
#[derive(Debug, Clone, PartialEq)]
enum Sym {
    LoadOf(VarKey),
    ConstInt(i128),
    /// `var + c` with a positive constant increment.
    AddConst(VarKey, u64),
    /// Normalized continue-condition `var < k` / `var <= k` with the
    /// bound operand's interval.
    Cmp {
        var: VarKey,
        inclusive: bool,
        k_hi: i128,
    },
    Other,
}

/// Runs the symbolic scan over one block alongside the abstract state
/// (needed to evaluate non-constant comparison bounds).
fn scan_block_syms(cx: &ChunkCx, entry: &State, block: &Block, code: &[Insn]) -> HashMap<u16, Sym> {
    let mut syms: HashMap<u16, Sym> = HashMap::new();
    let mut st = entry.clone();
    for insn in &code[block.start..block.end] {
        match insn {
            Insn::Load {
                dst, name, slot, ..
            } => {
                syms.insert(*dst, Sym::LoadOf(var_key(cx, *name, *slot)));
            }
            Insn::Const { dst, idx } => {
                let sym = match &cx.program.consts[*idx as usize] {
                    Const::Int(v) => Sym::ConstInt(*v as i128),
                    _ => Sym::Other,
                };
                syms.insert(*dst, sym);
            }
            Insn::Bin { op, dst, a, b, .. } => {
                let sa = syms.get(a).cloned().unwrap_or(Sym::Other);
                let sb = syms.get(b).cloned().unwrap_or(Sym::Other);
                let sym = bin_sym(*op, &sa, &sb, &st.regs[*a as usize], &st.regs[*b as usize]);
                syms.insert(*dst, sym);
            }
            other => {
                // Anything else writing a register loses its shape.
                if let Some(dst) = insn_dst(other) {
                    syms.insert(dst, Sym::Other);
                }
            }
        }
        transfer(cx, &mut st, insn);
        if !st.live {
            break;
        }
    }
    syms
}

/// The register an instruction writes, if any (symbolic-scan helper).
fn insn_dst(insn: &Insn) -> Option<u16> {
    match insn {
        Insn::Const { dst, .. }
        | Insn::Load { dst, .. }
        | Insn::MakeList { dst, .. }
        | Insn::NewDict { dst }
        | Insn::Bin { dst, .. }
        | Insn::Neg { dst, .. }
        | Insn::Not { dst, .. }
        | Insn::GetIndex { dst, .. }
        | Insn::Slice { dst, .. }
        | Insn::CallName { dst, .. }
        | Insn::CallValue { dst, .. }
        | Insn::CallMethod { dst, .. }
        | Insn::MakeFunc { dst, .. }
        | Insn::IterNext { dst, .. } => Some(*dst),
        Insn::SliceIdx { reg, .. } => Some(*reg),
        _ => None,
    }
}

fn bin_sym(op: BinOp, sa: &Sym, sb: &Sym, abs_a: &AbsVal, abs_b: &AbsVal) -> Sym {
    // `v + c` / `c + v` with c >= 1: a recognized increment.
    if op == BinOp::Add {
        match (sa, sb) {
            (Sym::LoadOf(v), Sym::ConstInt(c)) | (Sym::ConstInt(c), Sym::LoadOf(v))
                if *c >= 1 && *c <= u64::MAX as i128 =>
            {
                return Sym::AddConst(*v, *c as u64);
            }
            _ => {}
        }
    }
    // Ascending continue conditions, normalized to var-on-the-left.
    let bound_hi = |abs: &AbsVal, sym: &Sym| -> Option<i128> {
        if let Sym::ConstInt(c) = sym {
            return Some(*c);
        }
        match abs {
            Int { hi, .. } => Some(*hi),
            _ => None,
        }
    };
    match op {
        BinOp::Lt | BinOp::LtEq => {
            if let Sym::LoadOf(v) = sa {
                if let Some(k_hi) = bound_hi(abs_b, sb) {
                    return Sym::Cmp {
                        var: *v,
                        inclusive: op == BinOp::LtEq,
                        k_hi,
                    };
                }
            }
        }
        BinOp::Gt | BinOp::GtEq => {
            // `k > v` continues while `v < k`.
            if let Sym::LoadOf(v) = sb {
                if let Some(k_hi) = bound_hi(abs_a, sa) {
                    return Sym::Cmp {
                        var: *v,
                        inclusive: op == BinOp::GtEq,
                        k_hi,
                    };
                }
            }
        }
        _ => {}
    }
    Sym::Other
}

/// Everything the loop-collapse pass needs about one chunk.
struct ChunkFlow<'p> {
    cx: ChunkCx<'p>,
    code: &'p [Insn],
    blocks: Vec<Block>,
    preds: Vec<Vec<usize>>,
    loops: Vec<Loop>,
    /// Fixpoint entry state per block (`None` = unreachable).
    entry: Vec<Option<State>>,
}

impl<'p> ChunkFlow<'p> {
    /// Out-state of a block (re-runs the transfer function).
    fn out_state(&self, b: usize) -> Option<State> {
        let mut st = self.entry[b].clone()?;
        for insn in &self.code[self.blocks[b].start..self.blocks[b].end] {
            transfer(&self.cx, &mut st, insn);
        }
        st.live.then_some(st)
    }

    /// State immediately before instruction `at` inside block `b`.
    fn state_before(&self, b: usize, at: usize) -> Option<State> {
        let mut st = self.entry[b].clone()?;
        for insn in &self.code[self.blocks[b].start..at] {
            transfer(&self.cx, &mut st, insn);
        }
        st.live.then_some(st)
    }

    /// Bound on loop-header entries from outside the loop joined over
    /// all entry edges (used for the induction variable's start).
    fn entry_binding(&self, l: &Loop, key: VarKey) -> Option<Binding> {
        let mut acc: Option<Binding> = None;
        for &p in &self.preds[l.header] {
            if l.body.contains(&p) {
                continue;
            }
            let st = self.out_state(p)?;
            let b = match key {
                VarKey::Global(name) => self.cx.global(&st, name).clone(),
                VarKey::Local(slot) => st.locals[slot as usize].clone(),
            };
            acc = Some(match acc {
                None => b,
                Some(prev) => prev.join(&b),
            });
        }
        acc
    }

    /// Scans the loop body for stores to the induction variable `var`.
    /// `Some((c_min, blocks))` when every store is a positive constant
    /// self-increment: the smallest increment and the set of blocks
    /// performing one. `None` (unbounded) when any store is something
    /// else, a `Bind` rebinds the variable, or no increment exists.
    fn while_increments(&self, l: &Loop, var: VarKey) -> Option<(u64, BTreeSet<usize>)> {
        let mut c_min: Option<u64> = None;
        let mut increment_blocks: BTreeSet<usize> = BTreeSet::new();
        for &b in &l.body {
            let blk = &self.blocks[b];
            let Some(entry) = self.entry[b].as_ref() else {
                continue;
            };
            let mut has_store = false;
            let mut all_increments = true;
            let mut syms: HashMap<u16, Sym> = HashMap::new();
            let mut st = entry.clone();
            for insn in &self.code[blk.start..blk.end] {
                match insn {
                    Insn::Store { name, slot, src } => {
                        if var_key(&self.cx, *name, *slot) == var {
                            has_store = true;
                            match syms.get(src) {
                                Some(Sym::AddConst(v, c)) if *v == var => {
                                    c_min = Some(c_min.map_or(*c, |m| m.min(*c)));
                                }
                                _ => all_increments = false,
                            }
                        }
                    }
                    Insn::Bind { vars, .. } => {
                        for &(name, slot) in &self.cx.program.var_lists[*vars as usize] {
                            if var_key(&self.cx, name, slot) == var {
                                has_store = true;
                                all_increments = false;
                            }
                        }
                    }
                    Insn::Load {
                        dst, name, slot, ..
                    } => {
                        syms.insert(*dst, Sym::LoadOf(var_key(&self.cx, *name, *slot)));
                    }
                    Insn::Const { dst, idx } => {
                        let sym = match &self.cx.program.consts[*idx as usize] {
                            Const::Int(v) => Sym::ConstInt(*v as i128),
                            _ => Sym::Other,
                        };
                        syms.insert(*dst, sym);
                    }
                    Insn::Bin { op, dst, a, b, .. } => {
                        let sa = syms.get(a).cloned().unwrap_or(Sym::Other);
                        let sb = syms.get(b).cloned().unwrap_or(Sym::Other);
                        let sym =
                            bin_sym(*op, &sa, &sb, &st.regs[*a as usize], &st.regs[*b as usize]);
                        syms.insert(*dst, sym);
                    }
                    other => {
                        if let Some(dst) = insn_dst(other) {
                            syms.insert(dst, Sym::Other);
                        }
                    }
                }
                transfer(&self.cx, &mut st, insn);
                if !st.live {
                    break;
                }
            }
            if has_store {
                if !all_increments {
                    return None;
                }
                increment_blocks.insert(b);
            }
        }
        c_min.map(|c| (c, increment_blocks))
    }

    /// Infers a trip bound for one natural loop.
    fn trip_bound(&self, l: &Loop) -> Bound {
        let header = &self.blocks[l.header];
        let Some(header_entry) = self.entry[l.header].as_ref() else {
            return Bound::Finite(0); // Loop never entered.
        };
        if let Insn::IterNext { .. } = self.code[header.start] {
            return self.for_trip_bound(l);
        }
        // While shape: single-block condition ending in JumpFalse out.
        let Insn::JumpFalse { src, to } = self.code[header.end - 1] else {
            return Bound::Unbounded;
        };
        let exits_loop = {
            let target = self
                .blocks
                .iter()
                .position(|b| b.start == to as usize)
                .unwrap_or(usize::MAX);
            !l.body.contains(&target)
        };
        if !exits_loop {
            return Bound::Unbounded;
        }
        let syms = scan_block_syms(&self.cx, header_entry, header, self.code);
        let Some(Sym::Cmp {
            var,
            inclusive,
            k_hi,
        }) = syms.get(&src).cloned()
        else {
            return Bound::Unbounded;
        };
        if k_hi == IPOS {
            return Bound::Unbounded;
        }
        let Some((c_min, increment_blocks)) = self.while_increments(l, var) else {
            return Bound::Unbounded;
        };
        // The increment must lie on every header-to-latch path: with
        // increment blocks removed (and this loop's own back-edges cut)
        // no latch may remain reachable from the header.
        let mut reachable: BTreeSet<usize> = BTreeSet::new();
        if !increment_blocks.contains(&l.header) {
            let mut stack = vec![l.header];
            reachable.insert(l.header);
            while let Some(n) = stack.pop() {
                for &s in &self.blocks[n].succs {
                    if s == l.header
                        || !l.body.contains(&s)
                        || increment_blocks.contains(&s)
                        || !reachable.insert(s)
                    {
                        continue;
                    }
                    stack.push(s);
                }
            }
        }
        if l.latches.iter().any(|lt| reachable.contains(lt)) {
            return Bound::Unbounded;
        }
        // Start value of the induction variable at loop entry.
        let Some(entry_b) = self.entry_binding(l, var) else {
            return Bound::Finite(0);
        };
        let v_lo = match entry_b.val {
            Int { lo, .. } if lo != INEG => lo,
            Bottom => return Bound::Finite(0), // Load faults: never loops.
            _ => return Bound::Unbounded,
        };
        let mut span = isub(k_hi, v_lo);
        if inclusive {
            span = iadd(span, 1);
        }
        if span <= 0 {
            return Bound::Finite(0);
        }
        if span == IPOS {
            return Bound::Unbounded;
        }
        let trips = (span as u128).div_ceil(c_min as u128);
        Bound::Finite(trips.min(u64::MAX as u128) as u64)
    }

    /// `for` loops: trips are bounded by the iterable's length at the
    /// `IterNew` that feeds the header (iteration snapshots the
    /// sequence, so later mutation cannot extend it).
    fn for_trip_bound(&self, l: &Loop) -> Bound {
        let entry_preds: Vec<usize> = self.preds[l.header]
            .iter()
            .copied()
            .filter(|p| !l.body.contains(p))
            .collect();
        let [p] = entry_preds[..] else {
            return Bound::Unbounded;
        };
        // The header's iterator is the last `IterNew` in the entry
        // block: for-statements emit it as the block's final
        // instruction, comprehensions follow it with the accumulator's
        // `MakeList`. A complete inner loop cannot sit between that
        // `IterNew` and the block end (loops span several blocks).
        let blk = &self.blocks[p];
        let Some((at, src)) = (blk.start..blk.end).rev().find_map(|i| match self.code[i] {
            Insn::IterNew { src, .. } => Some((i, src)),
            _ => None,
        }) else {
            return Bound::Unbounded;
        };
        let Some(st) = self.state_before(p, at) else {
            return Bound::Finite(0);
        };
        match &st.regs[src as usize] {
            v @ (StrLen { .. } | ListLen { .. } | DictLen { .. }) => {
                let (_, hi) = len_of(v).expect("length-shaped");
                if hi == LINF {
                    Bound::Unbounded
                } else {
                    Bound::Finite(hi)
                }
            }
            // Non-iterables fault at IterNew; Bottom is unreachable.
            Int { .. } | Funcs(_) | Bottom => Bound::Finite(0),
            Top => Bound::Unbounded,
        }
    }
}

// ---------------------------------------------------------------------------
// Chunk analysis driver
// ---------------------------------------------------------------------------

/// Runs CFG construction + interval fixpoint for one chunk. Returns
/// `None` when the CFG is irreducible.
fn analyze_chunk<'p>(
    program: &'p CompiledProgram,
    chunk: &'p Chunk,
    is_main: bool,
    genv: &'p [Binding],
    nlocals: usize,
    params: usize,
) -> Option<ChunkFlow<'p>> {
    if chunk.code.is_empty() {
        // Defensive: compiled chunks always end in Ret/Halt.
        return None;
    }
    let blocks = build_blocks(chunk);
    let preds = predecessors(&blocks);
    let rpo = reverse_postorder(&blocks);
    let loops = find_loops(&blocks, &rpo, &preds)?;
    let headers: BTreeSet<usize> = loops.iter().map(|l| l.header).collect();
    let cx = ChunkCx {
        program,
        is_main,
        genv,
    };

    let init = State {
        live: true,
        regs: vec![Bottom; chunk.nregs as usize],
        locals: if is_main {
            Vec::new()
        } else {
            (0..nlocals)
                .map(|i| {
                    // Parameters arrive bound; other locals start unset.
                    if i < params {
                        Binding::set(Top)
                    } else {
                        Binding::unset()
                    }
                })
                .collect()
        },
        globals: if is_main {
            vec![Binding::unset(); program.names.len()]
        } else {
            Vec::new()
        },
    };

    let mut entry: Vec<Option<State>> = vec![None; blocks.len()];
    entry[0] = Some(init);
    let mut rpo_pos = vec![usize::MAX; blocks.len()];
    for (i, &b) in rpo.iter().enumerate() {
        rpo_pos[b] = i;
    }
    let mut in_list = vec![false; blocks.len()];
    let mut worklist: Vec<usize> = vec![0];
    in_list[0] = true;
    let mut sweeps = 0usize;
    while let Some(b) = {
        // Pop the block earliest in RPO for fast convergence.
        worklist.sort_by_key(|&x| std::cmp::Reverse(rpo_pos[x]));
        worklist.pop()
    } {
        in_list[b] = false;
        sweeps += 1;
        if sweeps > blocks.len().saturating_mul(64) + 256 {
            return None; // Defensive convergence guard.
        }
        let Some(mut st) = entry[b].clone() else {
            continue;
        };
        for insn in &chunk.code[blocks[b].start..blocks[b].end] {
            transfer(&cx, &mut st, insn);
        }
        if !st.live {
            continue;
        }
        for &s in &blocks[b].succs {
            let widen_point = headers.contains(&s);
            let changed = match &mut entry[s] {
                Some(cur) => cur.join_into(&st, widen_point),
                slot @ None => {
                    *slot = Some(st.clone());
                    true
                }
            };
            if changed && !in_list[s] {
                in_list[s] = true;
                worklist.push(s);
            }
        }
    }

    Some(ChunkFlow {
        cx,
        code: &chunk.code,
        blocks,
        preds,
        loops,
        entry,
    })
}

/// Collapses loops innermost-first and runs the longest-path DP,
/// producing the chunk's worst-case usage.
fn chunk_usage(flow: &ChunkFlow, summaries: &Summaries) -> Usage {
    let n = flow.blocks.len();
    let mut node_usage: Vec<Usage> = (0..n)
        .map(|b| {
            block_usage(
                &flow.cx,
                flow.entry[b].as_ref(),
                &flow.blocks[b],
                flow.code,
                summaries,
            )
        })
        .collect();
    let mut succs: Vec<BTreeSet<usize>> = flow
        .blocks
        .iter()
        .map(|b| b.succs.iter().copied().collect())
        .collect();
    let mut removed = vec![false; n];

    let mut loops = flow.loops.clone();
    loops.sort_by_key(|l| l.body.len());
    for l in &loops {
        let inner: BTreeSet<usize> = l.body.iter().copied().filter(|&b| !removed[b]).collect();
        // Max-usage path from the header through the (already
        // collapsed, now acyclic) loop body.
        let sub_edges: Vec<(usize, usize)> = inner
            .iter()
            .flat_map(|&u| {
                succs[u]
                    .iter()
                    .copied()
                    .filter(|v| inner.contains(v) && *v != l.header)
                    .map(move |v| (u, v))
            })
            .collect();
        let order = topo_order(&inner, &sub_edges);
        let mut acc: HashMap<usize, Usage> = HashMap::new();
        acc.insert(l.header, node_usage[l.header].clone());
        let mut per_iter = node_usage[l.header].clone();
        for &u in &order {
            let Some(u_acc) = acc.get(&u).cloned() else {
                continue;
            };
            per_iter.max_with(&u_acc);
            for &(x, v) in sub_edges.iter().filter(|&&(x, _)| x == u) {
                debug_assert_eq!(x, u);
                let mut cand = u_acc.clone();
                cand.add(&node_usage[v]);
                match acc.get_mut(&v) {
                    Some(cur) => cur.max_with(&cand),
                    None => {
                        acc.insert(v, cand);
                    }
                }
            }
        }
        let trips = flow.trip_bound(l);
        let total = per_iter.scale(trips.add(Bound::Finite(1)));
        // The loop becomes one super-node on the header, keeping every
        // edge that leaves the loop.
        let mut exit_targets: BTreeSet<usize> = BTreeSet::new();
        for &u in &inner {
            for &v in &succs[u] {
                if !inner.contains(&v) {
                    exit_targets.insert(v);
                }
            }
        }
        node_usage[l.header] = total;
        succs[l.header] = exit_targets;
        for &u in &inner {
            if u != l.header {
                removed[u] = true;
                succs[u].clear();
            }
        }
    }

    // Longest path over the remaining DAG from the entry block.
    let live: BTreeSet<usize> = (0..n).filter(|&b| !removed[b]).collect();
    let edges: Vec<(usize, usize)> = live
        .iter()
        .flat_map(|&u| {
            succs[u]
                .iter()
                .copied()
                .filter(|v| live.contains(v))
                .map(move |v| (u, v))
        })
        .collect();
    let order = topo_order(&live, &edges);
    let mut acc: HashMap<usize, Usage> = HashMap::new();
    acc.insert(0, node_usage[0].clone());
    let mut worst = node_usage[0].clone();
    for &u in &order {
        let Some(u_acc) = acc.get(&u).cloned() else {
            continue;
        };
        worst.max_with(&u_acc);
        for &(x, v) in edges.iter().filter(|&&(x, _)| x == u) {
            debug_assert_eq!(x, u);
            let mut cand = u_acc.clone();
            cand.add(&node_usage[v]);
            match acc.get_mut(&v) {
                Some(cur) => cur.max_with(&cand),
                None => {
                    acc.insert(v, cand);
                }
            }
        }
    }
    worst
}

/// Kahn topological order over an explicit node set + edge list.
/// Cycles cannot occur here (loops are collapsed before use), but any
/// leftover cyclic nodes are simply dropped, which under-counts
/// nothing: the caller treats missing accumulator entries as
/// unreachable.
fn topo_order(nodes: &BTreeSet<usize>, edges: &[(usize, usize)]) -> Vec<usize> {
    let mut indeg: BTreeMap<usize, usize> = nodes.iter().map(|&n| (n, 0)).collect();
    for &(_, v) in edges {
        *indeg.get_mut(&v).expect("edge into node set") += 1;
    }
    let mut ready: Vec<usize> = indeg
        .iter()
        .filter(|&(_, &d)| d == 0)
        .map(|(&n, _)| n)
        .collect();
    let mut order = Vec::with_capacity(nodes.len());
    while let Some(u) = ready.pop() {
        order.push(u);
        for &(x, v) in edges.iter().filter(|&&(x, _)| x == u) {
            debug_assert_eq!(x, u);
            let d = indeg.get_mut(&v).expect("edge into node set");
            *d -= 1;
            if *d == 0 {
                ready.push(v);
            }
        }
    }
    order
}

// ---------------------------------------------------------------------------
// Whole-program analysis
// ---------------------------------------------------------------------------

/// Entry global summary for function chunks: the join of everything
/// main ever stores per name, with list/dict lengths pre-havocked (a
/// callee may observe them mid-mutation at any time).
fn main_global_summary(program: &CompiledProgram, main_flow: &ChunkFlow) -> Vec<Binding> {
    let mut genv: Vec<Binding> = vec![Binding::unset(); program.names.len()];
    for (b, blk) in main_flow.blocks.iter().enumerate() {
        let Some(entry) = main_flow.entry[b].as_ref() else {
            continue;
        };
        let mut st = entry.clone();
        for insn in &main_flow.code[blk.start..blk.end] {
            if st.live {
                match insn {
                    Insn::Store { name, src, .. } => {
                        let stored = Binding::set(st.regs[*src as usize].clone());
                        genv[*name as usize] = genv[*name as usize].join(&stored);
                    }
                    Insn::Bind { vars, .. } => {
                        for &(name, _) in &program.var_lists[*vars as usize] {
                            genv[name as usize] = genv[name as usize].join(&Binding::set(Top));
                        }
                    }
                    _ => {}
                }
            }
            transfer(&main_flow.cx, &mut st, insn);
        }
    }
    for b in &mut genv {
        // Callers may run at any point of main's execution.
        b.maybe_unset = true;
        if let ListLen { lo, hi } | DictLen { lo, hi } = &mut b.val {
            *lo = 0;
            *hi = LINF;
        }
    }
    genv
}

/// Analyzes a compiled program, producing a sound [`CostBound`].
pub fn analyze(program: &CompiledProgram) -> CostBound {
    // Defensive: the compiler slots every name a function assigns; a
    // global store from a function chunk would break the entry-summary
    // construction, so bail to unbounded rather than risk a wrong
    // number.
    for f in &program.funcs {
        for insn in &f.chunk.code {
            match insn {
                Insn::Store { slot, .. } if *slot == NO_REG => return CostBound::unbounded_all(),
                Insn::Bind { vars, .. }
                    if program.var_lists[*vars as usize]
                        .iter()
                        .any(|&(_, slot)| slot == NO_REG) =>
                {
                    return CostBound::unbounded_all();
                }
                _ => {}
            }
        }
    }

    let empty_genv: Vec<Binding> = Vec::new();
    let Some(main_flow) = analyze_chunk(program, &program.main, true, &empty_genv, 0, 0) else {
        return CostBound::unbounded_all();
    };

    let genv = main_global_summary(program, &main_flow);

    // Per-function dataflow.
    let mut fn_flows: Vec<Option<ChunkFlow>> = Vec::with_capacity(program.funcs.len());
    for f in &program.funcs {
        fn_flows.push(analyze_chunk(
            program,
            &f.chunk,
            false,
            &genv,
            f.locals.len(),
            f.params.len(),
        ));
    }

    // Call graph over function chunks (callee sets from the dataflow).
    let callees_of = |flow: &ChunkFlow| -> BTreeSet<u16> {
        let mut set = BTreeSet::new();
        for (b, blk) in flow.blocks.iter().enumerate() {
            let Some(entry) = flow.entry[b].as_ref() else {
                continue;
            };
            let mut st = entry.clone();
            for insn in &flow.code[blk.start..blk.end] {
                if st.live {
                    match insn {
                        Insn::CallName { name, slot, .. } => {
                            if let CallKind::User { funcs, .. } =
                                classify_callee(&flow.cx.binding_of(&st, *name, *slot))
                            {
                                set.extend(funcs);
                            }
                        }
                        Insn::CallValue { callee, .. } => {
                            if let Funcs(s) = &st.regs[*callee as usize] {
                                set.extend(s.iter().copied());
                            }
                        }
                        _ => {}
                    }
                }
                transfer(&flow.cx, &mut st, insn);
            }
        }
        set
    };
    let fn_callees: Vec<BTreeSet<u16>> = fn_flows
        .iter()
        .map(|f| f.as_ref().map(&callees_of).unwrap_or_default())
        .collect();

    // Bottom-up summaries: repeatedly summarize functions whose
    // callees are done; anything left is (mutually) recursive and
    // stays unbounded.
    let nfuncs = program.funcs.len();
    let mut summaries: Summaries = vec![None; nfuncs];
    loop {
        let mut progressed = false;
        for i in 0..nfuncs {
            if summaries[i].is_some() {
                continue;
            }
            let ready = fn_callees[i].iter().all(|&c| {
                c as usize != i && summaries.get(c as usize).is_some_and(|s| s.is_some())
            });
            if !ready {
                continue;
            }
            let usage = match &fn_flows[i] {
                Some(flow) => chunk_usage(flow, &summaries),
                None => Usage::unbounded_all(),
            };
            summaries[i] = Some(usage);
            progressed = true;
        }
        if !progressed {
            break;
        }
    }
    // Recursive leftovers summarize as unbounded (None in `summaries`
    // already reads as unbounded via `callee_usage`).

    let usage = chunk_usage(&main_flow, &summaries);
    let calls: BTreeMap<String, Bound> = usage
        .calls
        .iter()
        .map(|(&ix, &b)| (program.names[ix as usize].clone(), b))
        .collect();
    CostBound::finish(usage.fuel_bound(), calls, usage.open)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bytecode::compile_source;
    use crate::{Interpreter, ScriptValue};
    use std::cell::RefCell;
    use std::rc::Rc;

    fn bound_of(src: &str) -> CostBound {
        compile_source(src).expect("compiles").bound
    }

    /// Runs `src` with recording stub tools; returns (fuel used,
    /// per-tool call counts) on completion.
    fn run_with_tools(src: &str, fuel: u64) -> Option<(u64, BTreeMap<String, u64>)> {
        let calls = Rc::new(RefCell::new(BTreeMap::<String, u64>::new()));
        let mut interp = Interpreter::new().with_fuel(fuel);
        for tool in ["list_files", "read_file", "emit"] {
            let c = calls.clone();
            interp.bind_host_fn(tool, move |_args| {
                *c.borrow_mut().entry(tool.to_string()).or_insert(0) += 1;
                Ok(ScriptValue::list(vec![
                    ScriptValue::str("a.csv"),
                    ScriptValue::str("b.csv"),
                ]))
            });
        }
        let ok = interp.run(src).is_ok();
        let used = fuel - interp.fuel_remaining();
        ok.then(|| (used, calls.borrow().clone()))
    }

    #[track_caller]
    fn assert_sound_and_finite(src: &str) -> CostBound {
        let b = bound_of(src);
        assert!(
            !b.unbounded,
            "expected a finite bound for:\n{src}\ngot {b:?}"
        );
        let (used, calls) = run_with_tools(src, 1_000_000).expect("program completes");
        match b.fuel_max {
            Bound::Finite(max) => assert!(
                used <= max,
                "fuel {used} exceeds static bound {max} for:\n{src}"
            ),
            Bound::Unbounded => unreachable!("finite bound asserted"),
        }
        for (tool, &n) in &calls {
            match b.call_bound(tool) {
                Bound::Finite(max) => assert!(
                    n <= max,
                    "{tool} called {n} times, bound {max}, for:\n{src}"
                ),
                Bound::Unbounded => {}
            }
        }
        b
    }

    #[test]
    fn straight_line_is_finite_and_sound() {
        let b = assert_sound_and_finite("x = 1\ny = x + 2\ny");
        assert_eq!(b.calls_per_tool, BTreeMap::new());
        assert_eq!(b.worst_usd_max(), 0.0);
    }

    #[test]
    fn for_range_loop_is_finite() {
        assert_sound_and_finite("total = 0\nfor i in range(10):\n    total += i\ntotal");
    }

    #[test]
    fn counted_while_loop_is_finite() {
        assert_sound_and_finite("i = 0\nacc = 0\nwhile i < 400:\n    acc += i\n    i += 1\nacc");
    }

    #[test]
    fn while_with_le_and_step_is_finite() {
        assert_sound_and_finite("i = 0\nwhile i <= 20:\n    i = i + 3\ni");
    }

    #[test]
    fn nested_loops_are_finite() {
        assert_sound_and_finite(
            "acc = 0\nfor i in range(5):\n    for j in range(7):\n        acc += 1\nacc",
        );
    }

    #[test]
    fn tool_calls_in_loops_are_counted() {
        let b = assert_sound_and_finite("for i in range(3):\n    emit(i)\n0");
        match b.call_bound("emit") {
            Bound::Finite(n) => assert!(n >= 3, "emit bound {n} below actual 3"),
            Bound::Unbounded => panic!("emit should be finitely bounded"),
        }
        assert!(b.usd_max(ModelId::Flagship) > 0.0);
        assert!(b.usd_max(ModelId::Flagship).is_finite());
        assert!(b.usd_max(ModelId::Nano) < b.usd_max(ModelId::Flagship));
    }

    #[test]
    fn builtin_calls_are_counted_but_not_billed() {
        let b = assert_sound_and_finite("xs = range(4)\nprint(len(xs))\nlen(xs)");
        assert!(b.call_bound("len").is_finite());
        assert_eq!(b.worst_usd_max(), 0.0);
    }

    #[test]
    fn listcomp_is_finite() {
        assert_sound_and_finite("xs = [i * 2 for i in range(6)]\nlen(xs)");
    }

    #[test]
    fn user_function_calls_compose() {
        let b = assert_sound_and_finite(
            "def f(x):\n    return x + 1\ntotal = 0\nfor i in range(4):\n    total += f(i)\ntotal",
        );
        assert!(b.fuel_max.is_finite());
    }

    #[test]
    fn data_dependent_while_is_unbounded() {
        let b = bound_of("n = len(list_files())\ni = 0\nwhile i < n:\n    i += 1\ni");
        assert!(b.unbounded);
        assert_eq!(b.fuel_max, Bound::Unbounded);
    }

    #[test]
    fn decrementing_while_is_unbounded() {
        let b = bound_of("i = 10\nwhile i > 0:\n    i = i - 1\ni");
        assert!(b.unbounded);
    }

    #[test]
    fn clobbered_induction_variable_is_unbounded() {
        let b = bound_of("i = 0\nwhile i < 5:\n    i = 0\ni");
        assert!(b.unbounded);
    }

    #[test]
    fn recursion_is_unbounded() {
        let b = bound_of("def f(n):\n    if n > 0:\n        return f(n - 1)\n    return 0\nf(3)");
        assert!(b.unbounded);
    }

    #[test]
    fn iteration_over_tool_result_is_unbounded_fuel_but_counts_entry_call() {
        let b = bound_of("for f in list_files():\n    read_file(f)\n0");
        assert!(b.unbounded);
        assert_eq!(b.call_bound("list_files"), Bound::Finite(1));
        assert_eq!(b.call_bound("read_file"), Bound::Unbounded);
    }

    #[test]
    fn unknown_callee_degrades_to_open() {
        // `g` holds whatever came out of the list: an unknown value,
        // so the call site could reach any tool any number of times.
        let b = bound_of("def f():\n    return 1\nxs = [f]\ng = xs[0]\ng()");
        assert!(b.unbounded);
        assert!(b.calls_open);
    }

    #[test]
    fn host_value_load_is_a_name_error_and_finite() {
        // `Load` never consults host functions: `f = list_files`
        // always faults, so the program never completes and any finite
        // bound is vacuously sound.
        let b = bound_of("f = list_files\nf()");
        assert!(b.fuel_max.is_finite());
    }

    #[test]
    fn bound_is_deterministic() {
        let src = "total = 0\nfor i in range(9):\n    total += i\nemit(total)\ntotal";
        assert_eq!(bound_of(src), bound_of(src));
    }

    #[test]
    fn render_is_compact() {
        let b = bound_of("emit(1)\n0");
        let line = b.render();
        assert!(line.contains("fuel<="), "render: {line}");
        assert!(line.contains("emit<=1"), "render: {line}");
    }

    #[test]
    fn unbounded_all_is_conservative_everywhere() {
        let b = CostBound::unbounded_all();
        assert!(b.unbounded);
        assert_eq!(b.call_bound("anything"), Bound::Unbounded);
        assert_eq!(b.usd_max(ModelId::Flagship), f64::INFINITY);
        assert_eq!(b.worst_usd_max(), f64::INFINITY);
    }

    #[test]
    fn bound_arithmetic_saturates() {
        assert_eq!(
            Bound::Finite(u64::MAX).add(Bound::Finite(5)),
            Bound::Finite(u64::MAX)
        );
        assert_eq!(Bound::Unbounded.mul(Bound::Finite(0)), Bound::Finite(0));
        assert_eq!(Bound::Unbounded.mul(Bound::Finite(2)), Bound::Unbounded);
        assert_eq!(Bound::Finite(3).max(Bound::Unbounded), Bound::Unbounded);
    }

    #[test]
    fn break_and_early_exit_stay_sound() {
        assert_sound_and_finite(
            "acc = 0\nfor i in range(10):\n    if i > 3:\n        break\n    acc += i\nacc",
        );
    }

    #[test]
    fn continue_creates_second_latch_and_stays_sound() {
        assert_sound_and_finite(
            "acc = 0\ni = 0\nwhile i < 30:\n    i += 1\n    if i > 10:\n        continue\n    acc += i\nacc",
        );
    }
}
