//! Recursive-descent parser.
//!
//! Grammar (highest line wins):
//!
//! ```text
//! program    := (stmt NEWLINE?)* EOF
//! block      := NEWLINE INDENT stmt+ DEDENT
//! stmt       := simple | if | while | for | def
//! simple     := assign | augassign | return | break | continue | pass | expr
//! expr       := or_expr
//! or_expr    := and_expr ("or" and_expr)*
//! and_expr   := not_expr ("and" not_expr)*
//! not_expr   := "not" not_expr | comparison
//! comparison := arith (("=="|"!="|"<"|"<="|">"|">="|"in"|"not in") arith)?
//! arith      := term (("+"|"-") term)*
//! term       := unary (("*"|"/"|"//"|"%") unary)*
//! unary      := "-" unary | postfix
//! postfix    := atom (call | index | slice | attr-call)*
//! atom       := literal | name | "(" expr ")" | list | dict
//! ```

use crate::ast::*;
use crate::error::ScriptError;
use crate::lexer::{lex, Tok, Token};

/// Parses Pyrite source into a [`Program`].
pub fn parse(source: &str) -> Result<Program, ScriptError> {
    let tokens = lex(source)?;
    let mut parser = Parser { tokens, pos: 0 };
    parser.program()
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> &Tok {
        &self.tokens[self.pos].kind
    }

    fn line(&self) -> usize {
        self.tokens[self.pos].line
    }

    fn col(&self) -> usize {
        self.tokens[self.pos].col
    }

    fn advance(&mut self) -> Tok {
        let tok = self.tokens[self.pos].kind.clone();
        if self.pos < self.tokens.len() - 1 {
            self.pos += 1;
        }
        tok
    }

    fn eat(&mut self, expected: &Tok) -> bool {
        if self.peek() == expected {
            self.advance();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, expected: Tok, what: &str) -> Result<(), ScriptError> {
        if self.peek() == &expected {
            self.advance();
            Ok(())
        } else {
            Err(self.err(format!("expected {what}, found {:?}", self.peek())))
        }
    }

    fn err(&self, message: String) -> ScriptError {
        ScriptError::Parse {
            line: self.line(),
            col: self.col(),
            message,
        }
    }

    fn program(&mut self) -> Result<Program, ScriptError> {
        let mut body = Vec::new();
        while !matches!(self.peek(), Tok::Eof) {
            if self.eat(&Tok::Newline) {
                continue;
            }
            body.push(self.stmt()?);
        }
        Ok(Program { body })
    }

    fn block(&mut self) -> Result<Vec<Stmt>, ScriptError> {
        self.expect(Tok::Colon, "':'")?;
        // Inline single-statement block: `if x: y = 1`
        if !matches!(self.peek(), Tok::Newline) {
            return Ok(vec![self.simple_stmt()?]);
        }
        self.expect(Tok::Newline, "newline")?;
        self.expect(Tok::Indent, "an indented block")?;
        let mut body = Vec::new();
        while !matches!(self.peek(), Tok::Dedent | Tok::Eof) {
            if self.eat(&Tok::Newline) {
                continue;
            }
            body.push(self.stmt()?);
        }
        self.expect(Tok::Dedent, "dedent")?;
        if body.is_empty() {
            return Err(self.err("empty block".into()));
        }
        Ok(body)
    }

    fn stmt(&mut self) -> Result<Stmt, ScriptError> {
        let line = self.line();
        match self.peek() {
            Tok::If => self.if_stmt(),
            Tok::While => {
                self.advance();
                let cond = self.expr()?;
                let body = self.block()?;
                Ok(Stmt {
                    kind: StmtKind::While(cond, body),
                    line,
                })
            }
            Tok::For => {
                self.advance();
                let mut vars = vec![self.name("loop variable")?];
                while self.eat(&Tok::Comma) {
                    vars.push(self.name("loop variable")?);
                }
                self.expect(Tok::In, "'in'")?;
                let iter = self.expr()?;
                let body = self.block()?;
                Ok(Stmt {
                    kind: StmtKind::For(vars, iter, body),
                    line,
                })
            }
            Tok::Def => {
                self.advance();
                let name = self.name("function name")?;
                self.expect(Tok::LParen, "'('")?;
                let mut params = Vec::new();
                while !matches!(self.peek(), Tok::RParen) {
                    params.push(self.name("parameter")?);
                    if !self.eat(&Tok::Comma) {
                        break;
                    }
                }
                self.expect(Tok::RParen, "')'")?;
                let body = self.block()?;
                Ok(Stmt {
                    kind: StmtKind::Def(name, params, body),
                    line,
                })
            }
            _ => {
                let stmt = self.simple_stmt()?;
                // A simple statement at top level is terminated by a newline
                // (already consumed by the caller loop when present).
                Ok(stmt)
            }
        }
    }

    fn if_stmt(&mut self) -> Result<Stmt, ScriptError> {
        let line = self.line();
        self.expect(Tok::If, "'if'")?;
        let mut arms = Vec::new();
        let cond = self.expr()?;
        let body = self.block()?;
        arms.push((cond, body));
        let mut else_body = None;
        loop {
            // Skip newlines between arms.
            while self.eat(&Tok::Newline) {}
            match self.peek() {
                Tok::Elif => {
                    self.advance();
                    let cond = self.expr()?;
                    let body = self.block()?;
                    arms.push((cond, body));
                }
                Tok::Else => {
                    self.advance();
                    else_body = Some(self.block()?);
                    break;
                }
                _ => break,
            }
        }
        Ok(Stmt {
            kind: StmtKind::If(arms, else_body),
            line,
        })
    }

    fn simple_stmt(&mut self) -> Result<Stmt, ScriptError> {
        let line = self.line();
        match self.peek() {
            Tok::Return => {
                self.advance();
                let value = if matches!(self.peek(), Tok::Newline | Tok::Eof | Tok::Dedent) {
                    None
                } else {
                    Some(self.expr()?)
                };
                Ok(Stmt {
                    kind: StmtKind::Return(value),
                    line,
                })
            }
            Tok::Break => {
                self.advance();
                Ok(Stmt {
                    kind: StmtKind::Break,
                    line,
                })
            }
            Tok::Continue => {
                self.advance();
                Ok(Stmt {
                    kind: StmtKind::Continue,
                    line,
                })
            }
            Tok::Pass => {
                self.advance();
                Ok(Stmt {
                    kind: StmtKind::Pass,
                    line,
                })
            }
            _ => {
                let expr = self.expr()?;
                match self.peek() {
                    Tok::Eq => {
                        self.advance();
                        let target = self.to_target(expr)?;
                        let value = self.expr()?;
                        Ok(Stmt {
                            kind: StmtKind::Assign(target, value),
                            line,
                        })
                    }
                    Tok::PlusEq | Tok::MinusEq => {
                        let op = if matches!(self.peek(), Tok::PlusEq) {
                            BinOp::Add
                        } else {
                            BinOp::Sub
                        };
                        self.advance();
                        let target = self.to_target(expr)?;
                        let value = self.expr()?;
                        Ok(Stmt {
                            kind: StmtKind::AugAssign(target, op, value),
                            line,
                        })
                    }
                    _ => Ok(Stmt {
                        kind: StmtKind::Expr(expr),
                        line,
                    }),
                }
            }
        }
    }

    fn to_target(&self, expr: Expr) -> Result<Target, ScriptError> {
        match expr.kind {
            ExprKind::Name(name) => Ok(Target::Name(name)),
            ExprKind::Index(obj, key) => Ok(Target::Index(*obj, *key)),
            _ => Err(ScriptError::Parse {
                line: expr.line,
                col: 0,
                message: "invalid assignment target".into(),
            }),
        }
    }

    fn name(&mut self, what: &str) -> Result<String, ScriptError> {
        match self.peek().clone() {
            Tok::Name(name) => {
                self.advance();
                Ok(name)
            }
            other => Err(self.err(format!("expected {what}, found {other:?}"))),
        }
    }

    fn expr(&mut self) -> Result<Expr, ScriptError> {
        self.or_expr()
    }

    fn or_expr(&mut self) -> Result<Expr, ScriptError> {
        let mut left = self.and_expr()?;
        while matches!(self.peek(), Tok::Or) {
            let line = self.line();
            self.advance();
            let right = self.and_expr()?;
            left = Expr {
                kind: ExprKind::Binary(BinOp::Or, Box::new(left), Box::new(right)),
                line,
            };
        }
        Ok(left)
    }

    fn and_expr(&mut self) -> Result<Expr, ScriptError> {
        let mut left = self.not_expr()?;
        while matches!(self.peek(), Tok::And) {
            let line = self.line();
            self.advance();
            let right = self.not_expr()?;
            left = Expr {
                kind: ExprKind::Binary(BinOp::And, Box::new(left), Box::new(right)),
                line,
            };
        }
        Ok(left)
    }

    fn not_expr(&mut self) -> Result<Expr, ScriptError> {
        if matches!(self.peek(), Tok::Not) {
            let line = self.line();
            self.advance();
            let operand = self.not_expr()?;
            return Ok(Expr {
                kind: ExprKind::Unary(UnaryOp::Not, Box::new(operand)),
                line,
            });
        }
        self.comparison()
    }

    fn comparison(&mut self) -> Result<Expr, ScriptError> {
        let left = self.arith()?;
        let line = self.line();
        let op = match self.peek() {
            Tok::EqEq => Some(BinOp::Eq),
            Tok::NotEq => Some(BinOp::NotEq),
            Tok::Lt => Some(BinOp::Lt),
            Tok::LtEq => Some(BinOp::LtEq),
            Tok::Gt => Some(BinOp::Gt),
            Tok::GtEq => Some(BinOp::GtEq),
            Tok::In => Some(BinOp::In),
            Tok::Not => {
                // `not in`
                self.advance();
                if !self.eat(&Tok::In) {
                    return Err(self.err("expected 'in' after 'not'".into()));
                }
                let right = self.arith()?;
                return Ok(Expr {
                    kind: ExprKind::Binary(BinOp::NotIn, Box::new(left), Box::new(right)),
                    line,
                });
            }
            _ => None,
        };
        if let Some(op) = op {
            self.advance();
            let right = self.arith()?;
            return Ok(Expr {
                kind: ExprKind::Binary(op, Box::new(left), Box::new(right)),
                line,
            });
        }
        Ok(left)
    }

    fn arith(&mut self) -> Result<Expr, ScriptError> {
        let mut left = self.term()?;
        loop {
            let op = match self.peek() {
                Tok::Plus => BinOp::Add,
                Tok::Minus => BinOp::Sub,
                _ => break,
            };
            let line = self.line();
            self.advance();
            let right = self.term()?;
            left = Expr {
                kind: ExprKind::Binary(op, Box::new(left), Box::new(right)),
                line,
            };
        }
        Ok(left)
    }

    fn term(&mut self) -> Result<Expr, ScriptError> {
        let mut left = self.unary()?;
        loop {
            let op = match self.peek() {
                Tok::Star => BinOp::Mul,
                Tok::Slash => BinOp::Div,
                Tok::DoubleSlash => BinOp::FloorDiv,
                Tok::Percent => BinOp::Mod,
                _ => break,
            };
            let line = self.line();
            self.advance();
            let right = self.unary()?;
            left = Expr {
                kind: ExprKind::Binary(op, Box::new(left), Box::new(right)),
                line,
            };
        }
        Ok(left)
    }

    fn unary(&mut self) -> Result<Expr, ScriptError> {
        if matches!(self.peek(), Tok::Minus) {
            let line = self.line();
            self.advance();
            let operand = self.unary()?;
            return Ok(Expr {
                kind: ExprKind::Unary(UnaryOp::Neg, Box::new(operand)),
                line,
            });
        }
        self.postfix()
    }

    fn postfix(&mut self) -> Result<Expr, ScriptError> {
        let mut expr = self.atom()?;
        loop {
            let line = self.line();
            match self.peek() {
                Tok::LParen => {
                    self.advance();
                    let args = self.call_args()?;
                    expr = Expr {
                        kind: ExprKind::Call(Box::new(expr), args),
                        line,
                    };
                }
                Tok::LBracket => {
                    self.advance();
                    // Either index or slice.
                    let lo = if matches!(self.peek(), Tok::Colon) {
                        None
                    } else {
                        Some(Box::new(self.expr()?))
                    };
                    if self.eat(&Tok::Colon) {
                        let hi = if matches!(self.peek(), Tok::RBracket) {
                            None
                        } else {
                            Some(Box::new(self.expr()?))
                        };
                        self.expect(Tok::RBracket, "']'")?;
                        expr = Expr {
                            kind: ExprKind::Slice(Box::new(expr), lo, hi),
                            line,
                        };
                    } else {
                        let key = lo.ok_or_else(|| self.err("empty subscript".into()))?;
                        self.expect(Tok::RBracket, "']'")?;
                        expr = Expr {
                            kind: ExprKind::Index(Box::new(expr), key),
                            line,
                        };
                    }
                }
                Tok::Dot => {
                    self.advance();
                    let method = self.name("method name")?;
                    self.expect(Tok::LParen, "'(' after method name")?;
                    let args = self.call_args()?;
                    expr = Expr {
                        kind: ExprKind::MethodCall(Box::new(expr), method, args),
                        line,
                    };
                }
                _ => break,
            }
        }
        Ok(expr)
    }

    fn call_args(&mut self) -> Result<Vec<Expr>, ScriptError> {
        let mut args = Vec::new();
        while !matches!(self.peek(), Tok::RParen) {
            args.push(self.expr()?);
            if !self.eat(&Tok::Comma) {
                break;
            }
        }
        self.expect(Tok::RParen, "')'")?;
        Ok(args)
    }

    fn atom(&mut self) -> Result<Expr, ScriptError> {
        let line = self.line();
        let col = self.col();
        let kind = match self.advance() {
            Tok::Int(v) => ExprKind::Int(v),
            Tok::Float(v) => ExprKind::Float(v),
            Tok::Str(s) => ExprKind::Str(s),
            Tok::True => ExprKind::Bool(true),
            Tok::False => ExprKind::Bool(false),
            Tok::None => ExprKind::None,
            Tok::Name(name) => ExprKind::Name(name),
            Tok::LParen => {
                let inner = self.expr()?;
                self.expect(Tok::RParen, "')'")?;
                return Ok(inner);
            }
            Tok::LBracket => {
                if matches!(self.peek(), Tok::RBracket) {
                    self.advance();
                    return Ok(Expr {
                        kind: ExprKind::List(Vec::new()),
                        line,
                    });
                }
                let first = self.expr()?;
                if matches!(self.peek(), Tok::For) {
                    // List comprehension.
                    self.advance();
                    let mut vars = vec![self.name("loop variable")?];
                    while self.eat(&Tok::Comma) {
                        vars.push(self.name("loop variable")?);
                    }
                    self.expect(Tok::In, "'in'")?;
                    let iterable = self.expr()?;
                    let condition = if matches!(self.peek(), Tok::If) {
                        self.advance();
                        Some(Box::new(self.expr()?))
                    } else {
                        None
                    };
                    self.expect(Tok::RBracket, "']'")?;
                    return Ok(Expr {
                        kind: ExprKind::ListComp {
                            element: Box::new(first),
                            vars,
                            iterable: Box::new(iterable),
                            condition,
                        },
                        line,
                    });
                }
                let mut items = vec![first];
                while self.eat(&Tok::Comma) {
                    if matches!(self.peek(), Tok::RBracket) {
                        break;
                    }
                    items.push(self.expr()?);
                }
                self.expect(Tok::RBracket, "']'")?;
                ExprKind::List(items)
            }
            Tok::LBrace => {
                let mut pairs = Vec::new();
                while !matches!(self.peek(), Tok::RBrace) {
                    let key = self.expr()?;
                    self.expect(Tok::Colon, "':'")?;
                    let value = self.expr()?;
                    pairs.push((key, value));
                    if !self.eat(&Tok::Comma) {
                        break;
                    }
                }
                self.expect(Tok::RBrace, "'}'")?;
                ExprKind::Dict(pairs)
            }
            other => {
                return Err(ScriptError::Parse {
                    line,
                    col,
                    message: format!("unexpected token {other:?}"),
                })
            }
        };
        Ok(Expr { kind, line })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_assignment_and_expression() {
        let p = parse("x = 1 + 2 * 3").unwrap();
        assert_eq!(p.body.len(), 1);
        match &p.body[0].kind {
            StmtKind::Assign(Target::Name(n), value) => {
                assert_eq!(n, "x");
                // Precedence: 1 + (2 * 3)
                match &value.kind {
                    ExprKind::Binary(BinOp::Add, _, rhs) => {
                        assert!(matches!(rhs.kind, ExprKind::Binary(BinOp::Mul, _, _)));
                    }
                    other => panic!("unexpected {other:?}"),
                }
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_if_elif_else() {
        let src = "if x > 1:\n    a = 1\nelif x > 0:\n    a = 2\nelse:\n    a = 3";
        let p = parse(src).unwrap();
        match &p.body[0].kind {
            StmtKind::If(arms, else_body) => {
                assert_eq!(arms.len(), 2);
                assert!(else_body.is_some());
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_nested_blocks() {
        let src = "for f in files:\n    if f == target:\n        found = f\n        break";
        let p = parse(src).unwrap();
        match &p.body[0].kind {
            StmtKind::For(vars, _, body) => {
                assert_eq!(vars, &vec!["f".to_string()]);
                assert!(matches!(body[0].kind, StmtKind::If(_, _)));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_def_and_return() {
        let src = "def ratio(a, b):\n    return a / b";
        let p = parse(src).unwrap();
        match &p.body[0].kind {
            StmtKind::Def(name, params, body) => {
                assert_eq!(name, "ratio");
                assert_eq!(params, &vec!["a".to_string(), "b".to_string()]);
                assert!(matches!(body[0].kind, StmtKind::Return(Some(_))));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_method_calls_and_chains() {
        let p = parse("s.lower().split(\",\")").unwrap();
        match &p.body[0].kind {
            StmtKind::Expr(e) => match &e.kind {
                ExprKind::MethodCall(obj, m, args) => {
                    assert_eq!(m, "split");
                    assert_eq!(args.len(), 1);
                    assert!(matches!(obj.kind, ExprKind::MethodCall(_, _, _)));
                }
                other => panic!("unexpected {other:?}"),
            },
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_index_and_slice() {
        let p = parse("a[0]\nb[1:3]\nc[:2]\nd[2:]").unwrap();
        assert!(matches!(
            p.body[0].kind,
            StmtKind::Expr(Expr {
                kind: ExprKind::Index(_, _),
                ..
            })
        ));
        for stmt in &p.body[1..] {
            assert!(matches!(
                stmt.kind,
                StmtKind::Expr(Expr {
                    kind: ExprKind::Slice(_, _, _),
                    ..
                })
            ));
        }
    }

    #[test]
    fn parses_in_and_not_in() {
        let p = parse("x = \"a\" in s and \"b\" not in s").unwrap();
        match &p.body[0].kind {
            StmtKind::Assign(_, e) => match &e.kind {
                ExprKind::Binary(BinOp::And, l, r) => {
                    assert!(matches!(l.kind, ExprKind::Binary(BinOp::In, _, _)));
                    assert!(matches!(r.kind, ExprKind::Binary(BinOp::NotIn, _, _)));
                }
                other => panic!("unexpected {other:?}"),
            },
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_index_assignment() {
        let p = parse("d[\"k\"] = 5\nd[\"k\"] += 1").unwrap();
        assert!(matches!(
            p.body[0].kind,
            StmtKind::Assign(Target::Index(_, _), _)
        ));
        assert!(matches!(
            p.body[1].kind,
            StmtKind::AugAssign(Target::Index(_, _), BinOp::Add, _)
        ));
    }

    #[test]
    fn rejects_bad_assignment_target() {
        assert!(parse("1 = 2").is_err());
        assert!(parse("f() = 2").is_err());
    }

    #[test]
    fn parses_dict_and_list_literals() {
        let p = parse("x = {\"a\": 1, \"b\": [1, 2]}").unwrap();
        match &p.body[0].kind {
            StmtKind::Assign(_, e) => assert!(matches!(e.kind, ExprKind::Dict(_))),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_inline_block() {
        let p = parse("if x: y = 1").unwrap();
        match &p.body[0].kind {
            StmtKind::If(arms, _) => assert_eq!(arms[0].1.len(), 1),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn empty_block_is_error() {
        assert!(parse("if x:\n").is_err());
    }

    #[test]
    fn unary_minus_and_not() {
        let p = parse("y = -x + 1\nz = not flag").unwrap();
        assert_eq!(p.body.len(), 2);
    }
}
