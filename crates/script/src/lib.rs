//! `aida-script`: "Pyrite", a small Python-like scripting language.
//!
//! The paper's Deep Research baselines are *CodeAgents*: LLM agents that
//! answer questions by iteratively writing and executing Python against a
//! set of tools. To reproduce that architecture faithfully — agents really
//! writing and running code, observing results, and planning the next step
//! — this crate implements the language those agents write:
//!
//! * a Python-style indentation-sensitive **lexer** ([`lexer`]),
//! * a recursive-descent **parser** ([`parser`]) producing a small AST
//!   ([`ast`]),
//! * a tree-walking **interpreter** ([`interp`]) with mutable lists/dicts,
//!   user functions, bound string/list/dict methods, and a useful builtin
//!   library (`len`, `range`, `sorted`, `sum`, `print`, …),
//! * **host-function binding** so agent tools (`list_files`, `read_file`,
//!   `run_semantic_program`, …) appear as ordinary callables, and
//! * **fuel limits** so a runaway agent program terminates deterministically
//!   instead of hanging an experiment, and
//! * a **static checker** ([`check`]) run before interpretation
//!   ([`Interpreter::run_checked`]) that rejects provably malformed
//!   programs — undefined names, unknown tools, `while True` with no
//!   exit — before the caller spends any simulated budget on them.
//!
//! The supported subset is what the simulated planners emit: assignments,
//! `if`/`elif`/`else`, `while`, `for … in`, `def`, `return`, arithmetic,
//! comparisons, boolean logic, f-string-free string handling, list/dict
//! literals, indexing, slicing-free method calls.
//!
//! # Example
//!
//! ```
//! use aida_script::{Interpreter, ScriptValue};
//!
//! let mut interp = Interpreter::new();
//! interp.bind_host_fn("double", |args| {
//!     let n = args[0].as_int()?;
//!     Ok(ScriptValue::Int(n * 2))
//! });
//! let result = interp
//!     .run("total = 0\nfor x in range(4):\n    total += double(x)\ntotal")
//!     .unwrap();
//! assert_eq!(result, ScriptValue::Int(12));
//! ```

pub mod ast;
pub mod bounds;
pub mod bytecode;
pub mod check;
pub mod error;
pub mod interp;
pub mod lexer;
pub mod parser;
pub mod types;
pub mod value;
pub mod vm;

pub use bounds::{
    analyze, Bound, CostBound, BUILTIN_NAMES, TOOL_CALL_MAX_INPUT_TOKENS,
    TOOL_CALL_MAX_OUTPUT_TOKENS,
};
pub use bytecode::{compile, compile_source, plan_content_hash, CompiledProgram};
pub use check::{CheckEnv, CheckIssue, CheckSeverity};
pub use error::ScriptError;
pub use interp::Interpreter;
pub use types::{typecheck, ToolSig, Ty, TypeEnv};
pub use value::ScriptValue;

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, ScriptError>;

/// Parses and executes a source program in a fresh interpreter with no
/// host functions, returning the value of the final expression statement
/// (or `None`).
pub fn eval(source: &str) -> Result<ScriptValue> {
    Interpreter::new().run(source)
}
