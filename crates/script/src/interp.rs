//! Tree-walking interpreter with host-function binding and fuel limits.

use crate::ast::*;
use crate::error::ScriptError;
use crate::parser::parse;
use crate::value::{ScriptValue, UserFn};
use std::collections::{BTreeMap, HashMap};
use std::rc::Rc;

/// A host function (tool) callable from scripts.
pub type HostFn = Rc<dyn Fn(&[ScriptValue]) -> Result<ScriptValue, ScriptError>>;

/// Control flow signals threaded through statement execution.
enum Flow {
    Normal,
    Break,
    Continue,
    Return(ScriptValue),
}

/// The Pyrite interpreter.
///
/// Holds global bindings, host functions, a fuel budget, and captured
/// `print` output. An interpreter can run multiple programs in sequence
/// (agent steps share one interpreter so variables persist between steps).
pub struct Interpreter {
    pub(crate) globals: HashMap<String, ScriptValue>,
    pub(crate) host_fns: HashMap<String, HostFn>,
    pub(crate) fuel: u64,
    pub(crate) fuel_limit: u64,
    pub(crate) depth: usize,
    pub(crate) output: Vec<String>,
}

impl Default for Interpreter {
    fn default() -> Self {
        Self::new()
    }
}

const DEFAULT_FUEL: u64 = 2_000_000;
pub(crate) const MAX_DEPTH: usize = 64;

impl Interpreter {
    /// Creates an interpreter with the default fuel budget.
    pub fn new() -> Self {
        Interpreter {
            globals: HashMap::new(),
            host_fns: HashMap::new(),
            fuel: DEFAULT_FUEL,
            fuel_limit: DEFAULT_FUEL,
            depth: 0,
            output: Vec::new(),
        }
    }

    /// Sets the fuel budget (an execution-step allowance refreshed by each
    /// [`run`](Interpreter::run)).
    pub fn with_fuel(mut self, fuel: u64) -> Self {
        self.fuel_limit = fuel;
        self.fuel = fuel;
        self
    }

    /// Binds a host function (tool) under a global name.
    pub fn bind_host_fn<F>(&mut self, name: &str, func: F)
    where
        F: Fn(&[ScriptValue]) -> Result<ScriptValue, ScriptError> + 'static,
    {
        self.host_fns.insert(name.to_string(), Rc::new(func));
    }

    /// Sets a global variable.
    pub fn set_global(&mut self, name: &str, value: ScriptValue) {
        self.globals.insert(name.to_string(), value);
    }

    /// Reads a global variable.
    pub fn get_global(&self, name: &str) -> Option<&ScriptValue> {
        self.globals.get(name)
    }

    /// Drains captured `print` output.
    pub fn take_output(&mut self) -> Vec<String> {
        std::mem::take(&mut self.output)
    }

    /// Fuel remaining after the most recent `run`/`run_compiled` (the
    /// budget minus every step charged). Differential tests compare this
    /// between the tree-walker and the VM.
    pub fn fuel_remaining(&self) -> u64 {
        self.fuel
    }

    /// The static-check environment this interpreter provides: its
    /// current globals and bound host functions (tools).
    pub fn check_env(&self) -> crate::check::CheckEnv {
        crate::check::CheckEnv {
            globals: self.globals.keys().cloned().collect(),
            tools: self.host_fns.keys().cloned().collect(),
        }
    }

    /// Statically checks `source` against this interpreter's environment
    /// without executing anything. Parse failures surface as a single
    /// parse-error issue so callers see one uniform issue list.
    pub fn check_source(&self, source: &str) -> Vec<crate::check::CheckIssue> {
        match parse(source) {
            Ok(program) => crate::check::check(&program, &self.check_env()),
            Err(e) => vec![crate::check::CheckIssue {
                code: "parse-error",
                severity: crate::check::CheckSeverity::Error,
                line: e.line().unwrap_or(0),
                message: e.to_string(),
            }],
        }
    }

    /// Like [`Interpreter::run`], but rejects the program with
    /// [`ScriptError::Static`] (or the parse error) before executing —
    /// and before the caller spends any budget on — a program the
    /// checker can prove malformed. Warnings do not block execution.
    pub fn run_checked(&mut self, source: &str) -> Result<ScriptValue, ScriptError> {
        let program = parse(source)?;
        let issues = crate::check::check(&program, &self.check_env());
        if let Some(err) = crate::check::first_error(&issues) {
            return Err(err);
        }
        self.run(source)
    }

    /// Parses and executes a program, returning the value of its final
    /// expression statement (`None` if the program ends with a non-
    /// expression statement). Globals persist across calls.
    pub fn run(&mut self, source: &str) -> Result<ScriptValue, ScriptError> {
        let program = parse(source)?;
        self.fuel = self.fuel_limit;
        let mut last = ScriptValue::None;
        for stmt in &program.body {
            match self.exec_with_result(stmt, &mut None)? {
                (Flow::Normal, value) => {
                    if let Some(v) = value {
                        last = v;
                    }
                }
                (Flow::Return(v), _) => return Ok(v),
                (Flow::Break, _) | (Flow::Continue, _) => {
                    return Err(ScriptError::Parse {
                        line: stmt.line,
                        col: 0,
                        message: "'break'/'continue' outside loop".into(),
                    })
                }
            }
        }
        Ok(last)
    }

    fn burn(&mut self, line: usize) -> Result<(), ScriptError> {
        let _ = line;
        if self.fuel == 0 {
            return Err(ScriptError::FuelExhausted);
        }
        self.fuel -= 1;
        Ok(())
    }

    /// Executes a statement, also reporting the value when it was an
    /// expression statement (so the program result can be its last
    /// expression).
    fn exec_with_result(
        &mut self,
        stmt: &Stmt,
        locals: &mut Option<&mut HashMap<String, ScriptValue>>,
    ) -> Result<(Flow, Option<ScriptValue>), ScriptError> {
        if let StmtKind::Expr(expr) = &stmt.kind {
            self.burn(stmt.line)?;
            let value = self.eval(expr, locals)?;
            return Ok((Flow::Normal, Some(value)));
        }
        let flow = self.exec(stmt, locals)?;
        Ok((flow, None))
    }

    fn exec(
        &mut self,
        stmt: &Stmt,
        locals: &mut Option<&mut HashMap<String, ScriptValue>>,
    ) -> Result<Flow, ScriptError> {
        self.burn(stmt.line)?;
        match &stmt.kind {
            StmtKind::Expr(expr) => {
                self.eval(expr, locals)?;
                Ok(Flow::Normal)
            }
            StmtKind::Assign(target, value) => {
                let value = self.eval(value, locals)?;
                self.assign(target, value, locals, stmt.line)?;
                Ok(Flow::Normal)
            }
            StmtKind::AugAssign(target, op, value) => {
                let rhs = self.eval(value, locals)?;
                match target {
                    Target::Name(name) => {
                        let current = self.lookup(name, locals, stmt.line)?;
                        let updated = self.binary(*op, current, rhs, stmt.line)?;
                        self.bind(name, updated, locals);
                    }
                    Target::Index(obj, key) => {
                        // Evaluate the object and key exactly once
                        // (Python semantics: `d[key()] += 1` calls key()
                        // a single time).
                        let obj_v = self.eval(obj, locals)?;
                        let key_v = self.eval(key, locals)?;
                        let current = self.index(&obj_v, &key_v, stmt.line)?;
                        let updated = self.binary(*op, current, rhs, stmt.line)?;
                        self.store_index(&obj_v, &key_v, updated, stmt.line)?;
                    }
                }
                Ok(Flow::Normal)
            }
            StmtKind::If(arms, else_body) => {
                for (cond, body) in arms {
                    if self.eval(cond, locals)?.truthy() {
                        return self.exec_block(body, locals);
                    }
                }
                if let Some(body) = else_body {
                    return self.exec_block(body, locals);
                }
                Ok(Flow::Normal)
            }
            StmtKind::While(cond, body) => {
                while self.eval(cond, locals)?.truthy() {
                    match self.exec_block(body, locals)? {
                        Flow::Break => break,
                        Flow::Return(v) => return Ok(Flow::Return(v)),
                        Flow::Normal | Flow::Continue => {}
                    }
                }
                Ok(Flow::Normal)
            }
            StmtKind::For(vars, iterable, body) => {
                let items = self.iterate(iterable, locals, stmt.line)?;
                for item in items {
                    self.bind_loop_vars(vars, item, locals, stmt.line)?;
                    match self.exec_block(body, locals)? {
                        Flow::Break => break,
                        Flow::Return(v) => return Ok(Flow::Return(v)),
                        Flow::Normal | Flow::Continue => {}
                    }
                }
                Ok(Flow::Normal)
            }
            StmtKind::Def(name, params, body) => {
                let func = ScriptValue::Func(Rc::new(UserFn {
                    name: name.clone(),
                    params: params.clone(),
                    body: body.clone(),
                }));
                self.bind(name, func, locals);
                Ok(Flow::Normal)
            }
            StmtKind::Return(value) => {
                let v = match value {
                    Some(expr) => self.eval(expr, locals)?,
                    None => ScriptValue::None,
                };
                Ok(Flow::Return(v))
            }
            StmtKind::Break => Ok(Flow::Break),
            StmtKind::Continue => Ok(Flow::Continue),
            StmtKind::Pass => Ok(Flow::Normal),
        }
    }

    fn exec_block(
        &mut self,
        body: &[Stmt],
        locals: &mut Option<&mut HashMap<String, ScriptValue>>,
    ) -> Result<Flow, ScriptError> {
        for stmt in body {
            match self.exec(stmt, locals)? {
                Flow::Normal => {}
                other => return Ok(other),
            }
        }
        Ok(Flow::Normal)
    }

    /// Binds loop targets: one name takes the element; several names
    /// unpack a list element of matching length.
    pub(crate) fn bind_loop_vars(
        &mut self,
        vars: &[String],
        item: ScriptValue,
        locals: &mut Option<&mut HashMap<String, ScriptValue>>,
        line: usize,
    ) -> Result<(), ScriptError> {
        if vars.len() == 1 {
            self.bind(&vars[0], item, locals);
            return Ok(());
        }
        let ScriptValue::List(items) = &item else {
            return Err(ScriptError::Type {
                line,
                message: format!(
                    "cannot unpack {} into {} names",
                    item.type_name(),
                    vars.len()
                ),
            });
        };
        let items = items.borrow().clone();
        if items.len() != vars.len() {
            return Err(ScriptError::Type {
                line,
                message: format!(
                    "cannot unpack {} values into {} names",
                    items.len(),
                    vars.len()
                ),
            });
        }
        for (name, value) in vars.iter().zip(items) {
            self.bind(name, value, locals);
        }
        Ok(())
    }

    fn bind(
        &mut self,
        name: &str,
        value: ScriptValue,
        locals: &mut Option<&mut HashMap<String, ScriptValue>>,
    ) {
        match locals {
            Some(frame) => {
                frame.insert(name.to_string(), value);
            }
            None => {
                self.globals.insert(name.to_string(), value);
            }
        }
    }

    pub(crate) fn lookup(
        &self,
        name: &str,
        locals: &Option<&mut HashMap<String, ScriptValue>>,
        line: usize,
    ) -> Result<ScriptValue, ScriptError> {
        if let Some(frame) = locals {
            if let Some(v) = frame.get(name) {
                return Ok(v.clone());
            }
        }
        if let Some(v) = self.globals.get(name) {
            return Ok(v.clone());
        }
        Err(ScriptError::Name {
            line,
            name: name.to_string(),
        })
    }

    fn assign(
        &mut self,
        target: &Target,
        value: ScriptValue,
        locals: &mut Option<&mut HashMap<String, ScriptValue>>,
        line: usize,
    ) -> Result<(), ScriptError> {
        match target {
            Target::Name(name) => {
                self.bind(name, value, locals);
                Ok(())
            }
            Target::Index(obj, key) => {
                let obj_v = self.eval(obj, locals)?;
                let key_v = self.eval(key, locals)?;
                self.store_index(&obj_v, &key_v, value, line)
            }
        }
    }

    /// Stores into an already-evaluated container/key pair.
    pub(crate) fn store_index(
        &mut self,
        obj_v: &ScriptValue,
        key_v: &ScriptValue,
        value: ScriptValue,
        line: usize,
    ) -> Result<(), ScriptError> {
        match (obj_v, key_v) {
            (ScriptValue::List(items), key) => {
                let idx = self.list_index(key, items.borrow().len(), line)?;
                items.borrow_mut()[idx] = value;
                Ok(())
            }
            (ScriptValue::Dict(entries), ScriptValue::Str(k)) => {
                entries.borrow_mut().insert(k.as_str().to_string(), value);
                Ok(())
            }
            _ => Err(ScriptError::Type {
                line,
                message: format!(
                    "cannot assign into {} with {} key",
                    obj_v.type_name(),
                    key_v.type_name()
                ),
            }),
        }
    }

    fn iterate(
        &mut self,
        iterable: &Expr,
        locals: &mut Option<&mut HashMap<String, ScriptValue>>,
        line: usize,
    ) -> Result<Vec<ScriptValue>, ScriptError> {
        let value = self.eval(iterable, locals)?;
        self.iter_value(value, line)
    }

    /// Materializes an already-evaluated value as an iteration vector
    /// (shared by the tree-walker and the bytecode VM so `for` semantics
    /// cannot drift).
    pub(crate) fn iter_value(
        &self,
        value: ScriptValue,
        line: usize,
    ) -> Result<Vec<ScriptValue>, ScriptError> {
        match value {
            ScriptValue::List(items) => Ok(items.borrow().clone()),
            ScriptValue::Str(s) => Ok(s.chars().map(|c| ScriptValue::str(c.to_string())).collect()),
            ScriptValue::Dict(entries) => Ok(entries
                .borrow()
                .keys()
                .map(|k| ScriptValue::str(k.clone()))
                .collect()),
            other => Err(ScriptError::Type {
                line,
                message: format!("{} is not iterable", other.type_name()),
            }),
        }
    }

    fn eval(
        &mut self,
        expr: &Expr,
        locals: &mut Option<&mut HashMap<String, ScriptValue>>,
    ) -> Result<ScriptValue, ScriptError> {
        self.burn(expr.line)?;
        match &expr.kind {
            ExprKind::Int(v) => Ok(ScriptValue::Int(*v)),
            ExprKind::Float(v) => Ok(ScriptValue::Float(*v)),
            ExprKind::Str(s) => Ok(ScriptValue::str(s.clone())),
            ExprKind::Bool(b) => Ok(ScriptValue::Bool(*b)),
            ExprKind::None => Ok(ScriptValue::None),
            ExprKind::Name(name) => self.lookup(name, locals, expr.line),
            ExprKind::List(items) => {
                let values = items
                    .iter()
                    .map(|e| self.eval(e, locals))
                    .collect::<Result<Vec<_>, _>>()?;
                Ok(ScriptValue::list(values))
            }
            ExprKind::Dict(pairs) => {
                let mut map = BTreeMap::new();
                for (k, v) in pairs {
                    let key = self.eval(k, locals)?;
                    let key = key.as_str().map_err(|_| ScriptError::Type {
                        line: expr.line,
                        message: "dict keys must be strings".into(),
                    })?;
                    let value = self.eval(v, locals)?;
                    map.insert(key.to_string(), value);
                }
                Ok(ScriptValue::dict(map))
            }
            ExprKind::Binary(BinOp::And, lhs, rhs) => {
                let l = self.eval(lhs, locals)?;
                if !l.truthy() {
                    return Ok(l);
                }
                self.eval(rhs, locals)
            }
            ExprKind::Binary(BinOp::Or, lhs, rhs) => {
                let l = self.eval(lhs, locals)?;
                if l.truthy() {
                    return Ok(l);
                }
                self.eval(rhs, locals)
            }
            ExprKind::Binary(op, lhs, rhs) => {
                let l = self.eval(lhs, locals)?;
                let r = self.eval(rhs, locals)?;
                self.binary(*op, l, r, expr.line)
            }
            ExprKind::Unary(UnaryOp::Neg, operand) => match self.eval(operand, locals)? {
                ScriptValue::Int(i) => Ok(ScriptValue::Int(-i)),
                ScriptValue::Float(f) => Ok(ScriptValue::Float(-f)),
                other => Err(ScriptError::Type {
                    line: expr.line,
                    message: format!("cannot negate {}", other.type_name()),
                }),
            },
            ExprKind::Unary(UnaryOp::Not, operand) => {
                Ok(ScriptValue::Bool(!self.eval(operand, locals)?.truthy()))
            }
            ExprKind::Call(callee, args) => {
                let arg_values = args
                    .iter()
                    .map(|a| self.eval(a, locals))
                    .collect::<Result<Vec<_>, _>>()?;
                // Named callees may resolve to builtins or host functions.
                if let ExprKind::Name(name) = &callee.kind {
                    let locally_shadowed = locals
                        .as_ref()
                        .is_some_and(|f| f.contains_key(name.as_str()))
                        || self.globals.contains_key(name.as_str());
                    if !locally_shadowed {
                        if let Some(host) = self.host_fns.get(name.as_str()).cloned() {
                            return host(&arg_values);
                        }
                        if let Some(result) = self.call_builtin(name, &arg_values, expr.line)? {
                            return Ok(result);
                        }
                    }
                }
                let func = self.eval(callee, locals)?;
                self.call_value(func, &arg_values, expr.line)
            }
            ExprKind::MethodCall(obj, method, args) => {
                let obj_v = self.eval(obj, locals)?;
                let arg_values = args
                    .iter()
                    .map(|a| self.eval(a, locals))
                    .collect::<Result<Vec<_>, _>>()?;
                self.call_method(&obj_v, method, &arg_values, expr.line)
            }
            ExprKind::Index(obj, key) => {
                let obj_v = self.eval(obj, locals)?;
                let key_v = self.eval(key, locals)?;
                self.index(&obj_v, &key_v, expr.line)
            }
            ExprKind::ListComp {
                element,
                vars,
                iterable,
                condition,
            } => {
                let items = self.iterate(iterable, locals, expr.line)?;
                let mut out = Vec::with_capacity(items.len());
                for item in items {
                    self.burn(expr.line)?;
                    self.bind_loop_vars(vars, item, locals, expr.line)?;
                    if let Some(cond) = condition {
                        if !self.eval(cond, locals)?.truthy() {
                            continue;
                        }
                    }
                    out.push(self.eval(element, locals)?);
                }
                Ok(ScriptValue::list(out))
            }
            ExprKind::Slice(obj, lo, hi) => {
                let obj_v = self.eval(obj, locals)?;
                let lo_v = self.slice_bound(lo, locals, expr.line)?;
                let hi_v = self.slice_bound(hi, locals, expr.line)?;
                self.slice(&obj_v, lo_v, hi_v, expr.line)
            }
        }
    }

    /// Evaluates an optional slice bound to an int (`None` bound stays
    /// `None`; a non-int bound is a type error).
    fn slice_bound(
        &mut self,
        bound: &Option<Box<Expr>>,
        locals: &mut Option<&mut HashMap<String, ScriptValue>>,
        line: usize,
    ) -> Result<Option<i64>, ScriptError> {
        match bound {
            Some(e) => Ok(Some(self.eval(e, locals)?.as_int().map_err(|_| {
                ScriptError::Type {
                    line,
                    message: "slice bounds must be ints".into(),
                }
            })?)),
            None => Ok(None),
        }
    }

    pub(crate) fn call_value(
        &mut self,
        func: ScriptValue,
        args: &[ScriptValue],
        line: usize,
    ) -> Result<ScriptValue, ScriptError> {
        let ScriptValue::Func(user) = func else {
            return Err(ScriptError::Type {
                line,
                message: format!("{} is not callable", func.type_name()),
            });
        };
        if user.params.len() != args.len() {
            return Err(ScriptError::Type {
                line,
                message: format!(
                    "{}() takes {} arguments but {} were given",
                    user.name,
                    user.params.len(),
                    args.len()
                ),
            });
        }
        if self.depth >= MAX_DEPTH {
            return Err(ScriptError::RecursionLimit);
        }
        self.depth += 1;
        let mut frame: HashMap<String, ScriptValue> = user
            .params
            .iter()
            .cloned()
            .zip(args.iter().cloned())
            .collect();
        let mut frame_opt = Some(&mut frame);
        let mut result = ScriptValue::None;
        for stmt in &user.body {
            match self.exec(stmt, &mut frame_opt) {
                Ok(Flow::Return(v)) => {
                    result = v;
                    break;
                }
                Ok(Flow::Break) | Ok(Flow::Continue) => {
                    self.depth -= 1;
                    return Err(ScriptError::Parse {
                        line: stmt.line,
                        col: 0,
                        message: "'break'/'continue' outside loop".into(),
                    });
                }
                Ok(Flow::Normal) => {}
                Err(e) => {
                    self.depth -= 1;
                    return Err(e);
                }
            }
        }
        self.depth -= 1;
        Ok(result)
    }

    pub(crate) fn list_index(
        &self,
        key: &ScriptValue,
        len: usize,
        line: usize,
    ) -> Result<usize, ScriptError> {
        let i = key.as_int().map_err(|_| ScriptError::Type {
            line,
            message: format!("list indices must be ints, not {}", key.type_name()),
        })?;
        let idx = if i < 0 { i + len as i64 } else { i };
        if idx < 0 || idx as usize >= len {
            return Err(ScriptError::Index {
                line,
                message: format!("list index {i} out of range (len {len})"),
            });
        }
        Ok(idx as usize)
    }

    pub(crate) fn index(
        &self,
        obj: &ScriptValue,
        key: &ScriptValue,
        line: usize,
    ) -> Result<ScriptValue, ScriptError> {
        match obj {
            ScriptValue::List(items) => {
                let idx = self.list_index(key, items.borrow().len(), line)?;
                Ok(items.borrow()[idx].clone())
            }
            ScriptValue::Str(s) => {
                let chars: Vec<char> = s.chars().collect();
                let idx = self.list_index(key, chars.len(), line)?;
                Ok(ScriptValue::str(chars[idx].to_string()))
            }
            ScriptValue::Dict(entries) => {
                let k = key.as_str().map_err(|_| ScriptError::Type {
                    line,
                    message: "dict keys must be strings".into(),
                })?;
                entries
                    .borrow()
                    .get(k)
                    .cloned()
                    .ok_or_else(|| ScriptError::Index {
                        line,
                        message: format!("key '{k}' not found"),
                    })
            }
            other => Err(ScriptError::Type {
                line,
                message: format!("{} is not subscriptable", other.type_name()),
            }),
        }
    }

    pub(crate) fn slice(
        &self,
        obj: &ScriptValue,
        lo: Option<i64>,
        hi: Option<i64>,
        line: usize,
    ) -> Result<ScriptValue, ScriptError> {
        fn bounds(lo: Option<i64>, hi: Option<i64>, len: usize) -> (usize, usize) {
            let resolve = |v: i64| -> usize {
                let idx = if v < 0 { v + len as i64 } else { v };
                idx.clamp(0, len as i64) as usize
            };
            let start = lo.map_or(0, resolve);
            let end = hi.map_or(len, resolve);
            (start, end.max(start))
        }
        match obj {
            ScriptValue::List(items) => {
                let items = items.borrow();
                let (start, end) = bounds(lo, hi, items.len());
                Ok(ScriptValue::list(items[start..end].to_vec()))
            }
            ScriptValue::Str(s) => {
                let chars: Vec<char> = s.chars().collect();
                let (start, end) = bounds(lo, hi, chars.len());
                Ok(ScriptValue::str(
                    chars[start..end].iter().collect::<String>(),
                ))
            }
            other => Err(ScriptError::Type {
                line,
                message: format!("{} cannot be sliced", other.type_name()),
            }),
        }
    }

    pub(crate) fn binary(
        &self,
        op: BinOp,
        l: ScriptValue,
        r: ScriptValue,
        line: usize,
    ) -> Result<ScriptValue, ScriptError> {
        use ScriptValue as V;
        let type_err = |msg: String| ScriptError::Type { line, message: msg };
        match op {
            BinOp::Add => match (&l, &r) {
                (V::Int(a), V::Int(b)) => Ok(V::Int(a + b)),
                (V::Str(a), V::Str(b)) => Ok(V::str(format!("{a}{b}"))),
                (V::List(a), V::List(b)) => {
                    let mut items = a.borrow().clone();
                    items.extend(b.borrow().iter().cloned());
                    Ok(V::list(items))
                }
                _ => both_floats(&l, &r)
                    .map(|(a, b)| V::Float(a + b))
                    .ok_or_else(|| {
                        type_err(format!(
                            "cannot add {} and {}",
                            l.type_name(),
                            r.type_name()
                        ))
                    }),
            },
            BinOp::Sub => num_op(&l, &r, line, |a, b| a - b, |a, b| a.checked_sub(b)),
            BinOp::Mul => match (&l, &r) {
                (V::Str(s), V::Int(n)) | (V::Int(n), V::Str(s)) => {
                    Ok(V::str(s.repeat((*n).max(0) as usize)))
                }
                _ => num_op(&l, &r, line, |a, b| a * b, |a, b| a.checked_mul(b)),
            },
            BinOp::Div => {
                let (a, b) = both_floats(&l, &r).ok_or_else(|| {
                    type_err(format!(
                        "cannot divide {} by {}",
                        l.type_name(),
                        r.type_name()
                    ))
                })?;
                if b == 0.0 {
                    return Err(ScriptError::Arithmetic {
                        line,
                        message: "division by zero".into(),
                    });
                }
                Ok(V::Float(a / b))
            }
            BinOp::FloorDiv => match (&l, &r) {
                (V::Int(a), V::Int(b)) => {
                    if *b == 0 {
                        Err(ScriptError::Arithmetic {
                            line,
                            message: "division by zero".into(),
                        })
                    } else {
                        Ok(V::Int(a.div_euclid(*b)))
                    }
                }
                _ => {
                    let (a, b) =
                        both_floats(&l, &r).ok_or_else(|| type_err("'//' needs numbers".into()))?;
                    if b == 0.0 {
                        Err(ScriptError::Arithmetic {
                            line,
                            message: "division by zero".into(),
                        })
                    } else {
                        Ok(V::Float((a / b).floor()))
                    }
                }
            },
            BinOp::Mod => match (&l, &r) {
                (V::Int(a), V::Int(b)) => {
                    if *b == 0 {
                        Err(ScriptError::Arithmetic {
                            line,
                            message: "modulo by zero".into(),
                        })
                    } else {
                        Ok(V::Int(a.rem_euclid(*b)))
                    }
                }
                _ => Err(type_err("'%' needs ints".into())),
            },
            BinOp::Eq => Ok(V::Bool(l.eq_value(&r))),
            BinOp::NotEq => Ok(V::Bool(!l.eq_value(&r))),
            BinOp::Lt | BinOp::LtEq | BinOp::Gt | BinOp::GtEq => {
                let ord = compare(&l, &r).ok_or_else(|| {
                    type_err(format!(
                        "cannot compare {} and {}",
                        l.type_name(),
                        r.type_name()
                    ))
                })?;
                Ok(V::Bool(match op {
                    BinOp::Lt => ord.is_lt(),
                    BinOp::LtEq => ord.is_le(),
                    BinOp::Gt => ord.is_gt(),
                    _ => ord.is_ge(),
                }))
            }
            BinOp::In | BinOp::NotIn => {
                let contains = match (&l, &r) {
                    (V::Str(needle), V::Str(hay)) => hay.contains(needle.as_str()),
                    (item, V::List(items)) => items.borrow().iter().any(|x| x.eq_value(item)),
                    (V::Str(key), V::Dict(entries)) => entries.borrow().contains_key(key.as_str()),
                    _ => {
                        return Err(type_err(format!(
                            "'in' not supported between {} and {}",
                            l.type_name(),
                            r.type_name()
                        )))
                    }
                };
                Ok(V::Bool(contains == (op == BinOp::In)))
            }
            BinOp::And | BinOp::Or => unreachable!("short-circuit handled in eval"),
        }
    }

    /// Builtin dispatch, split by group: scalar conversions, sequence
    /// reducers, and the two effectful builtins kept here. `Ok(None)`
    /// means "not a builtin" and the caller resolves the name normally.
    pub(crate) fn call_builtin(
        &mut self,
        name: &str,
        args: &[ScriptValue],
        line: usize,
    ) -> Result<Option<ScriptValue>, ScriptError> {
        use ScriptValue as V;
        let arity_err = |want: &str| ScriptError::Type {
            line,
            message: format!("{name}() expects {want} argument(s), got {}", args.len()),
        };
        let result = match name {
            "len" | "str" | "int" | "float" | "bool" | "abs" | "round" => {
                self.builtin_scalar(name, args, line)?
            }
            "sum" | "min" | "max" | "sorted" | "enumerate" => {
                self.builtin_sequence(name, args, line)?
            }
            "range" => {
                let (start, stop, step) = match args {
                    [stop] => (0, stop.as_int().map_err(|_| arity_err("int"))?, 1),
                    [start, stop] => (
                        start.as_int().map_err(|_| arity_err("int"))?,
                        stop.as_int().map_err(|_| arity_err("int"))?,
                        1,
                    ),
                    [start, stop, step] => (
                        start.as_int().map_err(|_| arity_err("int"))?,
                        stop.as_int().map_err(|_| arity_err("int"))?,
                        step.as_int().map_err(|_| arity_err("int"))?,
                    ),
                    _ => return Err(arity_err("1-3")),
                };
                if step == 0 {
                    return Err(ScriptError::Arithmetic {
                        line,
                        message: "range() step cannot be zero".into(),
                    });
                }
                let mut items = Vec::new();
                let mut i = start;
                while (step > 0 && i < stop) || (step < 0 && i > stop) {
                    items.push(V::Int(i));
                    i += step;
                    if items.len() as u64 > self.fuel {
                        return Err(ScriptError::FuelExhausted);
                    }
                }
                V::list(items)
            }
            "print" => {
                let text = args
                    .iter()
                    .map(|v| v.to_string())
                    .collect::<Vec<_>>()
                    .join(" ");
                self.output.push(text);
                V::None
            }
            _ => return Ok(None),
        };
        Ok(Some(result))
    }

    /// Scalar-conversion builtins: `len`, `str`, `int`, `float`,
    /// `bool`, `abs`, `round`.
    fn builtin_scalar(
        &mut self,
        name: &str,
        args: &[ScriptValue],
        line: usize,
    ) -> Result<ScriptValue, ScriptError> {
        use ScriptValue as V;
        let arity_err = |want: &str| ScriptError::Type {
            line,
            message: format!("{name}() expects {want} argument(s), got {}", args.len()),
        };
        let result = match name {
            "len" => {
                let [v] = args else {
                    return Err(arity_err("1"));
                };
                let n = match v {
                    V::Str(s) => s.chars().count(),
                    V::List(items) => items.borrow().len(),
                    V::Dict(entries) => entries.borrow().len(),
                    other => {
                        return Err(ScriptError::Type {
                            line,
                            message: format!("len() of {}", other.type_name()),
                        })
                    }
                };
                V::Int(n as i64)
            }
            "str" => {
                let [v] = args else {
                    return Err(arity_err("1"));
                };
                V::str(v.to_string())
            }
            "int" => {
                let [v] = args else {
                    return Err(arity_err("1"));
                };
                match v {
                    V::Int(i) => V::Int(*i),
                    V::Float(f) => V::Int(*f as i64),
                    V::Bool(b) => V::Int(i64::from(*b)),
                    V::Str(s) => {
                        let cleaned: String = s.trim().chars().filter(|c| *c != ',').collect();
                        match cleaned.parse::<i64>() {
                            Ok(i) => V::Int(i),
                            Err(_) => match cleaned.parse::<f64>() {
                                Ok(f) => V::Int(f as i64),
                                Err(_) => {
                                    return Err(ScriptError::Type {
                                        line,
                                        message: format!("int() cannot parse '{s}'"),
                                    })
                                }
                            },
                        }
                    }
                    other => {
                        return Err(ScriptError::Type {
                            line,
                            message: format!("int() of {}", other.type_name()),
                        })
                    }
                }
            }
            "float" => {
                let [v] = args else {
                    return Err(arity_err("1"));
                };
                match v {
                    V::Str(s) => {
                        let cleaned: String = s.trim().chars().filter(|c| *c != ',').collect();
                        match cleaned.parse::<f64>() {
                            Ok(f) => V::Float(f),
                            Err(_) => {
                                return Err(ScriptError::Type {
                                    line,
                                    message: format!("float() cannot parse '{s}'"),
                                })
                            }
                        }
                    }
                    other => V::Float(other.as_float().map_err(|_| ScriptError::Type {
                        line,
                        message: format!("float() of {}", other.type_name()),
                    })?),
                }
            }
            "bool" => {
                let [v] = args else {
                    return Err(arity_err("1"));
                };
                V::Bool(v.truthy())
            }
            "abs" => {
                let [v] = args else {
                    return Err(arity_err("1"));
                };
                match v {
                    V::Int(i) => V::Int(i.abs()),
                    V::Float(f) => V::Float(f.abs()),
                    other => {
                        return Err(ScriptError::Type {
                            line,
                            message: format!("abs() of {}", other.type_name()),
                        })
                    }
                }
            }
            "round" => match args {
                [v] => V::Int(v.as_float().map_err(|_| arity_err("numeric"))?.round() as i64),
                [v, digits] => {
                    let f = v.as_float().map_err(|_| arity_err("numeric"))?;
                    let d = digits.as_int().map_err(|_| arity_err("numeric"))?;
                    let scale = 10f64.powi(d as i32);
                    V::Float((f * scale).round() / scale)
                }
                _ => return Err(arity_err("1 or 2")),
            },
            _ => unreachable!("call_builtin gates the scalar builtin names"),
        };
        Ok(result)
    }

    /// Sequence-reducing builtins: `sum`, `min`, `max`, `sorted`,
    /// `enumerate`.
    fn builtin_sequence(
        &mut self,
        name: &str,
        args: &[ScriptValue],
        line: usize,
    ) -> Result<ScriptValue, ScriptError> {
        use ScriptValue as V;
        let arity_err = |want: &str| ScriptError::Type {
            line,
            message: format!("{name}() expects {want} argument(s), got {}", args.len()),
        };
        let result = match name {
            "sum" => {
                let [v] = args else {
                    return Err(arity_err("1"));
                };
                let V::List(items) = v else {
                    return Err(ScriptError::Type {
                        line,
                        message: "sum() needs a list".into(),
                    });
                };
                let mut int_sum = 0i64;
                let mut float_sum = 0f64;
                let mut is_float = false;
                for item in items.borrow().iter() {
                    match item {
                        V::Int(i) => {
                            int_sum += i;
                            float_sum += *i as f64;
                        }
                        V::Float(f) => {
                            is_float = true;
                            float_sum += f;
                        }
                        other => {
                            return Err(ScriptError::Type {
                                line,
                                message: format!("sum() of list containing {}", other.type_name()),
                            })
                        }
                    }
                }
                if is_float {
                    V::Float(float_sum)
                } else {
                    V::Int(int_sum)
                }
            }
            "min" | "max" => {
                let items: Vec<ScriptValue> = match args {
                    [V::List(items)] => items.borrow().clone(),
                    _ if args.len() >= 2 => args.to_vec(),
                    _ => {
                        return Err(ScriptError::Type {
                            line,
                            message: format!("{name}() needs a list or 2+ arguments"),
                        })
                    }
                };
                if items.is_empty() {
                    return Err(ScriptError::Type {
                        line,
                        message: format!("{name}() of empty sequence"),
                    });
                }
                let mut best = items[0].clone();
                for item in &items[1..] {
                    let ord = compare(item, &best).ok_or_else(|| ScriptError::Type {
                        line,
                        message: "incomparable values".into(),
                    })?;
                    let take = if name == "min" {
                        ord.is_lt()
                    } else {
                        ord.is_gt()
                    };
                    if take {
                        best = item.clone();
                    }
                }
                best
            }
            "sorted" => {
                let [v] = args else {
                    return Err(arity_err("1"));
                };
                let V::List(items) = v else {
                    return Err(ScriptError::Type {
                        line,
                        message: "sorted() needs a list".into(),
                    });
                };
                let mut sorted = items.borrow().clone();
                let mut failed = false;
                sorted.sort_by(|a, b| {
                    compare(a, b).unwrap_or_else(|| {
                        failed = true;
                        std::cmp::Ordering::Equal
                    })
                });
                if failed {
                    return Err(ScriptError::Type {
                        line,
                        message: "sorted() of incomparable values".into(),
                    });
                }
                V::list(sorted)
            }
            "enumerate" => {
                let [v] = args else {
                    return Err(arity_err("1"));
                };
                let V::List(items) = v else {
                    return Err(ScriptError::Type {
                        line,
                        message: "enumerate() needs a list".into(),
                    });
                };
                V::list(
                    items
                        .borrow()
                        .iter()
                        .enumerate()
                        .map(|(i, item)| V::list(vec![V::Int(i as i64), item.clone()]))
                        .collect(),
                )
            }
            _ => unreachable!("call_builtin gates the sequence builtin names"),
        };
        Ok(result)
    }

    pub(crate) fn call_method(
        &mut self,
        obj: &ScriptValue,
        method: &str,
        args: &[ScriptValue],
        line: usize,
    ) -> Result<ScriptValue, ScriptError> {
        use ScriptValue as V;
        let err = |msg: String| ScriptError::Type { line, message: msg };
        match obj {
            V::Str(s) => self.str_method(s, method, args, line),
            V::List(items) => match (method, args) {
                ("append", [v]) => {
                    items.borrow_mut().push(v.clone());
                    Ok(V::None)
                }
                ("extend", [V::List(other)]) => {
                    let extra = other.borrow().clone();
                    items.borrow_mut().extend(extra);
                    Ok(V::None)
                }
                ("pop", []) => items.borrow_mut().pop().ok_or_else(|| ScriptError::Index {
                    line,
                    message: "pop from empty list".into(),
                }),
                ("pop", [idx]) => {
                    let len = items.borrow().len();
                    let i = self.list_index(idx, len, line)?;
                    Ok(items.borrow_mut().remove(i))
                }
                ("sort", []) => {
                    let mut failed = false;
                    items.borrow_mut().sort_by(|a, b| {
                        compare(a, b).unwrap_or_else(|| {
                            failed = true;
                            std::cmp::Ordering::Equal
                        })
                    });
                    if failed {
                        Err(err("sort() of incomparable values".into()))
                    } else {
                        Ok(V::None)
                    }
                }
                ("reverse", []) => {
                    items.borrow_mut().reverse();
                    Ok(V::None)
                }
                ("index", [v]) => {
                    let pos = items.borrow().iter().position(|x| x.eq_value(v));
                    match pos {
                        Some(i) => Ok(V::Int(i as i64)),
                        None => Err(ScriptError::Index {
                            line,
                            message: format!("{} is not in list", v.repr()),
                        }),
                    }
                }
                ("count", [v]) => Ok(V::Int(
                    items.borrow().iter().filter(|x| x.eq_value(v)).count() as i64,
                )),
                _ => Err(err(format!("list has no method {method}/{}", args.len()))),
            },
            V::Dict(entries) => match (method, args) {
                ("get", [k]) => {
                    let key = k
                        .as_str()
                        .map_err(|_| err("dict keys are strings".into()))?;
                    Ok(entries.borrow().get(key).cloned().unwrap_or(V::None))
                }
                ("get", [k, default]) => {
                    let key = k
                        .as_str()
                        .map_err(|_| err("dict keys are strings".into()))?;
                    Ok(entries
                        .borrow()
                        .get(key)
                        .cloned()
                        .unwrap_or_else(|| default.clone()))
                }
                ("keys", []) => Ok(V::list(
                    entries.borrow().keys().map(|k| V::str(k.clone())).collect(),
                )),
                ("values", []) => Ok(V::list(entries.borrow().values().cloned().collect())),
                ("items", []) => Ok(V::list(
                    entries
                        .borrow()
                        .iter()
                        .map(|(k, v)| V::list(vec![V::str(k.clone()), v.clone()]))
                        .collect(),
                )),
                _ => Err(err(format!("dict has no method {method}/{}", args.len()))),
            },
            other => Err(err(format!("{} has no methods", other.type_name()))),
        }
    }

    fn str_method(
        &mut self,
        s: &Rc<String>,
        method: &str,
        args: &[ScriptValue],
        line: usize,
    ) -> Result<ScriptValue, ScriptError> {
        use ScriptValue as V;
        let err = |msg: String| ScriptError::Type { line, message: msg };
        match (method, args) {
            ("lower", []) => Ok(V::str(s.to_lowercase())),
            ("upper", []) => Ok(V::str(s.to_uppercase())),
            ("strip", []) => Ok(V::str(s.trim().to_string())),
            ("split", []) => Ok(V::list(
                s.split_whitespace()
                    .map(|p| V::str(p.to_string()))
                    .collect(),
            )),
            ("split", [sep]) => {
                let sep = sep
                    .as_str()
                    .map_err(|_| err("split() separator must be str".into()))?;
                Ok(V::list(
                    s.split(sep).map(|p| V::str(p.to_string())).collect(),
                ))
            }
            ("splitlines", []) => Ok(V::list(s.lines().map(|p| V::str(p.to_string())).collect())),
            ("isdigit", []) => Ok(V::Bool(
                !s.is_empty() && s.chars().all(|c| c.is_ascii_digit()),
            )),
            ("startswith", [prefix]) => {
                let p = prefix
                    .as_str()
                    .map_err(|_| err("startswith() needs str".into()))?;
                Ok(V::Bool(s.starts_with(p)))
            }
            ("endswith", [suffix]) => {
                let p = suffix
                    .as_str()
                    .map_err(|_| err("endswith() needs str".into()))?;
                Ok(V::Bool(s.ends_with(p)))
            }
            ("replace", [from, to]) => {
                let f = from
                    .as_str()
                    .map_err(|_| err("replace() needs strs".into()))?;
                let t = to
                    .as_str()
                    .map_err(|_| err("replace() needs strs".into()))?;
                Ok(V::str(s.replace(f, t)))
            }
            ("find", [needle]) => {
                let n = needle
                    .as_str()
                    .map_err(|_| err("find() needs str".into()))?;
                match s.find(n) {
                    Some(byte_pos) => Ok(V::Int(s[..byte_pos].chars().count() as i64)),
                    None => Ok(V::Int(-1)),
                }
            }
            ("count", [needle]) => {
                let n = needle
                    .as_str()
                    .map_err(|_| err("count() needs str".into()))?;
                if n.is_empty() {
                    return Ok(V::Int(s.chars().count() as i64 + 1));
                }
                Ok(V::Int(s.matches(n).count() as i64))
            }
            ("join", [V::List(items)]) => {
                let parts: Result<Vec<String>, ScriptError> = items
                    .borrow()
                    .iter()
                    .map(|v| v.as_str().map(str::to_string))
                    .collect();
                Ok(V::str(
                    parts
                        .map_err(|_| err("join() needs a list of strs".into()))?
                        .join(s),
                ))
            }
            _ => Err(err(format!("str has no method {method}/{}", args.len()))),
        }
    }
}

fn both_floats(l: &ScriptValue, r: &ScriptValue) -> Option<(f64, f64)> {
    let a = match l {
        ScriptValue::Int(i) => *i as f64,
        ScriptValue::Float(f) => *f,
        _ => return None,
    };
    let b = match r {
        ScriptValue::Int(i) => *i as f64,
        ScriptValue::Float(f) => *f,
        _ => return None,
    };
    Some((a, b))
}

fn num_op(
    l: &ScriptValue,
    r: &ScriptValue,
    line: usize,
    float_op: impl Fn(f64, f64) -> f64,
    int_op: impl Fn(i64, i64) -> Option<i64>,
) -> Result<ScriptValue, ScriptError> {
    match (l, r) {
        (ScriptValue::Int(a), ScriptValue::Int(b)) => {
            int_op(*a, *b)
                .map(ScriptValue::Int)
                .ok_or(ScriptError::Arithmetic {
                    line,
                    message: "integer overflow".into(),
                })
        }
        _ => both_floats(l, r)
            .map(|(a, b)| ScriptValue::Float(float_op(a, b)))
            .ok_or(ScriptError::Type {
                line,
                message: format!(
                    "unsupported operand types: {} and {}",
                    l.type_name(),
                    r.type_name()
                ),
            }),
    }
}

fn compare(l: &ScriptValue, r: &ScriptValue) -> Option<std::cmp::Ordering> {
    use ScriptValue as V;
    match (l, r) {
        (V::Str(a), V::Str(b)) => Some(a.cmp(b)),
        (V::Bool(a), V::Bool(b)) => Some(a.cmp(b)),
        (V::List(a), V::List(b)) => {
            let (a, b) = (a.borrow(), b.borrow());
            for (x, y) in a.iter().zip(b.iter()) {
                match compare(x, y)? {
                    std::cmp::Ordering::Equal => continue,
                    other => return Some(other),
                }
            }
            Some(a.len().cmp(&b.len()))
        }
        _ => {
            let (a, b) = both_floats(l, r)?;
            a.partial_cmp(&b)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ScriptValue as V;

    fn run(src: &str) -> ScriptValue {
        Interpreter::new().run(src).unwrap()
    }

    fn run_err(src: &str) -> ScriptError {
        Interpreter::new().run(src).unwrap_err()
    }

    #[test]
    fn arithmetic_and_precedence() {
        assert_eq!(run("1 + 2 * 3"), V::Int(7));
        assert_eq!(run("(1 + 2) * 3"), V::Int(9));
        assert_eq!(run("7 // 2"), V::Int(3));
        assert_eq!(run("7 % 3"), V::Int(1));
        assert_eq!(run("7 / 2"), V::Float(3.5));
        assert_eq!(run("-3 + 1"), V::Int(-2));
        assert_eq!(run("2.5 * 2"), V::Float(5.0));
    }

    #[test]
    fn division_by_zero() {
        assert!(matches!(run_err("1 / 0"), ScriptError::Arithmetic { .. }));
        assert!(matches!(run_err("1 // 0"), ScriptError::Arithmetic { .. }));
        assert!(matches!(run_err("1 % 0"), ScriptError::Arithmetic { .. }));
    }

    #[test]
    fn variables_and_aug_assign() {
        assert_eq!(run("x = 10\nx += 5\nx -= 3\nx"), V::Int(12));
    }

    #[test]
    fn undefined_name_errors() {
        assert!(matches!(run_err("y + 1"), ScriptError::Name { .. }));
    }

    #[test]
    fn string_operations() {
        assert_eq!(run("'ab' + 'cd'"), V::str("abcd"));
        assert_eq!(run("'ab' * 3"), V::str("ababab"));
        assert_eq!(run("'Hello'.lower()"), V::str("hello"));
        assert_eq!(run("'  x  '.strip()"), V::str("x"));
        assert_eq!(run("'a,b,c'.split(',')[1]"), V::str("b"));
        assert_eq!(run("'abc'.find('c')"), V::Int(2));
        assert_eq!(run("'abc'.find('z')"), V::Int(-1));
        assert_eq!(run("'-'.join(['a', 'b'])"), V::str("a-b"));
        assert_eq!(run("'theft' in 'identity theft reports'"), V::Bool(true));
        assert_eq!(run("'x' not in 'abc'"), V::Bool(true));
        assert_eq!(run("'a.b'.replace('.', '_')"), V::str("a_b"));
        assert_eq!(run("'aaa'.count('a')"), V::Int(3));
        assert_eq!(run("'line1\\nline2'.splitlines()[1]"), V::str("line2"));
        assert_eq!(run("'123'.isdigit()"), V::Bool(true));
        assert_eq!(run("'12a'.isdigit()"), V::Bool(false));
        assert_eq!(run("''.isdigit()"), V::Bool(false));
    }

    #[test]
    fn list_operations() {
        assert_eq!(run("xs = [1, 2]\nxs.append(3)\nlen(xs)"), V::Int(3));
        assert_eq!(
            run("[1, 2] + [3]"),
            V::list(vec![V::Int(1), V::Int(2), V::Int(3)])
        );
        assert_eq!(run("xs = [3, 1, 2]\nxs.sort()\nxs[0]"), V::Int(1));
        assert_eq!(run("xs = [1, 2, 3]\nxs[-1]"), V::Int(3));
        assert_eq!(
            run("xs = [1, 2, 3]\nxs[1:]"),
            V::list(vec![V::Int(2), V::Int(3)])
        );
        assert_eq!(run("[10, 20].index(20)"), V::Int(1));
        assert_eq!(run("2 in [1, 2]"), V::Bool(true));
        assert_eq!(run("xs = [1]\nxs.extend([2, 3])\nsum(xs)"), V::Int(6));
        assert_eq!(run("xs = [5, 6]\nxs.pop()"), V::Int(6));
        assert_eq!(run("xs = [5, 6, 7]\nxs.pop(0)\nxs[0]"), V::Int(6));
    }

    #[test]
    fn index_out_of_range() {
        assert!(matches!(run_err("[1][5]"), ScriptError::Index { .. }));
        assert!(matches!(run_err("[1][-2]"), ScriptError::Index { .. }));
    }

    #[test]
    fn dict_operations() {
        assert_eq!(run("d = {'a': 1}\nd['a']"), V::Int(1));
        assert_eq!(run("d = {'a': 1}\nd['b'] = 2\nlen(d)"), V::Int(2));
        assert_eq!(run("d = {'a': 1}\nd.get('zz')"), V::None);
        assert_eq!(run("d = {'a': 1}\nd.get('zz', 9)"), V::Int(9));
        assert_eq!(run("d = {'b': 1, 'a': 2}\nd.keys()[0]"), V::str("a"));
        assert_eq!(run("'a' in {'a': 1}"), V::Bool(true));
        assert!(matches!(
            run_err("d = {}\nd['missing']"),
            ScriptError::Index { .. }
        ));
    }

    #[test]
    fn if_elif_else() {
        let src = "def grade(x):\n    if x > 2:\n        return 'big'\n    elif x > 0:\n        return 'small'\n    else:\n        return 'neg'\ngrade(3) + grade(1) + grade(-1)";
        assert_eq!(run(src), V::str("bigsmallneg"));
    }

    #[test]
    fn while_with_break_continue() {
        let src = "total = 0\ni = 0\nwhile True:\n    i += 1\n    if i > 10:\n        break\n    if i % 2 == 0:\n        continue\n    total += i\ntotal";
        assert_eq!(run(src), V::Int(25));
    }

    #[test]
    fn for_over_range_and_list() {
        assert_eq!(run("t = 0\nfor i in range(5):\n    t += i\nt"), V::Int(10));
        assert_eq!(run("t = 0\nfor x in [2, 4]:\n    t += x\nt"), V::Int(6));
        assert_eq!(
            run("out = ''\nfor c in 'ab':\n    out += c + '.'\nout"),
            V::str("a.b.")
        );
        assert_eq!(
            run("t = 0\nfor i in range(10, 0, -2):\n    t += i\nt"),
            V::Int(30)
        );
    }

    #[test]
    fn aug_assign_evaluates_index_once() {
        // Python semantics: the subscript expression runs exactly once.
        let src = "xs = [0]\ndef key():\n    xs.append(1)\n    return 'k'\nd = {'k': 0}\nd[key()] += 1\nlen(xs)";
        assert_eq!(run(src), V::Int(2));
        // And the update itself lands.
        let src2 = "d = {'k': 5}\nd['k'] += 2\nd['k']";
        assert_eq!(run(src2), V::Int(7));
    }

    #[test]
    fn list_comprehensions() {
        assert_eq!(
            run("[x * 2 for x in [1, 2, 3]]"),
            V::list(vec![V::Int(2), V::Int(4), V::Int(6)])
        );
        assert_eq!(
            run("[x for x in range(10) if x % 3 == 0]"),
            V::list(vec![V::Int(0), V::Int(3), V::Int(6), V::Int(9)])
        );
        // Unpacking targets work in comprehensions too.
        assert_eq!(
            run("[k + str(v) for k, v in {'a': 1, 'b': 2}.items()]"),
            V::list(vec![V::str("a1"), V::str("b2")])
        );
        // Nested expression positions.
        assert_eq!(run("sum([len(w) for w in ['ab', 'cde']])"), V::Int(5));
        // The loop variable binds in the enclosing scope (Python 2-style
        // leak is avoided by our scoping: globals at top level).
        assert_eq!(run("ys = [x for x in [7]]\nys[0]"), V::Int(7));
    }

    #[test]
    fn trailing_comma_in_list_literal() {
        assert_eq!(run("[1, 2,]"), V::list(vec![V::Int(1), V::Int(2)]));
        assert_eq!(run("[]"), V::list(vec![]));
    }

    #[test]
    fn for_loop_unpacking() {
        let src = "total = 0\nfor i, v in enumerate([10, 20, 30]):\n    total += i * v\ntotal";
        assert_eq!(run(src), V::Int(20 + 2 * 30));
        let src =
            "out = ''\nd = {'a': 1, 'b': 2}\nfor k, v in d.items():\n    out += k + str(v)\nout";
        assert_eq!(run(src), V::str("a1b2"));
    }

    #[test]
    fn for_loop_unpacking_arity_errors() {
        assert!(matches!(
            run_err("for a, b in [[1, 2, 3]]:\n    pass"),
            ScriptError::Type { .. }
        ));
        assert!(matches!(
            run_err("for a, b in [5]:\n    pass"),
            ScriptError::Type { .. }
        ));
    }

    #[test]
    fn functions_and_recursion() {
        let src = "def fib(n):\n    if n < 2:\n        return n\n    return fib(n - 1) + fib(n - 2)\nfib(10)";
        assert_eq!(run(src), V::Int(55));
    }

    #[test]
    fn functions_see_globals_but_write_locals() {
        let src = "g = 10\ndef f(x):\n    y = g + x\n    return y\nf(1)";
        assert_eq!(run(src), V::Int(11));
        // Locals don't leak out.
        let src2 = "def f():\n    hidden = 1\n    return hidden\nf()\nhidden";
        assert!(matches!(run_err(src2), ScriptError::Name { .. }));
    }

    #[test]
    fn recursion_limit() {
        let src = "def f(n):\n    return f(n + 1)\nf(0)";
        assert!(matches!(run_err(src), ScriptError::RecursionLimit));
    }

    #[test]
    fn fuel_limit_stops_infinite_loops() {
        let err = Interpreter::new()
            .with_fuel(10_000)
            .run("while True:\n    pass")
            .unwrap_err();
        assert!(matches!(err, ScriptError::FuelExhausted));
    }

    #[test]
    fn builtins() {
        assert_eq!(run("len('abc')"), V::Int(3));
        assert_eq!(run("str(42)"), V::str("42"));
        assert_eq!(run("int('1,234')"), V::Int(1234));
        assert_eq!(run("int(3.9)"), V::Int(3));
        assert_eq!(run("float('2.5')"), V::Float(2.5));
        assert_eq!(run("abs(-4)"), V::Int(4));
        assert_eq!(run("round(2.567, 2)"), V::Float(2.57));
        assert_eq!(run("round(2.4)"), V::Int(2));
        assert_eq!(run("max([3, 9, 1])"), V::Int(9));
        assert_eq!(run("min(4, 2)"), V::Int(2));
        assert_eq!(run("sorted([3, 1, 2])[0]"), V::Int(1));
        assert_eq!(run("sum([1.5, 2.5])"), V::Float(4.0));
        assert_eq!(run("enumerate(['a'])[0][0]"), V::Int(0));
        assert_eq!(run("bool([])"), V::Bool(false));
    }

    #[test]
    fn print_captures_output() {
        let mut interp = Interpreter::new();
        interp.run("print('hello', 42)\nprint([1])").unwrap();
        assert_eq!(interp.take_output(), vec!["hello 42", "[1]"]);
        assert!(interp.take_output().is_empty());
    }

    #[test]
    fn host_functions_are_callable() {
        let mut interp = Interpreter::new();
        interp.bind_host_fn("add_one", |args| Ok(V::Int(args[0].as_int()? + 1)));
        assert_eq!(interp.run("add_one(41)").unwrap(), V::Int(42));
    }

    #[test]
    fn host_function_errors_propagate() {
        let mut interp = Interpreter::new();
        interp.bind_host_fn("fail", |_| Err(ScriptError::host("tool broke")));
        assert!(matches!(
            interp.run("fail()"),
            Err(ScriptError::Host { .. })
        ));
    }

    #[test]
    fn user_function_shadows_builtin() {
        let src = "def len(x):\n    return 99\nlen('abc')";
        assert_eq!(run(src), V::Int(99));
    }

    #[test]
    fn globals_persist_across_runs() {
        let mut interp = Interpreter::new();
        interp.run("x = 7").unwrap();
        assert_eq!(interp.run("x + 1").unwrap(), V::Int(8));
        assert_eq!(interp.get_global("x"), Some(&V::Int(7)));
    }

    #[test]
    fn last_expression_is_result() {
        assert_eq!(run("1\n2\n3"), V::Int(3));
        assert_eq!(run("x = 5"), V::None);
    }

    #[test]
    fn return_at_top_level_ends_program() {
        assert_eq!(run("return 9"), V::Int(9));
    }

    #[test]
    fn short_circuit_evaluation() {
        // The undefined name on the RHS must not be evaluated.
        assert_eq!(run("False and missing_name"), V::Bool(false));
        assert_eq!(run("True or missing_name"), V::Bool(true));
        // Python-style value semantics.
        assert_eq!(run("0 or 'fallback'"), V::str("fallback"));
        assert_eq!(run("1 and 2"), V::Int(2));
    }

    #[test]
    fn comparison_chaining_style_conditions() {
        assert_eq!(run("x = 5\nx > 1 and x < 10"), V::Bool(true));
        assert_eq!(run("'a' < 'b'"), V::Bool(true));
        assert_eq!(run("2 >= 2.0"), V::Bool(true));
    }

    #[test]
    fn string_slice() {
        assert_eq!(run("'hello'[1:3]"), V::str("el"));
        assert_eq!(run("'hello'[:2]"), V::str("he"));
        assert_eq!(run("'hello'[-2:]"), V::str("lo"));
        assert_eq!(run("'hello'[0]"), V::str("h"));
    }

    #[test]
    fn mutation_through_function_boundary() {
        let src = "def add(xs, v):\n    xs.append(v)\nitems = []\nadd(items, 1)\nadd(items, 2)\nlen(items)";
        assert_eq!(run(src), V::Int(2));
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        /// A small integer-arithmetic AST we can evaluate both in Rust and
        /// as generated Pyrite source.
        #[derive(Debug, Clone)]
        enum Arith {
            Lit(i32),
            Add(Box<Arith>, Box<Arith>),
            Sub(Box<Arith>, Box<Arith>),
            Mul(Box<Arith>, Box<Arith>),
        }

        impl Arith {
            fn eval(&self) -> i64 {
                match self {
                    Arith::Lit(v) => i64::from(*v),
                    Arith::Add(a, b) => a.eval() + b.eval(),
                    Arith::Sub(a, b) => a.eval() - b.eval(),
                    Arith::Mul(a, b) => a.eval() * b.eval(),
                }
            }

            fn source(&self) -> String {
                match self {
                    // Negative literals parenthesized (unary minus binds
                    // tighter in renders like `3 * -4`).
                    Arith::Lit(v) => format!("({v})"),
                    Arith::Add(a, b) => format!("({} + {})", a.source(), b.source()),
                    Arith::Sub(a, b) => format!("({} - {})", a.source(), b.source()),
                    Arith::Mul(a, b) => format!("({} * {})", a.source(), b.source()),
                }
            }
        }

        fn arith_strategy() -> impl Strategy<Value = Arith> {
            let leaf = (-1000i32..1000).prop_map(Arith::Lit);
            leaf.prop_recursive(4, 32, 3, |inner| {
                prop_oneof![
                    (inner.clone(), inner.clone())
                        .prop_map(|(a, b)| Arith::Add(Box::new(a), Box::new(b))),
                    (inner.clone(), inner.clone())
                        .prop_map(|(a, b)| Arith::Sub(Box::new(a), Box::new(b))),
                    (inner.clone(), inner).prop_map(|(a, b)| Arith::Mul(Box::new(a), Box::new(b))),
                ]
            })
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(64))]

            #[test]
            fn integer_arithmetic_matches_rust(expr in arith_strategy()) {
                let got = Interpreter::new().run(&expr.source()).unwrap();
                prop_assert_eq!(got, V::Int(expr.eval()));
            }

            #[test]
            fn lexer_and_parser_never_panic(src in ".{0,120}") {
                let _ = crate::parser::parse(&src);
            }

            #[test]
            fn sorted_output_is_sorted_permutation(xs in prop::collection::vec(-100i64..100, 0..20)) {
                let list = xs.iter().map(|x| x.to_string()).collect::<Vec<_>>().join(", ");
                let out = Interpreter::new().run(&format!("sorted([{list}])")).unwrap();
                let mut expect = xs.clone();
                expect.sort_unstable();
                let expect_v = V::list(expect.into_iter().map(V::Int).collect());
                prop_assert_eq!(out, expect_v);
            }

            #[test]
            fn string_round_trip_through_interpreter(s in "[a-zA-Z0-9 ]{0,30}") {
                let out = Interpreter::new()
                    .run(&format!("x = \"{s}\"\nx.upper().lower()"))
                    .unwrap();
                prop_assert_eq!(out, V::str(s.to_lowercase()));
            }
        }
    }

    #[test]
    fn realistic_agent_program() {
        // The shape of code a CodeAgent writes: scan files, filter by
        // keyword, accumulate results.
        let mut interp = Interpreter::new();
        interp.bind_host_fn("list_files", |_| {
            Ok(V::list(vec![
                V::str("national_theft.csv"),
                V::str("alabama.csv"),
                V::str("notes.txt"),
            ]))
        });
        interp.bind_host_fn("read_file", |args| {
            let name = args[0].as_str()?;
            Ok(V::str(match name {
                "national_theft.csv" => "year,thefts\n2001,86250\n2024,1135291",
                _ => "irrelevant",
            }))
        });
        let src = r#"
result = None
for f in list_files():
    if "theft" in f:
        content = read_file(f)
        lines = content.splitlines()
        for line in lines[1:]:
            parts = line.split(",")
            if parts[0] == "2024":
                result = int(parts[1])
result
"#;
        assert_eq!(interp.run(src).unwrap(), V::Int(1_135_291));
    }
}
