//! Compiler from the checked Pyrite AST to a compact register bytecode.
//!
//! The tree-walking interpreter ([`crate::interp`]) stays the semantic
//! oracle; this module gives the hot agent-step path a flat, re-runnable
//! representation:
//!
//! * **Register chunks.** Every function (and the top-level program) is a
//!   [`Chunk`]: a flat `Vec<Insn>` over a per-frame register window, with
//!   a shared constant pool and interned name table. Expression
//!   temporaries are stack-allocated registers; variables stay
//!   name-resolved (locals get slots with a dynamic fall-through to
//!   globals) because Pyrite is late-bound — a call site can resolve to a
//!   local, a global, a host tool, or a builtin depending on runtime
//!   state.
//! * **Exact fuel parity.** The interpreter charges one fuel per
//!   statement entered and one per expression node evaluated (plus one
//!   per list-comprehension iteration). The compiler emits explicit
//!   [`Insn::Burn`] instructions at exactly those points — pre-order,
//!   before child evaluation — so the VM exhausts its budget at the same
//!   instant, with the same observable side effects, as the tree-walker.
//!   Adjacent burns with no intervening effect are merged into one
//!   `Burn { n }` whose all-or-nothing semantics leave the fuel counter
//!   bit-identical on both the success and exhaustion paths.
//! * **Durable artifacts.** [`CompiledProgram::encode`] frames the whole
//!   program through the checksummed snapshot codec
//!   ([`aida_llm::snapshot::encode_file`]), so compiled plans are
//!   versioned on-disk artifacts; [`CompiledProgram::content_hash`] is a
//!   stable 128-bit digest over the *canonical* encoding (line metadata
//!   zeroed) that the semantic call cache keys on — two textually
//!   different plans that compile to the same instructions share one
//!   cache entry.

use crate::ast::*;
use crate::bounds::{self, Bound, CostBound};
use crate::error::ScriptError;
use crate::parser::parse;
use aida_llm::models::ModelId;
use aida_llm::snapshot::{decode_file, encode_file, esc, fnv64, unesc};
use aida_llm::CacheKey;
use std::collections::HashMap;

/// Register operand sentinel meaning "absent" (open slice bound, bare
/// `return`, callee name with no local slot).
pub const NO_REG: u16 = u16::MAX;

/// Snapshot magic for serialized artifacts.
pub const BYTECODE_MAGIC: &str = "aida-pyrite-bytecode v1";

/// A pooled constant.
#[derive(Debug, Clone, PartialEq)]
pub enum Const {
    /// Integer literal.
    Int(i64),
    /// Float literal (bit-exact through serialization).
    Float(f64),
    /// String literal.
    Str(String),
    /// Boolean literal.
    Bool(bool),
    /// The `None` literal.
    None,
}

/// One register instruction. `line` operands are 1-based source lines
/// used only for diagnostics; the canonical (content-hash) encoding
/// zeroes them.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Insn {
    /// Charge `n` fuel (all-or-nothing: on shortfall the counter drops
    /// to zero and execution fails, matching `n` single interpreter
    /// burns).
    Burn { n: u32, line: u32 },
    /// `regs[dst] = consts[idx]`.
    Const { dst: u16, idx: u16 },
    /// Load a variable: local slot first (when `slot != NO_REG`), then
    /// globals, else a name error at `line`.
    Load {
        dst: u16,
        name: u16,
        slot: u16,
        line: u32,
    },
    /// Store a variable: into the local slot when present, else globals.
    Store { name: u16, slot: u16, src: u16 },
    /// Build a list from `n` consecutive registers starting at `base`.
    MakeList { dst: u16, base: u16, n: u16 },
    /// `regs[dst] = {}`.
    NewDict { dst: u16 },
    /// Assert `regs[reg]` is a string dict key (type error at `line`).
    DictKey { reg: u16, line: u32 },
    /// `dict[key] = val` for a freshly built dict literal.
    DictSet { dict: u16, key: u16, val: u16 },
    /// Binary operator via the interpreter's shared `binary` kernel.
    Bin {
        op: BinOp,
        dst: u16,
        a: u16,
        b: u16,
        line: u32,
    },
    /// Arithmetic negation.
    Neg { dst: u16, src: u16, line: u32 },
    /// Boolean `not` (truthiness).
    Not { dst: u16, src: u16 },
    /// Unconditional jump to instruction index `to`.
    Jump { to: u32 },
    /// Jump when `regs[src]` is falsy.
    JumpFalse { src: u16, to: u32 },
    /// Jump when `regs[src]` is truthy.
    JumpTrue { src: u16, to: u32 },
    /// `regs[dst] = obj[key]`.
    GetIndex {
        dst: u16,
        obj: u16,
        key: u16,
        line: u32,
    },
    /// `obj[key] = src`.
    SetIndex {
        obj: u16,
        key: u16,
        src: u16,
        line: u32,
    },
    /// Coerce a slice bound to an int in place (type error at `line`).
    SliceIdx { reg: u16, line: u32 },
    /// `regs[dst] = obj[lo:hi]` (`NO_REG` bound = open).
    Slice {
        dst: u16,
        obj: u16,
        lo: u16,
        hi: u16,
        line: u32,
    },
    /// Call a named callee with the interpreter's resolution order:
    /// shadowing local/global first (burning one fuel for the callee
    /// lookup), then host functions, then builtins. `cline` is the
    /// callee token's own line (name-error diagnostics).
    CallName {
        dst: u16,
        name: u16,
        slot: u16,
        base: u16,
        argc: u16,
        line: u32,
        cline: u32,
    },
    /// Call an evaluated callee value.
    CallValue {
        dst: u16,
        callee: u16,
        base: u16,
        argc: u16,
        line: u32,
    },
    /// Call a bound method on `obj`.
    CallMethod {
        dst: u16,
        obj: u16,
        name: u16,
        base: u16,
        argc: u16,
        line: u32,
    },
    /// Materialize function `idx` as a value.
    MakeFunc { dst: u16, idx: u16 },
    /// Materialize `regs[src]` as an iteration vector and push it on the
    /// iterator stack (type error at `line` when not iterable).
    IterNew { src: u16, line: u32 },
    /// Advance the top iterator into `dst`, or pop it and jump to `done`.
    IterNext { dst: u16, done: u32 },
    /// Pop the top iterator (early loop exit).
    IterPop,
    /// Bind loop variables (`var_lists[vars]`) from `regs[src]`,
    /// unpacking list elements for multi-name targets.
    Bind { src: u16, vars: u16, line: u32 },
    /// Append `regs[src]` to the list in `regs[list]`.
    Push { list: u16, src: u16 },
    /// Record `regs[src]` as the program result (top-level expression
    /// statements only).
    SetLast { src: u16 },
    /// Return from the current frame (`NO_REG` = `None`); from the main
    /// frame this ends the program with the value.
    Ret { src: u16 },
    /// Raise the interpreter's "'break'/'continue' outside loop" error
    /// attributed to the enclosing frame-top statement at `line`.
    LoopMisuse { line: u32 },
    /// End of the main chunk; the program result is the last recorded
    /// expression-statement value.
    Halt,
}

/// A compiled instruction sequence with its register-window size.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Chunk {
    /// Flat instruction stream.
    pub code: Vec<Insn>,
    /// Registers the frame needs.
    pub nregs: u16,
}

/// A compiled user function.
#[derive(Debug, Clone, PartialEq)]
pub struct CompiledFn {
    /// Function name (diagnostics and arity errors).
    pub name: String,
    /// Parameter names, in order (slots `0..params.len()`).
    pub params: Vec<String>,
    /// All local slot names (params first, then every assigned name).
    pub locals: Vec<String>,
    /// The function body.
    pub chunk: Chunk,
    /// Original AST body, kept so `def` sites materialize the same
    /// [`crate::value::UserFn`] values the interpreter builds (decoded
    /// artifacts carry an empty body; their functions still execute via
    /// `chunk`, but escape only as stubs).
    pub body_ast: Vec<Stmt>,
}

/// A whole compiled program: shared pools plus the main chunk.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct CompiledProgram {
    /// Constant pool.
    pub consts: Vec<Const>,
    /// Interned identifier table (variables, callees, methods).
    pub names: Vec<String>,
    /// Loop-variable binding lists: `(name index, local slot | NO_REG)`.
    pub var_lists: Vec<Vec<(u16, u16)>>,
    /// Compiled user functions.
    pub funcs: Vec<CompiledFn>,
    /// Top-level code.
    pub main: Chunk,
    /// Static cost bound (see [`crate::bounds`]). Computed by
    /// [`compile`], carried in the serialized artifact (version 2
    /// body), and excluded from the canonical content hash — the hash
    /// identifies the *instructions*; the bound is derived metadata.
    pub bound: CostBound,
}

impl CompiledProgram {
    /// Serializes the program through the checksummed frame codec.
    pub fn encode(&self) -> String {
        encode_file(BYTECODE_MAGIC, &self.body_text(false))
    }

    /// Decodes a serialized artifact, verifying magic, line count, and
    /// checksum. Functions decode with empty AST bodies (see
    /// [`CompiledFn::body_ast`]).
    pub fn decode(text: &str) -> Result<CompiledProgram, ScriptError> {
        let body = decode_file(BYTECODE_MAGIC, text)
            .map_err(|e| bad_artifact(format!("bad frame: {e:?}")))?;
        decode_body(body)
    }

    /// The stable 128-bit content hash of the canonical encoding (line
    /// metadata zeroed): equal hashes mean instruction-identical plans.
    pub fn content_hash(&self) -> (u64, u64) {
        let body = self.body_text(true);
        let parts: Vec<u64> = body.lines().map(|l| fnv64(l.as_bytes())).collect();
        let key = CacheKey::from_parts(&parts);
        (key.hi, key.lo)
    }

    /// The content hash rendered as 32 hex digits.
    pub fn content_hash_hex(&self) -> String {
        let (hi, lo) = self.content_hash();
        format!("{hi:016x}{lo:016x}")
    }

    /// Total instruction count across the main chunk and every function.
    pub fn insn_count(&self) -> usize {
        self.main.code.len() + self.funcs.iter().map(|f| f.chunk.code.len()).sum::<usize>()
    }

    fn body_text(&self, canonical: bool) -> String {
        let mut out = String::new();
        out.push_str("version 2\n");
        out.push_str(&format!("consts {}\n", self.consts.len()));
        for c in &self.consts {
            match c {
                Const::Int(v) => out.push_str(&format!("c i {v}\n")),
                Const::Float(v) => out.push_str(&format!("c f {:016x}\n", v.to_bits())),
                Const::Str(s) => {
                    out.push_str("c s ");
                    esc(s, &mut out);
                    out.push('\n');
                }
                Const::Bool(b) => out.push_str(&format!("c b {}\n", u8::from(*b))),
                Const::None => out.push_str("c n\n"),
            }
        }
        out.push_str(&format!("names {}\n", self.names.len()));
        for n in &self.names {
            out.push_str("n ");
            esc(n, &mut out);
            out.push('\n');
        }
        out.push_str(&format!("vars {}\n", self.var_lists.len()));
        for list in &self.var_lists {
            out.push_str(&format!("v {}", list.len()));
            for (name, slot) in list {
                out.push_str(&format!(" {name} {slot}"));
            }
            out.push('\n');
        }
        out.push_str(&format!("funcs {}\n", self.funcs.len()));
        for f in &self.funcs {
            out.push_str(&format!(
                "func {} {} {} {} ",
                f.params.len(),
                f.locals.len(),
                f.chunk.nregs,
                f.chunk.code.len()
            ));
            esc(&f.name, &mut out);
            out.push('\n');
            for l in &f.locals {
                out.push_str("l ");
                esc(l, &mut out);
                out.push('\n');
            }
            for i in &f.chunk.code {
                write_insn(&mut out, i, canonical);
            }
        }
        out.push_str(&format!(
            "main {} {}\n",
            self.main.nregs,
            self.main.code.len()
        ));
        for i in &self.main.code {
            write_insn(&mut out, i, canonical);
        }
        // The bound rides in the artifact (exact round-trip) but stays
        // out of the canonical text: the content hash identifies the
        // instruction stream alone.
        if !canonical {
            out.push_str(&format!(
                "bound unbounded={} open={} fuel={}\n",
                u8::from(self.bound.unbounded),
                u8::from(self.bound.calls_open),
                self.bound.fuel_max,
            ));
            out.push_str(&format!("bcalls {}\n", self.bound.calls_per_tool.len()));
            for (name, b) in &self.bound.calls_per_tool {
                out.push_str(&format!("bc {b} "));
                esc(name, &mut out);
                out.push('\n');
            }
            out.push_str(&format!("busd {}\n", self.bound.usd_max_per_tier.len()));
            for (tier, usd) in &self.bound.usd_max_per_tier {
                out.push_str(&format!("bu {} {:016x}\n", tier.name(), usd.to_bits()));
            }
        }
        out
    }
}

fn bad_artifact(message: String) -> ScriptError {
    ScriptError::Static {
        line: 0,
        message: format!("bytecode artifact rejected: {message}"),
    }
}

fn op_name(op: BinOp) -> &'static str {
    match op {
        BinOp::Add => "add",
        BinOp::Sub => "sub",
        BinOp::Mul => "mul",
        BinOp::Div => "div",
        BinOp::FloorDiv => "fdiv",
        BinOp::Mod => "mod",
        BinOp::Eq => "eq",
        BinOp::NotEq => "ne",
        BinOp::Lt => "lt",
        BinOp::LtEq => "le",
        BinOp::Gt => "gt",
        BinOp::GtEq => "ge",
        BinOp::And => "and",
        BinOp::Or => "or",
        BinOp::In => "in",
        BinOp::NotIn => "nin",
    }
}

fn op_parse(name: &str) -> Option<BinOp> {
    Some(match name {
        "add" => BinOp::Add,
        "sub" => BinOp::Sub,
        "mul" => BinOp::Mul,
        "div" => BinOp::Div,
        "fdiv" => BinOp::FloorDiv,
        "mod" => BinOp::Mod,
        "eq" => BinOp::Eq,
        "ne" => BinOp::NotEq,
        "lt" => BinOp::Lt,
        "le" => BinOp::LtEq,
        "gt" => BinOp::Gt,
        "ge" => BinOp::GtEq,
        "and" => BinOp::And,
        "or" => BinOp::Or,
        "in" => BinOp::In,
        "nin" => BinOp::NotIn,
        _ => return None,
    })
}

fn write_insn(out: &mut String, i: &Insn, canonical: bool) {
    let ln = |l: u32| if canonical { 0 } else { l };
    let text = match *i {
        Insn::Burn { n, line } => format!("burn {n} {}", ln(line)),
        Insn::Const { dst, idx } => format!("const {dst} {idx}"),
        Insn::Load {
            dst,
            name,
            slot,
            line,
        } => format!("load {dst} {name} {slot} {}", ln(line)),
        Insn::Store { name, slot, src } => format!("store {name} {slot} {src}"),
        Insn::MakeList { dst, base, n } => format!("list {dst} {base} {n}"),
        Insn::NewDict { dst } => format!("dict {dst}"),
        Insn::DictKey { reg, line } => format!("dkey {reg} {}", ln(line)),
        Insn::DictSet { dict, key, val } => format!("dset {dict} {key} {val}"),
        Insn::Bin {
            op,
            dst,
            a,
            b,
            line,
        } => {
            format!("bin {} {dst} {a} {b} {}", op_name(op), ln(line))
        }
        Insn::Neg { dst, src, line } => format!("neg {dst} {src} {}", ln(line)),
        Insn::Not { dst, src } => format!("not {dst} {src}"),
        Insn::Jump { to } => format!("jmp {to}"),
        Insn::JumpFalse { src, to } => format!("jf {src} {to}"),
        Insn::JumpTrue { src, to } => format!("jt {src} {to}"),
        Insn::GetIndex {
            dst,
            obj,
            key,
            line,
        } => format!("geti {dst} {obj} {key} {}", ln(line)),
        Insn::SetIndex {
            obj,
            key,
            src,
            line,
        } => format!("seti {obj} {key} {src} {}", ln(line)),
        Insn::SliceIdx { reg, line } => format!("slidx {reg} {}", ln(line)),
        Insn::Slice {
            dst,
            obj,
            lo,
            hi,
            line,
        } => {
            format!("slice {dst} {obj} {lo} {hi} {}", ln(line))
        }
        Insn::CallName {
            dst,
            name,
            slot,
            base,
            argc,
            line,
            cline,
        } => {
            format!(
                "calln {dst} {name} {slot} {base} {argc} {} {}",
                ln(line),
                ln(cline)
            )
        }
        Insn::CallValue {
            dst,
            callee,
            base,
            argc,
            line,
        } => {
            format!("callv {dst} {callee} {base} {argc} {}", ln(line))
        }
        Insn::CallMethod {
            dst,
            obj,
            name,
            base,
            argc,
            line,
        } => {
            format!("callm {dst} {obj} {name} {base} {argc} {}", ln(line))
        }
        Insn::MakeFunc { dst, idx } => format!("mkfn {dst} {idx}"),
        Insn::IterNew { src, line } => format!("iter {src} {}", ln(line)),
        Insn::IterNext { dst, done } => format!("next {dst} {done}"),
        Insn::IterPop => "ipop".to_string(),
        Insn::Bind { src, vars, line } => format!("bind {src} {vars} {}", ln(line)),
        Insn::Push { list, src } => format!("push {list} {src}"),
        Insn::SetLast { src } => format!("last {src}"),
        Insn::Ret { src } => format!("ret {src}"),
        Insn::LoopMisuse { line } => format!("loopmis {}", ln(line)),
        Insn::Halt => "halt".to_string(),
    };
    out.push_str("i ");
    out.push_str(&text);
    out.push('\n');
}

fn parse_insn(line: &str) -> Result<Insn, ScriptError> {
    let rest = line
        .strip_prefix("i ")
        .ok_or_else(|| bad_artifact(format!("expected instruction line, got {line:?}")))?;
    let mut it = rest.split(' ');
    let op = it.next().unwrap_or("");
    let mut num = |what: &str| -> Result<u64, ScriptError> {
        it.next()
            .and_then(|t| t.parse::<u64>().ok())
            .ok_or_else(|| bad_artifact(format!("bad {what} operand in {line:?}")))
    };
    let insn = match op {
        "burn" => Insn::Burn {
            n: num("n")? as u32,
            line: num("line")? as u32,
        },
        "const" => Insn::Const {
            dst: num("dst")? as u16,
            idx: num("idx")? as u16,
        },
        "load" => Insn::Load {
            dst: num("dst")? as u16,
            name: num("name")? as u16,
            slot: num("slot")? as u16,
            line: num("line")? as u32,
        },
        "store" => Insn::Store {
            name: num("name")? as u16,
            slot: num("slot")? as u16,
            src: num("src")? as u16,
        },
        "list" => Insn::MakeList {
            dst: num("dst")? as u16,
            base: num("base")? as u16,
            n: num("n")? as u16,
        },
        "dict" => Insn::NewDict {
            dst: num("dst")? as u16,
        },
        "dkey" => Insn::DictKey {
            reg: num("reg")? as u16,
            line: num("line")? as u32,
        },
        "dset" => Insn::DictSet {
            dict: num("dict")? as u16,
            key: num("key")? as u16,
            val: num("val")? as u16,
        },
        "bin" => {
            let name = it.next().unwrap_or("");
            let op =
                op_parse(name).ok_or_else(|| bad_artifact(format!("unknown operator {name:?}")))?;
            let mut num = |what: &str| -> Result<u64, ScriptError> {
                it.next()
                    .and_then(|t| t.parse::<u64>().ok())
                    .ok_or_else(|| bad_artifact(format!("bad {what} operand in {line:?}")))
            };
            Insn::Bin {
                op,
                dst: num("dst")? as u16,
                a: num("a")? as u16,
                b: num("b")? as u16,
                line: num("line")? as u32,
            }
        }
        "neg" => Insn::Neg {
            dst: num("dst")? as u16,
            src: num("src")? as u16,
            line: num("line")? as u32,
        },
        "not" => Insn::Not {
            dst: num("dst")? as u16,
            src: num("src")? as u16,
        },
        "jmp" => Insn::Jump {
            to: num("to")? as u32,
        },
        "jf" => Insn::JumpFalse {
            src: num("src")? as u16,
            to: num("to")? as u32,
        },
        "jt" => Insn::JumpTrue {
            src: num("src")? as u16,
            to: num("to")? as u32,
        },
        "geti" => Insn::GetIndex {
            dst: num("dst")? as u16,
            obj: num("obj")? as u16,
            key: num("key")? as u16,
            line: num("line")? as u32,
        },
        "seti" => Insn::SetIndex {
            obj: num("obj")? as u16,
            key: num("key")? as u16,
            src: num("src")? as u16,
            line: num("line")? as u32,
        },
        "slidx" => Insn::SliceIdx {
            reg: num("reg")? as u16,
            line: num("line")? as u32,
        },
        "slice" => Insn::Slice {
            dst: num("dst")? as u16,
            obj: num("obj")? as u16,
            lo: num("lo")? as u16,
            hi: num("hi")? as u16,
            line: num("line")? as u32,
        },
        _ => return parse_call_insn(op, line, &mut it),
    };
    Ok(insn)
}

/// The call, iterator, and terminator opcodes — second half of
/// [`parse_insn`], same operand conventions.
fn parse_call_insn(
    op: &str,
    line: &str,
    it: &mut std::str::Split<'_, char>,
) -> Result<Insn, ScriptError> {
    let mut num = |what: &str| -> Result<u64, ScriptError> {
        it.next()
            .and_then(|t| t.parse::<u64>().ok())
            .ok_or_else(|| bad_artifact(format!("bad {what} operand in {line:?}")))
    };
    let insn = match op {
        "calln" => Insn::CallName {
            dst: num("dst")? as u16,
            name: num("name")? as u16,
            slot: num("slot")? as u16,
            base: num("base")? as u16,
            argc: num("argc")? as u16,
            line: num("line")? as u32,
            cline: num("cline")? as u32,
        },
        "callv" => Insn::CallValue {
            dst: num("dst")? as u16,
            callee: num("callee")? as u16,
            base: num("base")? as u16,
            argc: num("argc")? as u16,
            line: num("line")? as u32,
        },
        "callm" => Insn::CallMethod {
            dst: num("dst")? as u16,
            obj: num("obj")? as u16,
            name: num("name")? as u16,
            base: num("base")? as u16,
            argc: num("argc")? as u16,
            line: num("line")? as u32,
        },
        "mkfn" => Insn::MakeFunc {
            dst: num("dst")? as u16,
            idx: num("idx")? as u16,
        },
        "iter" => Insn::IterNew {
            src: num("src")? as u16,
            line: num("line")? as u32,
        },
        "next" => Insn::IterNext {
            dst: num("dst")? as u16,
            done: num("done")? as u32,
        },
        "ipop" => Insn::IterPop,
        "bind" => Insn::Bind {
            src: num("src")? as u16,
            vars: num("vars")? as u16,
            line: num("line")? as u32,
        },
        "push" => Insn::Push {
            list: num("list")? as u16,
            src: num("src")? as u16,
        },
        "last" => Insn::SetLast {
            src: num("src")? as u16,
        },
        "ret" => Insn::Ret {
            src: num("src")? as u16,
        },
        "loopmis" => Insn::LoopMisuse {
            line: num("line")? as u32,
        },
        "halt" => Insn::Halt,
        other => return Err(bad_artifact(format!("unknown opcode {other:?}"))),
    };
    Ok(insn)
}

fn decode_body(body: &str) -> Result<CompiledProgram, ScriptError> {
    let mut lines = body.lines();
    let mut next = |what: &str| -> Result<&str, ScriptError> {
        lines
            .next()
            .ok_or_else(|| bad_artifact(format!("missing {what}")))
    };
    let version = next("version")?;
    let has_bound_section = match version {
        // Version 1 artifacts predate static cost bounds; the bound is
        // recomputed after decode.
        "version 1" => false,
        "version 2" => true,
        _ => return Err(bad_artifact(format!("unsupported version {version:?}"))),
    };
    fn counted(line: &str, key: &str) -> Result<usize, ScriptError> {
        line.strip_prefix(key)
            .and_then(|s| s.strip_prefix(' '))
            .and_then(|n| n.parse().ok())
            .ok_or_else(|| bad_artifact(format!("bad {key} header: {line:?}")))
    }
    let mut p = CompiledProgram::default();
    let n = counted(next("consts")?, "consts")?;
    for _ in 0..n {
        let line = next("const")?;
        let rest = line
            .strip_prefix("c ")
            .ok_or_else(|| bad_artifact(format!("bad const line {line:?}")))?;
        let c = match rest.split_once(' ') {
            Some(("i", v)) => Const::Int(
                v.parse()
                    .map_err(|_| bad_artifact(format!("bad int const {v:?}")))?,
            ),
            Some(("f", v)) => Const::Float(f64::from_bits(
                u64::from_str_radix(v, 16)
                    .map_err(|_| bad_artifact(format!("bad float const {v:?}")))?,
            )),
            Some(("s", v)) => {
                Const::Str(unesc(v).map_err(|e| bad_artifact(format!("bad string const: {e:?}")))?)
            }
            Some(("b", v)) => Const::Bool(v == "1"),
            None if rest == "n" => Const::None,
            _ => return Err(bad_artifact(format!("bad const line {line:?}"))),
        };
        p.consts.push(c);
    }
    let n = counted(next("names")?, "names")?;
    for _ in 0..n {
        let line = next("name")?;
        let raw = line
            .strip_prefix("n ")
            .ok_or_else(|| bad_artifact(format!("bad name line {line:?}")))?;
        p.names
            .push(unesc(raw).map_err(|e| bad_artifact(format!("bad name: {e:?}")))?);
    }
    let n = counted(next("vars")?, "vars")?;
    for _ in 0..n {
        let line = next("varlist")?;
        let mut it = line
            .strip_prefix("v ")
            .ok_or_else(|| bad_artifact(format!("bad varlist line {line:?}")))?
            .split(' ');
        let k: usize = it
            .next()
            .and_then(|t| t.parse().ok())
            .ok_or_else(|| bad_artifact(format!("bad varlist count {line:?}")))?;
        let mut list = Vec::with_capacity(k);
        for _ in 0..k {
            let name: u16 = it
                .next()
                .and_then(|t| t.parse().ok())
                .ok_or_else(|| bad_artifact(format!("bad varlist entry {line:?}")))?;
            let slot: u16 = it
                .next()
                .and_then(|t| t.parse().ok())
                .ok_or_else(|| bad_artifact(format!("bad varlist entry {line:?}")))?;
            list.push((name, slot));
        }
        p.var_lists.push(list);
    }
    let n = counted(next("funcs")?, "funcs")?;
    for _ in 0..n {
        let header = next("func header")?;
        let rest = header
            .strip_prefix("func ")
            .ok_or_else(|| bad_artifact(format!("bad func header {header:?}")))?;
        let mut it = rest.splitn(5, ' ');
        let mut num = |what: &str| -> Result<usize, ScriptError> {
            it.next()
                .and_then(|t| t.parse().ok())
                .ok_or_else(|| bad_artifact(format!("bad func {what} in {header:?}")))
        };
        let nparams = num("params")?;
        let nlocals = num("locals")?;
        let nregs = num("nregs")? as u16;
        let ncode = num("code count")?;
        let name = unesc(it.next().unwrap_or(""))
            .map_err(|e| bad_artifact(format!("bad func name: {e:?}")))?;
        let mut locals = Vec::with_capacity(nlocals);
        for _ in 0..nlocals {
            let line = next("local")?;
            let raw = line
                .strip_prefix("l ")
                .ok_or_else(|| bad_artifact(format!("bad local line {line:?}")))?;
            locals.push(unesc(raw).map_err(|e| bad_artifact(format!("bad local: {e:?}")))?);
        }
        let mut code = Vec::with_capacity(ncode);
        for _ in 0..ncode {
            code.push(parse_insn(next("instruction")?)?);
        }
        p.funcs.push(CompiledFn {
            name,
            params: locals[..nparams.min(locals.len())].to_vec(),
            locals,
            chunk: Chunk { code, nregs },
            body_ast: Vec::new(),
        });
    }
    let header = next("main header")?;
    let rest = header
        .strip_prefix("main ")
        .ok_or_else(|| bad_artifact(format!("bad main header {header:?}")))?;
    let (nregs, ncode) = rest
        .split_once(' ')
        .and_then(|(a, b)| Some((a.parse::<u16>().ok()?, b.parse::<usize>().ok()?)))
        .ok_or_else(|| bad_artifact(format!("bad main header {header:?}")))?;
    let mut code = Vec::with_capacity(ncode);
    for _ in 0..ncode {
        code.push(parse_insn(next("instruction")?)?);
    }
    p.main = Chunk { code, nregs };
    if has_bound_section {
        p.bound = decode_bound(&mut next)?;
    } else {
        p.bound = bounds::analyze(&p);
    }
    Ok(p)
}

fn parse_bound_token(tok: &str) -> Result<Bound, ScriptError> {
    if tok == "inf" {
        return Ok(Bound::Unbounded);
    }
    tok.parse()
        .map(Bound::Finite)
        .map_err(|_| bad_artifact(format!("bad bound value {tok:?}")))
}

/// Parses the version-2 bound section (exact round-trip of
/// [`CostBound`] as written by `body_text`).
fn decode_bound<'a>(
    next: &mut impl FnMut(&str) -> Result<&'a str, ScriptError>,
) -> Result<CostBound, ScriptError> {
    let line = next("bound header")?;
    let rest = line
        .strip_prefix("bound ")
        .ok_or_else(|| bad_artifact(format!("bad bound header {line:?}")))?;
    let mut unbounded = None;
    let mut open = None;
    let mut fuel = None;
    for tok in rest.split(' ') {
        match tok.split_once('=') {
            Some(("unbounded", v)) => unbounded = Some(v == "1"),
            Some(("open", v)) => open = Some(v == "1"),
            Some(("fuel", v)) => fuel = Some(parse_bound_token(v)?),
            _ => return Err(bad_artifact(format!("bad bound field {tok:?}"))),
        }
    }
    let (Some(unbounded), Some(open), Some(fuel)) = (unbounded, open, fuel) else {
        return Err(bad_artifact(format!("incomplete bound header {line:?}")));
    };
    let count = |line: &str, key: &str| -> Result<usize, ScriptError> {
        line.strip_prefix(key)
            .and_then(|s| s.strip_prefix(' '))
            .and_then(|n| n.parse().ok())
            .ok_or_else(|| bad_artifact(format!("bad {key} header: {line:?}")))
    };
    let n = count(next("bcalls")?, "bcalls")?;
    let mut calls = std::collections::BTreeMap::new();
    for _ in 0..n {
        let line = next("bound call")?;
        let rest = line
            .strip_prefix("bc ")
            .ok_or_else(|| bad_artifact(format!("bad bound call line {line:?}")))?;
        let (b, raw) = rest
            .split_once(' ')
            .ok_or_else(|| bad_artifact(format!("bad bound call line {line:?}")))?;
        let name = unesc(raw).map_err(|e| bad_artifact(format!("bad bound call name: {e:?}")))?;
        calls.insert(name, parse_bound_token(b)?);
    }
    let n = count(next("busd")?, "busd")?;
    let mut usd = std::collections::BTreeMap::new();
    for _ in 0..n {
        let line = next("bound usd")?;
        let rest = line
            .strip_prefix("bu ")
            .ok_or_else(|| bad_artifact(format!("bad bound usd line {line:?}")))?;
        let (model, bits) = rest
            .split_once(' ')
            .ok_or_else(|| bad_artifact(format!("bad bound usd line {line:?}")))?;
        let tier = ModelId::parse(model)
            .ok_or_else(|| bad_artifact(format!("unknown model tier {model:?}")))?;
        let value = f64::from_bits(
            u64::from_str_radix(bits, 16)
                .map_err(|_| bad_artifact(format!("bad bound usd bits {bits:?}")))?,
        );
        usd.insert(tier, value);
    }
    Ok(CostBound {
        fuel_max: fuel,
        calls_per_tool: calls,
        calls_open: open,
        usd_max_per_tier: usd,
        unbounded,
    })
}

/// Compiles a parsed program.
pub fn compile(program: &Program) -> Result<CompiledProgram, ScriptError> {
    let mut c = Compiler::default();
    let main = c.compile_chunk(&program.body, None)?;
    let mut p = CompiledProgram {
        consts: c.consts,
        names: c.names,
        var_lists: c.var_lists,
        funcs: c.funcs,
        main,
        bound: CostBound::unbounded_all(),
    };
    p.bound = bounds::analyze(&p);
    Ok(p)
}

/// Parses and compiles source in one step.
pub fn compile_source(source: &str) -> Result<CompiledProgram, ScriptError> {
    compile(&parse(source)?)
}

/// The canonical plan hash of a source text, when it parses and
/// compiles: the content-hash digest pair of its bytecode. The semantic
/// call cache uses this to key planning calls by *plan identity* rather
/// than plan text.
pub fn plan_content_hash(source: &str) -> Option<(u64, u64)> {
    compile_source(source).ok().map(|p| p.content_hash())
}

#[derive(Default)]
struct Compiler {
    consts: Vec<Const>,
    names: Vec<String>,
    name_ix: HashMap<String, u16>,
    var_lists: Vec<Vec<(u16, u16)>>,
    funcs: Vec<CompiledFn>,
}

/// Per-chunk compile state: register stack, loop patch lists, burn
/// merging.
struct ChunkCtx {
    code: Vec<Insn>,
    free: u16,
    nregs: u16,
    /// Local slot map (functions only); `None` compiles the main chunk.
    locals: Option<HashMap<String, u16>>,
    loops: Vec<LoopCtx>,
    /// Line of the current frame-top statement (stray `break`/`continue`
    /// diagnostics attribute to it, as the interpreter does).
    top_line: u32,
    /// Index of a trailing mergeable `Burn`, cleared at labels and by
    /// every other instruction.
    last_burn: Option<usize>,
}

struct LoopCtx {
    breaks: Vec<usize>,
    continue_to: u32,
}

const MAX_REGS: u16 = u16::MAX - 1;

impl ChunkCtx {
    fn new(locals: Option<HashMap<String, u16>>) -> ChunkCtx {
        ChunkCtx {
            code: Vec::new(),
            free: 0,
            nregs: 0,
            locals,
            loops: Vec::new(),
            top_line: 0,
            last_burn: None,
        }
    }

    fn alloc(&mut self) -> Result<u16, ScriptError> {
        if self.free >= MAX_REGS {
            return Err(ScriptError::Static {
                line: 0,
                message: "program too complex: register window exhausted".into(),
            });
        }
        let r = self.free;
        self.free += 1;
        self.nregs = self.nregs.max(self.free);
        Ok(r)
    }

    fn emit(&mut self, insn: Insn) -> usize {
        self.last_burn = None;
        self.code.push(insn);
        self.code.len() - 1
    }

    fn emit_burn(&mut self, line: usize) {
        if let Some(i) = self.last_burn {
            if let Insn::Burn { n, .. } = &mut self.code[i] {
                *n += 1;
                return;
            }
        }
        self.code.push(Insn::Burn {
            n: 1,
            line: line as u32,
        });
        self.last_burn = Some(self.code.len() - 1);
    }

    /// A jump-target label at the current position. Clears burn merging:
    /// control can re-enter here, so earlier burns must not absorb later
    /// ones.
    fn here(&mut self) -> u32 {
        self.last_burn = None;
        self.code.len() as u32
    }

    fn patch(&mut self, at: usize, to: u32) {
        match &mut self.code[at] {
            Insn::Jump { to: t } | Insn::JumpFalse { to: t, .. } | Insn::JumpTrue { to: t, .. } => {
                *t = to
            }
            Insn::IterNext { done, .. } => *done = to,
            other => unreachable!("patching non-jump {other:?}"),
        }
    }

    fn slot_of(&self, name: &str) -> u16 {
        self.locals
            .as_ref()
            .and_then(|m| m.get(name).copied())
            .unwrap_or(NO_REG)
    }
}

impl Compiler {
    fn name_ix(&mut self, name: &str) -> Result<u16, ScriptError> {
        if let Some(&ix) = self.name_ix.get(name) {
            return Ok(ix);
        }
        if self.names.len() >= NO_REG as usize {
            return Err(ScriptError::Static {
                line: 0,
                message: "program too complex: name table exhausted".into(),
            });
        }
        let ix = self.names.len() as u16;
        self.names.push(name.to_string());
        self.name_ix.insert(name.to_string(), ix);
        Ok(ix)
    }

    fn const_ix(&mut self, c: Const) -> Result<u16, ScriptError> {
        if let Some(ix) = self.consts.iter().position(|x| x == &c) {
            return Ok(ix as u16);
        }
        if self.consts.len() >= NO_REG as usize {
            return Err(ScriptError::Static {
                line: 0,
                message: "program too complex: constant pool exhausted".into(),
            });
        }
        self.consts.push(c);
        Ok((self.consts.len() - 1) as u16)
    }

    fn var_list_ix(&mut self, vars: &[String], c: &ChunkCtx) -> Result<u16, ScriptError> {
        let mut list = Vec::with_capacity(vars.len());
        for v in vars {
            let name = self.name_ix(v)?;
            list.push((name, c.slot_of(v)));
        }
        if let Some(ix) = self.var_lists.iter().position(|x| x == &list) {
            return Ok(ix as u16);
        }
        self.var_lists.push(list);
        Ok((self.var_lists.len() - 1) as u16)
    }

    /// Compiles a statement list into a chunk. `locals` is `Some` for
    /// function bodies (params plus every assigned name get slots).
    fn compile_chunk(
        &mut self,
        body: &[Stmt],
        locals: Option<HashMap<String, u16>>,
    ) -> Result<Chunk, ScriptError> {
        let is_main = locals.is_none();
        let mut c = ChunkCtx::new(locals);
        for stmt in body {
            self.stmt(&mut c, stmt, 0, is_main)?;
        }
        if is_main {
            c.emit(Insn::Halt);
        } else {
            c.emit(Insn::Ret { src: NO_REG });
        }
        Ok(Chunk {
            code: c.code,
            nregs: c.nregs.max(1),
        })
    }

    fn compile_fn(
        &mut self,
        name: &str,
        params: &[String],
        body: &[Stmt],
    ) -> Result<u16, ScriptError> {
        let mut locals: Vec<String> = Vec::new();
        for p in params {
            if !locals.contains(p) {
                locals.push(p.clone());
            }
        }
        collect_assigned(body, &mut locals);
        let map: HashMap<String, u16> = locals
            .iter()
            .enumerate()
            .map(|(i, n)| (n.clone(), i as u16))
            .collect();
        if locals.len() >= NO_REG as usize {
            return Err(ScriptError::Static {
                line: 0,
                message: "program too complex: too many locals".into(),
            });
        }
        for n in &locals {
            self.name_ix(n)?;
        }
        let chunk = self.compile_chunk(body, Some(map))?;
        self.funcs.push(CompiledFn {
            name: name.to_string(),
            params: params.to_vec(),
            locals,
            chunk,
            body_ast: body.to_vec(),
        });
        Ok((self.funcs.len() - 1) as u16)
    }

    fn stmt(
        &mut self,
        c: &mut ChunkCtx,
        stmt: &Stmt,
        depth: usize,
        is_main: bool,
    ) -> Result<(), ScriptError> {
        if depth == 0 {
            c.top_line = stmt.line as u32;
        }
        let mark = c.free;
        c.emit_burn(stmt.line);
        match &stmt.kind {
            StmtKind::Expr(e) => {
                let r = self.expr(c, e)?;
                if is_main && depth == 0 {
                    c.emit(Insn::SetLast { src: r });
                }
            }
            StmtKind::Assign(Target::Name(name), value) => {
                let v = self.expr(c, value)?;
                let name_ix = self.name_ix(name)?;
                let slot = c.slot_of(name);
                c.emit(Insn::Store {
                    name: name_ix,
                    slot,
                    src: v,
                });
            }
            StmtKind::Assign(Target::Index(obj, key), value) => {
                let v = self.expr(c, value)?;
                let o = self.expr(c, obj)?;
                let k = self.expr(c, key)?;
                c.emit(Insn::SetIndex {
                    obj: o,
                    key: k,
                    src: v,
                    line: stmt.line as u32,
                });
            }
            StmtKind::AugAssign(Target::Name(name), op, value) => {
                let rhs = self.expr(c, value)?;
                let name_ix = self.name_ix(name)?;
                let slot = c.slot_of(name);
                let cur = c.alloc()?;
                c.emit(Insn::Load {
                    dst: cur,
                    name: name_ix,
                    slot,
                    line: stmt.line as u32,
                });
                c.emit(Insn::Bin {
                    op: *op,
                    dst: cur,
                    a: cur,
                    b: rhs,
                    line: stmt.line as u32,
                });
                c.emit(Insn::Store {
                    name: name_ix,
                    slot,
                    src: cur,
                });
            }
            StmtKind::AugAssign(Target::Index(obj, key), op, value) => {
                let rhs = self.expr(c, value)?;
                let o = self.expr(c, obj)?;
                let k = self.expr(c, key)?;
                let cur = c.alloc()?;
                c.emit(Insn::GetIndex {
                    dst: cur,
                    obj: o,
                    key: k,
                    line: stmt.line as u32,
                });
                c.emit(Insn::Bin {
                    op: *op,
                    dst: cur,
                    a: cur,
                    b: rhs,
                    line: stmt.line as u32,
                });
                c.emit(Insn::SetIndex {
                    obj: o,
                    key: k,
                    src: cur,
                    line: stmt.line as u32,
                });
            }
            StmtKind::If(..) => self.stmt_if(c, stmt, mark, depth, is_main)?,
            StmtKind::While(..) => self.stmt_while(c, stmt, mark, depth, is_main)?,
            StmtKind::For(..) => self.stmt_for(c, stmt, mark, depth, is_main)?,
            StmtKind::Def(name, params, body) => {
                let idx = self.compile_fn(name, params, body)?;
                let dst = c.alloc()?;
                c.emit(Insn::MakeFunc { dst, idx });
                let name_ix = self.name_ix(name)?;
                let slot = c.slot_of(name);
                c.emit(Insn::Store {
                    name: name_ix,
                    slot,
                    src: dst,
                });
            }
            StmtKind::Return(value) => {
                let src = match value {
                    Some(e) => self.expr(c, e)?,
                    None => NO_REG,
                };
                c.emit(Insn::Ret { src });
            }
            StmtKind::Break => {
                if c.loops.is_empty() {
                    c.emit(Insn::LoopMisuse { line: c.top_line });
                } else {
                    let j = c.emit(Insn::Jump { to: u32::MAX });
                    c.loops.last_mut().expect("loop context").breaks.push(j);
                }
            }
            StmtKind::Continue => {
                if let Some(to) = c.loops.last().map(|l| l.continue_to) {
                    c.emit(Insn::Jump { to });
                } else {
                    c.emit(Insn::LoopMisuse { line: c.top_line });
                }
            }
            StmtKind::Pass => {}
        }
        c.free = mark;
        Ok(())
    }

    /// `if/elif/else`: each arm tests, falls through to the next on
    /// false, and jumps past the whole chain when its body completes.
    fn stmt_if(
        &mut self,
        c: &mut ChunkCtx,
        stmt: &Stmt,
        mark: u16,
        depth: usize,
        is_main: bool,
    ) -> Result<(), ScriptError> {
        let StmtKind::If(arms, else_body) = &stmt.kind else {
            unreachable!("stmt_if routed a non-if statement");
        };
        let mut done_jumps = Vec::new();
        for (cond, body) in arms {
            let cr = self.expr(c, cond)?;
            let skip = c.emit(Insn::JumpFalse {
                src: cr,
                to: u32::MAX,
            });
            c.free = mark;
            self.block(c, body, depth + 1, is_main)?;
            done_jumps.push(c.emit(Insn::Jump { to: u32::MAX }));
            let next_arm = c.here();
            c.patch(skip, next_arm);
        }
        if let Some(body) = else_body {
            self.block(c, body, depth + 1, is_main)?;
        }
        let done = c.here();
        for j in done_jumps {
            c.patch(j, done);
        }
        Ok(())
    }

    /// `while`: test at the top, exit jump patched to after the body;
    /// `break`s collect in the loop context and patch to the same spot.
    fn stmt_while(
        &mut self,
        c: &mut ChunkCtx,
        stmt: &Stmt,
        mark: u16,
        depth: usize,
        is_main: bool,
    ) -> Result<(), ScriptError> {
        let StmtKind::While(cond, body) = &stmt.kind else {
            unreachable!("stmt_while routed a non-while statement");
        };
        let top = c.here();
        let cr = self.expr(c, cond)?;
        let exit = c.emit(Insn::JumpFalse {
            src: cr,
            to: u32::MAX,
        });
        c.free = mark;
        c.loops.push(LoopCtx {
            breaks: Vec::new(),
            continue_to: top,
        });
        self.block(c, body, depth + 1, is_main)?;
        c.emit(Insn::Jump { to: top });
        let done = c.here();
        c.patch(exit, done);
        let ctx = c.loops.pop().expect("loop context pushed above");
        for j in ctx.breaks {
            c.patch(j, done);
        }
        Ok(())
    }

    /// `for`: materialize the iterable onto the iterator stack, then
    /// `IterNext`/`Bind` per element. `IterNext` pops the iterator on
    /// exhaustion; `break` exits with it still pushed, so break targets
    /// land on an `IterPop` before rejoining the normal exit.
    fn stmt_for(
        &mut self,
        c: &mut ChunkCtx,
        stmt: &Stmt,
        mark: u16,
        depth: usize,
        is_main: bool,
    ) -> Result<(), ScriptError> {
        let StmtKind::For(vars, iterable, body) = &stmt.kind else {
            unreachable!("stmt_for routed a non-for statement");
        };
        let it = self.expr(c, iterable)?;
        c.emit(Insn::IterNew {
            src: it,
            line: stmt.line as u32,
        });
        c.free = mark;
        let item = c.alloc()?;
        let vars_ix = self.var_list_ix(vars, c)?;
        let top = c.here();
        let next = c.emit(Insn::IterNext {
            dst: item,
            done: u32::MAX,
        });
        c.emit(Insn::Bind {
            src: item,
            vars: vars_ix,
            line: stmt.line as u32,
        });
        c.loops.push(LoopCtx {
            breaks: Vec::new(),
            continue_to: top,
        });
        self.block(c, body, depth + 1, is_main)?;
        c.emit(Insn::Jump { to: top });
        let ctx = c.loops.pop().expect("loop context pushed above");
        if ctx.breaks.is_empty() {
            let done = c.here();
            c.patch(next, done);
        } else {
            let brk = c.here();
            for j in ctx.breaks {
                c.patch(j, brk);
            }
            c.emit(Insn::IterPop);
            let done = c.here();
            c.patch(next, done);
        }
        Ok(())
    }

    fn block(
        &mut self,
        c: &mut ChunkCtx,
        body: &[Stmt],
        depth: usize,
        is_main: bool,
    ) -> Result<(), ScriptError> {
        for stmt in body {
            self.stmt(c, stmt, depth, is_main)?;
        }
        Ok(())
    }

    fn expr(&mut self, c: &mut ChunkCtx, e: &Expr) -> Result<u16, ScriptError> {
        let dst = c.alloc()?;
        self.expr_into(c, e, dst)?;
        Ok(dst)
    }

    /// Compiles `e` into `dst`, restoring the register stack to its
    /// entry height (temporaries released).
    fn expr_into(&mut self, c: &mut ChunkCtx, e: &Expr, dst: u16) -> Result<(), ScriptError> {
        let mark = c.free;
        c.emit_burn(e.line);
        let line = e.line as u32;
        match &e.kind {
            ExprKind::Int(v) => {
                let idx = self.const_ix(Const::Int(*v))?;
                c.emit(Insn::Const { dst, idx });
            }
            ExprKind::Float(v) => {
                let idx = self.const_ix(Const::Float(*v))?;
                c.emit(Insn::Const { dst, idx });
            }
            ExprKind::Str(s) => {
                let idx = self.const_ix(Const::Str(s.clone()))?;
                c.emit(Insn::Const { dst, idx });
            }
            ExprKind::Bool(b) => {
                let idx = self.const_ix(Const::Bool(*b))?;
                c.emit(Insn::Const { dst, idx });
            }
            ExprKind::None => {
                let idx = self.const_ix(Const::None)?;
                c.emit(Insn::Const { dst, idx });
            }
            ExprKind::Name(name) => {
                let name_ix = self.name_ix(name)?;
                c.emit(Insn::Load {
                    dst,
                    name: name_ix,
                    slot: c.slot_of(name),
                    line,
                });
            }
            ExprKind::List(items) => {
                let base = c.free;
                for _ in items {
                    c.alloc()?;
                }
                for (i, item) in items.iter().enumerate() {
                    self.expr_into(c, item, base + i as u16)?;
                }
                c.emit(Insn::MakeList {
                    dst,
                    base,
                    n: items.len() as u16,
                });
            }
            ExprKind::Dict(pairs) => {
                c.emit(Insn::NewDict { dst });
                for (k, v) in pairs {
                    let kr = self.expr(c, k)?;
                    c.emit(Insn::DictKey { reg: kr, line });
                    let vr = self.expr(c, v)?;
                    c.emit(Insn::DictSet {
                        dict: dst,
                        key: kr,
                        val: vr,
                    });
                    c.free = mark;
                }
            }
            ExprKind::Binary(BinOp::And, lhs, rhs) => {
                self.expr_into(c, lhs, dst)?;
                let skip = c.emit(Insn::JumpFalse {
                    src: dst,
                    to: u32::MAX,
                });
                self.expr_into(c, rhs, dst)?;
                let done = c.here();
                c.patch(skip, done);
            }
            ExprKind::Binary(BinOp::Or, lhs, rhs) => {
                self.expr_into(c, lhs, dst)?;
                let skip = c.emit(Insn::JumpTrue {
                    src: dst,
                    to: u32::MAX,
                });
                self.expr_into(c, rhs, dst)?;
                let done = c.here();
                c.patch(skip, done);
            }
            ExprKind::Binary(op, lhs, rhs) => {
                let a = self.expr(c, lhs)?;
                let b = self.expr(c, rhs)?;
                c.emit(Insn::Bin {
                    op: *op,
                    dst,
                    a,
                    b,
                    line,
                });
            }
            ExprKind::Unary(UnaryOp::Neg, operand) => {
                let s = self.expr(c, operand)?;
                c.emit(Insn::Neg { dst, src: s, line });
            }
            ExprKind::Unary(UnaryOp::Not, operand) => {
                let s = self.expr(c, operand)?;
                c.emit(Insn::Not { dst, src: s });
            }
            ExprKind::Call(callee, args) => self.compile_call(c, callee, args, dst, line)?,
            ExprKind::MethodCall(obj, method, args) => {
                let o = self.expr(c, obj)?;
                let base = c.free;
                for _ in args {
                    c.alloc()?;
                }
                for (i, a) in args.iter().enumerate() {
                    self.expr_into(c, a, base + i as u16)?;
                }
                let name_ix = self.name_ix(method)?;
                c.emit(Insn::CallMethod {
                    dst,
                    obj: o,
                    name: name_ix,
                    base,
                    argc: args.len() as u16,
                    line,
                });
            }
            ExprKind::Index(obj, key) => {
                let o = self.expr(c, obj)?;
                let k = self.expr(c, key)?;
                c.emit(Insn::GetIndex {
                    dst,
                    obj: o,
                    key: k,
                    line,
                });
            }
            ExprKind::ListComp { .. } => self.compile_listcomp(c, e, dst, mark)?,
            ExprKind::Slice(obj, lo, hi) => {
                let o = self.expr(c, obj)?;
                let lo_r = self.slice_bound(c, lo.as_deref(), line)?;
                let hi_r = self.slice_bound(c, hi.as_deref(), line)?;
                c.emit(Insn::Slice {
                    dst,
                    obj: o,
                    lo: lo_r,
                    hi: hi_r,
                    line,
                });
            }
        }
        c.free = mark;
        Ok(())
    }

    /// Compiles a call: arguments land in a contiguous register window,
    /// then a named callee dispatches through `CallName` (host fn /
    /// builtin / user fn resolution at runtime) while any other callee
    /// expression is evaluated to a value for `CallValue`.
    fn compile_call(
        &mut self,
        c: &mut ChunkCtx,
        callee: &Expr,
        args: &[Expr],
        dst: u16,
        line: u32,
    ) -> Result<(), ScriptError> {
        let base = c.free;
        for _ in args {
            c.alloc()?;
        }
        for (i, a) in args.iter().enumerate() {
            self.expr_into(c, a, base + i as u16)?;
        }
        if let ExprKind::Name(name) = &callee.kind {
            let name_ix = self.name_ix(name)?;
            c.emit(Insn::CallName {
                dst,
                name: name_ix,
                slot: c.slot_of(name),
                base,
                argc: args.len() as u16,
                line,
                cline: callee.line as u32,
            });
        } else {
            let f = self.expr(c, callee)?;
            c.emit(Insn::CallValue {
                dst,
                callee: f,
                base,
                argc: args.len() as u16,
                line,
            });
        }
        Ok(())
    }

    /// Compiles a list comprehension: iterate, bind, filter, push — with
    /// the same per-item burn the interpreter charges.
    fn compile_listcomp(
        &mut self,
        c: &mut ChunkCtx,
        e: &Expr,
        dst: u16,
        mark: u16,
    ) -> Result<(), ScriptError> {
        let ExprKind::ListComp {
            element,
            vars,
            iterable,
            condition,
        } = &e.kind
        else {
            unreachable!("compile_listcomp called on a non-comprehension");
        };
        let line = e.line as u32;
        let it = self.expr(c, iterable)?;
        c.emit(Insn::IterNew { src: it, line });
        c.free = mark;
        c.emit(Insn::MakeList { dst, base: 0, n: 0 });
        let item = c.alloc()?;
        let vars_ix = self.var_list_ix(vars, c)?;
        let top = c.here();
        let next = c.emit(Insn::IterNext {
            dst: item,
            done: u32::MAX,
        });
        c.emit_burn(e.line);
        c.emit(Insn::Bind {
            src: item,
            vars: vars_ix,
            line,
        });
        if let Some(cond) = condition {
            let cr = self.expr(c, cond)?;
            c.emit(Insn::JumpFalse { src: cr, to: top });
            c.free = item + 1;
        }
        let er = self.expr(c, element)?;
        c.emit(Insn::Push { list: dst, src: er });
        c.emit(Insn::Jump { to: top });
        let done = c.here();
        c.patch(next, done);
        Ok(())
    }

    /// Compiles one optional slice bound: evaluated then coerced by
    /// `SliceIdx`; an omitted bound is `NO_REG`.
    fn slice_bound(
        &mut self,
        c: &mut ChunkCtx,
        bound: Option<&Expr>,
        line: u32,
    ) -> Result<u16, ScriptError> {
        match bound {
            Some(b) => {
                let r = self.expr(c, b)?;
                c.emit(Insn::SliceIdx { reg: r, line });
                Ok(r)
            }
            None => Ok(NO_REG),
        }
    }
}

/// Collects every name a statement list can assign in its own frame
/// (assignment targets, loop variables, `def` names, comprehension
/// variables), without descending into nested `def` bodies — those are
/// separate frames.
fn collect_assigned(stmts: &[Stmt], out: &mut Vec<String>) {
    let add = |name: &str, out: &mut Vec<String>| {
        if !out.iter().any(|n| n == name) {
            out.push(name.to_string());
        }
    };
    for s in stmts {
        match &s.kind {
            StmtKind::Expr(e) | StmtKind::Return(Some(e)) => comp_vars(e, out),
            StmtKind::Assign(target, e) | StmtKind::AugAssign(target, _, e) => {
                if let Target::Name(n) = target {
                    add(n, out);
                }
                if let Target::Index(o, k) = target {
                    comp_vars(o, out);
                    comp_vars(k, out);
                }
                comp_vars(e, out);
            }
            StmtKind::If(arms, else_body) => {
                for (cond, body) in arms {
                    comp_vars(cond, out);
                    collect_assigned(body, out);
                }
                if let Some(body) = else_body {
                    collect_assigned(body, out);
                }
            }
            StmtKind::While(cond, body) => {
                comp_vars(cond, out);
                collect_assigned(body, out);
            }
            StmtKind::For(vars, iterable, body) => {
                for v in vars {
                    add(v, out);
                }
                comp_vars(iterable, out);
                collect_assigned(body, out);
            }
            StmtKind::Def(name, _, _) => add(name, out),
            StmtKind::Return(None) | StmtKind::Break | StmtKind::Continue | StmtKind::Pass => {}
        }
    }
}

/// Collects comprehension variables from every sub-expression (they bind
/// in the enclosing frame, Python-2 style, exactly as the interpreter's
/// `bind_loop_vars` does).
fn comp_vars(e: &Expr, out: &mut Vec<String>) {
    match &e.kind {
        ExprKind::ListComp {
            element,
            vars,
            iterable,
            condition,
        } => {
            for v in vars {
                if !out.iter().any(|n| n == v) {
                    out.push(v.clone());
                }
            }
            comp_vars(element, out);
            comp_vars(iterable, out);
            if let Some(c) = condition {
                comp_vars(c, out);
            }
        }
        ExprKind::Binary(_, a, b) => {
            comp_vars(a, out);
            comp_vars(b, out);
        }
        ExprKind::Unary(_, a) => comp_vars(a, out),
        ExprKind::Call(callee, args) => {
            comp_vars(callee, out);
            for a in args {
                comp_vars(a, out);
            }
        }
        ExprKind::MethodCall(obj, _, args) => {
            comp_vars(obj, out);
            for a in args {
                comp_vars(a, out);
            }
        }
        ExprKind::Index(o, k) => {
            comp_vars(o, out);
            comp_vars(k, out);
        }
        ExprKind::Slice(o, lo, hi) => {
            comp_vars(o, out);
            if let Some(b) = lo {
                comp_vars(b, out);
            }
            if let Some(b) = hi {
                comp_vars(b, out);
            }
        }
        ExprKind::List(items) => {
            for i in items {
                comp_vars(i, out);
            }
        }
        ExprKind::Dict(pairs) => {
            for (k, v) in pairs {
                comp_vars(k, out);
                comp_vars(v, out);
            }
        }
        ExprKind::Int(_)
        | ExprKind::Float(_)
        | ExprKind::Str(_)
        | ExprKind::Bool(_)
        | ExprKind::None
        | ExprKind::Name(_) => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn compiled(src: &str) -> CompiledProgram {
        compile_source(src).expect("compiles")
    }

    #[test]
    fn compiles_straight_line_code() {
        let p = compiled("x = 1\ny = x + 2\ny");
        assert!(p
            .main
            .code
            .iter()
            .any(|i| matches!(i, Insn::SetLast { .. })));
        assert!(p.main.code.iter().any(|i| matches!(i, Insn::Halt)));
        assert!(!p.main.code.is_empty());
    }

    #[test]
    fn burns_merge_only_without_labels() {
        // `x = 1` is one statement burn plus one literal burn, mergeable.
        let p = compiled("x = 1");
        let burns: Vec<u32> = p
            .main
            .code
            .iter()
            .filter_map(|i| match i {
                Insn::Burn { n, .. } => Some(*n),
                _ => None,
            })
            .collect();
        assert_eq!(burns, vec![2]);
        // A while-loop condition re-enters at a label: its burn must not
        // merge into the statement burn before the loop.
        let p = compiled("x = 0\nwhile x < 2:\n    x = x + 1");
        let merged_across_label = p
            .main
            .code
            .iter()
            .any(|i| matches!(i, Insn::Burn { n, .. } if *n > 3));
        assert!(!merged_across_label);
    }

    #[test]
    fn functions_get_local_slots() {
        let p = compiled("def f(a, b):\n    c = a + b\n    return c\nf(1, 2)");
        assert_eq!(p.funcs.len(), 1);
        let f = &p.funcs[0];
        assert_eq!(f.params, vec!["a", "b"]);
        assert_eq!(f.locals, vec!["a", "b", "c"]);
        assert!(f
            .chunk
            .code
            .iter()
            .any(|i| matches!(i, Insn::Store { slot, .. } if *slot != NO_REG)));
    }

    #[test]
    fn listcomp_vars_are_frame_locals() {
        let p = compiled("def f(xs):\n    ys = [x * 2 for x in xs]\n    return ys");
        assert_eq!(p.funcs[0].locals, vec!["xs", "ys", "x"]);
    }

    #[test]
    fn roundtrip_encode_decode() {
        let src = "total = 0\nfor n in [1, 2, 3]:\n    if n % 2 == 1:\n        total += n\nd = {'k': total}\ntotal";
        let p = compiled(src);
        let encoded = p.encode();
        let back = CompiledProgram::decode(&encoded).expect("decodes");
        assert_eq!(back.consts, p.consts);
        assert_eq!(back.names, p.names);
        assert_eq!(back.var_lists, p.var_lists);
        assert_eq!(back.main, p.main);
        assert_eq!(back.funcs.len(), p.funcs.len());
        for (a, b) in back.funcs.iter().zip(&p.funcs) {
            assert_eq!(a.chunk, b.chunk);
            assert_eq!(a.locals, b.locals);
        }
        // The static cost bound round-trips exactly.
        assert_eq!(back.bound, p.bound);
    }

    #[test]
    fn roundtrip_preserves_unbounded_bound() {
        let p = compiled("i = 10\nwhile i > 0:\n    i = i - 1\ni");
        assert!(p.bound.unbounded);
        let back = CompiledProgram::decode(&p.encode()).expect("decodes");
        assert_eq!(back.bound, p.bound);
    }

    #[test]
    fn version_1_artifacts_decode_and_recompute_bound() {
        let p = compiled("total = 0\nfor i in range(4):\n    total += i\ntotal");
        // Rebuild the artifact as a version-1 body: old header, no
        // bound section.
        let body = p.body_text(false);
        let v1_body: String = body
            .lines()
            .take_while(|l| !l.starts_with("bound "))
            .map(|l| {
                if l == "version 2" {
                    "version 1\n".to_string()
                } else {
                    format!("{l}\n")
                }
            })
            .collect();
        let encoded = encode_file(BYTECODE_MAGIC, &v1_body);
        let back = CompiledProgram::decode(&encoded).expect("v1 decodes");
        assert_eq!(back.main, p.main);
        // The bound is recomputed from the decoded instructions and
        // matches what compile() produced.
        assert_eq!(back.bound, p.bound);
    }

    #[test]
    fn decode_rejects_corruption() {
        let p = compiled("x = 1");
        let mut encoded = p.encode();
        encoded.push_str("i halt\n");
        assert!(CompiledProgram::decode(&encoded).is_err());
        assert!(CompiledProgram::decode("garbage").is_err());
    }

    #[test]
    fn content_hash_ignores_line_metadata() {
        // A leading comment shifts every source line but produces the
        // same canonical bytecode.
        let a = compiled("x = 1\nx + 2");
        let b = compiled("# shifted by a comment line\nx = 1\nx + 2");
        assert_eq!(a.content_hash(), b.content_hash());
        assert_eq!(a.content_hash_hex().len(), 32);
        // Different instructions hash differently.
        let c = compiled("x = 1\nx + 3");
        assert_ne!(a.content_hash(), c.content_hash());
    }

    #[test]
    fn plan_hash_is_none_for_invalid_source() {
        assert!(plan_content_hash("x = ").is_none());
        assert!(plan_content_hash("x = 1").is_some());
        assert_eq!(
            plan_content_hash("x = 1"),
            plan_content_hash("x = 1  # same plan")
        );
    }
}
