//! Indentation-sensitive tokenizer.
//!
//! Produces a flat token stream with explicit `Indent`/`Dedent`/`Newline`
//! tokens, Python-style: a stack of indentation widths is maintained, blank
//! lines and `#` comments are skipped, and brackets suppress newline
//! significance so multi-line calls and literals work.

use crate::error::ScriptError;

/// A lexical token with its source position.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// Token kind/payload.
    pub kind: Tok,
    /// 1-based source line.
    pub line: usize,
    /// 1-based source column (character offset) of the token start.
    /// Layout tokens report the column the layout change takes effect at.
    pub col: usize,
}

/// Token kinds.
#[derive(Debug, Clone, PartialEq)]
pub enum Tok {
    // Literals and names
    Int(i64),
    Float(f64),
    Str(String),
    Name(String),
    // Keywords
    Def,
    Return,
    If,
    Elif,
    Else,
    For,
    While,
    In,
    Break,
    Continue,
    Pass,
    And,
    Or,
    Not,
    True,
    False,
    None,
    // Operators & punctuation
    Plus,
    Minus,
    Star,
    Slash,
    DoubleSlash,
    Percent,
    Eq,      // =
    PlusEq,  // +=
    MinusEq, // -=
    EqEq,    // ==
    NotEq,   // !=
    Lt,
    LtEq,
    Gt,
    GtEq,
    LParen,
    RParen,
    LBracket,
    RBracket,
    LBrace,
    RBrace,
    Comma,
    Colon,
    Dot,
    // Layout
    Newline,
    Indent,
    Dedent,
    Eof,
}

/// Tokenizes Pyrite source.
pub fn lex(source: &str) -> Result<Vec<Token>, ScriptError> {
    let mut tokens = Vec::new();
    let mut indents: Vec<usize> = vec![0];
    let mut depth = 0usize; // bracket nesting
    let mut line_no = 0usize;

    for raw_line in source.split('\n') {
        line_no += 1;
        if depth == 0 {
            // Measure indentation; skip blank/comment-only lines.
            let trimmed = raw_line.trim_start();
            if trimmed.is_empty() || trimmed.starts_with('#') {
                continue;
            }
            let indent = raw_line.len() - trimmed.len();
            if raw_line[..indent].contains('\t') {
                return Err(ScriptError::Lex {
                    line: line_no,
                    col: 1,
                    message: "tabs are not allowed in indentation".into(),
                });
            }
            let current = *indents.last().expect("indent stack never empty");
            if indent > current {
                indents.push(indent);
                tokens.push(Token {
                    kind: Tok::Indent,
                    line: line_no,
                    col: indent + 1,
                });
            } else if indent < current {
                while *indents.last().unwrap() > indent {
                    indents.pop();
                    tokens.push(Token {
                        kind: Tok::Dedent,
                        line: line_no,
                        col: indent + 1,
                    });
                }
                if *indents.last().unwrap() != indent {
                    return Err(ScriptError::Lex {
                        line: line_no,
                        col: indent + 1,
                        message: "inconsistent indentation".into(),
                    });
                }
            }
        }

        lex_line(raw_line, line_no, &mut tokens, &mut depth)?;

        if depth == 0 {
            // Emit a newline if the line produced any real tokens.
            if tokens
                .last()
                .is_some_and(|t| !matches!(t.kind, Tok::Newline | Tok::Indent | Tok::Dedent))
            {
                tokens.push(Token {
                    kind: Tok::Newline,
                    line: line_no,
                    col: raw_line.chars().count() + 1,
                });
            }
        }
    }

    if depth > 0 {
        return Err(ScriptError::Lex {
            line: line_no,
            col: 0,
            message: "unclosed bracket".into(),
        });
    }
    while indents.len() > 1 {
        indents.pop();
        tokens.push(Token {
            kind: Tok::Dedent,
            line: line_no,
            col: 1,
        });
    }
    tokens.push(Token {
        kind: Tok::Eof,
        line: line_no,
        col: 1,
    });
    Ok(tokens)
}

fn lex_line(
    line: &str,
    line_no: usize,
    tokens: &mut Vec<Token>,
    depth: &mut usize,
) -> Result<(), ScriptError> {
    let push = |tokens: &mut Vec<Token>, kind: Tok, col: usize| {
        tokens.push(Token {
            kind,
            line: line_no,
            col,
        })
    };
    let bytes: Vec<char> = line.chars().collect();
    let mut i = 0usize;
    while i < bytes.len() {
        let c = bytes[i];
        match c {
            ' ' | '\t' | '\r' => i += 1,
            '#' => break,
            '0'..='9' => {
                let start = i;
                let col = start + 1;
                let mut saw_dot = false;
                while i < bytes.len()
                    && (bytes[i].is_ascii_digit() || (bytes[i] == '.' && !saw_dot))
                {
                    // A dot followed by a non-digit is method syntax, not a float.
                    if bytes[i] == '.' {
                        if i + 1 >= bytes.len() || !bytes[i + 1].is_ascii_digit() {
                            break;
                        }
                        saw_dot = true;
                    }
                    i += 1;
                }
                let text: String = bytes[start..i].iter().collect();
                if saw_dot {
                    let f = text.parse::<f64>().map_err(|_| ScriptError::Lex {
                        line: line_no,
                        col,
                        message: format!("bad float literal '{text}'"),
                    })?;
                    push(tokens, Tok::Float(f), col);
                } else {
                    let v = text.parse::<i64>().map_err(|_| ScriptError::Lex {
                        line: line_no,
                        col,
                        message: format!("bad int literal '{text}'"),
                    })?;
                    push(tokens, Tok::Int(v), col);
                }
            }
            '"' | '\'' => {
                let quote = c;
                let col = i + 1;
                i += 1;
                let mut text = String::new();
                let mut closed = false;
                while i < bytes.len() {
                    let ch = bytes[i];
                    if ch == '\\' && i + 1 < bytes.len() {
                        let esc = bytes[i + 1];
                        text.push(match esc {
                            'n' => '\n',
                            't' => '\t',
                            'r' => '\r',
                            '\\' => '\\',
                            '\'' => '\'',
                            '"' => '"',
                            other => other,
                        });
                        i += 2;
                    } else if ch == quote {
                        closed = true;
                        i += 1;
                        break;
                    } else {
                        text.push(ch);
                        i += 1;
                    }
                }
                if !closed {
                    return Err(ScriptError::Lex {
                        line: line_no,
                        col,
                        message: "unterminated string literal".into(),
                    });
                }
                push(tokens, Tok::Str(text), col);
            }
            c if c.is_alphabetic() || c == '_' => {
                let start = i;
                let col = start + 1;
                while i < bytes.len() && (bytes[i].is_alphanumeric() || bytes[i] == '_') {
                    i += 1;
                }
                let word: String = bytes[start..i].iter().collect();
                push(
                    tokens,
                    match word.as_str() {
                        "def" => Tok::Def,
                        "return" => Tok::Return,
                        "if" => Tok::If,
                        "elif" => Tok::Elif,
                        "else" => Tok::Else,
                        "for" => Tok::For,
                        "while" => Tok::While,
                        "in" => Tok::In,
                        "break" => Tok::Break,
                        "continue" => Tok::Continue,
                        "pass" => Tok::Pass,
                        "and" => Tok::And,
                        "or" => Tok::Or,
                        "not" => Tok::Not,
                        "True" => Tok::True,
                        "False" => Tok::False,
                        "None" => Tok::None,
                        _ => Tok::Name(word),
                    },
                    col,
                );
            }
            _ => {
                let col = i + 1;
                let two: String = bytes[i..bytes.len().min(i + 2)].iter().collect();
                let (kind, advance) = match two.as_str() {
                    "==" => (Tok::EqEq, 2),
                    "!=" => (Tok::NotEq, 2),
                    "<=" => (Tok::LtEq, 2),
                    ">=" => (Tok::GtEq, 2),
                    "+=" => (Tok::PlusEq, 2),
                    "-=" => (Tok::MinusEq, 2),
                    "//" => (Tok::DoubleSlash, 2),
                    _ => {
                        let kind = match c {
                            '+' => Tok::Plus,
                            '-' => Tok::Minus,
                            '*' => Tok::Star,
                            '/' => Tok::Slash,
                            '%' => Tok::Percent,
                            '=' => Tok::Eq,
                            '<' => Tok::Lt,
                            '>' => Tok::Gt,
                            '(' => {
                                *depth += 1;
                                Tok::LParen
                            }
                            ')' => {
                                *depth = depth.saturating_sub(1);
                                Tok::RParen
                            }
                            '[' => {
                                *depth += 1;
                                Tok::LBracket
                            }
                            ']' => {
                                *depth = depth.saturating_sub(1);
                                Tok::RBracket
                            }
                            '{' => {
                                *depth += 1;
                                Tok::LBrace
                            }
                            '}' => {
                                *depth = depth.saturating_sub(1);
                                Tok::RBrace
                            }
                            ',' => Tok::Comma,
                            ':' => Tok::Colon,
                            '.' => Tok::Dot,
                            other => {
                                return Err(ScriptError::Lex {
                                    line: line_no,
                                    col,
                                    message: format!("unexpected character '{other}'"),
                                })
                            }
                        };
                        (kind, 1)
                    }
                };
                push(tokens, kind, col);
                i += advance;
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<Tok> {
        lex(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn lexes_assignment() {
        assert_eq!(
            kinds("x = 42"),
            vec![
                Tok::Name("x".into()),
                Tok::Eq,
                Tok::Int(42),
                Tok::Newline,
                Tok::Eof
            ]
        );
    }

    #[test]
    fn lexes_floats_and_method_dots() {
        assert_eq!(
            kinds("y = 3.5"),
            vec![
                Tok::Name("y".into()),
                Tok::Eq,
                Tok::Float(3.5),
                Tok::Newline,
                Tok::Eof
            ]
        );
        // `5.lower` style never appears, but `x.lower` must not eat the dot.
        let toks = kinds("s.lower()");
        assert!(toks.contains(&Tok::Dot));
    }

    #[test]
    fn lexes_strings_with_escapes() {
        assert_eq!(
            kinds(r#"s = "a\nb""#),
            vec![
                Tok::Name("s".into()),
                Tok::Eq,
                Tok::Str("a\nb".into()),
                Tok::Newline,
                Tok::Eof
            ]
        );
        assert_eq!(kinds("t = 'hi'")[2], Tok::Str("hi".into()));
    }

    #[test]
    fn unterminated_string_errors() {
        assert!(lex("s = \"oops").is_err());
    }

    #[test]
    fn indentation_produces_indent_dedent() {
        let toks = kinds("if x:\n    y = 1\nz = 2");
        let indents = toks.iter().filter(|t| matches!(t, Tok::Indent)).count();
        let dedents = toks.iter().filter(|t| matches!(t, Tok::Dedent)).count();
        assert_eq!(indents, 1);
        assert_eq!(dedents, 1);
    }

    #[test]
    fn trailing_block_dedents_at_eof() {
        let toks = kinds("if x:\n    y = 1");
        assert!(matches!(toks[toks.len() - 2], Tok::Dedent));
        assert!(matches!(toks[toks.len() - 1], Tok::Eof));
    }

    #[test]
    fn blank_lines_and_comments_skipped() {
        let toks = kinds("x = 1\n\n# comment\n   \ny = 2");
        let newlines = toks.iter().filter(|t| matches!(t, Tok::Newline)).count();
        assert_eq!(newlines, 2);
    }

    #[test]
    fn brackets_allow_multiline() {
        let toks = kinds("x = [1,\n     2,\n     3]");
        let newlines = toks.iter().filter(|t| matches!(t, Tok::Newline)).count();
        assert_eq!(newlines, 1);
        assert!(!toks.contains(&Tok::Indent));
    }

    #[test]
    fn unclosed_bracket_errors() {
        assert!(lex("x = (1, 2").is_err());
    }

    #[test]
    fn inconsistent_indentation_errors() {
        assert!(lex("if x:\n    y = 1\n  z = 2").is_err());
    }

    #[test]
    fn two_char_operators() {
        let toks = kinds("a == b != c <= d >= e // f");
        assert!(toks.contains(&Tok::EqEq));
        assert!(toks.contains(&Tok::NotEq));
        assert!(toks.contains(&Tok::LtEq));
        assert!(toks.contains(&Tok::GtEq));
        assert!(toks.contains(&Tok::DoubleSlash));
    }

    #[test]
    fn keywords_are_not_names() {
        let toks = kinds("for x in items:\n    pass");
        assert!(toks.contains(&Tok::For));
        assert!(toks.contains(&Tok::In));
        assert!(toks.contains(&Tok::Pass));
        assert!(toks.contains(&Tok::Name("items".into())));
    }

    #[test]
    fn columns_are_tracked() {
        let toks = lex("x = 41 + y").unwrap();
        let y = toks
            .iter()
            .find(|t| t.kind == Tok::Name("y".into()))
            .unwrap();
        assert_eq!((y.line, y.col), (1, 10));
        let err = lex("x = 1 @").unwrap_err();
        assert_eq!(err.col(), Some(7));
    }

    #[test]
    fn line_numbers_are_tracked() {
        let toks = lex("x = 1\ny = 2").unwrap();
        let y = toks
            .iter()
            .find(|t| t.kind == Tok::Name("y".into()))
            .unwrap();
        assert_eq!(y.line, 2);
    }
}
