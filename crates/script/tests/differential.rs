//! Differential oracle: the tree-walking interpreter and the bytecode VM
//! must be observationally identical on every program.
//!
//! For each program (fixture or proptest-generated) both engines run with
//! the same fuel budget and the same recording host tools, and must
//! agree on:
//!
//! * the result — value (via `Display`) or error (via `Display`),
//! * the host-function call sequence (tool-dispatch trace),
//! * captured `print` output,
//! * remaining fuel (virtual budget charged).
//!
//! A fuel-cutoff sweep additionally checks parity at *every* possible
//! exhaustion point, and a round-trip property pins the serialized
//! artifact format.

use aida_script::bytecode::{compile_source, CompiledProgram};
use aida_script::{Interpreter, ToolSig, TypeEnv};
use std::cell::RefCell;
use std::rc::Rc;

mod common;
use common::{instrument, observe_interp, observe_vm, Observed};

#[track_caller]
fn assert_parity(src: &str, fuel: u64) -> Observed {
    let a = observe_interp(src, fuel);
    let b = observe_vm(src, fuel);
    assert_eq!(a, b, "interpreter and VM diverged on:\n{src}");
    a
}

/// Agent-step-shaped fixtures: the program shapes the simulated planner
/// policies emit, plus targeted edge cases (errors included — both
/// engines must fail identically).
const FIXTURES: &[&str] = &[
    // CSV ratio scan (policy shape).
    "files = list_files()\ntotal = 0\nfor f in files:\n    if 'csv' in f:\n        text = read_file(f)\n        lines = text.splitlines()\n        for line in lines[1:]:\n            parts = line.split(',')\n            total += int(parts[1])\nemit(total)\ntotal",
    // Keyword filter with listcomp (policy shape).
    "files = list_files()\nhits = [f for f in files if 'csv' in f]\nfor f in hits:\n    print('FILE: ' + f)\nlen(hits)",
    // Helper function with slicing and split (policy shape).
    "def count(name):\n    text = read_file(name)\n    return len(text.split(','))\ntotals = [count(f) for f in list_files() if f != 'notes.txt']\nsum(totals)",
    // Dict accumulation.
    "counts = {}\nfor f in list_files():\n    ext = f.split('.')[1]\n    if ext in counts:\n        counts[ext] += 1\n    else:\n        counts[ext] = 1\nsorted(counts)",
    // While + break + continue.
    "n = 0\nacc = 0\nwhile True:\n    n += 1\n    if n > 20:\n        break\n    if n % 3 != 0:\n        continue\n    acc += n\nacc",
    // Nested functions, recursion, late binding.
    "def outer(n):\n    return inner(n) + 1\ndef inner(n):\n    if n == 0:\n        return 0\n    return outer(n - 1)\nouter(7)",
    // Multi-target for unpack.
    "pairs = [[1, 'a'], [2, 'b']]\nout = ''\nfor n, s in pairs:\n    out += s * n\nout",
    // String/negative indexing and slices.
    "s = 'hello world'\nemit(s[0], s[-1], s[2:5], s[:3], s[6:])\ns[4]",
    // Aug-assign through an index, evaluated once.
    "d = {'k': 1}\nd['k'] += 41\nxs = [10, 20]\nxs[1] += 5\nemit(d['k'], xs[1])\nd['k']",
    // Boolean short-circuit values (not just truthiness).
    "a = 0 or 'dflt'\nb = 'x' and 3\nemit(a, b)\n[a, b]",
    // Comprehension over string and dict.
    "d = {'b': 1, 'a': 2}\nks = [k for k in d]\ncs = [c for c in 'abc' if c != 'b']\nemit(ks, cs)\nlen(ks) + len(cs)",
    // Mutation through a function boundary (shared list identity).
    "def add(xs, v):\n    xs.append(v)\nitems = []\nadd(items, 1)\nadd(items, 2)\nitems",
    // Top-level return ends the program early.
    "x = 1\nif x == 1:\n    return 'early'\nx = 2\nx",
    // print capture.
    "for i in range(3):\n    print('line', i)\n'done'",
    // --- error fixtures: engines must produce identical errors ---
    // Name error inside a branch.
    "x = 1\nif x > 0:\n    y = missing_name\nx",
    // Type error: adding str and int.
    "a = 'x'\nb = a + 1\nb",
    // Break outside loop (caught at runtime, attributed to the statement).
    "x = 1\nbreak",
    // Break outside loop inside a function body.
    "def f():\n    break\nf()",
    // Arity mismatch on a user function.
    "def f(a, b):\n    return a\nf(1)",
    // Calling a non-callable.
    "x = 3\nx()",
    // Unpack length mismatch.
    "for a, b in [[1, 2, 3]]:\n    a",
    // Dict key type error.
    "d = {1: 'x'}\nd",
    // Division by zero.
    "x = 1 / 0\nx",
    // Recursion limit.
    "def f(n):\n    return f(n + 1)\nf(0)",
    // Slice bound type error.
    "xs = [1, 2, 3]\nxs['a':2]",
    // Shadowing: assigning over a builtin name then calling it.
    "len = 5\nemit(len)\nlen",
];

#[test]
fn fixtures_agree() {
    for src in FIXTURES {
        assert_parity(src, 100_000);
    }
}

#[test]
fn fuel_cutoff_sweep_agrees_at_every_budget() {
    // Every prefix budget must exhaust at the same instant with the same
    // partial side effects on both engines.
    let sweep: &[&str] = &[
        FIXTURES[0],
        FIXTURES[2],
        FIXTURES[4],
        FIXTURES[5],
        "xs = [n * n for n in range(8) if n % 2 == 0]\nemit(xs)\nlen(xs)",
    ];
    for src in sweep {
        let full = assert_parity(src, 100_000);
        let spent = 100_000 - full.fuel_remaining;
        for fuel in 0..=spent + 1 {
            assert_parity(src, fuel);
        }
    }
}

#[test]
fn compiled_artifacts_round_trip_and_rerun() {
    for src in FIXTURES {
        let Ok(program) = compile_source(src) else {
            continue;
        };
        let encoded = program.encode();
        let decoded = CompiledProgram::decode(&encoded).expect("artifact decodes");
        assert_eq!(decoded.main, program.main, "main chunk drifted for:\n{src}");
        assert_eq!(decoded.consts, program.consts);
        assert_eq!(decoded.names, program.names);
        assert_eq!(decoded.var_lists, program.var_lists);
        assert_eq!(
            decoded.content_hash(),
            program.content_hash(),
            "content hash not stable across encode/decode for:\n{src}"
        );
        // The decoded artifact must execute identically too (functions
        // run from their chunks even with stub AST bodies).
        let trace_a = Rc::new(RefCell::new(Vec::new()));
        let mut ia = Interpreter::new().with_fuel(100_000);
        instrument(&mut ia, trace_a.clone());
        let ra = ia.run_compiled(&program).map(|v| v.to_string());
        let trace_b = Rc::new(RefCell::new(Vec::new()));
        let mut ib = Interpreter::new().with_fuel(100_000);
        instrument(&mut ib, trace_b.clone());
        let rb = ib.run_compiled(&decoded).map(|v| v.to_string());
        assert_eq!(
            ra.map_err(|e| e.to_string()),
            rb.map_err(|e| e.to_string()),
            "decoded artifact diverged for:\n{src}"
        );
        assert_eq!(trace_a.borrow().clone(), trace_b.borrow().clone());
        assert_eq!(ia.fuel_remaining(), ib.fuel_remaining());
    }
}

#[test]
fn typecheck_rejects_ill_typed_fixtures_before_any_execution() {
    // Script-layer zero-spend guarantee: programs the typechecker
    // rejects never reach either engine, so no tools run and no fuel is
    // charged.
    let mut env = TypeEnv::new();
    for (name, sig) in [
        ("list_files", "list_files() -> list[str]"),
        ("read_file", "read_file(name: str) -> str"),
        ("emit", "emit(value) -> None"),
    ] {
        env.add_tool_signature(name, sig);
    }
    let ill_typed = [
        "print(x)\nx = 1",
        "read_file(42)",
        "read_file('a.csv', 'extra')",
        "x = 'a' + 1",
        "x = 3\nx()",
    ];
    for src in ill_typed {
        let program = aida_script::parser::parse(src).expect("parses");
        let err = aida_script::typecheck(&program, &env).expect_err(src);
        assert!(matches!(err, aida_script::ScriptError::Type { .. }));
    }
    // The well-typed fixtures must not be rejected (no false positives
    // on the agent corpus shapes) — except those designed to be
    // ill-typed, which the runtime fixtures above already cover.
    let well_typed = [
        FIXTURES[0],
        FIXTURES[1],
        FIXTURES[2],
        FIXTURES[3],
        FIXTURES[4],
    ];
    for src in well_typed {
        let program = aida_script::parser::parse(src).expect("parses");
        assert!(
            aida_script::typecheck(&program, &env).is_ok(),
            "false positive on corpus program:\n{src}"
        );
    }
}

#[test]
fn tool_signature_parsing_matches_registry_style() {
    let sig = ToolSig::parse(
        "sem_extract_tool(instruction: str, field: str, filenames: list[str]) -> list",
    )
    .expect("parses");
    assert_eq!(sig.params.len(), 3);
}

mod generated {
    use super::*;
    use common::templates::{render_program, tpl};
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(96))]

        #[test]
        fn generated_programs_agree(stmts in prop::collection::vec(tpl(), 1..7)) {
            let src = render_program(&stmts);
            let a = super::observe_interp(&src, 20_000);
            let b = super::observe_vm(&src, 20_000);
            prop_assert_eq!(a, b, "diverged on generated program:\n{}", src);
        }

        #[test]
        fn generated_programs_agree_under_tight_fuel(
            stmts in prop::collection::vec(tpl(), 1..6),
            fuel in 0u64..400,
        ) {
            let src = render_program(&stmts);
            let a = super::observe_interp(&src, fuel);
            let b = super::observe_vm(&src, fuel);
            prop_assert_eq!(a, b, "diverged at fuel {} on:\n{}", fuel, src);
        }

        #[test]
        fn generated_bytecode_round_trips(stmts in prop::collection::vec(tpl(), 1..6)) {
            let src = render_program(&stmts);
            let program = compile_source(&src).expect("templates always parse");
            let decoded = CompiledProgram::decode(&program.encode()).expect("decodes");
            prop_assert_eq!(&decoded.main, &program.main);
            prop_assert_eq!(&decoded.consts, &program.consts);
            prop_assert_eq!(&decoded.names, &program.names);
            prop_assert_eq!(&decoded.var_lists, &program.var_lists);
            prop_assert_eq!(decoded.content_hash(), program.content_hash());
            prop_assert_eq!(decoded.funcs.len(), program.funcs.len());
        }
    }
}
