//! Differential oracle: the tree-walking interpreter and the bytecode VM
//! must be observationally identical on every program.
//!
//! For each program (fixture or proptest-generated) both engines run with
//! the same fuel budget and the same recording host tools, and must
//! agree on:
//!
//! * the result — value (via `Display`) or error (via `Display`),
//! * the host-function call sequence (tool-dispatch trace),
//! * captured `print` output,
//! * remaining fuel (virtual budget charged).
//!
//! A fuel-cutoff sweep additionally checks parity at *every* possible
//! exhaustion point, and a round-trip property pins the serialized
//! artifact format.

use aida_script::bytecode::{compile_source, CompiledProgram};
use aida_script::{Interpreter, ScriptValue, ToolSig, TypeEnv};
use std::cell::RefCell;
use std::rc::Rc;

/// Everything observable about one engine run.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Observed {
    /// `Ok: <value>` or `Err: <error display>`.
    result: String,
    /// Host (tool) calls in order, with rendered arguments.
    trace: Vec<String>,
    /// Captured `print` lines.
    output: Vec<String>,
    /// Fuel left after the run.
    fuel_remaining: u64,
}

fn instrument(interp: &mut Interpreter, trace: Rc<RefCell<Vec<String>>>) {
    let t = trace.clone();
    interp.bind_host_fn("list_files", move |args| {
        t.borrow_mut().push(format!("list_files/{}", args.len()));
        Ok(ScriptValue::list(vec![
            ScriptValue::str("a.csv"),
            ScriptValue::str("b.csv"),
            ScriptValue::str("notes.txt"),
        ]))
    });
    let t = trace.clone();
    interp.bind_host_fn("read_file", move |args| {
        let name = args[0].as_str()?.to_string();
        t.borrow_mut().push(format!("read_file({name})"));
        Ok(ScriptValue::str(match name.as_str() {
            "a.csv" => "year,count\n2001,10\n2002,30",
            "b.csv" => "year,count\n2001,5",
            _ => "plain text notes",
        }))
    });
    let t = trace;
    interp.bind_host_fn("emit", move |args| {
        let rendered: Vec<String> = args.iter().map(|a| a.to_string()).collect();
        t.borrow_mut()
            .push(format!("emit({})", rendered.join(", ")));
        Ok(ScriptValue::None)
    });
}

fn observe_interp(src: &str, fuel: u64) -> Observed {
    let trace = Rc::new(RefCell::new(Vec::new()));
    let mut interp = Interpreter::new().with_fuel(fuel);
    instrument(&mut interp, trace.clone());
    let result = match interp.run(src) {
        Ok(v) => format!("Ok: {v}"),
        Err(e) => format!("Err: {e}"),
    };
    let calls = trace.borrow().clone();
    Observed {
        result,
        trace: calls,
        output: interp.take_output(),
        fuel_remaining: interp.fuel_remaining(),
    }
}

fn observe_vm(src: &str, fuel: u64) -> Observed {
    let trace = Rc::new(RefCell::new(Vec::new()));
    let mut interp = Interpreter::new().with_fuel(fuel);
    instrument(&mut interp, trace.clone());
    let result = match compile_source(src).and_then(|p| interp.run_compiled(&p)) {
        Ok(v) => format!("Ok: {v}"),
        Err(e) => format!("Err: {e}"),
    };
    let calls = trace.borrow().clone();
    Observed {
        result,
        trace: calls,
        output: interp.take_output(),
        fuel_remaining: interp.fuel_remaining(),
    }
}

#[track_caller]
fn assert_parity(src: &str, fuel: u64) -> Observed {
    let a = observe_interp(src, fuel);
    let b = observe_vm(src, fuel);
    assert_eq!(a, b, "interpreter and VM diverged on:\n{src}");
    a
}

/// Agent-step-shaped fixtures: the program shapes the simulated planner
/// policies emit, plus targeted edge cases (errors included — both
/// engines must fail identically).
const FIXTURES: &[&str] = &[
    // CSV ratio scan (policy shape).
    "files = list_files()\ntotal = 0\nfor f in files:\n    if 'csv' in f:\n        text = read_file(f)\n        lines = text.splitlines()\n        for line in lines[1:]:\n            parts = line.split(',')\n            total += int(parts[1])\nemit(total)\ntotal",
    // Keyword filter with listcomp (policy shape).
    "files = list_files()\nhits = [f for f in files if 'csv' in f]\nfor f in hits:\n    print('FILE: ' + f)\nlen(hits)",
    // Helper function with slicing and split (policy shape).
    "def count(name):\n    text = read_file(name)\n    return len(text.split(','))\ntotals = [count(f) for f in list_files() if f != 'notes.txt']\nsum(totals)",
    // Dict accumulation.
    "counts = {}\nfor f in list_files():\n    ext = f.split('.')[1]\n    if ext in counts:\n        counts[ext] += 1\n    else:\n        counts[ext] = 1\nsorted(counts)",
    // While + break + continue.
    "n = 0\nacc = 0\nwhile True:\n    n += 1\n    if n > 20:\n        break\n    if n % 3 != 0:\n        continue\n    acc += n\nacc",
    // Nested functions, recursion, late binding.
    "def outer(n):\n    return inner(n) + 1\ndef inner(n):\n    if n == 0:\n        return 0\n    return outer(n - 1)\nouter(7)",
    // Multi-target for unpack.
    "pairs = [[1, 'a'], [2, 'b']]\nout = ''\nfor n, s in pairs:\n    out += s * n\nout",
    // String/negative indexing and slices.
    "s = 'hello world'\nemit(s[0], s[-1], s[2:5], s[:3], s[6:])\ns[4]",
    // Aug-assign through an index, evaluated once.
    "d = {'k': 1}\nd['k'] += 41\nxs = [10, 20]\nxs[1] += 5\nemit(d['k'], xs[1])\nd['k']",
    // Boolean short-circuit values (not just truthiness).
    "a = 0 or 'dflt'\nb = 'x' and 3\nemit(a, b)\n[a, b]",
    // Comprehension over string and dict.
    "d = {'b': 1, 'a': 2}\nks = [k for k in d]\ncs = [c for c in 'abc' if c != 'b']\nemit(ks, cs)\nlen(ks) + len(cs)",
    // Mutation through a function boundary (shared list identity).
    "def add(xs, v):\n    xs.append(v)\nitems = []\nadd(items, 1)\nadd(items, 2)\nitems",
    // Top-level return ends the program early.
    "x = 1\nif x == 1:\n    return 'early'\nx = 2\nx",
    // print capture.
    "for i in range(3):\n    print('line', i)\n'done'",
    // --- error fixtures: engines must produce identical errors ---
    // Name error inside a branch.
    "x = 1\nif x > 0:\n    y = missing_name\nx",
    // Type error: adding str and int.
    "a = 'x'\nb = a + 1\nb",
    // Break outside loop (caught at runtime, attributed to the statement).
    "x = 1\nbreak",
    // Break outside loop inside a function body.
    "def f():\n    break\nf()",
    // Arity mismatch on a user function.
    "def f(a, b):\n    return a\nf(1)",
    // Calling a non-callable.
    "x = 3\nx()",
    // Unpack length mismatch.
    "for a, b in [[1, 2, 3]]:\n    a",
    // Dict key type error.
    "d = {1: 'x'}\nd",
    // Division by zero.
    "x = 1 / 0\nx",
    // Recursion limit.
    "def f(n):\n    return f(n + 1)\nf(0)",
    // Slice bound type error.
    "xs = [1, 2, 3]\nxs['a':2]",
    // Shadowing: assigning over a builtin name then calling it.
    "len = 5\nemit(len)\nlen",
];

#[test]
fn fixtures_agree() {
    for src in FIXTURES {
        assert_parity(src, 100_000);
    }
}

#[test]
fn fuel_cutoff_sweep_agrees_at_every_budget() {
    // Every prefix budget must exhaust at the same instant with the same
    // partial side effects on both engines.
    let sweep: &[&str] = &[
        FIXTURES[0],
        FIXTURES[2],
        FIXTURES[4],
        FIXTURES[5],
        "xs = [n * n for n in range(8) if n % 2 == 0]\nemit(xs)\nlen(xs)",
    ];
    for src in sweep {
        let full = assert_parity(src, 100_000);
        let spent = 100_000 - full.fuel_remaining;
        for fuel in 0..=spent + 1 {
            assert_parity(src, fuel);
        }
    }
}

#[test]
fn compiled_artifacts_round_trip_and_rerun() {
    for src in FIXTURES {
        let Ok(program) = compile_source(src) else {
            continue;
        };
        let encoded = program.encode();
        let decoded = CompiledProgram::decode(&encoded).expect("artifact decodes");
        assert_eq!(decoded.main, program.main, "main chunk drifted for:\n{src}");
        assert_eq!(decoded.consts, program.consts);
        assert_eq!(decoded.names, program.names);
        assert_eq!(decoded.var_lists, program.var_lists);
        assert_eq!(
            decoded.content_hash(),
            program.content_hash(),
            "content hash not stable across encode/decode for:\n{src}"
        );
        // The decoded artifact must execute identically too (functions
        // run from their chunks even with stub AST bodies).
        let trace_a = Rc::new(RefCell::new(Vec::new()));
        let mut ia = Interpreter::new().with_fuel(100_000);
        instrument(&mut ia, trace_a.clone());
        let ra = ia.run_compiled(&program).map(|v| v.to_string());
        let trace_b = Rc::new(RefCell::new(Vec::new()));
        let mut ib = Interpreter::new().with_fuel(100_000);
        instrument(&mut ib, trace_b.clone());
        let rb = ib.run_compiled(&decoded).map(|v| v.to_string());
        assert_eq!(
            ra.map_err(|e| e.to_string()),
            rb.map_err(|e| e.to_string()),
            "decoded artifact diverged for:\n{src}"
        );
        assert_eq!(trace_a.borrow().clone(), trace_b.borrow().clone());
        assert_eq!(ia.fuel_remaining(), ib.fuel_remaining());
    }
}

#[test]
fn typecheck_rejects_ill_typed_fixtures_before_any_execution() {
    // Script-layer zero-spend guarantee: programs the typechecker
    // rejects never reach either engine, so no tools run and no fuel is
    // charged.
    let mut env = TypeEnv::new();
    for (name, sig) in [
        ("list_files", "list_files() -> list[str]"),
        ("read_file", "read_file(name: str) -> str"),
        ("emit", "emit(value) -> None"),
    ] {
        env.add_tool_signature(name, sig);
    }
    let ill_typed = [
        "print(x)\nx = 1",
        "read_file(42)",
        "read_file('a.csv', 'extra')",
        "x = 'a' + 1",
        "x = 3\nx()",
    ];
    for src in ill_typed {
        let program = aida_script::parser::parse(src).expect("parses");
        let err = aida_script::typecheck(&program, &env).expect_err(src);
        assert!(matches!(err, aida_script::ScriptError::Type { .. }));
    }
    // The well-typed fixtures must not be rejected (no false positives
    // on the agent corpus shapes) — except those designed to be
    // ill-typed, which the runtime fixtures above already cover.
    let well_typed = [
        FIXTURES[0],
        FIXTURES[1],
        FIXTURES[2],
        FIXTURES[3],
        FIXTURES[4],
    ];
    for src in well_typed {
        let program = aida_script::parser::parse(src).expect("parses");
        assert!(
            aida_script::typecheck(&program, &env).is_ok(),
            "false positive on corpus program:\n{src}"
        );
    }
}

#[test]
fn tool_signature_parsing_matches_registry_style() {
    let sig = ToolSig::parse(
        "sem_extract_tool(instruction: str, field: str, filenames: list[str]) -> list",
    )
    .expect("parses");
    assert_eq!(sig.params.len(), 3);
}

mod generated {
    use super::*;
    use proptest::prelude::*;

    /// A generated statement template. Rendering always yields a
    /// parseable program; runtime errors are fine (both engines must
    /// produce the same one).
    #[derive(Debug, Clone)]
    enum Tpl {
        AssignInt(u8, i64),
        AssignStr(u8, String),
        AssignList(u8, Vec<i64>),
        Arith(u8, u8, u8, u8),
        Concat(u8, u8, u8),
        AugAdd(u8, i64),
        IfElse(u8, i64, Box<Tpl>, Box<Tpl>),
        ForRange(u8, u8, Box<Tpl>),
        ForList(u8, u8, Box<Tpl>),
        WhileCount(u8, u8, Box<Tpl>),
        ListComp(u8, u8, u8),
        IndexGet(u8, u8, i64),
        SliceGet(u8, u8, i64, i64),
        Method(u8, u8, u8),
        DefCall(u8, u8, i64),
        Tool(u8, u8),
        Print(u8),
        Emit(u8),
        Result(u8),
    }

    fn var(i: u8) -> String {
        format!("v{}", i % 5)
    }

    fn op(i: u8) -> &'static str {
        ["+", "-", "*", "//", "%"][i as usize % 5]
    }

    impl Tpl {
        fn render(&self, out: &mut String, indent: usize) {
            let pad = "    ".repeat(indent);
            match self {
                Tpl::AssignInt(v, n) => out.push_str(&format!("{pad}{} = {n}\n", var(*v))),
                Tpl::AssignStr(v, s) => out.push_str(&format!("{pad}{} = '{s}'\n", var(*v))),
                Tpl::AssignList(v, items) => {
                    let body: Vec<String> = items.iter().map(|n| n.to_string()).collect();
                    out.push_str(&format!("{pad}{} = [{}]\n", var(*v), body.join(", ")));
                }
                Tpl::Arith(d, a, b, o) => out.push_str(&format!(
                    "{pad}{} = {} {} {}\n",
                    var(*d),
                    var(*a),
                    op(*o),
                    var(*b)
                )),
                Tpl::Concat(d, a, b) => out.push_str(&format!(
                    "{pad}{} = str({}) + str({})\n",
                    var(*d),
                    var(*a),
                    var(*b)
                )),
                Tpl::AugAdd(v, n) => out.push_str(&format!("{pad}{} += {n}\n", var(*v))),
                Tpl::IfElse(v, n, t, e) => {
                    out.push_str(&format!("{pad}if {} > {n}:\n", var(*v)));
                    t.render(out, indent + 1);
                    out.push_str(&format!("{pad}else:\n"));
                    e.render(out, indent + 1);
                }
                Tpl::ForRange(v, n, body) => {
                    out.push_str(&format!("{pad}for {} in range({}):\n", var(*v), n % 6));
                    body.render(out, indent + 1);
                }
                Tpl::ForList(v, src, body) => {
                    out.push_str(&format!("{pad}for {} in {}:\n", var(*v), var(*src)));
                    body.render(out, indent + 1);
                }
                Tpl::WhileCount(v, n, body) => {
                    out.push_str(&format!("{pad}{} = 0\n", var(*v)));
                    out.push_str(&format!("{pad}while {} < {}:\n", var(*v), n % 5));
                    body.render(out, indent + 1);
                    out.push_str(&format!("{pad}    {} += 1\n", var(*v)));
                }
                Tpl::ListComp(d, v, n) => out.push_str(&format!(
                    "{pad}{} = [{x} * 2 for {x} in range({}) if {x} != {}]\n",
                    var(*d),
                    n % 7,
                    n % 3,
                    x = var(*v)
                )),
                Tpl::IndexGet(d, s, i) => {
                    out.push_str(&format!("{pad}{} = {}[{i}]\n", var(*d), var(*s)))
                }
                Tpl::SliceGet(d, s, lo, hi) => {
                    out.push_str(&format!("{pad}{} = {}[{lo}:{hi}]\n", var(*d), var(*s)))
                }
                Tpl::Method(d, s, m) => {
                    let call = ["str({v}).upper()", "str({v}).split('2')", "len(str({v}))"]
                        [*m as usize % 3]
                        .replace("{v}", &var(*s));
                    out.push_str(&format!("{pad}{} = {call}\n", var(*d)));
                }
                Tpl::DefCall(d, a, n) => {
                    let f = format!("fn{}", d % 3);
                    out.push_str(&format!("{pad}def {f}(p):\n{pad}    return p + {n}\n"));
                    out.push_str(&format!("{pad}{} = {f}({})\n", var(*d), var(*a)));
                }
                Tpl::Tool(d, f) => {
                    let call = ["list_files()", "read_file('a.csv')", "read_file('nope')"]
                        [*f as usize % 3];
                    out.push_str(&format!("{pad}{} = {call}\n", var(*d)));
                }
                Tpl::Print(v) => out.push_str(&format!("{pad}print({})\n", var(*v))),
                Tpl::Emit(v) => out.push_str(&format!("{pad}emit({})\n", var(*v))),
                Tpl::Result(v) => out.push_str(&format!("{pad}{}\n", var(*v))),
            }
        }
    }

    fn leaf() -> impl Strategy<Value = Tpl> {
        prop_oneof![
            (0u8..5, -50i64..50).prop_map(|(v, n)| Tpl::AssignInt(v, n)),
            (0u8..5, "[a-z]{1,6}").prop_map(|(v, s)| Tpl::AssignStr(v, s)),
            (0u8..5, prop::collection::vec(-9i64..9, 0..4))
                .prop_map(|(v, xs)| Tpl::AssignList(v, xs)),
            (0u8..5, 0u8..5, 0u8..5, 0u8..5).prop_map(|(d, a, b, o)| Tpl::Arith(d, a, b, o)),
            (0u8..5, 0u8..5, 0u8..5).prop_map(|(d, a, b)| Tpl::Concat(d, a, b)),
            (0u8..5, -5i64..5).prop_map(|(v, n)| Tpl::AugAdd(v, n)),
            (0u8..5, 0u8..8, 0u8..8).prop_map(|(d, v, n)| Tpl::ListComp(d, v, n)),
            (0u8..5, 0u8..5, -4i64..4).prop_map(|(d, s, i)| Tpl::IndexGet(d, s, i)),
            (0u8..5, 0u8..5, -4i64..4, -4i64..6)
                .prop_map(|(d, s, lo, hi)| Tpl::SliceGet(d, s, lo, hi)),
            (0u8..5, 0u8..5, 0u8..3).prop_map(|(d, s, m)| Tpl::Method(d, s, m)),
            (0u8..5, 0u8..5, -9i64..9).prop_map(|(d, a, n)| Tpl::DefCall(d, a, n)),
            (0u8..5, 0u8..3).prop_map(|(d, f)| Tpl::Tool(d, f)),
            (0u8..5).prop_map(Tpl::Print),
            (0u8..5).prop_map(Tpl::Emit),
            (0u8..5).prop_map(Tpl::Result),
        ]
    }

    fn tpl() -> impl Strategy<Value = Tpl> {
        leaf().prop_recursive(3, 24, 2, |inner| {
            prop_oneof![
                (0u8..5, -5i64..5, inner.clone(), inner.clone())
                    .prop_map(|(v, n, t, e)| Tpl::IfElse(v, n, Box::new(t), Box::new(e))),
                (0u8..5, 0u8..8, inner.clone()).prop_map(|(v, n, b)| Tpl::ForRange(
                    v,
                    n,
                    Box::new(b)
                )),
                (0u8..5, 0u8..5, inner.clone()).prop_map(|(v, s, b)| Tpl::ForList(
                    v,
                    s,
                    Box::new(b)
                )),
                (0u8..5, 0u8..6, inner).prop_map(|(v, n, b)| Tpl::WhileCount(v, n, Box::new(b))),
            ]
        })
    }

    fn render_program(stmts: &[Tpl]) -> String {
        // Seed every variable so generated reads have *some* value on
        // most paths; use-before-assign programs are still generated via
        // shadowing in bodies, which is exactly the point.
        let mut src = String::from("v0 = 1\nv1 = 2\nv2 = 'ab'\nv3 = [1, 2, 3]\nv4 = 7\n");
        for t in stmts {
            t.render(&mut src, 0);
        }
        src
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(96))]

        #[test]
        fn generated_programs_agree(stmts in prop::collection::vec(tpl(), 1..7)) {
            let src = render_program(&stmts);
            let a = super::observe_interp(&src, 20_000);
            let b = super::observe_vm(&src, 20_000);
            prop_assert_eq!(a, b, "diverged on generated program:\n{}", src);
        }

        #[test]
        fn generated_programs_agree_under_tight_fuel(
            stmts in prop::collection::vec(tpl(), 1..6),
            fuel in 0u64..400,
        ) {
            let src = render_program(&stmts);
            let a = super::observe_interp(&src, fuel);
            let b = super::observe_vm(&src, fuel);
            prop_assert_eq!(a, b, "diverged at fuel {} on:\n{}", fuel, src);
        }

        #[test]
        fn generated_bytecode_round_trips(stmts in prop::collection::vec(tpl(), 1..6)) {
            let src = render_program(&stmts);
            let program = compile_source(&src).expect("templates always parse");
            let decoded = CompiledProgram::decode(&program.encode()).expect("decodes");
            prop_assert_eq!(&decoded.main, &program.main);
            prop_assert_eq!(&decoded.consts, &program.consts);
            prop_assert_eq!(&decoded.names, &program.names);
            prop_assert_eq!(&decoded.var_lists, &program.var_lists);
            prop_assert_eq!(decoded.content_hash(), program.content_hash());
            prop_assert_eq!(decoded.funcs.len(), program.funcs.len());
        }
    }
}
