//! Soundness suite for the static cost-bound analyzer
//! (`aida_script::bounds`): on every program the generated differential
//! matrix can produce, a completing run must stay within the static
//! bound on all three axes —
//!
//! * fuel actually charged ≤ `fuel_max`,
//! * per-tool actual call counts ≤ the per-tool bound,
//! * dollars billed for the run's tool calls at the executing tier
//!   (under the per-call token envelope) ≤ `usd_max(tier)`.
//!
//! Programs that error or exhaust fuel carry no obligation — they never
//! completed — and `unbounded` dimensions are trivially satisfied. The
//! fixtures at the bottom pin programs where the analyzer *must* give
//! up (data-dependent `while`, iteration over tool output) rather than
//! emit a wrong finite number.

use aida_llm::models::{ModelCatalog, ModelId};
use aida_script::bounds::usd_per_tool_call;
use aida_script::bytecode::compile_source;
use aida_script::{Bound, CostBound};

mod common;
use common::{observe_vm, Observed, HARNESS_TOOLS};

const FUEL: u64 = 20_000;

/// Checks every soundness obligation of `bound` against one completed
/// observation; returns an error description on violation.
fn check_sound(src: &str, bound: &CostBound, obs: &Observed) -> Result<(), String> {
    let fuel_used = FUEL - obs.fuel_remaining;
    if let Bound::Finite(max) = bound.fuel_max {
        if fuel_used > max {
            return Err(format!(
                "fuel used {fuel_used} > fuel_max {max} for:\n{src}"
            ));
        }
    }
    let catalog = ModelCatalog::default();
    for &tier in ModelId::ALL.iter() {
        let per_call = usd_per_tool_call(&catalog, tier);
        let mut billed = 0.0_f64;
        for tool in HARNESS_TOOLS {
            let actual = obs.calls_to(tool);
            match bound.call_bound(tool) {
                Bound::Finite(max) if actual > max => {
                    return Err(format!(
                        "{tool} called {actual} times > bound {max} for:\n{src}"
                    ));
                }
                _ => {}
            }
            // Bill every tool call at the envelope ceiling — the
            // runtime never bills more per call than this.
            billed += actual as f64 * per_call;
        }
        let max = bound.usd_max(tier);
        if billed > max {
            return Err(format!(
                "billed ${billed:.6} at {} > usd_max ${max:.6} for:\n{src}",
                tier.name()
            ));
        }
    }
    Ok(())
}

#[track_caller]
fn assert_sound(src: &str) {
    let program = compile_source(src).expect("program compiles");
    let obs = observe_vm(src, FUEL);
    if !obs.completed() {
        return; // Errors and exhaustion carry no obligation.
    }
    if let Err(msg) = check_sound(src, &program.bound, &obs) {
        panic!("soundness violation: {msg}");
    }
}

mod generated {
    use super::*;
    use common::templates::{render_program, tpl};
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(96))]

        /// The same 96-program matrix the differential oracle runs:
        /// zero completing programs may exceed any static bound.
        #[test]
        fn generated_programs_respect_static_bounds(
            stmts in prop::collection::vec(tpl(), 1..7),
        ) {
            let src = render_program(&stmts);
            let program = compile_source(&src).expect("templates always parse");
            let obs = observe_vm(&src, FUEL);
            if obs.completed() {
                if let Err(msg) = check_sound(&src, &program.bound, &obs) {
                    prop_assert!(false, "soundness violation: {}", msg);
                }
            }
        }
    }
}

#[test]
fn corpus_shaped_programs_are_sound() {
    // The agent-step shapes the planner policies emit.
    let corpus = [
        "files = list_files()\nhits = [f for f in files if 'csv' in f]\nlen(hits)",
        "total = 0\nfor i in range(50):\n    total += i\nemit(total)\ntotal",
        "i = 0\nacc = 0\nwhile i < 400:\n    acc += i * i\n    i += 1\nacc",
        "def score(n):\n    return n * 3 + 1\nxs = [score(i) for i in range(12)]\nsum(xs)",
        "counts = {}\nfor f in list_files():\n    counts[f] = len(read_file(f))\nsorted(counts)",
    ];
    for src in corpus {
        assert_sound(src);
    }
}

#[test]
fn bounded_corpus_programs_get_finite_fuel() {
    // Purely arithmetic programs with constant loops must not degrade
    // to unbounded — that would make admission gating vacuous.
    let finite = [
        "total = 0\nfor i in range(50):\n    total += i\ntotal",
        "i = 0\nacc = 0\nwhile i < 400:\n    acc += i * i\n    i += 1\nacc",
        "xs = [i * 2 for i in range(30) if i != 3]\nlen(xs)",
    ];
    for src in finite {
        let program = compile_source(src).expect("compiles");
        assert!(
            program.bound.fuel_max.is_finite(),
            "expected finite fuel for:\n{src}\ngot {:?}",
            program.bound
        );
        assert!(!program.bound.unbounded, "expected bounded: {src}");
    }
}

#[test]
fn data_dependent_while_must_be_unbounded() {
    // The analyzer may not invent a finite trip count for a loop whose
    // bound comes from tool output.
    let fixtures = [
        "n = len(list_files())\ni = 0\nwhile i < n:\n    i += 1\ni",
        "text = read_file('a.csv')\ni = 0\nwhile i < len(text):\n    i += 1\ni",
        "i = 10\nwhile i > 0:\n    i = i - 1\ni",
        "i = 0\nwhile i < 10:\n    if i > 5:\n        i += 1\ni",
    ];
    for src in fixtures {
        let program = compile_source(src).expect("compiles");
        assert!(
            program.bound.unbounded,
            "analyzer must degrade to unbounded for:\n{src}\ngot {:?}",
            program.bound
        );
    }
}

#[test]
fn iteration_over_tool_output_is_unbounded_but_entry_call_is_counted() {
    let program = compile_source("for f in list_files():\n    read_file(f)\n0").expect("compiles");
    assert!(program.bound.unbounded);
    assert_eq!(program.bound.call_bound("list_files"), Bound::Finite(1));
    assert_eq!(program.bound.call_bound("read_file"), Bound::Unbounded);
    // The observed run must still respect the finite dimension.
    let obs = observe_vm("for f in list_files():\n    read_file(f)\n0", FUEL);
    assert!(obs.completed());
    assert!(obs.calls_to("list_files") <= 1);
}
