//! The static checker must reject every bad-program fixture *before*
//! executing anything: a bound `probe()` tool records whether execution
//! ever started, and rejection means it never fires. This is the
//! crate-level half of the zero-spend guarantee the agents runtime
//! builds on (its own tests assert $0.00 and zero virtual latency).

use aida_script::{Interpreter, ScriptError, ScriptValue};
use std::cell::Cell;
use std::path::PathBuf;
use std::rc::Rc;

fn fixture(name: &str) -> String {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("fixtures/bad")
        .join(name);
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("{}: {e}", path.display()))
}

/// An interpreter with a `probe` tool that counts its invocations.
fn probed_interp() -> (Interpreter, Rc<Cell<u32>>) {
    let calls = Rc::new(Cell::new(0u32));
    let seen = calls.clone();
    let mut interp = Interpreter::new();
    interp.bind_host_fn("probe", move |_args| {
        seen.set(seen.get() + 1);
        Ok(ScriptValue::None)
    });
    (interp, calls)
}

#[test]
fn every_bad_fixture_is_rejected_before_execution() {
    let fixtures = [
        "unknown_tool.pyr",
        "undefined_name.pyr",
        "unbounded_loop.pyr",
        "syntax_error.pyr",
    ];
    for name in fixtures {
        let src = fixture(name);
        let (mut interp, calls) = probed_interp();
        let err = interp
            .run_checked(&src)
            .expect_err(&format!("{name} must be rejected"));
        assert!(
            matches!(
                err,
                ScriptError::Static { .. } | ScriptError::Parse { .. } | ScriptError::Lex { .. }
            ),
            "{name}: unexpected error class {err:?}"
        );
        assert_eq!(
            calls.get(),
            0,
            "{name}: probe() ran — the program executed before rejection"
        );
    }
}

#[test]
fn rejection_reports_a_line_and_reason() {
    let (mut interp, _) = probed_interp();
    let err = interp
        .run_checked(&fixture("unknown_tool.pyr"))
        .expect_err("rejected");
    let msg = err.to_string();
    assert!(msg.contains("line 2"), "{msg}");
    assert!(msg.contains("serch_docs"), "{msg}");
    // The message lists what IS available, so a planner can self-correct.
    assert!(msg.contains("probe"), "{msg}");
}

#[test]
fn good_program_runs_through_run_checked() {
    let (mut interp, calls) = probed_interp();
    let value = interp
        .run_checked("probe()\nxs = [1, 2, 3]\nsum(xs)")
        .expect("clean program runs");
    assert_eq!(value, ScriptValue::Int(6));
    assert_eq!(calls.get(), 1);
}

#[test]
fn warnings_do_not_block_execution() {
    // Dead branch + unused variable: warnings only.
    let (mut interp, _) = probed_interp();
    let src = "unused = 1\nif False:\n    probe()\n42";
    let issues = interp.check_source(src);
    assert!(!issues.is_empty(), "expected warnings");
    let value = interp.run_checked(src).expect("warnings still run");
    assert_eq!(value, ScriptValue::Int(42));
}

#[test]
fn check_source_surfaces_parse_errors_as_issues() {
    let (interp, _) = probed_interp();
    let issues = interp.check_source(&fixture("syntax_error.pyr"));
    assert_eq!(issues.len(), 1);
    assert_eq!(issues[0].code, "parse-error");
}
