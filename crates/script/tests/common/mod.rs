//! Shared harness for the script integration tests: recording host
//! tools, one-engine observation, and the generated program matrix used
//! by both the differential oracle (`differential.rs`) and the static
//! cost-bound soundness suite (`bounds_soundness.rs`).
#![allow(dead_code)]

use aida_script::bytecode::compile_source;
use aida_script::{Interpreter, ScriptValue};
use std::cell::RefCell;
use std::rc::Rc;

/// Everything observable about one engine run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Observed {
    /// `Ok: <value>` or `Err: <error display>`.
    pub result: String,
    /// Host (tool) calls in order, with rendered arguments.
    pub trace: Vec<String>,
    /// Captured `print` lines.
    pub output: Vec<String>,
    /// Fuel left after the run.
    pub fuel_remaining: u64,
}

impl Observed {
    /// True when the run completed (did not error or exhaust fuel).
    pub fn completed(&self) -> bool {
        self.result.starts_with("Ok: ")
    }

    /// Number of calls to `tool` in the recorded trace.
    pub fn calls_to(&self, tool: &str) -> u64 {
        self.trace
            .iter()
            .filter(|t| {
                t.strip_prefix(tool)
                    .is_some_and(|rest| rest.starts_with('(') || rest.starts_with('/'))
            })
            .count() as u64
    }
}

/// The recording tool set every harness run binds: `list_files`,
/// `read_file`, `emit`.
pub const HARNESS_TOOLS: &[&str] = &["list_files", "read_file", "emit"];

pub fn instrument(interp: &mut Interpreter, trace: Rc<RefCell<Vec<String>>>) {
    let t = trace.clone();
    interp.bind_host_fn("list_files", move |args| {
        t.borrow_mut().push(format!("list_files/{}", args.len()));
        Ok(ScriptValue::list(vec![
            ScriptValue::str("a.csv"),
            ScriptValue::str("b.csv"),
            ScriptValue::str("notes.txt"),
        ]))
    });
    let t = trace.clone();
    interp.bind_host_fn("read_file", move |args| {
        let name = args[0].as_str()?.to_string();
        t.borrow_mut().push(format!("read_file({name})"));
        Ok(ScriptValue::str(match name.as_str() {
            "a.csv" => "year,count\n2001,10\n2002,30",
            "b.csv" => "year,count\n2001,5",
            _ => "plain text notes",
        }))
    });
    let t = trace;
    interp.bind_host_fn("emit", move |args| {
        let rendered: Vec<String> = args.iter().map(|a| a.to_string()).collect();
        t.borrow_mut()
            .push(format!("emit({})", rendered.join(", ")));
        Ok(ScriptValue::None)
    });
}

pub fn observe_interp(src: &str, fuel: u64) -> Observed {
    let trace = Rc::new(RefCell::new(Vec::new()));
    let mut interp = Interpreter::new().with_fuel(fuel);
    instrument(&mut interp, trace.clone());
    let result = match interp.run(src) {
        Ok(v) => format!("Ok: {v}"),
        Err(e) => format!("Err: {e}"),
    };
    let calls = trace.borrow().clone();
    Observed {
        result,
        trace: calls,
        output: interp.take_output(),
        fuel_remaining: interp.fuel_remaining(),
    }
}

pub fn observe_vm(src: &str, fuel: u64) -> Observed {
    let trace = Rc::new(RefCell::new(Vec::new()));
    let mut interp = Interpreter::new().with_fuel(fuel);
    instrument(&mut interp, trace.clone());
    let result = match compile_source(src).and_then(|p| interp.run_compiled(&p)) {
        Ok(v) => format!("Ok: {v}"),
        Err(e) => format!("Err: {e}"),
    };
    let calls = trace.borrow().clone();
    Observed {
        result,
        trace: calls,
        output: interp.take_output(),
        fuel_remaining: interp.fuel_remaining(),
    }
}

/// The generated program matrix: statement templates whose rendering
/// always parses. Runtime errors are fine — the differential oracle
/// requires identical errors, and the soundness suite only obligates
/// completing runs.
pub mod templates {
    use proptest::prelude::*;

    /// A generated statement template.
    #[derive(Debug, Clone)]
    pub enum Tpl {
        AssignInt(u8, i64),
        AssignStr(u8, String),
        AssignList(u8, Vec<i64>),
        Arith(u8, u8, u8, u8),
        Concat(u8, u8, u8),
        AugAdd(u8, i64),
        IfElse(u8, i64, Box<Tpl>, Box<Tpl>),
        ForRange(u8, u8, Box<Tpl>),
        ForList(u8, u8, Box<Tpl>),
        WhileCount(u8, u8, Box<Tpl>),
        ListComp(u8, u8, u8),
        IndexGet(u8, u8, i64),
        SliceGet(u8, u8, i64, i64),
        Method(u8, u8, u8),
        DefCall(u8, u8, i64),
        Tool(u8, u8),
        Print(u8),
        Emit(u8),
        Result(u8),
    }

    fn var(i: u8) -> String {
        format!("v{}", i % 5)
    }

    fn op(i: u8) -> &'static str {
        ["+", "-", "*", "//", "%"][i as usize % 5]
    }

    impl Tpl {
        fn render(&self, out: &mut String, indent: usize) {
            let pad = "    ".repeat(indent);
            match self {
                Tpl::AssignInt(v, n) => out.push_str(&format!("{pad}{} = {n}\n", var(*v))),
                Tpl::AssignStr(v, s) => out.push_str(&format!("{pad}{} = '{s}'\n", var(*v))),
                Tpl::AssignList(v, items) => {
                    let body: Vec<String> = items.iter().map(|n| n.to_string()).collect();
                    out.push_str(&format!("{pad}{} = [{}]\n", var(*v), body.join(", ")));
                }
                Tpl::Arith(d, a, b, o) => out.push_str(&format!(
                    "{pad}{} = {} {} {}\n",
                    var(*d),
                    var(*a),
                    op(*o),
                    var(*b)
                )),
                Tpl::Concat(d, a, b) => out.push_str(&format!(
                    "{pad}{} = str({}) + str({})\n",
                    var(*d),
                    var(*a),
                    var(*b)
                )),
                Tpl::AugAdd(v, n) => out.push_str(&format!("{pad}{} += {n}\n", var(*v))),
                Tpl::IfElse(v, n, t, e) => {
                    out.push_str(&format!("{pad}if {} > {n}:\n", var(*v)));
                    t.render(out, indent + 1);
                    out.push_str(&format!("{pad}else:\n"));
                    e.render(out, indent + 1);
                }
                Tpl::ForRange(v, n, body) => {
                    out.push_str(&format!("{pad}for {} in range({}):\n", var(*v), n % 6));
                    body.render(out, indent + 1);
                }
                Tpl::ForList(v, src, body) => {
                    out.push_str(&format!("{pad}for {} in {}:\n", var(*v), var(*src)));
                    body.render(out, indent + 1);
                }
                Tpl::WhileCount(v, n, body) => {
                    out.push_str(&format!("{pad}{} = 0\n", var(*v)));
                    out.push_str(&format!("{pad}while {} < {}:\n", var(*v), n % 5));
                    body.render(out, indent + 1);
                    out.push_str(&format!("{pad}    {} += 1\n", var(*v)));
                }
                Tpl::ListComp(d, v, n) => out.push_str(&format!(
                    "{pad}{} = [{x} * 2 for {x} in range({}) if {x} != {}]\n",
                    var(*d),
                    n % 7,
                    n % 3,
                    x = var(*v)
                )),
                Tpl::IndexGet(d, s, i) => {
                    out.push_str(&format!("{pad}{} = {}[{i}]\n", var(*d), var(*s)))
                }
                Tpl::SliceGet(d, s, lo, hi) => {
                    out.push_str(&format!("{pad}{} = {}[{lo}:{hi}]\n", var(*d), var(*s)))
                }
                Tpl::Method(d, s, m) => {
                    let call = ["str({v}).upper()", "str({v}).split('2')", "len(str({v}))"]
                        [*m as usize % 3]
                        .replace("{v}", &var(*s));
                    out.push_str(&format!("{pad}{} = {call}\n", var(*d)));
                }
                Tpl::DefCall(d, a, n) => {
                    let f = format!("fn{}", d % 3);
                    out.push_str(&format!("{pad}def {f}(p):\n{pad}    return p + {n}\n"));
                    out.push_str(&format!("{pad}{} = {f}({})\n", var(*d), var(*a)));
                }
                Tpl::Tool(d, f) => {
                    let call = ["list_files()", "read_file('a.csv')", "read_file('nope')"]
                        [*f as usize % 3];
                    out.push_str(&format!("{pad}{} = {call}\n", var(*d)));
                }
                Tpl::Print(v) => out.push_str(&format!("{pad}print({})\n", var(*v))),
                Tpl::Emit(v) => out.push_str(&format!("{pad}emit({})\n", var(*v))),
                Tpl::Result(v) => out.push_str(&format!("{pad}{}\n", var(*v))),
            }
        }
    }

    fn leaf() -> impl Strategy<Value = Tpl> {
        prop_oneof![
            (0u8..5, -50i64..50).prop_map(|(v, n)| Tpl::AssignInt(v, n)),
            (0u8..5, "[a-z]{1,6}").prop_map(|(v, s)| Tpl::AssignStr(v, s)),
            (0u8..5, prop::collection::vec(-9i64..9, 0..4))
                .prop_map(|(v, xs)| Tpl::AssignList(v, xs)),
            (0u8..5, 0u8..5, 0u8..5, 0u8..5).prop_map(|(d, a, b, o)| Tpl::Arith(d, a, b, o)),
            (0u8..5, 0u8..5, 0u8..5).prop_map(|(d, a, b)| Tpl::Concat(d, a, b)),
            (0u8..5, -5i64..5).prop_map(|(v, n)| Tpl::AugAdd(v, n)),
            (0u8..5, 0u8..8, 0u8..8).prop_map(|(d, v, n)| Tpl::ListComp(d, v, n)),
            (0u8..5, 0u8..5, -4i64..4).prop_map(|(d, s, i)| Tpl::IndexGet(d, s, i)),
            (0u8..5, 0u8..5, -4i64..4, -4i64..6)
                .prop_map(|(d, s, lo, hi)| Tpl::SliceGet(d, s, lo, hi)),
            (0u8..5, 0u8..5, 0u8..3).prop_map(|(d, s, m)| Tpl::Method(d, s, m)),
            (0u8..5, 0u8..5, -9i64..9).prop_map(|(d, a, n)| Tpl::DefCall(d, a, n)),
            (0u8..5, 0u8..3).prop_map(|(d, f)| Tpl::Tool(d, f)),
            (0u8..5).prop_map(Tpl::Print),
            (0u8..5).prop_map(Tpl::Emit),
            (0u8..5).prop_map(Tpl::Result),
        ]
    }

    pub fn tpl() -> impl Strategy<Value = Tpl> {
        leaf().prop_recursive(3, 24, 2, |inner| {
            prop_oneof![
                (0u8..5, -5i64..5, inner.clone(), inner.clone())
                    .prop_map(|(v, n, t, e)| Tpl::IfElse(v, n, Box::new(t), Box::new(e))),
                (0u8..5, 0u8..8, inner.clone()).prop_map(|(v, n, b)| Tpl::ForRange(
                    v,
                    n,
                    Box::new(b)
                )),
                (0u8..5, 0u8..5, inner.clone()).prop_map(|(v, s, b)| Tpl::ForList(
                    v,
                    s,
                    Box::new(b)
                )),
                (0u8..5, 0u8..6, inner).prop_map(|(v, n, b)| Tpl::WhileCount(v, n, Box::new(b))),
            ]
        })
    }

    pub fn render_program(stmts: &[Tpl]) -> String {
        // Seed every variable so generated reads have *some* value on
        // most paths; use-before-assign programs are still generated via
        // shadowing in bodies, which is exactly the point.
        let mut src = String::from("v0 = 1\nv1 = 2\nv2 = 'ab'\nv3 = [1, 2, 3]\nv4 = 7\n");
        for t in stmts {
            t.render(&mut src, 0);
        }
        src
    }
}
