//! A minimal HTML reader.
//!
//! The legal workload contains HTML report pages; agents and semantic
//! operators need (a) the visible text and (b) any `<table>` contents. This
//! module implements a small, forgiving tag scanner — enough for
//! machine-generated report pages, not a general browser parser.

use crate::record::Schema;
use crate::table::Table;
use crate::value::Value;

/// Strips tags and decodes the handful of common entities, returning the
/// visible text with collapsed whitespace. `<script>`/`<style>` bodies are
/// dropped entirely.
pub fn to_text(html: &str) -> String {
    let mut out = String::with_capacity(html.len() / 2);
    let mut chars = html.char_indices().peekable();
    let mut skip_until: Option<&'static str> = None;
    while let Some((i, c)) = chars.next() {
        if c == '<' {
            let rest = &html[i..];
            if let Some(close) = skip_until {
                if rest.len() >= close.len() && rest[..close.len()].eq_ignore_ascii_case(close) {
                    skip_until = None;
                }
                // Consume through the end of this tag either way.
                for (_, tc) in chars.by_ref() {
                    if tc == '>' {
                        break;
                    }
                }
                continue;
            }
            let lower = rest.get(..8).unwrap_or(rest).to_ascii_lowercase();
            if lower.starts_with("<script") {
                skip_until = Some("</script");
            } else if lower.starts_with("<style") {
                skip_until = Some("</style");
            }
            let mut tag = String::new();
            for (_, tc) in chars.by_ref() {
                if tc == '>' {
                    break;
                }
                tag.push(tc);
            }
            // Block-level tags become line breaks so rows stay separated.
            let name = tag
                .trim_start_matches('/')
                .split_whitespace()
                .next()
                .unwrap_or("")
                .to_ascii_lowercase();
            if matches!(
                name.as_str(),
                "p" | "div" | "tr" | "br" | "li" | "h1" | "h2" | "h3" | "h4" | "table"
            ) {
                out.push('\n');
            } else if matches!(name.as_str(), "td" | "th") {
                out.push(' ');
            }
        } else if skip_until.is_none() {
            out.push(c);
        }
    }
    collapse_whitespace(&decode_entities(&out))
}

/// Decodes `&amp; &lt; &gt; &quot; &#39; &nbsp;`.
pub fn decode_entities(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    let mut rest = text;
    while let Some(pos) = rest.find('&') {
        out.push_str(&rest[..pos]);
        rest = &rest[pos..];
        let replaced = [
            ("&amp;", "&"),
            ("&lt;", "<"),
            ("&gt;", ">"),
            ("&quot;", "\""),
            ("&#39;", "'"),
            ("&nbsp;", " "),
        ]
        .iter()
        .find(|(ent, _)| rest.starts_with(ent));
        match replaced {
            Some((ent, rep)) => {
                out.push_str(rep);
                rest = &rest[ent.len()..];
            }
            None => {
                out.push('&');
                rest = &rest[1..];
            }
        }
    }
    out.push_str(rest);
    out
}

fn collapse_whitespace(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    for line in text.lines() {
        let line = line.split_whitespace().collect::<Vec<_>>().join(" ");
        if !line.is_empty() {
            out.push_str(&line);
            out.push('\n');
        }
    }
    out
}

/// Extracts every `<table>` in the document as a typed [`Table`]. The first
/// row (or the `<th>` row) is treated as the header; cells are type-inferred.
pub fn extract_tables(html: &str) -> Vec<Table> {
    let lower = html.to_ascii_lowercase();
    let mut tables = Vec::new();
    let mut cursor = 0usize;
    while let Some(start) = lower[cursor..].find("<table") {
        let start = cursor + start;
        let body_start = match lower[start..].find('>') {
            Some(p) => start + p + 1,
            None => break,
        };
        let end = match lower[body_start..].find("</table") {
            Some(p) => body_start + p,
            None => lower.len(),
        };
        if let Some(table) = parse_table_body(&html[body_start..end]) {
            tables.push(table);
        }
        cursor = end + 1;
        if cursor >= lower.len() {
            break;
        }
    }
    tables
}

fn parse_table_body(body: &str) -> Option<Table> {
    let lower = body.to_ascii_lowercase();
    let mut rows: Vec<Vec<String>> = Vec::new();
    let mut cursor = 0usize;
    while let Some(tr) = lower[cursor..].find("<tr") {
        let tr = cursor + tr;
        let row_start = lower[tr..].find('>')? + tr + 1;
        let row_end = lower[row_start..]
            .find("</tr")
            .map(|p| row_start + p)
            .unwrap_or(lower.len());
        rows.push(parse_row_cells(&body[row_start..row_end]));
        cursor = row_end + 1;
        if cursor >= lower.len() {
            break;
        }
    }
    let mut iter = rows.into_iter().filter(|r| !r.is_empty());
    let header = iter.next()?;
    let schema = Schema::of(header.iter().map(|h| h.trim().to_string()));
    let width = schema.len();
    let mut table = Table::new(schema);
    for row in iter {
        let mut values: Vec<Value> = row.iter().map(|c| Value::infer(c)).collect();
        values.resize(width, Value::Null);
        values.truncate(width);
        let _ = table.push_row(values);
    }
    Some(table)
}

fn parse_row_cells(row_html: &str) -> Vec<String> {
    let lower = row_html.to_ascii_lowercase();
    let mut cells = Vec::new();
    let mut cursor = 0usize;
    loop {
        let td = lower[cursor..].find("<td").map(|p| (p, "</td"));
        let th = lower[cursor..].find("<th").map(|p| (p, "</th"));
        let (offset, close) = match (td, th) {
            (Some(a), Some(b)) => {
                if a.0 <= b.0 {
                    a
                } else {
                    b
                }
            }
            (Some(a), None) => a,
            (None, Some(b)) => b,
            (None, None) => break,
        };
        let open = cursor + offset;
        let content_start = match lower[open..].find('>') {
            Some(p) => open + p + 1,
            None => break,
        };
        let content_end = lower[content_start..]
            .find(close)
            .map(|p| content_start + p)
            .unwrap_or(lower.len());
        cells.push(decode_entities(
            strip_tags(&row_html[content_start..content_end]).trim(),
        ));
        cursor = content_end + 1;
        if cursor >= lower.len() {
            break;
        }
    }
    cells
}

fn strip_tags(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    let mut in_tag = false;
    for c in text.chars() {
        match c {
            '<' => in_tag = true,
            '>' => in_tag = false,
            _ if !in_tag => out.push(c),
            _ => {}
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const PAGE: &str = r#"<html><head><style>body{color:red}</style>
<script>var x = "<table>";</script></head>
<body><h1>Identity Theft Reports</h1>
<p>National totals &amp; trends.</p>
<table>
  <tr><th>year</th><th>reports</th></tr>
  <tr><td>2001</td><td>86,250</td></tr>
  <tr><td>2024</td><td>1,135,291</td></tr>
</table></body></html>"#;

    #[test]
    fn text_extraction_drops_script_and_style() {
        let text = to_text(PAGE);
        assert!(text.contains("Identity Theft Reports"));
        assert!(text.contains("National totals & trends."));
        assert!(!text.contains("var x"));
        assert!(!text.contains("color:red"));
    }

    #[test]
    fn table_extraction_infers_types() {
        let tables = extract_tables(PAGE);
        assert_eq!(tables.len(), 1);
        let t = &tables[0];
        assert_eq!(t.schema().names(), vec!["year", "reports"]);
        assert_eq!(t.cell(1, "reports"), Some(&Value::Int(1_135_291)));
    }

    #[test]
    fn entities_decode() {
        assert_eq!(
            decode_entities("a &lt;b&gt; &amp; c &#39;d&#39;"),
            "a <b> & c 'd'"
        );
        assert_eq!(decode_entities("no entities"), "no entities");
        assert_eq!(decode_entities("&unknown;"), "&unknown;");
    }

    #[test]
    fn multiple_tables_extracted() {
        let html = "<table><tr><th>a</th></tr><tr><td>1</td></tr></table>\
                    <table><tr><th>b</th></tr><tr><td>2</td></tr></table>";
        let tables = extract_tables(html);
        assert_eq!(tables.len(), 2);
        assert_eq!(tables[0].schema().names(), vec!["a"]);
        assert_eq!(tables[1].cell(0, "b"), Some(&Value::Int(2)));
    }

    #[test]
    fn ragged_rows_are_padded_and_truncated() {
        let html = "<table><tr><th>a</th><th>b</th></tr>\
                    <tr><td>1</td></tr>\
                    <tr><td>1</td><td>2</td><td>3</td></tr></table>";
        let tables = extract_tables(html);
        let t = &tables[0];
        assert_eq!(t.len(), 2);
        assert_eq!(t.rows()[0][1], Value::Null);
        assert_eq!(t.rows()[1].len(), 2);
    }

    #[test]
    fn empty_html_has_no_tables() {
        assert!(extract_tables("<p>hello</p>").is_empty());
        assert_eq!(to_text("<p></p>"), "");
    }
}
