//! The data lake: a named collection of documents.

use crate::document::Document;
use crate::error::DataError;
use std::collections::HashMap;
use std::path::Path;
use std::sync::Arc;

/// An in-memory data lake with O(1) name lookup.
///
/// Documents are stored in insertion order (list tools return a stable
/// ordering) behind `Arc` so scans can share them without cloning content.
#[derive(Debug, Clone, Default)]
pub struct DataLake {
    docs: Vec<Arc<Document>>,
    by_name: HashMap<String, usize>,
}

impl DataLake {
    /// Creates an empty lake.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds a lake from documents.
    pub fn from_docs(docs: impl IntoIterator<Item = Document>) -> Self {
        let mut lake = DataLake::new();
        for doc in docs {
            lake.add(doc);
        }
        lake
    }

    /// Adds a document; a document with the same name replaces the old one.
    pub fn add(&mut self, doc: Document) {
        match self.by_name.get(&doc.name) {
            Some(&idx) => self.docs[idx] = Arc::new(doc),
            None => {
                self.by_name.insert(doc.name.clone(), self.docs.len());
                self.docs.push(Arc::new(doc));
            }
        }
    }

    /// Number of documents.
    pub fn len(&self) -> usize {
        self.docs.len()
    }

    /// True when the lake holds no documents.
    pub fn is_empty(&self) -> bool {
        self.docs.is_empty()
    }

    /// All documents in insertion order.
    pub fn docs(&self) -> &[Arc<Document>] {
        &self.docs
    }

    /// Lookup by file name.
    pub fn get(&self, name: &str) -> Option<&Arc<Document>> {
        self.by_name.get(name).map(|&idx| &self.docs[idx])
    }

    /// Lookup by file name, failing with [`DataError::UnknownDocument`].
    pub fn require(&self, name: &str) -> Result<&Arc<Document>, DataError> {
        self.get(name)
            .ok_or_else(|| DataError::UnknownDocument(name.to_string()))
    }

    /// File names in insertion order.
    pub fn names(&self) -> Vec<&str> {
        self.docs.iter().map(|d| d.name.as_str()).collect()
    }

    /// Documents whose names contain `pattern` (case-insensitive).
    pub fn glob(&self, pattern: &str) -> Vec<&Arc<Document>> {
        let needle = pattern.to_ascii_lowercase();
        self.docs
            .iter()
            .filter(|d| d.name.to_ascii_lowercase().contains(&needle))
            .collect()
    }

    /// Loads every regular file under `dir` (non-recursive) as a document.
    pub fn load_dir(dir: &Path) -> Result<Self, DataError> {
        let mut entries: Vec<_> = std::fs::read_dir(dir)?
            .collect::<std::result::Result<Vec<_>, _>>()?
            .into_iter()
            .filter(|e| e.path().is_file())
            .collect();
        entries.sort_by_key(|e| e.file_name());
        let mut lake = DataLake::new();
        for entry in entries {
            let name = entry.file_name().to_string_lossy().into_owned();
            let content = std::fs::read_to_string(entry.path())?;
            lake.add(Document::new(name, content));
        }
        Ok(lake)
    }

    /// Writes every document to `dir` (created if missing). Labels are not
    /// persisted — they are simulation-side ground truth, not file content.
    pub fn save_dir(&self, dir: &Path) -> Result<(), DataError> {
        std::fs::create_dir_all(dir)?;
        for doc in &self.docs {
            std::fs::write(dir.join(&doc.name), &doc.content)?;
        }
        Ok(())
    }

    /// Total content bytes across all documents.
    pub fn total_bytes(&self) -> usize {
        self.docs.iter().map(|d| d.size()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lake() -> DataLake {
        DataLake::from_docs([
            Document::new("national.csv", "year,n\n2001,5\n"),
            Document::new("alabama.csv", "year,n\n2024,2\n"),
            Document::new("report.html", "<p>hi</p>"),
        ])
    }

    #[test]
    fn lookup_by_name() {
        let lake = lake();
        assert!(lake.get("national.csv").is_some());
        assert!(lake.get("missing.csv").is_none());
        assert!(lake.require("missing.csv").is_err());
        assert_eq!(lake.len(), 3);
    }

    #[test]
    fn add_replaces_same_name() {
        let mut lake = lake();
        lake.add(Document::new("national.csv", "year,n\n2001,9\n"));
        assert_eq!(lake.len(), 3);
        assert!(lake.get("national.csv").unwrap().content.contains("9"));
    }

    #[test]
    fn glob_is_case_insensitive_substring() {
        let lake = lake();
        assert_eq!(lake.glob("CSV").len(), 2);
        assert_eq!(lake.glob("national").len(), 1);
        assert!(lake.glob("xyz").is_empty());
    }

    #[test]
    fn names_preserve_insertion_order() {
        let lake = lake();
        assert_eq!(
            lake.names(),
            vec!["national.csv", "alabama.csv", "report.html"]
        );
    }

    #[test]
    fn load_dir_reads_files() {
        let dir = std::env::temp_dir().join(format!("aida_lake_test_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("a.csv"), "x\n1\n").unwrap();
        std::fs::write(dir.join("b.txt"), "hello").unwrap();
        let lake = DataLake::load_dir(&dir).unwrap();
        assert_eq!(lake.len(), 2);
        assert_eq!(lake.names(), vec!["a.csv", "b.txt"]);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn total_bytes_sums_content() {
        let lake = DataLake::from_docs([Document::new("a.txt", "abcd")]);
        assert_eq!(lake.total_bytes(), 4);
    }

    #[test]
    fn save_and_load_round_trip() {
        let dir = std::env::temp_dir().join(format!("aida_lake_rt_{}", std::process::id()));
        let original = lake();
        original.save_dir(&dir).unwrap();
        let loaded = DataLake::load_dir(&dir).unwrap();
        assert_eq!(loaded.len(), original.len());
        for doc in original.docs() {
            let back = loaded.get(&doc.name).unwrap();
            assert_eq!(back.content, doc.content);
            assert_eq!(back.kind, doc.kind);
            // Ground-truth labels intentionally do not survive disk.
            assert!(back.labels.is_empty());
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
