//! `aida-data`: the data-lake substrate for the AIDA runtime.
//!
//! This crate provides the foundational data model shared by every other
//! crate in the workspace:
//!
//! * [`Value`] — a dynamically-typed scalar/list value (the unit of all
//!   record fields, SQL cells, and script interop).
//! * [`Record`] and [`Schema`] — ordered, schema-carrying tuples produced and
//!   consumed by semantic operators and the SQL engine.
//! * [`Document`] — a named file in an unstructured data lake (CSV, HTML,
//!   plain text, or email), optionally carrying hidden ground-truth labels
//!   used by the simulated LLM oracle.
//! * [`csv`] — an RFC-4180-ish CSV reader/writer built from scratch.
//! * [`html`] — a minimal HTML text/`<table>` extractor.
//! * [`Table`] — an in-memory column-typed table (the structured side of the
//!   runtime, fed into `aida-sql`).
//! * [`DataLake`] — an in-memory collection of documents with name lookup.
//!
//! Everything here is deterministic and dependency-free; parsing never
//! panics on malformed input (errors are reported via [`DataError`]).

pub mod csv;
pub mod document;
pub mod error;
pub mod html;
pub mod lake;
pub mod record;
pub mod table;
pub mod value;

pub use document::{DocKind, Document};
pub use error::DataError;
pub use lake::DataLake;
pub use record::{Field, Record, Schema};
pub use table::Table;
pub use value::Value;

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, DataError>;
