//! Dynamically-typed values.
//!
//! [`Value`] is the single cell type used across the workspace: record
//! fields, SQL cells, script interop, and LLM extraction results all flow
//! through it. The type is intentionally small (no maps; nested structure is
//! represented with [`Value::List`] or flattened field names) so operators
//! can stay simple.

use crate::error::DataError;
use std::cmp::Ordering;
use std::fmt;

/// A dynamically-typed value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// Absence of a value (SQL NULL / Python None).
    Null,
    /// A boolean.
    Bool(bool),
    /// A 64-bit signed integer.
    Int(i64),
    /// A 64-bit float.
    Float(f64),
    /// A UTF-8 string.
    Str(String),
    /// An ordered list of values.
    List(Vec<Value>),
}

impl Value {
    /// Returns the name of this value's type, for error messages.
    pub fn type_name(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Int(_) => "int",
            Value::Float(_) => "float",
            Value::Str(_) => "str",
            Value::List(_) => "list",
        }
    }

    /// True if the value is [`Value::Null`].
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Returns the boolean content, coercing via SQL-ish truthiness:
    /// `Null` is false, numbers are true when nonzero, strings when
    /// non-empty, lists when non-empty.
    pub fn truthy(&self) -> bool {
        match self {
            Value::Null => false,
            Value::Bool(b) => *b,
            Value::Int(i) => *i != 0,
            Value::Float(f) => *f != 0.0,
            Value::Str(s) => !s.is_empty(),
            Value::List(items) => !items.is_empty(),
        }
    }

    /// Strict boolean accessor.
    pub fn as_bool(&self) -> Result<bool, DataError> {
        match self {
            Value::Bool(b) => Ok(*b),
            other => Err(type_err("bool", other)),
        }
    }

    /// Integer accessor; floats with integral values coerce.
    pub fn as_int(&self) -> Result<i64, DataError> {
        match self {
            Value::Int(i) => Ok(*i),
            Value::Float(f) if f.fract() == 0.0 && f.is_finite() => Ok(*f as i64),
            other => Err(type_err("int", other)),
        }
    }

    /// Float accessor; integers coerce.
    pub fn as_float(&self) -> Result<f64, DataError> {
        match self {
            Value::Float(f) => Ok(*f),
            Value::Int(i) => Ok(*i as f64),
            other => Err(type_err("float", other)),
        }
    }

    /// String slice accessor (no coercion).
    pub fn as_str(&self) -> Result<&str, DataError> {
        match self {
            Value::Str(s) => Ok(s),
            other => Err(type_err("str", other)),
        }
    }

    /// List accessor (no coercion).
    pub fn as_list(&self) -> Result<&[Value], DataError> {
        match self {
            Value::List(items) => Ok(items),
            other => Err(type_err("list", other)),
        }
    }

    /// Parses a raw text cell into the most specific value type: empty →
    /// `Null`, then `Int`, `Float`, `Bool` (`true`/`false`, case-insensitive),
    /// falling back to `Str`. Used by the CSV type-inference pass.
    pub fn infer(text: &str) -> Value {
        let trimmed = text.trim();
        if trimmed.is_empty() {
            return Value::Null;
        }
        if let Ok(i) = trimmed.parse::<i64>() {
            return Value::Int(i);
        }
        if let Ok(f) = trimmed.parse::<f64>() {
            if f.is_finite() {
                return Value::Float(f);
            }
        }
        // Numbers with thousands separators appear in FTC-style reports.
        if trimmed.len() > 1 && trimmed.chars().all(|c| c.is_ascii_digit() || c == ',') {
            let compact: String = trimmed.chars().filter(|c| *c != ',').collect();
            if let Ok(i) = compact.parse::<i64>() {
                return Value::Int(i);
            }
        }
        match trimmed.to_ascii_lowercase().as_str() {
            "true" => Value::Bool(true),
            "false" => Value::Bool(false),
            _ => Value::Str(trimmed.to_string()),
        }
    }

    /// Numeric comparison helper used by SQL/semops ordering. Returns `None`
    /// when the two values are incomparable (e.g. `Str` vs `Int`).
    pub fn partial_cmp_value(&self, other: &Value) -> Option<Ordering> {
        match (self, other) {
            (Value::Null, Value::Null) => Some(Ordering::Equal),
            (Value::Null, _) => Some(Ordering::Less),
            (_, Value::Null) => Some(Ordering::Greater),
            (Value::Bool(a), Value::Bool(b)) => Some(a.cmp(b)),
            (Value::Int(a), Value::Int(b)) => Some(a.cmp(b)),
            (Value::Str(a), Value::Str(b)) => Some(a.cmp(b)),
            (Value::List(a), Value::List(b)) => {
                for (x, y) in a.iter().zip(b.iter()) {
                    match x.partial_cmp_value(y) {
                        Some(Ordering::Equal) => continue,
                        other => return other,
                    }
                }
                Some(a.len().cmp(&b.len()))
            }
            (a, b) => {
                let (af, bf) = (a.as_float().ok()?, b.as_float().ok()?);
                af.partial_cmp(&bf)
            }
        }
    }

    /// Structural equality with numeric coercion (`Int(2) == Float(2.0)`).
    pub fn loose_eq(&self, other: &Value) -> bool {
        match (self, other) {
            (Value::Int(a), Value::Float(b)) | (Value::Float(b), Value::Int(a)) => {
                (*a as f64) == *b
            }
            (a, b) => a == b,
        }
    }
}

fn type_err(expected: &'static str, found: &Value) -> DataError {
    DataError::TypeMismatch {
        expected,
        found: format!("{found}"),
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, ""),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(v) => {
                if v.fract() == 0.0 && v.is_finite() && v.abs() < 1e15 {
                    write!(f, "{:.1}", v)
                } else {
                    write!(f, "{v}")
                }
            }
            Value::Str(s) => write!(f, "{s}"),
            Value::List(items) => {
                write!(f, "[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{item}")?;
                }
                write!(f, "]")
            }
        }
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::Bool(b)
    }
}
impl From<i64> for Value {
    fn from(i: i64) -> Self {
        Value::Int(i)
    }
}
impl From<i32> for Value {
    fn from(i: i32) -> Self {
        Value::Int(i64::from(i))
    }
}
impl From<usize> for Value {
    fn from(i: usize) -> Self {
        Value::Int(i as i64)
    }
}
impl From<f64> for Value {
    fn from(f: f64) -> Self {
        Value::Float(f)
    }
}
impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::Str(s.to_string())
    }
}
impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::Str(s)
    }
}
impl<T: Into<Value>> From<Vec<T>> for Value {
    fn from(items: Vec<T>) -> Self {
        Value::List(items.into_iter().map(Into::into).collect())
    }
}
impl<T: Into<Value>> From<Option<T>> for Value {
    fn from(opt: Option<T>) -> Self {
        opt.map_or(Value::Null, Into::into)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn infer_parses_specific_types() {
        assert_eq!(Value::infer("42"), Value::Int(42));
        assert_eq!(Value::infer("-7"), Value::Int(-7));
        assert_eq!(Value::infer("3.5"), Value::Float(3.5));
        assert_eq!(Value::infer("true"), Value::Bool(true));
        assert_eq!(Value::infer("FALSE"), Value::Bool(false));
        assert_eq!(Value::infer(""), Value::Null);
        assert_eq!(Value::infer("  "), Value::Null);
        assert_eq!(Value::infer("hello"), Value::Str("hello".into()));
    }

    #[test]
    fn infer_handles_thousands_separators() {
        assert_eq!(Value::infer("1,234,567"), Value::Int(1_234_567));
        // A lone comma is not a number.
        assert_eq!(Value::infer(",,"), Value::Str(",,".into()));
    }

    #[test]
    fn truthiness_matches_python_semantics() {
        assert!(!Value::Null.truthy());
        assert!(!Value::Int(0).truthy());
        assert!(Value::Int(-1).truthy());
        assert!(!Value::Str(String::new()).truthy());
        assert!(Value::Str("x".into()).truthy());
        assert!(!Value::List(vec![]).truthy());
    }

    #[test]
    fn numeric_coercions() {
        assert_eq!(Value::Float(4.0).as_int().unwrap(), 4);
        assert!(Value::Float(4.5).as_int().is_err());
        assert_eq!(Value::Int(4).as_float().unwrap(), 4.0);
        assert!(Value::Str("4".into()).as_int().is_err());
    }

    #[test]
    fn ordering_across_numeric_types() {
        use std::cmp::Ordering::*;
        assert_eq!(
            Value::Int(2).partial_cmp_value(&Value::Float(2.5)),
            Some(Less)
        );
        assert_eq!(Value::Null.partial_cmp_value(&Value::Int(0)), Some(Less));
        assert_eq!(
            Value::Str("a".into()).partial_cmp_value(&Value::Str("b".into())),
            Some(Less)
        );
        assert_eq!(
            Value::Str("a".into()).partial_cmp_value(&Value::Int(1)),
            None
        );
    }

    #[test]
    fn list_ordering_is_lexicographic() {
        let a = Value::from(vec![1i64, 2]);
        let b = Value::from(vec![1i64, 3]);
        let c = Value::from(vec![1i64, 2, 0]);
        assert_eq!(a.partial_cmp_value(&b), Some(Ordering::Less));
        assert_eq!(a.partial_cmp_value(&c), Some(Ordering::Less));
    }

    #[test]
    fn loose_equality_bridges_int_float() {
        assert!(Value::Int(2).loose_eq(&Value::Float(2.0)));
        assert!(!Value::Int(2).loose_eq(&Value::Float(2.1)));
        assert!(Value::Str("x".into()).loose_eq(&Value::Str("x".into())));
    }

    #[test]
    fn display_round_trips_simple_values() {
        assert_eq!(Value::Int(5).to_string(), "5");
        assert_eq!(Value::Float(2.0).to_string(), "2.0");
        assert_eq!(Value::from(vec![1i64, 2]).to_string(), "[1, 2]");
        assert_eq!(Value::Null.to_string(), "");
    }
}
