//! In-memory tables: the structured side of the runtime.
//!
//! A [`Table`] is a schema plus row-major values. Tables are produced by the
//! CSV/HTML parsers, materialized by `compute`/`search` operators, and
//! queried by the `aida-sql` engine.

use crate::error::DataError;
use crate::record::{Record, Schema};
use crate::value::Value;

/// A row-major in-memory table.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Table {
    schema: Schema,
    rows: Vec<Vec<Value>>,
}

impl Table {
    /// Creates an empty table with the given schema.
    pub fn new(schema: Schema) -> Self {
        Table {
            schema,
            rows: Vec::new(),
        }
    }

    /// The table's schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// All rows.
    pub fn rows(&self) -> &[Vec<Value>] {
        &self.rows
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when the table has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Appends a row; its arity must match the schema.
    pub fn push_row(&mut self, row: Vec<Value>) -> Result<(), DataError> {
        if row.len() != self.schema.len() {
            return Err(DataError::ArityMismatch {
                expected: self.schema.len(),
                found: row.len(),
            });
        }
        self.rows.push(row);
        Ok(())
    }

    /// Cell accessor by row index and column name.
    pub fn cell(&self, row: usize, column: &str) -> Option<&Value> {
        let col = self.schema.index_of(column)?;
        self.rows.get(row).map(|r| &r[col])
    }

    /// Full column by name.
    pub fn column(&self, name: &str) -> Result<Vec<&Value>, DataError> {
        let idx = self
            .schema
            .index_of(name)
            .ok_or_else(|| DataError::UnknownField(name.to_string()))?;
        Ok(self.rows.iter().map(|r| &r[idx]).collect())
    }

    /// Finds the first row where `column == value` (loose numeric equality).
    pub fn find_row(&self, column: &str, value: &Value) -> Option<&[Value]> {
        let idx = self.schema.index_of(column)?;
        self.rows
            .iter()
            .find(|r| r[idx].loose_eq(value))
            .map(|r| r.as_slice())
    }

    /// Converts rows into [`Record`]s tagged with `source`.
    pub fn to_records(&self, source: &str) -> Vec<Record> {
        let names = self.schema.names();
        self.rows
            .iter()
            .map(|row| {
                let mut rec = Record::new(source);
                for (name, value) in names.iter().zip(row.iter()) {
                    rec.set(*name, value.clone());
                }
                rec
            })
            .collect()
    }

    /// Builds a table from records using the union of their field names (in
    /// first-seen order); missing fields become `Null`.
    pub fn from_records(records: &[Record]) -> Table {
        let mut names: Vec<String> = Vec::new();
        for rec in records {
            for (name, _) in rec.iter() {
                if !names.iter().any(|n| n == name) {
                    names.push(name.to_string());
                }
            }
        }
        let schema = Schema::of(names.iter().cloned());
        let mut table = Table::new(schema);
        for rec in records {
            let row: Vec<Value> = names.iter().map(|n| rec.get_or_null(n)).collect();
            // Arity matches by construction.
            table.rows.push(row);
        }
        table
    }

    /// Pretty-prints the table with column-aligned ASCII output (used by
    /// example binaries and the benchmark harness).
    pub fn render(&self) -> String {
        let names = self.schema.names();
        let mut widths: Vec<usize> = names.iter().map(|n| n.len()).collect();
        let rendered: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|row| row.iter().map(|v| v.to_string()).collect())
            .collect();
        for row in &rendered {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let write_row = |out: &mut String, cells: &[String]| {
            for (i, cell) in cells.iter().enumerate() {
                if i > 0 {
                    out.push_str(" | ");
                }
                out.push_str(cell);
                for _ in cell.len()..widths[i] {
                    out.push(' ');
                }
            }
            out.push('\n');
        };
        write_row(
            &mut out,
            &names.iter().map(|s| s.to_string()).collect::<Vec<_>>(),
        );
        let sep: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
        write_row(&mut out, &sep);
        for row in &rendered {
            write_row(&mut out, row);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Table {
        let mut t = Table::new(Schema::of(["year", "thefts"]));
        t.push_row(vec![Value::Int(2001), Value::Int(86_250)])
            .unwrap();
        t.push_row(vec![Value::Int(2024), Value::Int(1_135_291)])
            .unwrap();
        t
    }

    #[test]
    fn push_row_checks_arity() {
        let mut t = Table::new(Schema::of(["a"]));
        assert!(t.push_row(vec![Value::Int(1), Value::Int(2)]).is_err());
        assert!(t.push_row(vec![Value::Int(1)]).is_ok());
    }

    #[test]
    fn cell_and_column_access() {
        let t = sample();
        assert_eq!(t.cell(1, "thefts"), Some(&Value::Int(1_135_291)));
        assert_eq!(t.cell(1, "nope"), None);
        let col = t.column("year").unwrap();
        assert_eq!(col, vec![&Value::Int(2001), &Value::Int(2024)]);
        assert!(t.column("nope").is_err());
    }

    #[test]
    fn find_row_uses_loose_equality() {
        let t = sample();
        let row = t.find_row("year", &Value::Float(2024.0)).unwrap();
        assert_eq!(row[1], Value::Int(1_135_291));
        assert!(t.find_row("year", &Value::Int(1999)).is_none());
    }

    #[test]
    fn record_round_trip() {
        let t = sample();
        let recs = t.to_records("f.csv");
        assert_eq!(recs.len(), 2);
        let t2 = Table::from_records(&recs);
        assert_eq!(t2.rows(), t.rows());
        assert_eq!(t2.schema().names(), t.schema().names());
    }

    #[test]
    fn from_records_unions_fields() {
        let recs = vec![
            Record::new("a").with("x", 1i64),
            Record::new("b").with("y", 2i64).with("x", 3i64),
        ];
        let t = Table::from_records(&recs);
        assert_eq!(t.schema().names(), vec!["x", "y"]);
        assert_eq!(t.rows()[0], vec![Value::Int(1), Value::Null]);
        assert_eq!(t.rows()[1], vec![Value::Int(3), Value::Int(2)]);
    }

    #[test]
    fn render_contains_all_cells() {
        let s = sample().render();
        assert!(s.contains("year"));
        assert!(s.contains("1135291"));
        assert!(s.lines().count() >= 4);
    }
}
