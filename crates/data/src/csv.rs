//! A from-scratch CSV reader and writer.
//!
//! Implements the practical core of RFC 4180: comma separation, CRLF/LF row
//! endings, double-quoted fields with embedded commas/quotes/newlines, and
//! quote-escaping by doubling. The reader is a single-pass state machine;
//! it never allocates more than one row at a time beyond the output.

use crate::error::DataError;
use crate::record::{Record, Schema};
use crate::table::Table;
use crate::value::Value;

/// Parses CSV text into rows of string cells.
///
/// Empty trailing lines are ignored. Returns an error on an unterminated
/// quoted field.
pub fn parse(text: &str) -> Result<Vec<Vec<String>>, DataError> {
    let mut rows = Vec::new();
    let mut row: Vec<String> = Vec::new();
    let mut cell = String::new();
    let mut line = 1usize;
    let mut in_quotes = false;
    let mut chars = text.chars().peekable();
    let mut saw_any = false;

    while let Some(c) = chars.next() {
        saw_any = true;
        if in_quotes {
            match c {
                '"' => {
                    if chars.peek() == Some(&'"') {
                        chars.next();
                        cell.push('"');
                    } else {
                        in_quotes = false;
                    }
                }
                '\n' => {
                    line += 1;
                    cell.push(c);
                }
                _ => cell.push(c),
            }
        } else {
            match c {
                '"' => in_quotes = true,
                ',' => {
                    row.push(std::mem::take(&mut cell));
                }
                '\r' => {
                    // Swallow the LF of a CRLF pair; lone CR also ends a row.
                    if chars.peek() == Some(&'\n') {
                        chars.next();
                    }
                    row.push(std::mem::take(&mut cell));
                    rows.push(std::mem::take(&mut row));
                    line += 1;
                }
                '\n' => {
                    row.push(std::mem::take(&mut cell));
                    rows.push(std::mem::take(&mut row));
                    line += 1;
                }
                _ => cell.push(c),
            }
        }
    }

    if in_quotes {
        return Err(DataError::Csv {
            line,
            message: "unterminated quoted field".into(),
        });
    }
    if saw_any && (!cell.is_empty() || !row.is_empty()) {
        row.push(cell);
        rows.push(row);
    }
    // Drop fully-empty trailing rows produced by trailing newlines.
    while rows.last().is_some_and(|r| r.len() == 1 && r[0].is_empty()) {
        rows.pop();
    }
    Ok(rows)
}

/// Parses CSV text whose first row is a header into a typed [`Table`].
///
/// Cell types are inferred per-cell with [`Value::infer`]. Rows shorter than
/// the header are padded with `Null`; longer rows are an error.
pub fn parse_table(text: &str) -> Result<Table, DataError> {
    let rows = parse(text)?;
    let mut iter = rows.into_iter();
    let header = match iter.next() {
        Some(h) => h,
        None => return Ok(Table::new(Schema::empty())),
    };
    let schema = Schema::of(header.iter().map(|h| h.trim().to_string()));
    let mut table = Table::new(schema);
    for (i, row) in iter.enumerate() {
        if row.len() > header.len() {
            return Err(DataError::ArityMismatch {
                expected: header.len(),
                found: row.len(),
            });
        }
        let mut values: Vec<Value> = row.iter().map(|c| Value::infer(c)).collect();
        values.resize(header.len(), Value::Null);
        table.push_row(values).map_err(|_| DataError::Csv {
            line: i + 2,
            message: "row arity mismatch".into(),
        })?;
    }
    Ok(table)
}

/// Parses CSV with a header row into [`Record`]s tagged with `source`.
pub fn parse_records(text: &str, source: &str) -> Result<Vec<Record>, DataError> {
    let table = parse_table(text)?;
    Ok(table.to_records(source))
}

/// Escapes a cell for CSV output, quoting only when necessary.
pub fn escape_cell(cell: &str) -> String {
    if cell.contains(',') || cell.contains('"') || cell.contains('\n') || cell.contains('\r') {
        let mut out = String::with_capacity(cell.len() + 2);
        out.push('"');
        for c in cell.chars() {
            if c == '"' {
                out.push('"');
            }
            out.push(c);
        }
        out.push('"');
        out
    } else {
        cell.to_string()
    }
}

/// Serializes rows of cells to CSV text with LF row endings.
pub fn write(rows: &[Vec<String>]) -> String {
    let mut out = String::new();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&escape_cell(cell));
        }
        out.push('\n');
    }
    out
}

/// Serializes a [`Table`] (header + rows) to CSV text.
pub fn write_table(table: &Table) -> String {
    let mut rows: Vec<Vec<String>> = vec![table
        .schema()
        .names()
        .iter()
        .map(|s| s.to_string())
        .collect()];
    for row in table.rows() {
        rows.push(row.iter().map(|v| v.to_string()).collect());
    }
    write(&rows)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_simple_rows() {
        let rows = parse("a,b,c\n1,2,3\n").unwrap();
        assert_eq!(rows, vec![vec!["a", "b", "c"], vec!["1", "2", "3"]]);
    }

    #[test]
    fn parses_quoted_fields_with_commas_and_newlines() {
        let rows = parse("name,notes\n\"Smith, J\",\"line1\nline2\"\n").unwrap();
        assert_eq!(rows[1][0], "Smith, J");
        assert_eq!(rows[1][1], "line1\nline2");
    }

    #[test]
    fn doubled_quotes_unescape() {
        let rows = parse("a\n\"say \"\"hi\"\"\"\n").unwrap();
        assert_eq!(rows[1][0], "say \"hi\"");
    }

    #[test]
    fn handles_crlf_endings() {
        let rows = parse("a,b\r\n1,2\r\n").unwrap();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[1], vec!["1", "2"]);
    }

    #[test]
    fn unterminated_quote_is_an_error() {
        let err = parse("a\n\"oops\n").unwrap_err();
        assert!(matches!(err, DataError::Csv { .. }));
    }

    #[test]
    fn empty_input_yields_no_rows() {
        assert!(parse("").unwrap().is_empty());
        assert!(parse("\n\n").unwrap().is_empty());
    }

    #[test]
    fn table_infers_types_and_pads_short_rows() {
        let t = parse_table("year,count,label\n2001,325519,theft\n2024,\n").unwrap();
        assert_eq!(t.len(), 2);
        assert_eq!(t.rows()[0][1], Value::Int(325_519));
        assert_eq!(t.rows()[1][1], Value::Null);
        assert_eq!(t.rows()[1][2], Value::Null);
    }

    #[test]
    fn table_rejects_long_rows() {
        assert!(parse_table("a,b\n1,2,3\n").is_err());
    }

    #[test]
    fn records_carry_source() {
        let recs = parse_records("a,b\n1,x\n", "file.csv").unwrap();
        assert_eq!(recs.len(), 1);
        assert_eq!(recs[0].source, "file.csv");
        assert_eq!(recs[0].get("b"), Some(&Value::Str("x".into())));
    }

    #[test]
    fn write_round_trips_through_parse() {
        let rows = vec![
            vec!["plain".to_string(), "with,comma".to_string()],
            vec!["with \"quote\"".to_string(), "multi\nline".to_string()],
        ];
        let text = write(&rows);
        let parsed = parse(&text).unwrap();
        assert_eq!(parsed, rows);
    }

    #[test]
    fn escape_only_when_needed() {
        assert_eq!(escape_cell("plain"), "plain");
        assert_eq!(escape_cell("a,b"), "\"a,b\"");
        assert_eq!(escape_cell("q\"q"), "\"q\"\"q\"");
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        // Cells with every troublesome character class: commas, quotes,
        // newlines, CRs, unicode.
        fn cell_strategy() -> impl Strategy<Value = String> {
            prop::collection::vec(
                prop_oneof![
                    Just(",".to_string()),
                    Just("\"".to_string()),
                    Just("\n".to_string()),
                    Just("\r\n".to_string()),
                    "[a-zA-Z0-9 ]{0,6}",
                    Just("é日本".to_string()),
                ],
                0..5,
            )
            .prop_map(|parts| parts.concat())
        }

        proptest! {
            #[test]
            fn write_parse_round_trip(
                rows in prop::collection::vec(
                    prop::collection::vec(cell_strategy(), 1..5),
                    1..8,
                )
            ) {
                // Normalize: all rows same width (parse is strict only in
                // table mode, but round-trip needs rectangular input to
                // compare shape).
                let width = rows[0].len();
                let rows: Vec<Vec<String>> =
                    rows.into_iter().map(|mut r| { r.resize(width, String::new()); r }).collect();
                // Fully-empty trailing rows are dropped by the parser by
                // design; skip inputs that end with one.
                prop_assume!(!rows.last().unwrap().iter().all(String::is_empty) || width > 1);
                let text = write(&rows);
                let parsed = parse(&text).unwrap();
                prop_assert_eq!(parsed, rows);
            }

            #[test]
            fn parse_never_panics(text in ".{0,200}") {
                let _ = parse(&text);
            }

            #[test]
            fn infer_round_trips_integers(i in any::<i64>()) {
                prop_assert_eq!(Value::infer(&i.to_string()), Value::Int(i));
            }
        }
    }
}
