//! Records and schemas.
//!
//! A [`Record`] is the tuple type flowing through semantic-operator plans:
//! an ordered list of named [`Value`]s plus a lightweight provenance tag
//! (`source`) identifying the document the record was derived from. Field
//! order is stable and significant (projection preserves it), but lookup by
//! name is O(1)-ish via linear scan over small arity — records in this
//! system rarely exceed a dozen fields.

use crate::error::DataError;
use crate::value::Value;
use std::fmt;

/// A named, typed column in a [`Schema`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Field {
    /// Column name.
    pub name: String,
    /// Natural-language description (semantic operators feed this to the
    /// LLM when extracting the field).
    pub desc: String,
}

impl Field {
    /// Creates a field with an empty description.
    pub fn new(name: impl Into<String>) -> Self {
        Field {
            name: name.into(),
            desc: String::new(),
        }
    }

    /// Creates a field with a natural-language description.
    pub fn described(name: impl Into<String>, desc: impl Into<String>) -> Self {
        Field {
            name: name.into(),
            desc: desc.into(),
        }
    }
}

/// An ordered collection of fields.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Schema {
    fields: Vec<Field>,
}

impl Schema {
    /// An empty schema.
    pub fn empty() -> Self {
        Schema { fields: Vec::new() }
    }

    /// Builds a schema from field names.
    pub fn of<I, S>(names: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        Schema {
            fields: names.into_iter().map(|n| Field::new(n)).collect(),
        }
    }

    /// Builds a schema from explicit fields.
    pub fn from_fields(fields: Vec<Field>) -> Self {
        Schema { fields }
    }

    /// The fields in declaration order.
    pub fn fields(&self) -> &[Field] {
        &self.fields
    }

    /// Number of fields.
    pub fn len(&self) -> usize {
        self.fields.len()
    }

    /// True when the schema has no fields.
    pub fn is_empty(&self) -> bool {
        self.fields.is_empty()
    }

    /// Index of a field by name.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.fields.iter().position(|f| f.name == name)
    }

    /// True if the schema contains the field.
    pub fn contains(&self, name: &str) -> bool {
        self.index_of(name).is_some()
    }

    /// Appends a field, returning a new schema. Duplicate names replace the
    /// existing field in place (extraction overwrites).
    pub fn with_field(&self, field: Field) -> Schema {
        let mut fields = self.fields.clone();
        match fields.iter().position(|f| f.name == field.name) {
            Some(i) => fields[i] = field,
            None => fields.push(field),
        }
        Schema { fields }
    }

    /// Restricts the schema to the named columns, in the given order.
    pub fn project(&self, names: &[&str]) -> Result<Schema, DataError> {
        let mut fields = Vec::with_capacity(names.len());
        for name in names {
            let idx = self
                .index_of(name)
                .ok_or_else(|| DataError::UnknownField((*name).to_string()))?;
            fields.push(self.fields[idx].clone());
        }
        Ok(Schema { fields })
    }

    /// Field names as a vector of string slices.
    pub fn names(&self) -> Vec<&str> {
        self.fields.iter().map(|f| f.name.as_str()).collect()
    }
}

/// A tuple of named values with provenance.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Record {
    fields: Vec<(String, Value)>,
    /// Identifier of the source document (or upstream record) this record
    /// was derived from. Used for lineage and evaluation.
    pub source: String,
}

impl Record {
    /// Creates an empty record with a source tag.
    pub fn new(source: impl Into<String>) -> Self {
        Record {
            fields: Vec::new(),
            source: source.into(),
        }
    }

    /// Builder-style field insertion (replaces an existing field).
    pub fn with(mut self, name: impl Into<String>, value: impl Into<Value>) -> Self {
        self.set(name, value);
        self
    }

    /// Sets a field, replacing any existing field of the same name.
    pub fn set(&mut self, name: impl Into<String>, value: impl Into<Value>) {
        let name = name.into();
        let value = value.into();
        match self.fields.iter_mut().find(|(n, _)| *n == name) {
            Some((_, v)) => *v = value,
            None => self.fields.push((name, value)),
        }
    }

    /// Field lookup by name.
    pub fn get(&self, name: &str) -> Option<&Value> {
        self.fields.iter().find(|(n, _)| n == name).map(|(_, v)| v)
    }

    /// Field lookup returning `Value::Null` when missing.
    pub fn get_or_null(&self, name: &str) -> Value {
        self.get(name).cloned().unwrap_or(Value::Null)
    }

    /// Required field lookup.
    pub fn require(&self, name: &str) -> Result<&Value, DataError> {
        self.get(name)
            .ok_or_else(|| DataError::UnknownField(name.to_string()))
    }

    /// Iterates `(name, value)` pairs in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &Value)> {
        self.fields.iter().map(|(n, v)| (n.as_str(), v))
    }

    /// Number of fields.
    pub fn len(&self) -> usize {
        self.fields.len()
    }

    /// True when the record carries no fields.
    pub fn is_empty(&self) -> bool {
        self.fields.is_empty()
    }

    /// Projects the record onto the given columns (missing columns become
    /// `Null`, mirroring SQL outer semantics used by extraction operators).
    pub fn project(&self, names: &[&str]) -> Record {
        let mut out = Record::new(self.source.clone());
        for name in names {
            out.set(*name, self.get_or_null(name));
        }
        out
    }

    /// Renders the record as `k=v` pairs for prompts and traces.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for (i, (name, value)) in self.fields.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(name);
            out.push('=');
            out.push_str(&value.to_string());
        }
        out
    }
}

impl fmt::Display for Record {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{{}}}", self.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_replaces_existing_field() {
        let mut r = Record::new("doc1");
        r.set("year", 2001i64);
        r.set("year", 2024i64);
        assert_eq!(r.len(), 1);
        assert_eq!(r.get("year"), Some(&Value::Int(2024)));
    }

    #[test]
    fn field_order_is_insertion_order() {
        let r = Record::new("d").with("b", 1i64).with("a", 2i64);
        let names: Vec<&str> = r.iter().map(|(n, _)| n).collect();
        assert_eq!(names, vec!["b", "a"]);
    }

    #[test]
    fn projection_fills_missing_with_null() {
        let r = Record::new("d").with("x", 1i64);
        let p = r.project(&["x", "y"]);
        assert_eq!(p.get("x"), Some(&Value::Int(1)));
        assert_eq!(p.get("y"), Some(&Value::Null));
        assert_eq!(p.source, "d");
    }

    #[test]
    fn schema_project_errors_on_unknown() {
        let s = Schema::of(["a", "b"]);
        assert!(s.project(&["a", "c"]).is_err());
        let p = s.project(&["b"]).unwrap();
        assert_eq!(p.names(), vec!["b"]);
    }

    #[test]
    fn schema_with_field_replaces_duplicates() {
        let s = Schema::of(["a"]);
        let s2 = s.with_field(Field::described("a", "new desc"));
        assert_eq!(s2.len(), 1);
        assert_eq!(s2.fields()[0].desc, "new desc");
        let s3 = s2.with_field(Field::new("b"));
        assert_eq!(s3.len(), 2);
    }

    #[test]
    fn render_and_display() {
        let r = Record::new("d").with("a", 1i64).with("b", "x");
        assert_eq!(r.to_string(), "{a=1, b=x}");
    }

    #[test]
    fn require_reports_unknown_field() {
        let r = Record::new("d");
        assert!(matches!(r.require("nope"), Err(DataError::UnknownField(_))));
    }
}
