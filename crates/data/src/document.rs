//! Documents: named files in the unstructured data lake.

use crate::html;
use crate::table::Table;
use crate::value::Value;
use crate::{csv, DataError};
use std::collections::BTreeMap;

/// The format of a document's content.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DocKind {
    /// Comma-separated values with a header row.
    Csv,
    /// An HTML page.
    Html,
    /// Plain text.
    Text,
    /// An RFC-822-ish email (headers, blank line, body).
    Email,
}

impl DocKind {
    /// Guesses the kind from a file extension.
    pub fn from_name(name: &str) -> DocKind {
        let lower = name.to_ascii_lowercase();
        if lower.ends_with(".csv") {
            DocKind::Csv
        } else if lower.ends_with(".html") || lower.ends_with(".htm") {
            DocKind::Html
        } else if lower.ends_with(".eml") {
            DocKind::Email
        } else {
            DocKind::Text
        }
    }
}

/// A file in the data lake.
///
/// `labels` carries hidden ground-truth annotations set by workload
/// generators — they are **never** exposed to agents or semantic operators
/// directly; only the simulated-LLM oracle (which stands in for a model
/// actually reading the text) consults them.
#[derive(Debug, Clone, PartialEq)]
pub struct Document {
    /// Stable identifier, unique within a lake.
    pub id: String,
    /// File name (used by list/read tools and filename heuristics).
    pub name: String,
    /// Content format.
    pub kind: DocKind,
    /// Raw file content.
    pub content: String,
    /// Hidden ground-truth labels (oracle-only).
    pub labels: BTreeMap<String, Value>,
}

impl Document {
    /// Creates a document, deriving `kind` from the file name.
    pub fn new(name: impl Into<String>, content: impl Into<String>) -> Self {
        let name = name.into();
        Document {
            id: name.clone(),
            kind: DocKind::from_name(&name),
            name,
            content: content.into(),
            labels: BTreeMap::new(),
        }
    }

    /// Builder-style ground-truth label insertion.
    pub fn with_label(mut self, key: impl Into<String>, value: impl Into<Value>) -> Self {
        self.labels.insert(key.into(), value.into());
        self
    }

    /// Ground-truth label accessor (oracle-only).
    pub fn label(&self, key: &str) -> Option<&Value> {
        self.labels.get(key)
    }

    /// Returns the document's visible text: HTML is stripped, other kinds
    /// pass through unchanged.
    pub fn text(&self) -> String {
        match self.kind {
            DocKind::Html => html::to_text(&self.content),
            _ => self.content.clone(),
        }
    }

    /// Parses structured tables out of the document (CSV body or HTML
    /// `<table>` elements). Text/email documents yield no tables.
    pub fn tables(&self) -> Result<Vec<Table>, DataError> {
        match self.kind {
            DocKind::Csv => Ok(vec![csv::parse_table(&self.content)?]),
            DocKind::Html => Ok(html::extract_tables(&self.content)),
            _ => Ok(Vec::new()),
        }
    }

    /// For email documents: the header value (case-insensitive key).
    pub fn email_header(&self, key: &str) -> Option<&str> {
        if self.kind != DocKind::Email {
            return None;
        }
        for line in self.content.lines() {
            if line.is_empty() {
                break;
            }
            if let Some((k, v)) = line.split_once(':') {
                if k.trim().eq_ignore_ascii_case(key) {
                    return Some(v.trim());
                }
            }
        }
        None
    }

    /// For email documents: everything after the first blank line.
    pub fn email_body(&self) -> &str {
        match self.content.split_once("\n\n") {
            Some((_, body)) if self.kind == DocKind::Email => body,
            _ => &self.content,
        }
    }

    /// Approximate size in bytes (used by cost/latency models).
    pub fn size(&self) -> usize {
        self.content.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_from_extension() {
        assert_eq!(DocKind::from_name("a.csv"), DocKind::Csv);
        assert_eq!(DocKind::from_name("A.HTML"), DocKind::Html);
        assert_eq!(DocKind::from_name("m.eml"), DocKind::Email);
        assert_eq!(DocKind::from_name("notes.txt"), DocKind::Text);
        assert_eq!(DocKind::from_name("README"), DocKind::Text);
    }

    #[test]
    fn email_header_and_body() {
        let doc = Document::new(
            "m1.eml",
            "From: jeff@enron.com\nSubject: Raptor position\n\nLet's discuss the hedge.",
        );
        assert_eq!(doc.email_header("from"), Some("jeff@enron.com"));
        assert_eq!(doc.email_header("SUBJECT"), Some("Raptor position"));
        assert_eq!(doc.email_header("cc"), None);
        assert_eq!(doc.email_body(), "Let's discuss the hedge.");
    }

    #[test]
    fn email_header_on_non_email_is_none() {
        let doc = Document::new("a.txt", "From: x\n\nbody");
        assert_eq!(doc.email_header("from"), None);
        // email_body falls through to full content for non-emails.
        assert_eq!(doc.email_body(), "From: x\n\nbody");
    }

    #[test]
    fn csv_document_yields_table() {
        let doc = Document::new("t.csv", "year,n\n2001,5\n");
        let tables = doc.tables().unwrap();
        assert_eq!(tables.len(), 1);
        assert_eq!(tables[0].cell(0, "n"), Some(&Value::Int(5)));
    }

    #[test]
    fn labels_are_oracle_only_storage() {
        let doc = Document::new("m.eml", "Subject: x\n\nbody").with_label("relevant", true);
        assert_eq!(doc.label("relevant"), Some(&Value::Bool(true)));
        assert_eq!(doc.label("nope"), None);
    }

    #[test]
    fn html_text_strips_markup() {
        let doc = Document::new("r.html", "<p>Total &amp; breakdown</p>");
        assert_eq!(doc.text().trim(), "Total & breakdown");
    }
}
