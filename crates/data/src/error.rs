//! Error type for the data substrate.

use std::fmt;

/// Errors produced while parsing or manipulating data-lake content.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DataError {
    /// A CSV document was structurally malformed (e.g. unterminated quote).
    Csv { line: usize, message: String },
    /// A value could not be coerced to the requested type.
    TypeMismatch {
        expected: &'static str,
        found: String,
    },
    /// A referenced field does not exist in the schema.
    UnknownField(String),
    /// A referenced document does not exist in the lake.
    UnknownDocument(String),
    /// Row arity did not match the table schema.
    ArityMismatch { expected: usize, found: usize },
    /// An I/O failure while loading documents from disk.
    Io(String),
}

impl fmt::Display for DataError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DataError::Csv { line, message } => {
                write!(f, "csv parse error at line {line}: {message}")
            }
            DataError::TypeMismatch { expected, found } => {
                write!(f, "type mismatch: expected {expected}, found {found}")
            }
            DataError::UnknownField(name) => write!(f, "unknown field: {name}"),
            DataError::UnknownDocument(name) => write!(f, "unknown document: {name}"),
            DataError::ArityMismatch { expected, found } => {
                write!(
                    f,
                    "arity mismatch: expected {expected} columns, found {found}"
                )
            }
            DataError::Io(msg) => write!(f, "io error: {msg}"),
        }
    }
}

impl std::error::Error for DataError {}

impl From<std::io::Error> for DataError {
    fn from(err: std::io::Error) -> Self {
        DataError::Io(err.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let err = DataError::Csv {
            line: 3,
            message: "unterminated quote".into(),
        };
        assert_eq!(
            err.to_string(),
            "csv parse error at line 3: unterminated quote"
        );
        let err = DataError::TypeMismatch {
            expected: "int",
            found: "str(\"x\")".into(),
        };
        assert!(err.to_string().contains("expected int"));
        let err = DataError::UnknownField("year".into());
        assert!(err.to_string().contains("year"));
    }

    #[test]
    fn io_error_converts() {
        let io = std::io::Error::new(std::io::ErrorKind::NotFound, "gone");
        let err: DataError = io.into();
        assert!(matches!(err, DataError::Io(_)));
    }
}
