//! The query service: one shared [`Runtime`] multiplexed across tenants
//! by an admission-controlled worker pool.
//!
//! # Determinism under real threads
//!
//! Queries execute on a pool of real `std::thread::scope` workers, but
//! the scheduler dispatches **one query at a time** and blocks for its
//! result before dispatching the next. All mutations of the shared
//! runtime (clock, usage meter, ContextManager) therefore happen in a
//! deterministic order regardless of how the host schedules threads.
//! Concurrency is modeled in *virtual* time instead: a [`Timeline`]
//! places each query on the earliest-free virtual worker, so queries
//! overlap in the reported schedule exactly as they would on an
//! `N`-worker pool. Two runs of the same workload produce byte-identical
//! reports.
//!
//! Virtual-worker index `k` is pinned to real worker thread `k`, so the
//! physical execution follows the virtual placement.

use crate::autoscale::{AutoscaleConfig, Autoscaler};
use crate::bounds::BoundGate;
use crate::driver::{ReplaySource, RequestSource};
use crate::queue::AdmissionQueue;
use crate::report::ServiceReport;
use crate::request::{Completion, QueryRequest, RejectReason, Shed};
use crate::tenant::{LedgerRecord, LedgerWal, TenantConfig, TenantLedger, WalRecovery};
use crate::TenantId;
use aida_core::{Context, Runtime};
use aida_llm::snapshot::SnapshotError;
use aida_llm::Timeline;
use aida_obs::{registry, Event, Recorder, SeriesStore, SloPolicy, WindowSnapshot};
use std::collections::BTreeMap;
use std::sync::mpsc;

/// Service tunables.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Worker-pool size (virtual and real; minimum 1).
    pub workers: usize,
    /// Admission-queue bound across all tenants (minimum 1).
    pub queue_capacity: usize,
    /// Health-series slot width in virtual seconds.
    pub health_slot_s: f64,
    /// Health-series ring length; `health_slot_s * health_slots` is the
    /// longest trailing window the health layer can answer, so it must
    /// cover `slo_policy.slow_window_s`.
    pub health_slots: usize,
    /// Burn-rate evaluation windows and alert threshold.
    pub slo_policy: SloPolicy,
    /// Group-commit batch bound: ledger records are buffered and flushed
    /// to the WAL under one fsync once this many accumulate (plus at
    /// every ops-interval boundary and at end of run). `0` or `1` keeps
    /// per-record durability. The bound is also the crash-staleness
    /// guarantee: the durable log trails the in-memory ledger by at most
    /// this many records.
    pub group_commit: usize,
    /// Completions between background-ops hooks (WAL compaction checks
    /// run here, off the per-query path; minimum 1).
    pub ops_interval: u64,
    /// Latency-targeted autoscaling of the virtual worker pool. When
    /// set, the service provisions `autoscale.max_workers` threads and
    /// lets the controller resize the *active* prefix between the
    /// configured bounds; `workers` becomes the initial pool size.
    /// `None` keeps the fixed pool.
    pub autoscale: Option<AutoscaleConfig>,
    /// Static cost-bound admission gating: when set, every instruction
    /// that compiles as Pyrite is analyzed (`aida_script::bounds`) and a
    /// request whose worst-case dollars at this execution tier provably
    /// exceed the tenant's remaining dollar quota is shed with
    /// [`RejectReason::CostBoundExceeded`] *before* dispatch, at zero
    /// attributed spend. `None` disables the gate.
    pub cost_bounds: Option<aida_llm::models::ModelId>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            workers: 4,
            queue_capacity: 64,
            health_slot_s: 10.0,
            health_slots: 64,
            slo_policy: SloPolicy::default(),
            group_commit: 0,
            ops_interval: 16,
            autoscale: None,
            cost_bounds: None,
        }
    }
}

impl ServeConfig {
    /// A config with the given worker-pool size.
    pub fn with_workers(workers: usize) -> ServeConfig {
        ServeConfig {
            workers,
            ..ServeConfig::default()
        }
    }

    /// Sets the admission-queue bound.
    pub fn queue_capacity(mut self, capacity: usize) -> ServeConfig {
        self.queue_capacity = capacity;
        self
    }

    /// Sets the health-series slot geometry.
    pub fn health_window(mut self, slot_s: f64, slots: usize) -> ServeConfig {
        self.health_slot_s = slot_s;
        self.health_slots = slots;
        self
    }

    /// Sets the SLO burn-rate policy.
    pub fn slo_policy(mut self, policy: SloPolicy) -> ServeConfig {
        self.slo_policy = policy;
        self
    }

    /// Sets the group-commit batch bound (0 or 1 = per-record fsync).
    pub fn group_commit(mut self, records: usize) -> ServeConfig {
        self.group_commit = records;
        self
    }

    /// Sets how many completions pass between background-ops hooks.
    pub fn ops_interval(mut self, completions: u64) -> ServeConfig {
        self.ops_interval = completions;
        self
    }

    /// Enables latency-targeted autoscaling of the worker pool.
    pub fn autoscale(mut self, config: AutoscaleConfig) -> ServeConfig {
        self.autoscale = Some(config);
        self
    }

    /// Enables static cost-bound admission gating, pricing worst cases
    /// at `tier`.
    pub fn cost_bounds(mut self, tier: aida_llm::models::ModelId) -> ServeConfig {
        self.cost_bounds = Some(tier);
        self
    }
}

/// One query's work order, shipped to a worker thread.
struct Job {
    ctx: Context,
    instruction: String,
}

/// Marks the run WAL-failed and records the error. Dispatch stops after
/// this — crash semantics: the durable log trails the in-memory ledger
/// by at most one batch of records.
fn wal_fatal(
    report: &mut ServiceReport,
    recorder: &Recorder,
    counter: &'static str,
    detail: String,
) {
    recorder.counter_add(counter, 1);
    recorder.event(Event::Error {
        counter: counter.to_string(),
        detail,
    });
    report.wal_failed = true;
}

/// Records one rejection: the typed shed reaches the source (so a live
/// client hears about it over the wire), the tenant's shed counter, and
/// the report's rejection log.
fn shed_request(
    report: &mut ServiceReport,
    source: &mut dyn RequestSource,
    seq: u64,
    tenant: TenantId,
    at_s: f64,
    reason: RejectReason,
) {
    *report
        .tenants
        .entry(tenant.clone())
        .or_default()
        .shed
        .entry(reason.kind())
        .or_insert(0) += 1;
    let shed = Shed {
        seq,
        tenant,
        at_s,
        reason,
    };
    source.on_shed(&shed);
    report.sheds.push(shed);
}

/// The admission check: known tenant, known Context, quota headroom,
/// static cost bound, queue bound. `Ok` means the request is in the
/// queue.
fn admit(
    tenants: &TenantLedger,
    contexts: &BTreeMap<String, Context>,
    queue: &mut AdmissionQueue,
    gate: Option<&mut BoundGate>,
    request: QueryRequest,
) -> Result<(), RejectReason> {
    if !tenants.knows(&request.tenant) {
        Err(RejectReason::UnknownTenant)
    } else if !contexts.contains_key(&request.context) {
        Err(RejectReason::UnknownContext {
            name: request.context.clone(),
        })
    } else if let Some(reason) = tenants.over_quota(&request.tenant) {
        Err(reason)
    } else if let Some(reason) = check_cost_bound(tenants, gate, &request) {
        Err(reason)
    } else {
        queue.push(request)
    }
}

/// The static-bound budget check, shared by admission and the
/// dispatch-time re-check: sheds only when the analyzer *proves* the
/// plan's worst case cannot fit the tenant's remaining dollars.
fn check_cost_bound(
    tenants: &TenantLedger,
    gate: Option<&mut BoundGate>,
    request: &QueryRequest,
) -> Option<RejectReason> {
    let gate = gate?;
    let remaining = tenants.remaining_usd(&request.tenant);
    let (usd_max, remaining_usd) = gate.over_budget(&request.instruction, remaining)?;
    Some(RejectReason::CostBoundExceeded {
        usd_max,
        remaining_usd,
    })
}

/// Group commit: the deterministic commit buffer. Records accumulate
/// here and land under ONE fsync per batch — at the batch bound, at
/// every ops-interval boundary, and at end of run. A crash loses at
/// most one buffered batch.
struct WalPipeline<'a> {
    wal: &'a mut LedgerWal,
    batch: Vec<LedgerRecord>,
    group_commit: usize,
    ops_interval: u64,
    /// Completions since the run began, driving the ops-interval hook
    /// (background WAL compaction runs there, never on the per-query
    /// path).
    completions: u64,
}

impl<'a> WalPipeline<'a> {
    fn new(wal: &'a mut LedgerWal, group_commit: usize, ops_interval: u64) -> WalPipeline<'a> {
        WalPipeline {
            wal,
            batch: Vec::new(),
            group_commit,
            ops_interval: ops_interval.max(1),
            completions: 0,
        }
    }

    /// Flushes the commit buffer under one fsync.
    fn flush(&mut self, report: &mut ServiceReport, recorder: &Recorder) -> std::io::Result<()> {
        if self.batch.is_empty() {
            return Ok(());
        }
        let n = self.batch.len() as u64;
        self.wal.append_batch(&self.batch)?;
        self.batch.clear();
        report.wal_appends += n;
        recorder.counter_add(registry::WAL_APPENDS, n);
        Ok(())
    }

    /// Buffers one record (group commit) or appends it durably
    /// (per-record fsync), per the configured bound.
    fn log(
        &mut self,
        report: &mut ServiceReport,
        recorder: &Recorder,
        record: LedgerRecord,
    ) -> std::io::Result<()> {
        if self.group_commit > 1 {
            self.batch.push(record);
            if self.batch.len() >= self.group_commit {
                return self.flush(report, recorder);
            }
            Ok(())
        } else {
            self.wal.append(&record)?;
            report.wal_appends += 1;
            recorder.counter_add(registry::WAL_APPENDS, 1);
            Ok(())
        }
    }

    /// Logs one completion's combined spend record and runs the
    /// ops-interval hook: group flush plus background WAL compaction,
    /// off the per-query path. Returns the fatal `(counter, detail)`
    /// pair when durability failed and dispatch must stop.
    fn settle_spend(
        &mut self,
        report: &mut ServiceReport,
        recorder: &Recorder,
        tenants: &TenantLedger,
        tenant: &TenantId,
        record: LedgerRecord,
    ) -> Option<(&'static str, String)> {
        let spend_failed = |e: std::io::Error| {
            let detail = format!("spend record for tenant {tenant} failed: {e}");
            (registry::WAL_APPEND_ERRORS, detail)
        };
        if let Err(e) = self.log(report, recorder, record) {
            return Some(spend_failed(e));
        }
        self.completions += 1;
        if self.completions.is_multiple_of(self.ops_interval) {
            // Background ops: flush first so the compaction snapshot
            // never claims coverage of records still sitting in the
            // commit buffer.
            match self.flush(report, recorder) {
                Ok(()) if self.wal.compaction_due() => match self.wal.compact(tenants) {
                    Ok(_) => {
                        report.wal_compactions += 1;
                        recorder.counter_add(registry::WAL_COMPACTIONS, 1);
                    }
                    Err(e) => {
                        return Some((
                            registry::WAL_COMPACTION_ERRORS,
                            format!("ledger compaction failed: {e}"),
                        ));
                    }
                },
                Ok(()) => {}
                Err(e) => return Some(spend_failed(e)),
            }
        } else if self.wal.compaction_due() {
            // Due but not at an ops boundary: count the deferral instead
            // of paying the snapshot rewrite on the query path.
            report.wal_compactions_deferred += 1;
            recorder.counter_add(registry::WAL_COMPACTIONS_DEFERRED, 1);
        }
        None
    }
}

/// The autoscaling controller plus the worker-seconds integral it
/// drives: `Σ active(t) dt`, advanced at every scale move and closed
/// out at the makespan. A fixed pool integrates to `workers * makespan`.
struct PoolController {
    scaler: Option<(Autoscaler, aida_obs::SlidingWindow)>,
    worker_seconds: f64,
    active: usize,
    last_t: f64,
}

impl PoolController {
    fn new(config: Option<AutoscaleConfig>, initial_active: usize) -> PoolController {
        // The controller reads the same windowed-p99 signal the health
        // layer reports on, fed live at completion instants.
        let scaler = config.map(|cfg| {
            let slot_s = (cfg.evaluate_every_s / 2.0).max(1e-9);
            let span_s = cfg.window_s.max(cfg.policy.slow_window_s) * 2.0;
            let slots = ((span_s / slot_s).ceil() as usize).clamp(8, 16384);
            let window = aida_obs::SlidingWindow::new(slot_s, slots);
            (Autoscaler::new(cfg, initial_active), window)
        });
        PoolController {
            scaler,
            worker_seconds: 0.0,
            active: initial_active,
            last_t: 0.0,
        }
    }

    /// Evaluates the controller at a dispatch instant and commits any
    /// move: resizes the timeline's active prefix, advances the
    /// worker-seconds integral, and records the typed scale event on
    /// every surface (report, counters, gauge, event stream).
    fn observe(
        &mut self,
        now: f64,
        queue_depth: usize,
        timeline: &mut Timeline,
        report: &mut ServiceReport,
        recorder: &Recorder,
        trace_gauge: bool,
    ) {
        let Some((scaler, window)) = self.scaler.as_mut() else {
            return;
        };
        let Some(event) = scaler.observe(now, window, queue_depth) else {
            return;
        };
        self.worker_seconds += self.active as f64 * (event.at_s - self.last_t);
        self.last_t = event.at_s;
        self.active = event.to;
        timeline.set_active(event.to);
        recorder.counter_add(
            if event.direction() == "up" {
                registry::AUTOSCALE_UPS
            } else {
                registry::AUTOSCALE_DOWNS
            },
            1,
        );
        if trace_gauge {
            recorder.gauge_set(registry::SERVE_WORKERS, event.at_s, event.to as f64);
        }
        recorder.event(Event::Scale {
            at_s: event.at_s,
            from: event.from as u64,
            to: event.to as u64,
            p99_s: event.p99_s,
            fast_burn: event.fast_burn,
            slow_burn: event.slow_burn,
        });
        report.scale_events.push(event);
    }

    /// Feeds one completion's latency into the controller's window.
    fn record_latency(&mut self, end_s: f64, latency_s: f64) {
        if let Some((_, window)) = self.scaler.as_mut() {
            window.record(end_s, latency_s);
        }
    }

    /// Closes out the integral at the end of the run.
    fn total_worker_seconds(&self, end_t: f64) -> f64 {
        self.worker_seconds + self.active as f64 * (end_t.max(self.last_t) - self.last_t)
    }
}

/// A multi-tenant query service over one shared [`Runtime`].
///
/// All tenants share the runtime's [`ContextManager`], so Contexts
/// materialized answering one tenant's query can satisfy or narrow
/// another tenant's — the headline win of serving from a shared runtime
/// instead of per-tenant isolation.
///
/// [`ContextManager`]: aida_core::ContextManager
pub struct QueryService {
    runtime: Runtime,
    config: ServeConfig,
    contexts: BTreeMap<String, Context>,
    tenants: TenantLedger,
    wal: Option<LedgerWal>,
    wal_recovery: Option<WalRecovery>,
}

impl QueryService {
    /// Creates a service over a runtime.
    pub fn new(runtime: Runtime, config: ServeConfig) -> QueryService {
        QueryService {
            runtime,
            config,
            contexts: BTreeMap::new(),
            tenants: TenantLedger::new(),
            wal: None,
            wal_recovery: None,
        }
    }

    /// Attaches a tenant-ledger WAL: recovers the ledger's spend state
    /// from disk (compacted snapshot + intact WAL suffix), then logs
    /// every admit and every completed query's spend durably. Call after
    /// registering tenants so recovered spend meets its quota configs.
    pub fn attach_wal(&mut self, mut wal: LedgerWal) -> Result<WalRecovery, SnapshotError> {
        let recovery = wal.recover(&mut self.tenants)?;
        let recorder = self.runtime.recorder();
        recorder.counter_add(registry::WAL_REPLAYED_RECORDS, recovery.replayed);
        recorder.counter_add(registry::WAL_SKIPPED_RECORDS, recovery.skipped);
        if recovery.dropped_tail {
            recorder.counter_add(registry::WAL_DROPPED_TAILS, 1);
        }
        if recovery.snapshot_loaded
            || recovery.replayed > 0
            || recovery.skipped > 0
            || recovery.dropped_tail
        {
            recorder.flight(
                "serve.wal",
                "recovery",
                format!(
                    "snapshot_loaded {} replayed {} skipped {} dropped_tail {}",
                    recovery.snapshot_loaded,
                    recovery.replayed,
                    recovery.skipped,
                    recovery.dropped_tail
                ),
            );
            recorder.flight_autodump("wal_recovery");
        }
        self.wal = Some(wal);
        self.wal_recovery = Some(recovery);
        Ok(recovery)
    }

    /// What [`QueryService::attach_wal`] recovered, if a WAL is attached.
    pub fn wal_recovery(&self) -> Option<WalRecovery> {
        self.wal_recovery
    }

    /// Registers a named Context that requests may target.
    pub fn register_context(&mut self, name: impl Into<String>, ctx: Context) {
        self.contexts.insert(name.into(), ctx);
    }

    /// Registers a tenant with its weight and quotas. Requests from
    /// unregistered tenants are shed with [`RejectReason::UnknownTenant`].
    pub fn register_tenant(&mut self, tenant: impl Into<TenantId>, config: TenantConfig) {
        self.tenants.register(tenant.into(), config);
    }

    /// The shared runtime.
    pub fn runtime(&self) -> &Runtime {
        &self.runtime
    }

    /// The tenant ledger (configs + attributed spend). Spend accumulates
    /// across [`QueryService::run`] calls, so quotas span a service's
    /// whole lifetime.
    pub fn tenants(&self) -> &TenantLedger {
        &self.tenants
    }

    /// Serves a workload to completion and reports what happened.
    ///
    /// Requests are replayed open-loop by virtual arrival instant. Each
    /// is admission-checked (known tenant, known Context, quota, queue
    /// bound), queued, dispatched under weighted round-robin with
    /// per-tenant priorities, re-checked (deadline, quota) at dispatch,
    /// and executed on the worker pool.
    pub fn run(&mut self, requests: Vec<QueryRequest>) -> ServiceReport {
        let mut source = ReplaySource::new(requests);
        self.serve(&mut source)
    }

    /// Serves whatever a [`RequestSource`] produces — batch replay or
    /// the live front door — through one dispatch loop and one report
    /// path. Admission verdicts and completions flow back to the source
    /// through its callbacks, so a live source can answer its clients
    /// over the wire at the exact virtual instants the scheduler
    /// decided them.
    pub fn serve(&mut self, source: &mut dyn RequestSource) -> ServiceReport {
        let initial_workers = self.config.workers.max(1);
        let autoscale_cfg = self.config.autoscale.clone();
        // With an autoscaler the thread pool is provisioned at the max
        // bound and the controller resizes the *active* prefix of the
        // timeline; without one, active == capacity == `workers`.
        let (capacity, initial_active) = match &autoscale_cfg {
            Some(ac) => (
                ac.max_workers,
                initial_workers.clamp(ac.min_workers, ac.max_workers),
            ),
            None => (initial_workers, initial_workers),
        };
        let mut timeline = Timeline::new(capacity);
        timeline.set_active(initial_active);
        let mut pool = PoolController::new(autoscale_cfg, initial_active);
        let mut queue = AdmissionQueue::new(self.config.queue_capacity);
        for (tenant, config) in self.tenants.tenants() {
            queue.set_weight(tenant.clone(), config);
        }

        let mut report = ServiceReport {
            workers: capacity,
            ..ServiceReport::default()
        };
        for (tenant, _) in self.tenants.tenants() {
            report.tenants.entry(tenant.clone()).or_default();
        }

        if let Some(recovery) = self.wal_recovery {
            report.wal_replayed = recovery.replayed;
        }

        let (hits_before, misses_before) = self.runtime.reuse_stats();
        let evictions_before = self.runtime.manager().evictions();
        let cache_before = self.runtime.cache_stats();

        // Split the borrows: workers share a clone of the runtime (clones
        // share all state) while the scheduler mutates the ledger.
        let runtime = self.runtime.clone();
        let contexts = &self.contexts;
        let tenants = &mut self.tenants;
        let wal_stats_before = self.wal.as_ref().map(|w| w.stats()).unwrap_or_default();
        let group_commit = self.config.group_commit;
        let ops_interval = self.config.ops_interval;
        let mut wal = self
            .wal
            .as_mut()
            .map(|w| WalPipeline::new(w, group_commit, ops_interval));
        let mut bound_gate = self.config.cost_bounds.map(BoundGate::new);
        let trace_gauge = runtime.recorder().is_enabled();

        std::thread::scope(|scope| {
            let (done_tx, done_rx) = mpsc::channel();
            let mut job_tx: Vec<mpsc::Sender<Job>> = Vec::with_capacity(capacity);
            for _ in 0..capacity {
                let (tx, rx) = mpsc::channel::<Job>();
                job_tx.push(tx);
                let done = done_tx.clone();
                let rt = &runtime;
                scope.spawn(move || {
                    while let Ok(job) = rx.recv() {
                        let outcome = rt.query(&job.ctx).compute(&job.instruction).run();
                        if done.send(outcome).is_err() {
                            break;
                        }
                    }
                });
            }
            drop(done_tx);

            let sample_depth = |report: &mut ServiceReport, t: f64, depth: usize| {
                report.queue_depth.set(t, depth as f64);
                if trace_gauge {
                    runtime
                        .recorder()
                        .gauge_set(registry::SERVE_QUEUE_DEPTH, t, depth as f64);
                }
            };

            // The scheduler's virtual cursor: monotone, so admission and
            // dispatch instants never run backwards.
            let mut now = 0.0_f64;
            'dispatch: loop {
                if queue.is_empty() {
                    match source.next_arrival() {
                        Some(next) => now = now.max(next),
                        None => break,
                    }
                }
                // The controller evaluates at dispatch instants — the
                // only points virtual time moves — on the live latency
                // window and current queue depth.
                pool.observe(
                    now,
                    queue.depth(),
                    &mut timeline,
                    &mut report,
                    runtime.recorder(),
                    trace_gauge,
                );
                // With a backlog, the next dispatch happens when a worker
                // frees up; arrivals up to that instant compete in the
                // same WRR round (arrivals at exactly the dispatch
                // instant are admitted before the pop).
                let dispatch_t = now.max(timeline.next_free());
                while let Some(request) = source.pop(dispatch_t) {
                    let at_s = request.arrival_s;
                    let tenant = request.tenant.clone();
                    let seq = request.seq;
                    report.tenants.entry(tenant.clone()).or_default().submitted += 1;
                    match admit(tenants, contexts, &mut queue, bound_gate.as_mut(), request) {
                        Ok(()) => {
                            report.tenants.entry(tenant.clone()).or_default().admitted += 1;
                            source.on_admitted(seq, &tenant, at_s);
                            if let Some(p) = wal.as_mut() {
                                let record = LedgerRecord::Admit {
                                    tenant: tenant.clone(),
                                };
                                if let Err(e) = p.log(&mut report, runtime.recorder(), record) {
                                    wal_fatal(
                                        &mut report,
                                        runtime.recorder(),
                                        registry::WAL_APPEND_ERRORS,
                                        format!("admit record for tenant {tenant} failed: {e}"),
                                    );
                                    break 'dispatch;
                                }
                            }
                        }
                        Err(reason) => shed_request(&mut report, source, seq, tenant, at_s, reason),
                    }
                    sample_depth(&mut report, at_s, queue.depth());
                }
                now = dispatch_t;
                let Some(request) = queue.pop() else {
                    continue;
                };
                sample_depth(&mut report, dispatch_t, queue.depth());

                // Dispatch-time re-checks: the queue wait may have blown
                // the deadline, and earlier dispatches may have exhausted
                // the tenant's quota since admission.
                if let Some(deadline_s) = request.deadline_s {
                    let waited_s = dispatch_t - request.arrival_s;
                    if waited_s > deadline_s {
                        shed_request(
                            &mut report,
                            source,
                            request.seq,
                            request.tenant,
                            dispatch_t,
                            RejectReason::DeadlineExpired {
                                waited_s,
                                deadline_s,
                            },
                        );
                        continue;
                    }
                }
                if let Some(reason) = tenants.over_quota(&request.tenant) {
                    shed_request(
                        &mut report,
                        source,
                        request.seq,
                        request.tenant,
                        dispatch_t,
                        reason,
                    );
                    continue;
                }
                // Earlier dispatches shrank the tenant's headroom, so a
                // plan that fit at admission may no longer: re-prove the
                // static bound against the *current* remaining dollars
                // (cached by plan hash — no recompile).
                if let Some(reason) = check_cost_bound(tenants, bound_gate.as_mut(), &request) {
                    shed_request(
                        &mut report,
                        source,
                        request.seq,
                        request.tenant,
                        dispatch_t,
                        reason,
                    );
                    continue;
                }

                let ctx = contexts
                    .get(&request.context)
                    .expect("admission checked the context")
                    .clone();
                // Worker choice is duration-independent, so peek the
                // placement, execute to learn the duration, then commit.
                let placement = timeline.peek(dispatch_t);
                let clock_before = runtime.clock().now();
                let meter_before = runtime.meter().snapshot();
                let (hits0, misses0) = runtime.reuse_stats();
                let cache0 = runtime.cache_stats();
                job_tx[placement.worker]
                    .send(Job {
                        ctx,
                        instruction: request.instruction.clone(),
                    })
                    .expect("worker thread alive");
                let outcome = done_rx.recv().expect("worker thread returned a result");
                let duration_s = (runtime.clock().now() - clock_before).max(0.0);
                let slot = timeline.schedule(dispatch_t, duration_s);
                debug_assert_eq!(slot.worker, placement.worker);

                let delta = runtime.meter().snapshot().delta_since(&meter_before);
                let cost_usd = delta.cost(runtime.env().llm.catalog());
                let tokens = delta.total_tokens();
                let llm_calls = delta.total_calls();
                let (hits1, misses1) = runtime.reuse_stats();
                let cache_delta = match (&cache0, runtime.cache_stats()) {
                    (Some(before), Some(after)) => after.delta_since(before),
                    _ => aida_llm::CacheStats::default(),
                };
                tenants.charge(&request.tenant, cost_usd, tokens, llm_calls);
                tenants.credit_cache(&request.tenant, cache_delta.hits, cache_delta.coalesced);
                // One combined record per completion: the charge and its
                // cache credit land atomically or not at all, so recovery
                // never sees a half-applied spend.
                if let Some(p) = wal.as_mut() {
                    let record = LedgerRecord::Spend {
                        tenant: request.tenant.clone(),
                        usd: cost_usd,
                        tokens,
                        calls: llm_calls,
                        cache_hits: cache_delta.hits,
                        cache_coalesced: cache_delta.coalesced,
                    };
                    if let Some((counter, detail)) = p.settle_spend(
                        &mut report,
                        runtime.recorder(),
                        tenants,
                        &request.tenant,
                        record,
                    ) {
                        wal_fatal(&mut report, runtime.recorder(), counter, detail);
                        break 'dispatch;
                    }
                }

                let completion = Completion {
                    seq: request.seq,
                    tenant: request.tenant.clone(),
                    worker: slot.worker,
                    submitted_s: request.submitted_s,
                    arrival_s: request.arrival_s,
                    // Admission happened at the arrival instant (the
                    // admission sweep runs every arrival up to the
                    // dispatch cursor at its own arrival time).
                    admit_s: request.arrival_s,
                    start_s: slot.start_s,
                    end_s: slot.end_s,
                    cost_usd,
                    tokens,
                    llm_calls,
                    reuse_hits: hits1 - hits0,
                    reuse_misses: misses1 - misses0,
                    cache_hits: cache_delta.hits,
                    cache_coalesced: cache_delta.coalesced,
                    cache_misses: cache_delta.misses,
                    answered: outcome.answer.is_some(),
                };
                pool.record_latency(completion.end_s, completion.latency_s());
                source.on_completion(&completion);
                report.settle(completion);
            }
            // End of run: drain the commit buffer so every acknowledged
            // record is durable before the report is trusted.
            if let Some(p) = wal.as_mut() {
                if !report.wal_failed {
                    if let Err(e) = p.flush(&mut report, runtime.recorder()) {
                        wal_fatal(
                            &mut report,
                            runtime.recorder(),
                            registry::WAL_APPEND_ERRORS,
                            format!("end-of-run group flush failed: {e}"),
                        );
                    }
                }
            }
            drop(job_tx);
        });
        // The pipeline's borrow of the WAL must end before we read its
        // end-of-run stats.
        drop(wal);

        if let Some(gate) = &bound_gate {
            report.bounds_gated = true;
            report.bounds_checked = gate.checked;
            report.bounds_unbounded = gate.unbounded;
            report.bounds_cache_hits = gate.cache_hits;
            let recorder = self.runtime.recorder();
            recorder.counter_add(registry::BOUNDS_CHECKED, gate.checked);
            recorder.counter_add(registry::BOUNDS_UNBOUNDED, gate.unbounded);
            recorder.counter_add(registry::BOUNDS_CACHE_HITS, gate.cache_hits);
            recorder.counter_add(registry::BOUNDS_REJECTS, report.bounds_rejects());
        }

        let (hits_after, misses_after) = self.runtime.reuse_stats();
        report.reuse_hits = hits_after - hits_before;
        report.reuse_misses = misses_after - misses_before;
        report.evictions = self.runtime.manager().evictions() - evictions_before;
        if let Some(after) = self.runtime.cache_stats() {
            let delta = match &cache_before {
                Some(before) => after.delta_since(before),
                None => after,
            };
            report.cache_hits = delta.hits;
            report.cache_coalesced = delta.coalesced;
            report.cache_misses = delta.misses;
            report.cache_bytes = Some(after.bytes);
        }
        if let Some(w) = &self.wal {
            let stats = w.stats();
            report.wal_fsyncs = stats.fsyncs - wal_stats_before.fsyncs;
            report.wal_group_flushes = stats.group_flushes - wal_stats_before.group_flushes;
            report.wal_segments_sealed = stats.segments_sealed - wal_stats_before.segments_sealed;
            report.wal_batch_bound = self.config.group_commit.max(1) as u64;
            let recorder = self.runtime.recorder();
            recorder.counter_add(registry::WAL_FSYNCS, report.wal_fsyncs);
            recorder.counter_add(registry::WAL_GROUP_FLUSHES, report.wal_group_flushes);
            recorder.counter_add(registry::WAL_SEGMENTS_SEALED, report.wal_segments_sealed);
        }
        report.makespan_s = timeline.makespan();
        report.worker_seconds = pool.total_worker_seconds(report.makespan_s);
        report.total_cost_usd = report.tenants.values().map(|t| t.cost_usd).sum();
        self.evaluate_health(&mut report);
        // Let the source drain its in-flight responses and write its
        // summary (front-door stats, client outcomes), then mirror the
        // wire counters into the registry.
        source.finish(&mut report);
        if let Some(net) = &report.net {
            let recorder = self.runtime.recorder();
            recorder.counter_add(registry::NET_CONNS_OPENED, net.stats.conns_opened);
            recorder.counter_add(registry::NET_CONNS_CLOSED, net.stats.conns_closed);
            recorder.counter_add(registry::NET_FRAMES_IN, net.stats.frames_in);
            recorder.counter_add(registry::NET_FRAMES_OUT, net.stats.frames_out);
            recorder.counter_add(registry::NET_BYTES_IN, net.stats.bytes_in);
            recorder.counter_add(registry::NET_BYTES_OUT, net.stats.bytes_out);
            recorder.counter_add(registry::NET_PLAN_HASH_HITS, net.stats.plan_hash_hits);
            recorder.counter_add(registry::NET_WIRE_ERRORS, net.stats.wire_error_total());
        }
        report
    }

    /// Replays the run's completions and queue-depth samples into the
    /// windowed health series, evaluates every tenant's SLO targets at
    /// end of run, and records the verdicts (report rows, `slo.alerts`
    /// counter, flight-recorder notes) — the runtime-health layer.
    fn evaluate_health(&self, report: &mut ServiceReport) {
        let policy = self.config.slo_policy;
        let mut series = SeriesStore::new(
            self.config.health_slot_s.max(f64::MIN_POSITIVE),
            self.config.health_slots.max(1),
        );
        // Completions arrive in dispatch order; their end instants are
        // not monotone across workers, so feed the ring in time order.
        let mut by_end: Vec<&Completion> = report.completions.iter().collect();
        by_end.sort_by(|a, b| a.end_s.total_cmp(&b.end_s).then(a.seq.cmp(&b.seq)));
        for c in by_end {
            let tenant = c.tenant.as_str();
            let key = |name: &str| registry::tenant_series(name, tenant);
            series.record(&key(registry::HEALTH_LATENCY_S), c.end_s, c.latency_s());
            series.record(&key(registry::HEALTH_COST_USD), c.end_s, c.cost_usd);
            series.record(
                &key(registry::HEALTH_QUEUE_WAIT_S),
                c.end_s,
                c.queue_wait_s(),
            );
            let hit = if c.cache_hits + c.cache_coalesced > 0 {
                1.0
            } else {
                0.0
            };
            series.record(&key(registry::HEALTH_CACHE_HIT), c.end_s, hit);
        }
        for (t, depth) in &report.queue_depth.samples {
            series.record(registry::HEALTH_QUEUE_DEPTH, *t, *depth);
        }

        // Sheds can land after the last completion, so "now" is the
        // latest instant any series saw.
        let now_s = report
            .queue_depth
            .samples
            .last()
            .map(|(t, _)| *t)
            .unwrap_or(0.0)
            .max(report.makespan_s);
        let window_s = policy.slow_window_s;
        let span_s = series.slot_s() * series.slots() as f64;
        let empty = WindowSnapshot {
            window_s: window_s.min(span_s),
            count: 0,
            mean: 0.0,
            p50: 0.0,
            p95: 0.0,
            p99: 0.0,
        };

        let tenant_ids: Vec<TenantId> = report.tenants.keys().cloned().collect();
        for tenant in tenant_ids {
            let name = tenant.as_str();
            let key = |metric: &str| registry::tenant_series(metric, name);
            let latency = series.series(&key(registry::HEALTH_LATENCY_S));
            let cost = series.series(&key(registry::HEALTH_COST_USD));
            let queue_wait = series.series(&key(registry::HEALTH_QUEUE_WAIT_S));
            let target = self.tenants.config(&tenant).slo;
            let verdict = aida_obs::slo::evaluate(name, &target, latency, cost, now_s, &policy);
            let snap = |w: Option<&aida_obs::SlidingWindow>| {
                w.map(|w| w.snapshot(now_s, window_s))
                    .unwrap_or_else(|| empty.clone())
            };
            let cache_hit_rate = series
                .series(&key(registry::HEALTH_CACHE_HIT))
                .map(|w| w.mean_in(now_s, window_s))
                .unwrap_or(0.0);
            report.health.push(crate::report::TenantHealth {
                tenant: tenant.clone(),
                latency: snap(latency),
                cost: snap(cost),
                queue_wait: snap(queue_wait),
                cache_hit_rate,
                slo: verdict,
            });
        }
        report.queue_depth_health = series
            .series(registry::HEALTH_QUEUE_DEPTH)
            .map(|w| w.snapshot(now_s, window_s));
        report.slo_alerts = report.health.iter().filter(|h| h.slo.alerting).count() as u64;

        let recorder = self.runtime.recorder();
        recorder.counter_add(registry::SLO_ALERTS, report.slo_alerts);
        if report.slo_alerts > 0 {
            for h in report.health.iter().filter(|h| h.slo.alerting) {
                let kinds: Vec<&str> = h
                    .slo
                    .burns
                    .iter()
                    .filter(|b| b.alerting)
                    .map(|b| b.kind.name())
                    .collect();
                recorder.flight(
                    "serve.slo",
                    "slo_alert",
                    format!(
                        "tenant {}: {} burning over threshold {}",
                        h.tenant,
                        kinds.join("+"),
                        policy.burn_threshold
                    ),
                );
            }
            recorder.flight_autodump("slo_alert");
        }
    }

    /// What the same submitted workload costs through **isolated**
    /// per-tenant runtimes (same seed and config, no shared
    /// ContextManager): the baseline for the shared-runtime comparison.
    /// Every request executes serially in its tenant's own runtime —
    /// within-tenant reuse still applies, cross-tenant reuse cannot.
    pub fn isolated_cost(&self, requests: &[QueryRequest]) -> f64 {
        let mut by_tenant: BTreeMap<&TenantId, Vec<&QueryRequest>> = BTreeMap::new();
        for request in requests {
            by_tenant.entry(&request.tenant).or_default().push(request);
        }
        let mut total = 0.0;
        for (_, mut tenant_requests) in by_tenant {
            tenant_requests
                .sort_by(|a, b| a.arrival_s.total_cmp(&b.arrival_s).then(a.seq.cmp(&b.seq)));
            let rt = Runtime::builder()
                .config(self.runtime.config().clone())
                .build();
            for request in tenant_requests {
                let Some(ctx) = self.contexts.get(&request.context) else {
                    continue;
                };
                let _ = rt.query(ctx).compute(&request.instruction).run();
            }
            total += rt.cost();
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aida_data::{DataLake, Document};

    fn lake() -> DataLake {
        DataLake::from_docs([
            Document::new("report_2001.txt", "identity theft reports in 2001: 86250"),
            Document::new("report_2002.txt", "identity theft reports in 2002: 161977"),
        ])
    }

    fn service(workers: usize, queue_capacity: usize) -> QueryService {
        let rt = Runtime::builder().seed(7).build();
        let ctx = Context::builder("lake", lake())
            .description("FTC identity theft reports by year")
            .build(&rt);
        let mut svc = QueryService::new(
            rt,
            ServeConfig {
                workers,
                queue_capacity,
                ..ServeConfig::default()
            },
        );
        svc.register_context("reports", ctx);
        svc
    }

    #[test]
    fn serves_a_tiny_workload_end_to_end() {
        let mut svc = service(2, 8);
        svc.register_tenant("acme", TenantConfig::default());
        svc.register_tenant("bolt", TenantConfig::default());
        let requests = vec![
            {
                let mut r = QueryRequest::new("acme", "reports", "count identity theft in 2001");
                r.seq = 0;
                r
            },
            {
                let mut r =
                    QueryRequest::new("bolt", "reports", "count identity theft in 2002").at(1.0);
                r.seq = 1;
                r
            },
        ];
        let report = svc.run(requests);
        assert_eq!(report.completions.len(), 2);
        assert!(report.sheds.is_empty());
        assert!(report.total_cost_usd > 0.0);
        assert!(report.makespan_s > 0.0);
        // Both tenants were charged.
        assert!(svc.tenants().spend(&"acme".into()).usd > 0.0);
        assert!(svc.tenants().spend(&"bolt".into()).usd > 0.0);
        // The dashboard renders.
        assert!(report.render().contains("acme"));
    }

    #[test]
    fn unknown_tenant_and_context_are_shed() {
        let mut svc = service(1, 8);
        svc.register_tenant("acme", TenantConfig::default());
        let requests = vec![
            {
                let mut r = QueryRequest::new("ghost", "reports", "q");
                r.seq = 0;
                r
            },
            {
                let mut r = QueryRequest::new("acme", "nonexistent", "q");
                r.seq = 1;
                r
            },
        ];
        let report = svc.run(requests);
        assert_eq!(report.completions.len(), 0);
        let kinds: Vec<&str> = report.sheds.iter().map(|s| s.reason.kind()).collect();
        assert_eq!(kinds, ["unknown_tenant", "unknown_context"]);
    }

    #[test]
    fn queue_bound_sheds_burst_overflow() {
        // One worker, capacity 2, four simultaneous arrivals: all four
        // are admission-checked before the first dispatch, so two fill
        // the queue and two are shed with QueueFull.
        let mut svc = service(1, 2);
        svc.register_tenant("acme", TenantConfig::default());
        let requests: Vec<QueryRequest> = (0..4)
            .map(|i| {
                let mut r = QueryRequest::new("acme", "reports", format!("count theft in 200{i}"));
                r.seq = i;
                r
            })
            .collect();
        let report = svc.run(requests);
        let full: Vec<&Shed> = report
            .sheds
            .iter()
            .filter(|s| s.reason.kind() == "queue_full")
            .collect();
        assert_eq!(full.len(), 2, "{:?}", report.sheds);
        assert_eq!(report.completions.len() + report.sheds.len(), 4);
    }

    #[test]
    fn deadline_expired_at_dispatch() {
        // One worker; the second request's queue wait exceeds its
        // deadline because the first occupies the only worker.
        let mut svc = service(1, 8);
        svc.register_tenant("acme", TenantConfig::default());
        let requests = vec![
            {
                let mut r = QueryRequest::new("acme", "reports", "count theft in 2001");
                r.seq = 0;
                r
            },
            {
                let mut r =
                    QueryRequest::new("acme", "reports", "count theft in 2002").deadline(0.001);
                r.seq = 1;
                r
            },
        ];
        let report = svc.run(requests);
        assert_eq!(report.completions.len(), 1);
        assert_eq!(report.sheds.len(), 1);
        assert_eq!(report.sheds[0].reason.kind(), "deadline_expired");
    }

    #[test]
    fn quota_sheds_after_spend_accumulates() {
        let mut svc = service(1, 8);
        // A micro-dollar budget: the first query exhausts it, later
        // requests are shed pre-admission.
        svc.register_tenant("acme", TenantConfig::default().dollars(1e-6));
        let requests: Vec<QueryRequest> = (0..3)
            .map(|i| {
                let mut r = QueryRequest::new("acme", "reports", format!("count theft in 200{i}"))
                    .at(1000.0 * i as f64);
                r.seq = i as u64;
                r
            })
            .collect();
        let report = svc.run(requests);
        assert!(!report.completions.is_empty());
        assert!(
            report
                .sheds
                .iter()
                .any(|s| s.reason.kind() == "budget_exhausted"),
            "{:?}",
            report.sheds
        );
    }

    /// A Pyrite plan whose static worst case (40 billed tool calls at
    /// the envelope ceiling) dwarfs a micro dollar quota.
    const EXPENSIVE_PLAN: &str =
        "total = 0\nfor i in range(40):\n    total += len(read_file('a.csv'))\ntotal";

    #[test]
    fn over_budget_plan_is_shed_before_dispatch_at_zero_spend() {
        let rt = Runtime::builder().seed(7).build();
        let ctx = Context::builder("lake", lake())
            .description("FTC identity theft reports by year")
            .build(&rt);
        let mut svc = QueryService::new(
            rt,
            ServeConfig::with_workers(1).cost_bounds(aida_llm::models::ModelId::Flagship),
        );
        svc.register_context("reports", ctx);
        // Dollar headroom far below the plan's static worst case.
        svc.register_tenant("dara", TenantConfig::default().dollars(1e-6));
        let mut r = QueryRequest::new("dara", "reports", EXPENSIVE_PLAN);
        r.seq = 0;
        let report = svc.run(vec![r]);
        assert_eq!(report.completions.len(), 0);
        assert_eq!(report.sheds.len(), 1);
        match &report.sheds[0].reason {
            RejectReason::CostBoundExceeded {
                usd_max,
                remaining_usd,
            } => {
                assert!(usd_max > remaining_usd);
                assert_eq!(*remaining_usd, 1e-6);
            }
            other => panic!("expected CostBoundExceeded, got {other:?}"),
        }
        // Shed before dispatch: exactly zero dollars attributed.
        assert_eq!(svc.tenants().spend(&"dara".into()).usd, 0.0);
        assert_eq!(report.total_cost_usd, 0.0);
        // The gate's activity is on every surface.
        assert!(report.bounds_gated);
        assert_eq!(report.bounds_checked, 1);
        assert_eq!(report.bounds_rejects(), 1);
        let text = report.render();
        assert!(
            text.contains("cost bounds: 1 plans checked, 0 unbounded, 1 over-budget rejects"),
            "{text}"
        );
        assert!(
            text.contains("shed by reason: cost_bound_exceeded=1"),
            "{text}"
        );
        let jsonl = report.to_jsonl();
        assert!(
            jsonl.contains(r#""reason":"cost_bound_exceeded""#),
            "{jsonl}"
        );
        assert!(jsonl.contains(r#""bounds_rejects":1"#), "{jsonl}");
    }

    #[test]
    fn bound_gate_admits_natural_language_unbounded_and_affordable_plans() {
        let rt = Runtime::builder().seed(7).tracing(true).build();
        let ctx = Context::builder("lake", lake())
            .description("FTC identity theft reports by year")
            .build(&rt);
        let mut svc = QueryService::new(
            rt,
            ServeConfig::with_workers(1).cost_bounds(aida_llm::models::ModelId::Flagship),
        );
        svc.register_context("reports", ctx);
        svc.register_tenant("acme", TenantConfig::default().dollars(100.0));
        let requests = vec![
            // Natural language (fails to lex): not a plan, never gated.
            {
                let mut r = QueryRequest::new(
                    "acme",
                    "reports",
                    "how many identity theft reports in 2002?",
                );
                r.seq = 0;
                r
            },
            // Dollar-unbounded plan (iterates tool output): the analyzer
            // cannot prove overspend, so the gate admits it (the post-hoc
            // quota gate still holds).
            {
                let mut r = QueryRequest::new(
                    "acme",
                    "reports",
                    "for f in list_files():\n    read_file(f)\n0",
                )
                .at(100.0);
                r.seq = 1;
                r
            },
            // Affordable plan: finite bound under the headroom.
            {
                let mut r = QueryRequest::new("acme", "reports", EXPENSIVE_PLAN).at(200.0);
                r.seq = 2;
                r
            },
        ];
        let report = svc.run(requests);
        assert!(
            report
                .sheds
                .iter()
                .all(|s| s.reason.kind() != "cost_bound_exceeded"),
            "{:?}",
            report.sheds
        );
        assert_eq!(report.completions.len(), 3);
        // Two Pyrite plans checked at admission + re-proved at dispatch;
        // all three dispatch re-proofs (the non-plan included) hit the
        // plan-hash cache.
        assert_eq!(report.bounds_checked, 4);
        assert_eq!(report.bounds_unbounded, 2);
        assert_eq!(report.bounds_cache_hits, 3);
        // The mirrored counters feed the EXPLAIN ANALYZE bounds: line.
        let trace = svc.runtime().recorder().trace();
        assert_eq!(
            trace.bounds_summary().as_deref(),
            Some("bounds: 4 plans checked, 2 unbounded, 0 over-budget rejects (3 cache hits)")
        );
    }

    #[test]
    fn dispatch_recheck_sheds_when_earlier_queries_drain_the_headroom() {
        // Both requests arrive together and pass admission against the
        // same untouched quota; the first dispatch spends enough that
        // the second's static bound no longer fits at dispatch time.
        let rt = Runtime::builder().seed(7).build();
        let ctx = Context::builder("lake", lake())
            .description("FTC identity theft reports by year")
            .build(&rt);
        let mut svc = QueryService::new(
            rt,
            ServeConfig::with_workers(1).cost_bounds(aida_llm::models::ModelId::Flagship),
        );
        svc.register_context("reports", ctx);
        // Headroom above the plan's worst case, but below worst case +
        // one real query's spend.
        let mut probe = QueryService::new(
            Runtime::builder().seed(7).build(),
            ServeConfig::with_workers(1),
        );
        let probe_ctx = Context::builder("lake", lake())
            .description("FTC identity theft reports by year")
            .build(probe.runtime());
        probe.register_context("reports", probe_ctx);
        probe.register_tenant("acme", TenantConfig::default());
        let mut pr = QueryRequest::new("acme", "reports", "count identity theft in 2001");
        pr.seq = 0;
        probe.run(vec![pr]);
        let first_query_usd = probe.tenants().spend(&"acme".into()).usd;
        assert!(first_query_usd > 0.0);

        let plan_worst = {
            let mut gate = crate::bounds::BoundGate::new(aida_llm::models::ModelId::Flagship);
            match gate.verdict(EXPENSIVE_PLAN) {
                crate::bounds::StaticVerdict::UsdMax(v) => v,
                other => panic!("{other:?}"),
            }
        };
        svc.register_tenant(
            "acme",
            TenantConfig::default().dollars(plan_worst + first_query_usd / 2.0),
        );
        let requests = vec![
            {
                let mut r = QueryRequest::new("acme", "reports", "count identity theft in 2001");
                r.seq = 0;
                r
            },
            {
                let mut r = QueryRequest::new("acme", "reports", EXPENSIVE_PLAN);
                r.seq = 1;
                r.priority = crate::Priority::Low;
                r
            },
        ];
        let report = svc.run(requests);
        assert_eq!(report.completions.len(), 1);
        assert_eq!(report.sheds.len(), 1);
        assert_eq!(report.sheds[0].seq, 1);
        assert_eq!(report.sheds[0].reason.kind(), "cost_bound_exceeded");
    }

    #[test]
    fn same_seed_runs_are_byte_identical() {
        let build = || {
            let mut svc = service(2, 8);
            svc.register_tenant("acme", TenantConfig::default());
            svc.register_tenant("bolt", TenantConfig::weighted(2));
            let requests: Vec<QueryRequest> = (0..4)
                .map(|i| {
                    let tenant = if i % 2 == 0 { "acme" } else { "bolt" };
                    let mut r =
                        QueryRequest::new(tenant, "reports", format!("count theft in 200{i}"))
                            .at(i as f64 * 0.5);
                    r.seq = i as u64;
                    r
                })
                .collect();
            svc.run(requests)
        };
        let a = build();
        let b = build();
        assert_eq!(a.to_jsonl(), b.to_jsonl());
        assert_eq!(a.render(), b.render());
        assert_eq!(a.health_jsonl(), b.health_jsonl());
    }

    #[test]
    fn health_rows_window_latency_and_evaluate_slos() {
        let mut svc = service(2, 8);
        // acme's p99 bound is impossible (every query exceeds 1ms), so
        // both burn windows saturate; bolt declares nothing.
        svc.register_tenant("acme", TenantConfig::default().p99_latency(0.001));
        svc.register_tenant("bolt", TenantConfig::default());
        let requests: Vec<QueryRequest> = (0..4)
            .map(|i| {
                let tenant = if i % 2 == 0 { "acme" } else { "bolt" };
                let mut r = QueryRequest::new(tenant, "reports", format!("count theft in 200{i}"))
                    .at(i as f64 * 0.5);
                r.seq = i as u64;
                r
            })
            .collect();
        let report = svc.run(requests);
        assert_eq!(report.health.len(), 2);
        let acme = &report.health[0];
        assert_eq!(acme.tenant.as_str(), "acme");
        assert_eq!(acme.latency.count, 2, "both acme completions in window");
        assert!(acme.latency.p99 >= acme.latency.p50);
        assert!(acme.slo.alerting, "impossible p99 bound must breach");
        let bolt = &report.health[1];
        assert!(bolt.slo.burns.is_empty(), "no declared objective");
        assert!(!bolt.slo.alerting);
        assert_eq!(report.slo_alerts, 1);
        assert!(report.queue_depth_health.is_some());
        // The verdicts surface on every report surface.
        assert!(
            report.render().contains("slo breach"),
            "{}",
            report.render()
        );
        assert!(report.to_jsonl().contains(r#""type":"health""#));
        let health = report.health_jsonl();
        assert!(health.lines().count() == 3, "{health}");
        assert!(health.contains(r#""slo_alerts":1"#), "{health}");
    }

    #[test]
    fn slo_alerts_reach_the_flight_recorder_and_counter() {
        let rt = Runtime::builder().seed(7).tracing(true).build();
        let ctx = Context::builder("lake", lake())
            .description("FTC identity theft reports by year")
            .build(&rt);
        let mut svc = QueryService::new(rt, ServeConfig::with_workers(1));
        svc.register_context("reports", ctx);
        svc.register_tenant("acme", TenantConfig::default().p99_latency(0.001));
        let mut r = QueryRequest::new("acme", "reports", "count identity theft in 2001");
        r.seq = 0;
        let report = svc.run(vec![r]);
        assert_eq!(report.slo_alerts, 1);
        let recorder = svc.runtime().recorder();
        let records = recorder.flight_records();
        assert!(
            records
                .iter()
                .any(|f| f.source == "serve.slo" && f.kind == "slo_alert"),
            "flight ring should note the alert: {records:?}"
        );
        // EXPLAIN ANALYZE surfaces the alert through the slo.alerts counter.
        let trace = recorder.trace();
        assert_eq!(
            trace.health_summary().as_deref(),
            Some("health: 1 slo burn-rate alerts (breach)")
        );
    }

    #[test]
    fn shared_cache_attributes_hits_per_tenant() {
        let rt = Runtime::builder().seed(7).semantic_cache(4096).build();
        let ctx = Context::builder("lake", lake())
            .description("FTC identity theft reports by year")
            .build(&rt);
        let mut svc = QueryService::new(
            rt,
            ServeConfig {
                workers: 2,
                queue_capacity: 8,
                ..ServeConfig::default()
            },
        );
        svc.register_context("reports", ctx);
        svc.register_tenant("acme", TenantConfig::default());
        svc.register_tenant("bolt", TenantConfig::default());
        // Both tenants ask the identical question; bolt arrives second,
        // so its semantic calls replay acme's out of the shared cache.
        let requests = vec![
            {
                let mut r = QueryRequest::new("acme", "reports", "count identity theft in 2001");
                r.seq = 0;
                r
            },
            {
                let mut r =
                    QueryRequest::new("bolt", "reports", "count identity theft in 2001").at(50.0);
                r.seq = 1;
                r
            },
        ];
        let report = svc.run(requests);
        assert_eq!(report.completions.len(), 2);
        assert!(report.cache_hits > 0, "{}", report.render());
        assert!(report.cache_bytes.unwrap_or(0) > 0);
        // The ledger attributes the savings to the tenant that benefited.
        let bolt_spend = svc.tenants().spend(&"bolt".into());
        assert!(bolt_spend.cache_hits > 0);
        let acme = &report.tenants[&"acme".into()];
        let bolt = &report.tenants[&"bolt".into()];
        assert!(
            bolt.cache_hits > acme.cache_hits,
            "warm tenant should out-hit the cold one: bolt {} vs acme {}",
            bolt.cache_hits,
            acme.cache_hits
        );
        assert!(
            bolt.cost_usd < acme.cost_usd,
            "warm tenant {} vs cold tenant {}",
            bolt.cost_usd,
            acme.cost_usd
        );
        // Hit/coalesced/miss counts are visible on every surface.
        assert!(report.render().contains("semantic cache:"));
        assert!(report.to_jsonl().contains(r#""cache_hits""#));
    }

    #[test]
    fn group_commit_reduces_fsyncs_at_identical_spend() {
        let dir = std::env::temp_dir().join(format!(
            "aida-svc-group-commit-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let requests = || -> Vec<QueryRequest> {
            (0..8)
                .map(|i| {
                    let tenant = if i % 2 == 0 { "acme" } else { "bolt" };
                    let mut r =
                        QueryRequest::new(tenant, "reports", format!("count theft in 200{i}"))
                            .at(i as f64 * 0.5);
                    r.seq = i as u64;
                    r
                })
                .collect()
        };
        let run = |config: ServeConfig, wal_path: &std::path::Path| {
            let rt = Runtime::builder().seed(7).build();
            let ctx = Context::builder("lake", lake())
                .description("FTC identity theft reports by year")
                .build(&rt);
            let mut svc = QueryService::new(rt, config);
            svc.register_context("reports", ctx);
            svc.register_tenant("acme", TenantConfig::default());
            svc.register_tenant("bolt", TenantConfig::default());
            svc.attach_wal(LedgerWal::open(wal_path)).unwrap();
            let report = svc.run(requests());
            let spends: Vec<u64> = ["acme", "bolt"]
                .iter()
                .map(|t| svc.tenants().spend(&(*t).into()).usd.to_bits())
                .collect();
            (report, spends)
        };
        let base = ServeConfig {
            workers: 2,
            queue_capacity: 16,
            ..ServeConfig::default()
        };
        let (plain, plain_spend) = run(base.clone(), &dir.join("plain.wal"));
        let (grouped, grouped_spend) = run(base.group_commit(8), &dir.join("grouped.wal"));
        assert_eq!(plain.completions.len(), grouped.completions.len());
        // Identical per-tenant dollars, bit for bit.
        assert_eq!(plain_spend, grouped_spend);
        assert_eq!(plain.wal_appends, grouped.wal_appends, "same records");
        // 16 records (8 admits + 8 spends): per-record durability costs
        // 16 fsyncs, batches of 8 cost 2.
        assert_eq!(plain.wal_fsyncs, 16);
        assert_eq!(plain.wal_batch_bound, 1);
        assert_eq!(grouped.wal_fsyncs, 2);
        assert_eq!(grouped.wal_group_flushes, 2);
        assert_eq!(grouped.wal_batch_bound, 8);

        // Both logs replay to the identical ledger.
        for (wal_name, spends) in [("plain.wal", &plain_spend), ("grouped.wal", &grouped_spend)] {
            let mut restarted = crate::tenant::TenantLedger::new();
            LedgerWal::open(dir.join(wal_name))
                .recover(&mut restarted)
                .unwrap();
            let replayed: Vec<u64> = ["acme", "bolt"]
                .iter()
                .map(|t| restarted.spend(&(*t).into()).usd.to_bits())
                .collect();
            assert_eq!(&replayed, spends, "{wal_name}");
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn compaction_waits_for_the_ops_interval_and_counts_deferrals() {
        let dir = std::env::temp_dir().join(format!(
            "aida-svc-ops-compact-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let rt = Runtime::builder().seed(7).build();
        let ctx = Context::builder("lake", lake())
            .description("FTC identity theft reports by year")
            .build(&rt);
        let mut svc = QueryService::new(
            rt,
            ServeConfig {
                workers: 1,
                queue_capacity: 16,
                ops_interval: 4,
                ..ServeConfig::default()
            },
        );
        svc.register_context("reports", ctx);
        svc.register_tenant("acme", TenantConfig::default());
        // Threshold 2: compaction is due almost immediately, but it may
        // only run at every 4th completion.
        svc.attach_wal(LedgerWal::open(dir.join("ledger.wal")).compact_threshold(2))
            .unwrap();
        let requests: Vec<QueryRequest> = (0..6)
            .map(|i| {
                let mut r = QueryRequest::new("acme", "reports", format!("count theft in 200{i}"))
                    .at(i as f64 * 10.0);
                r.seq = i as u64;
                r
            })
            .collect();
        let report = svc.run(requests);
        assert_eq!(report.completions.len(), 6);
        assert!(report.wal_compactions >= 1, "{}", report.render());
        assert!(
            report.wal_compactions_deferred >= 1,
            "due-but-deferred completions must be counted: {}",
            report.render()
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn isolated_baseline_costs_at_least_shared() {
        let mut svc = service(2, 16);
        svc.register_tenant("acme", TenantConfig::default());
        svc.register_tenant("bolt", TenantConfig::default());
        // Both tenants ask the same question: the shared runtime reuses
        // the materialized Context across tenants, isolation cannot.
        let requests: Vec<QueryRequest> = (0..4)
            .map(|i| {
                let tenant = if i % 2 == 0 { "acme" } else { "bolt" };
                let mut r =
                    QueryRequest::new(tenant, "reports", "count identity theft reports in 2001")
                        .at(i as f64);
                r.seq = i as u64;
                r
            })
            .collect();
        let isolated = svc.isolated_cost(&requests);
        let report = svc.run(requests);
        assert!(report.total_cost_usd > 0.0);
        assert!(
            report.total_cost_usd <= isolated + 1e-9,
            "shared {} vs isolated {}",
            report.total_cost_usd,
            isolated
        );
    }
}
