//! Pre-admission static cost-bound gating.
//!
//! Requests whose instruction is Pyrite source (the front door's wire
//! bodies are) get a sound worst-case dollar figure from the compiler's
//! static analyzer (`aida_script::bounds`) *before* any dispatch: a
//! plan whose `usd_max` at the configured execution tier exceeds the
//! tenant's remaining dollar quota is shed with
//! [`RejectReason::CostBoundExceeded`] at zero attributed spend — the
//! request never reaches a worker, so nothing is billed.
//!
//! The gate is conservative in the admit direction: instructions that
//! do not compile as Pyrite (natural-language queries) and plans the
//! analyzer cannot bound (`unbounded`) are admitted — the existing
//! post-hoc quota gate still applies — because a missing bound is not
//! evidence of overspend. Only a *proven* violation sheds.
//!
//! Verdicts are cached by [`plan_hash`], the same 128-bit content hash
//! the wire protocol interns source under, so a returning client's
//! plan-hash path gets its bound for free.
//!
//! [`RejectReason::CostBoundExceeded`]: crate::RejectReason::CostBoundExceeded

use crate::net::plan_hash;
use aida_llm::models::ModelId;
use aida_script::bytecode::compile_source;
use std::collections::BTreeMap;

/// What the static analyzer concluded about one instruction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum StaticVerdict {
    /// The instruction is not Pyrite source; no static bound applies.
    NotAPlan,
    /// The instruction compiles but the analyzer found no finite dollar
    /// bound at the gate's tier.
    Unbounded,
    /// A sound worst-case dollar figure at the gate's tier.
    UsdMax(f64),
}

/// The admission-side bound gate: compiles-and-analyzes each distinct
/// instruction once, caches the verdict by plan hash, and counts what
/// it saw for the report and the metrics registry.
#[derive(Debug)]
pub struct BoundGate {
    tier: ModelId,
    cache: BTreeMap<u128, StaticVerdict>,
    /// Instructions that compiled as Pyrite and were bound-checked
    /// (cache hits included).
    pub checked: u64,
    /// Checked instructions whose dollar bound was not finite.
    pub unbounded: u64,
    /// Verdicts served from the plan-hash cache.
    pub cache_hits: u64,
}

impl BoundGate {
    /// A gate that prices worst cases at `tier`.
    pub fn new(tier: ModelId) -> BoundGate {
        BoundGate {
            tier,
            cache: BTreeMap::new(),
            checked: 0,
            unbounded: 0,
            cache_hits: 0,
        }
    }

    /// The execution tier worst cases are priced at.
    pub fn tier(&self) -> ModelId {
        self.tier
    }

    /// The static verdict for one instruction, counting the evaluation.
    pub fn verdict(&mut self, instruction: &str) -> StaticVerdict {
        let hash = plan_hash(instruction);
        let verdict = match self.cache.get(&hash) {
            Some(v) => {
                self.cache_hits += 1;
                *v
            }
            None => {
                let v = match compile_source(instruction) {
                    Ok(program) => {
                        let usd = program.bound.usd_max(self.tier);
                        if usd.is_finite() {
                            StaticVerdict::UsdMax(usd)
                        } else {
                            StaticVerdict::Unbounded
                        }
                    }
                    Err(_) => StaticVerdict::NotAPlan,
                };
                self.cache.insert(hash, v);
                v
            }
        };
        match verdict {
            StaticVerdict::NotAPlan => {}
            StaticVerdict::Unbounded => {
                self.checked += 1;
                self.unbounded += 1;
            }
            StaticVerdict::UsdMax(_) => self.checked += 1,
        }
        verdict
    }

    /// The violation check: `Some((usd_max, remaining))` when the
    /// instruction's static worst case provably exceeds the tenant's
    /// remaining dollar quota. `remaining = None` (no dollar quota) and
    /// non-finite bounds never trip the gate.
    pub fn over_budget(
        &mut self,
        instruction: &str,
        remaining_usd: Option<f64>,
    ) -> Option<(f64, f64)> {
        let remaining = remaining_usd?;
        match self.verdict(instruction) {
            StaticVerdict::UsdMax(usd_max) if usd_max > remaining => Some((usd_max, remaining)),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const LOOPED_READS: &str =
        "total = 0\nfor i in range(40):\n    total += len(read_file('a.csv'))\ntotal";

    #[test]
    fn pyrite_plans_get_a_finite_verdict_and_cache_by_plan_hash() {
        let mut gate = BoundGate::new(ModelId::Flagship);
        let first = gate.verdict(LOOPED_READS);
        let StaticVerdict::UsdMax(usd) = first else {
            panic!("expected a finite bound, got {first:?}");
        };
        assert!(usd > 0.0);
        assert_eq!(gate.verdict(LOOPED_READS), first);
        assert_eq!(gate.checked, 2);
        assert_eq!(gate.cache_hits, 1);
        assert_eq!(gate.unbounded, 0);
    }

    #[test]
    fn natural_language_is_not_a_plan_and_never_gates() {
        let mut gate = BoundGate::new(ModelId::Flagship);
        // Does not lex as Pyrite: no static bound applies.
        let q = "how many identity theft reports in 2002?";
        assert_eq!(gate.verdict(q), StaticVerdict::NotAPlan);
        assert_eq!(gate.over_budget(q, Some(0.0)), None);
        assert_eq!(gate.checked, 0);
        // Some natural language *does* parse (adjacent names); it makes
        // no tool calls, so its $0 bound can never exceed non-negative
        // headroom — the gate stays inert on it.
        let pseudo = "count identity theft reports in 2001";
        assert_eq!(gate.verdict(pseudo), StaticVerdict::UsdMax(0.0));
        assert_eq!(gate.over_budget(pseudo, Some(0.0)), None);
    }

    #[test]
    fn unbounded_plans_are_admitted_not_shed() {
        // Iterating tool output makes the billable call count — and so
        // the dollars — unbounded; the gate must not invent a violation
        // out of ignorance.
        let mut gate = BoundGate::new(ModelId::Flagship);
        let src = "for f in list_files():\n    read_file(f)\n0";
        assert_eq!(gate.verdict(src), StaticVerdict::Unbounded);
        assert_eq!(gate.over_budget(src, Some(1e-9)), None);
        assert_eq!(gate.unbounded, 2, "both evaluations counted");
    }

    #[test]
    fn fuel_unbounded_but_dollar_bounded_plans_still_gate_on_dollars() {
        // A data-dependent while burns unbounded fuel but calls
        // `list_files` exactly once: the dollar dimension is finite and
        // the gate prices it.
        let mut gate = BoundGate::new(ModelId::Flagship);
        let src = "n = len(list_files())\ni = 0\nwhile i < n:\n    i += 1\ni";
        let StaticVerdict::UsdMax(usd) = gate.verdict(src) else {
            panic!("expected a finite dollar bound");
        };
        assert!(usd > 0.0);
        assert!(gate.over_budget(src, Some(usd / 2.0)).is_some());
    }

    #[test]
    fn over_budget_requires_a_quota_and_a_proven_excess() {
        let mut gate = BoundGate::new(ModelId::Flagship);
        // No dollar quota: nothing to violate.
        assert_eq!(gate.over_budget(LOOPED_READS, None), None);
        // A generous quota: the worst case fits.
        assert_eq!(gate.over_budget(LOOPED_READS, Some(1e9)), None);
        // A micro-quota: 40 worst-case tool calls cannot fit.
        let (usd_max, remaining) = gate
            .over_budget(LOOPED_READS, Some(1e-6))
            .expect("proven violation");
        assert!(usd_max > remaining);
        assert_eq!(remaining, 1e-6);
    }

    #[test]
    fn cheaper_tiers_price_the_same_plan_lower() {
        let mut flagship = BoundGate::new(ModelId::Flagship);
        let mut nano = BoundGate::new(ModelId::Nano);
        let f = match flagship.verdict(LOOPED_READS) {
            StaticVerdict::UsdMax(v) => v,
            other => panic!("{other:?}"),
        };
        let n = match nano.verdict(LOOPED_READS) {
            StaticVerdict::UsdMax(v) => v,
            other => panic!("{other:?}"),
        };
        assert!(n < f, "nano {n} should undercut flagship {f}");
    }
}
