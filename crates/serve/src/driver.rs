//! The open-loop workload driver: deterministic Poisson-ish arrivals on
//! the virtual clock.
//!
//! Arrivals are **open-loop**: each tenant submits on its own schedule
//! regardless of how fast the service drains, so overload actually
//! builds a backlog instead of self-throttling. Interarrival gaps are
//! exponential, drawn from a [`KeyedRng`] seeded by `(seed, tenant)` —
//! the same seed always produces the same workload, byte for byte.

use crate::report::ServiceReport;
use crate::request::{Completion, Priority, QueryRequest, Shed};
use crate::TenantId;
use aida_llm::noise::{self, KeyedRng};

/// Where the service's requests come from: a pre-generated batch
/// ([`ReplaySource`]) or the live front door (`LiveSource` in
/// `client`). The scheduler pulls arrivals through this trait and
/// pushes outcomes back, so batch replay and live traffic share one
/// dispatch loop and one report path.
///
/// The contract is virtual-time-monotone: `pop(horizon_s)` yields
/// requests whose `arrival_s <= horizon_s` in nondecreasing arrival
/// order, and `next_arrival` never goes backwards. A live source may
/// *advance its own world* (deliver frames, run client think timers)
/// inside either call, as long as it respects the horizon.
pub trait RequestSource {
    /// The arrival instant of the next request, advancing the source's
    /// world if needed to discover it. `None` means the workload is
    /// exhausted and the run may end once the queue drains.
    fn next_arrival(&mut self) -> Option<f64>;

    /// Takes the next request arriving at or before `horizon_s`, if any.
    fn pop(&mut self, horizon_s: f64) -> Option<QueryRequest>;

    /// The request `seq` passed admission into the queue at `at_s`.
    fn on_admitted(&mut self, _seq: u64, _tenant: &TenantId, _at_s: f64) {}

    /// A request was refused (admission or dispatch-time re-check).
    fn on_shed(&mut self, _shed: &Shed) {}

    /// A query finished (its `end_s` may lie ahead of the dispatch
    /// cursor — virtual completion instants are scheduled, not awaited).
    fn on_completion(&mut self, _completion: &Completion) {}

    /// The run is over: drain in-flight responses and write any
    /// source-side summary (front-door stats, client outcomes) into the
    /// report.
    fn finish(&mut self, _report: &mut ServiceReport) {}
}

/// Batch replay: a sorted vector of pre-generated requests behind the
/// [`RequestSource`] contract. This is exactly the service's historical
/// input path — `QueryService::run` wraps its vector in one of these.
#[derive(Debug)]
pub struct ReplaySource {
    requests: Vec<QueryRequest>,
    next: usize,
}

impl ReplaySource {
    /// Sorts the batch by `(arrival, seq)` and wraps it.
    pub fn new(mut requests: Vec<QueryRequest>) -> ReplaySource {
        requests.sort_by(|a, b| a.arrival_s.total_cmp(&b.arrival_s).then(a.seq.cmp(&b.seq)));
        ReplaySource { requests, next: 0 }
    }
}

impl RequestSource for ReplaySource {
    fn next_arrival(&mut self) -> Option<f64> {
        self.requests.get(self.next).map(|r| r.arrival_s)
    }

    fn pop(&mut self, horizon_s: f64) -> Option<QueryRequest> {
        let request = self.requests.get(self.next)?;
        if request.arrival_s > horizon_s {
            return None;
        }
        self.next += 1;
        Some(self.requests[self.next - 1].clone())
    }
}

/// One tenant's load profile.
#[derive(Debug, Clone)]
pub struct TenantLoad {
    /// The submitting tenant.
    pub tenant: TenantId,
    /// Name of the registered Context every request targets.
    pub context: String,
    /// Instructions cycled across the tenant's requests.
    pub instructions: Vec<String>,
    /// How many requests the tenant submits.
    pub queries: usize,
    /// Mean exponential interarrival gap (virtual seconds).
    pub mean_interarrival_s: f64,
    /// Priority for every request.
    pub priority: Priority,
    /// Queueing deadline for every request, if any.
    pub deadline_s: Option<f64>,
    /// Virtual instant the tenant starts submitting.
    pub start_offset_s: f64,
}

impl TenantLoad {
    /// A load profile with defaults: 10 queries, 30 s mean gap, normal
    /// priority, no deadline, starting at t = 0.
    pub fn new(tenant: impl Into<TenantId>, context: impl Into<String>) -> TenantLoad {
        TenantLoad {
            tenant: tenant.into(),
            context: context.into(),
            instructions: Vec::new(),
            queries: 10,
            mean_interarrival_s: 30.0,
            priority: Priority::Normal,
            deadline_s: None,
            start_offset_s: 0.0,
        }
    }

    /// Sets the instruction cycle.
    pub fn instructions<I, S>(mut self, instructions: I) -> TenantLoad
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        self.instructions = instructions.into_iter().map(Into::into).collect();
        self
    }

    /// Sets the request count.
    pub fn queries(mut self, queries: usize) -> TenantLoad {
        self.queries = queries;
        self
    }

    /// Sets the mean interarrival gap.
    pub fn mean_interarrival(mut self, seconds: f64) -> TenantLoad {
        self.mean_interarrival_s = seconds.max(0.0);
        self
    }

    /// Sets the priority.
    pub fn priority(mut self, priority: Priority) -> TenantLoad {
        self.priority = priority;
        self
    }

    /// Sets the queueing deadline.
    pub fn deadline(mut self, seconds: f64) -> TenantLoad {
        self.deadline_s = Some(seconds);
        self
    }

    /// Sets the start offset.
    pub fn offset(mut self, seconds: f64) -> TenantLoad {
        self.start_offset_s = seconds;
        self
    }
}

/// Generates the merged open-loop workload for a set of tenant loads.
///
/// Requests are sorted by `(arrival, tenant)` and numbered, so the
/// returned vector is fully deterministic in `seed` and the loads.
pub fn open_loop(seed: u64, loads: &[TenantLoad]) -> Vec<QueryRequest> {
    let mut requests = Vec::new();
    for load in loads {
        if load.instructions.is_empty() || load.queries == 0 {
            continue;
        }
        let key = noise::combine(&[
            noise::hash_str("serve.driver"),
            seed,
            noise::hash_str(load.tenant.as_str()),
        ]);
        let mut rng = KeyedRng::new(key);
        let mut t = load.start_offset_s;
        for i in 0..load.queries {
            // Exponential gap: -mean · ln(1 - U), U ∈ [0, 1).
            let u = rng.next_f64();
            t += -load.mean_interarrival_s * (1.0 - u).ln();
            let instruction = load.instructions[i % load.instructions.len()].clone();
            let mut request =
                QueryRequest::new(load.tenant.clone(), load.context.clone(), instruction)
                    .at(t)
                    .priority(load.priority);
            if let Some(deadline_s) = load.deadline_s {
                request = request.deadline(deadline_s);
            }
            requests.push(request);
        }
    }
    requests.sort_by(|a, b| {
        a.arrival_s
            .total_cmp(&b.arrival_s)
            .then_with(|| a.tenant.cmp(&b.tenant))
    });
    for (i, request) in requests.iter_mut().enumerate() {
        request.seq = i as u64;
    }
    requests
}

#[cfg(test)]
mod tests {
    use super::*;

    fn loads() -> Vec<TenantLoad> {
        vec![
            TenantLoad::new("acme", "lake")
                .instructions(["q1", "q2"])
                .queries(5)
                .mean_interarrival(10.0),
            TenantLoad::new("bolt", "lake")
                .instructions(["q3"])
                .queries(3)
                .mean_interarrival(20.0)
                .offset(5.0)
                .deadline(120.0),
        ]
    }

    #[test]
    fn same_seed_same_workload() {
        let a = open_loop(42, &loads());
        let b = open_loop(42, &loads());
        assert_eq!(a, b);
        assert_eq!(a.len(), 8);
    }

    #[test]
    fn different_seeds_differ() {
        let a = open_loop(1, &loads());
        let b = open_loop(2, &loads());
        assert_ne!(
            a.iter().map(|r| r.arrival_s).collect::<Vec<_>>(),
            b.iter().map(|r| r.arrival_s).collect::<Vec<_>>()
        );
    }

    #[test]
    fn arrivals_are_sorted_and_numbered() {
        let requests = open_loop(7, &loads());
        for window in requests.windows(2) {
            assert!(window[0].arrival_s <= window[1].arrival_s);
            assert_eq!(window[0].seq + 1, window[1].seq);
        }
        assert_eq!(requests[0].seq, 0);
    }

    #[test]
    fn instructions_cycle_and_options_apply() {
        let requests = open_loop(3, &loads());
        let acme: Vec<&QueryRequest> = requests
            .iter()
            .filter(|r| r.tenant.as_str() == "acme")
            .collect();
        assert_eq!(acme.len(), 5);
        let q1 = acme.iter().filter(|r| r.instruction == "q1").count();
        assert_eq!(q1, 3, "q1,q2 cycle over 5 queries");
        let bolt: Vec<&QueryRequest> = requests
            .iter()
            .filter(|r| r.tenant.as_str() == "bolt")
            .collect();
        assert!(bolt.iter().all(|r| r.deadline_s == Some(120.0)));
        assert!(bolt.iter().all(|r| r.arrival_s > 5.0));
    }

    #[test]
    fn replay_source_respects_the_horizon() {
        let requests = open_loop(42, &loads());
        let arrivals: Vec<f64> = requests.iter().map(|r| r.arrival_s).collect();
        let mut source = ReplaySource::new(requests);
        assert_eq!(source.next_arrival(), Some(arrivals[0]));
        // Nothing pops before its arrival.
        assert!(source.pop(arrivals[0] - 1e-9).is_none());
        // Everything at or before the horizon pops, in arrival order.
        let horizon = arrivals[2];
        let mut popped = Vec::new();
        while let Some(r) = source.pop(horizon) {
            popped.push(r.arrival_s);
        }
        assert_eq!(popped, &arrivals[..3]);
        assert_eq!(source.next_arrival(), Some(arrivals[3]));
        // Exhaustion.
        while source.pop(f64::INFINITY).is_some() {}
        assert_eq!(source.next_arrival(), None);
    }

    #[test]
    fn empty_or_zero_loads_yield_nothing() {
        let empty = open_loop(1, &[TenantLoad::new("a", "lake")]);
        assert!(empty.is_empty(), "no instructions → no requests");
        let zero = open_loop(
            1,
            &[TenantLoad::new("a", "lake").instructions(["q"]).queries(0)],
        );
        assert!(zero.is_empty());
    }
}
