//! # client — closed-loop clients over the live front door
//!
//! The open-loop driver submits on a fixed schedule no matter how the
//! service behaves; real clients don't. This module models the other
//! regime: each client keeps **one request in flight**, thinks for an
//! exponential pause after every completion, and reacts to typed
//! rejections with bounded, seeded, jittered exponential backoff — so
//! overload self-throttles instead of building an unbounded backlog.
//!
//! [`LiveSource`] is the bridge: it owns a [`Listener`] over the
//! deterministic [`NetSim`] fabric plus a fleet of clients, and
//! implements [`RequestSource`] so `QueryService::serve` pulls live
//! wire traffic through the same dispatch loop and report path as
//! batch replay. All client timers, wire delays, and readiness
//! shuffles draw from seeded RNGs on the virtual clock, so a full soak
//! replays byte-identically at the same seed.

use crate::driver::RequestSource;
use crate::net::{
    encode_frame, plan_hash, Frame, FrameReader, Inbound, Listener, WireBody, WireRequest,
};
use crate::report::{NetReport, ServiceReport};
use crate::request::{Completion, Priority, QueryRequest, Shed};
use crate::TenantId;
use aida_llm::noise::{self, KeyedRng};
use aida_testkit::{NetSim, NetSimConfig};
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// One closed-loop client's behavior profile.
#[derive(Debug, Clone)]
pub struct ClientConfig {
    /// Tenant every request is submitted as.
    pub tenant: String,
    /// Registered Context name every request targets.
    pub context: String,
    /// Instructions cycled across the client's queries.
    pub instructions: Vec<String>,
    /// Queries the client wants completed before it hangs up.
    pub queries: usize,
    /// Mean exponential think time between a completion and the next
    /// submission (virtual seconds).
    pub mean_think_s: f64,
    /// Retries allowed per query after retryable rejections.
    pub max_retries: u32,
    /// First-retry backoff; doubles per attempt with seeded jitter.
    pub base_backoff_s: f64,
    /// Priority for every request.
    pub priority: Priority,
    /// Queueing deadline for every request, if any.
    pub deadline_s: Option<f64>,
    /// Virtual instant the client connects and submits its first query.
    pub start_s: f64,
    /// Whether repeat submissions of the same source send its
    /// [`plan_hash`] instead of re-sending the program text.
    pub use_plan_hash: bool,
}

impl ClientConfig {
    /// A profile with defaults: 1 query, 30 s mean think, 3 retries,
    /// 5 s base backoff, normal priority, no deadline, starts at t = 0,
    /// plan-hash reuse on.
    pub fn new(tenant: impl Into<String>, context: impl Into<String>) -> ClientConfig {
        ClientConfig {
            tenant: tenant.into(),
            context: context.into(),
            instructions: Vec::new(),
            queries: 1,
            mean_think_s: 30.0,
            max_retries: 3,
            base_backoff_s: 5.0,
            priority: Priority::Normal,
            deadline_s: None,
            start_s: 0.0,
            use_plan_hash: true,
        }
    }

    /// Sets the instruction cycle.
    pub fn instructions<I, S>(mut self, instructions: I) -> ClientConfig
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        self.instructions = instructions.into_iter().map(Into::into).collect();
        self
    }

    /// Sets the per-client query count.
    pub fn queries(mut self, queries: usize) -> ClientConfig {
        self.queries = queries;
        self
    }

    /// Sets the mean think time.
    pub fn think(mut self, seconds: f64) -> ClientConfig {
        self.mean_think_s = seconds.max(0.0);
        self
    }

    /// Sets the retry budget per query.
    pub fn retries(mut self, max_retries: u32) -> ClientConfig {
        self.max_retries = max_retries;
        self
    }

    /// Sets the base backoff.
    pub fn backoff(mut self, seconds: f64) -> ClientConfig {
        self.base_backoff_s = seconds.max(0.0);
        self
    }

    /// Sets the priority.
    pub fn priority(mut self, priority: Priority) -> ClientConfig {
        self.priority = priority;
        self
    }

    /// Sets the queueing deadline.
    pub fn deadline(mut self, seconds: f64) -> ClientConfig {
        self.deadline_s = Some(seconds);
        self
    }

    /// Sets the connect/first-submit instant.
    pub fn start(mut self, seconds: f64) -> ClientConfig {
        self.start_s = seconds.max(0.0);
        self
    }

    /// Disables plan-hash reuse (always send full source).
    pub fn always_send_source(mut self) -> ClientConfig {
        self.use_plan_hash = false;
        self
    }
}

/// How a client's session ended. Every client resolves to exactly one
/// of these — no query silently vanishes.
#[derive(Debug, Clone, PartialEq)]
pub enum ClientOutcome {
    /// Every wanted query completed.
    Completed {
        /// Queries completed.
        queries: usize,
        /// Retries spent along the way.
        retries: u32,
    },
    /// A retryable rejection survived the whole backoff budget.
    RetriesExhausted {
        /// Queries completed before giving up.
        completed: usize,
        /// Retries spent (== the budget on the final query).
        retries: u32,
        /// Kind label of the final rejection.
        reason: String,
    },
    /// A terminal (non-retryable) rejection: quota, unknown names.
    Abandoned {
        /// Queries completed before the rejection.
        completed: usize,
        /// Kind label of the rejection.
        reason: String,
    },
    /// The server reported a fatal wire error (or the session never
    /// resolved).
    WireFailed {
        /// Queries completed before the failure.
        completed: usize,
        /// [`crate::WireError::kind`]-style code.
        code: String,
    },
}

impl ClientOutcome {
    /// Stable lowercase label.
    pub fn kind(&self) -> &'static str {
        match self {
            ClientOutcome::Completed { .. } => "completed",
            ClientOutcome::RetriesExhausted { .. } => "retries_exhausted",
            ClientOutcome::Abandoned { .. } => "abandoned",
            ClientOutcome::WireFailed { .. } => "wire_failed",
        }
    }

    /// Queries this client completed.
    pub fn queries_completed(&self) -> usize {
        match self {
            ClientOutcome::Completed { queries, .. } => *queries,
            ClientOutcome::RetriesExhausted { completed, .. }
            | ClientOutcome::Abandoned { completed, .. }
            | ClientOutcome::WireFailed { completed, .. } => *completed,
        }
    }
}

/// One client's live session state.
#[derive(Debug)]
struct Client {
    cfg: ClientConfig,
    rng: KeyedRng,
    conn: usize,
    reader: FrameReader,
    next_client_seq: u64,
    /// `client_seq` of the request awaiting a decision or result.
    in_flight: Option<u64>,
    completed: usize,
    /// Retries spent on the current query.
    attempt: u32,
    retries_total: u32,
    /// Plan hashes of sources this client already transmitted in full.
    sent: BTreeSet<u128>,
    outcome: Option<ClientOutcome>,
}

/// A deferred simulation-side action, keyed by virtual instant.
#[derive(Debug)]
enum Action {
    /// Client `client` submits its next request.
    Submit { client: usize },
    /// The server emits `frame` toward `conn` (admission verdicts at
    /// their admission instants, completions at their `end_s`).
    Respond { conn: usize, frame: Frame },
}

/// Live traffic behind the [`RequestSource`] contract: a [`Listener`]
/// over the deterministic [`NetSim`] fabric plus a fleet of closed-loop
/// clients. The service's dispatch loop pulls arrivals out; admission
/// verdicts and completions flow back over the wire as typed frames.
#[derive(Debug)]
pub struct LiveSource {
    listener: Listener<NetSim>,
    clients: Vec<Client>,
    /// Pending timed actions, ordered by `(instant bits, insertion id)`.
    /// Virtual instants are non-negative, so the f64 bit pattern orders
    /// identically to the float.
    actions: BTreeMap<(u64, u64), Action>,
    next_action_id: u64,
    /// Server-assigned sequence numbers for inbound requests.
    next_seq: u64,
    /// In-flight request routing: service seq -> (conn, client_seq).
    by_seq: BTreeMap<u64, (usize, u64)>,
    /// Connection token -> client index.
    conn_client: BTreeMap<usize, usize>,
    /// Decoded requests awaiting the service, in arrival order.
    ready: VecDeque<QueryRequest>,
}

impl LiveSource {
    /// Builds the fabric with default knobs at `seed` and connects one
    /// session per client config.
    pub fn new(seed: u64, clients: Vec<ClientConfig>) -> LiveSource {
        LiveSource::with_net(
            NetSimConfig {
                seed,
                ..NetSimConfig::default()
            },
            clients,
        )
    }

    /// Builds over explicit fabric knobs (tiny `max_chunk`/`max_write`
    /// values stress partial reads and short writes).
    pub fn with_net(net: NetSimConfig, clients: Vec<ClientConfig>) -> LiveSource {
        let seed = net.seed;
        let mut source = LiveSource {
            listener: Listener::new(NetSim::new(net)),
            clients: Vec::with_capacity(clients.len()),
            actions: BTreeMap::new(),
            next_action_id: 0,
            next_seq: 0,
            by_seq: BTreeMap::new(),
            conn_client: BTreeMap::new(),
            ready: VecDeque::new(),
        };
        for (index, cfg) in clients.into_iter().enumerate() {
            let rng = KeyedRng::new(noise::combine(&[
                noise::hash_str("serve.client"),
                seed,
                index as u64,
            ]));
            let idle = cfg.instructions.is_empty() || cfg.queries == 0;
            let conn = source.listener.fabric_mut().connect(cfg.start_s);
            source.conn_client.insert(conn, index);
            let start_s = cfg.start_s;
            source.clients.push(Client {
                cfg,
                rng,
                conn,
                reader: FrameReader::new(),
                next_client_seq: 0,
                in_flight: None,
                completed: 0,
                attempt: 0,
                retries_total: 0,
                sent: BTreeSet::new(),
                outcome: idle.then_some(ClientOutcome::Completed {
                    queries: 0,
                    retries: 0,
                }),
            });
            if !idle {
                source.schedule(start_s, Action::Submit { client: index });
            }
        }
        source
    }

    /// The front-door reactor (stats, open connections).
    pub fn listener(&self) -> &Listener<NetSim> {
        &self.listener
    }

    /// Every client's resolved outcome. Clients still unresolved when
    /// this is called (e.g. the service aborted mid-run) report as
    /// [`ClientOutcome::WireFailed`] with code `"unresolved"`.
    pub fn outcomes(&self) -> Vec<ClientOutcome> {
        self.clients
            .iter()
            .map(|c| {
                c.outcome.clone().unwrap_or(ClientOutcome::WireFailed {
                    completed: c.completed,
                    code: "unresolved".to_string(),
                })
            })
            .collect()
    }

    fn schedule(&mut self, at_s: f64, action: Action) {
        // Actions landing in the past execute at the current instant —
        // the key still orders deterministically.
        let at = at_s.max(self.listener.fabric_mut().now()).max(0.0);
        let id = self.next_action_id;
        self.next_action_id += 1;
        self.actions.insert((at.to_bits(), id), action);
    }

    /// The next instant anything happens: a timed action or a fabric
    /// event (delivery, connect, FIN).
    fn next_event_s(&mut self) -> Option<f64> {
        let mut next = f64::INFINITY;
        if let Some(((bits, _), _)) = self.actions.iter().next() {
            next = next.min(f64::from_bits(*bits));
        }
        if let Some(t) = self.listener.fabric_mut().next_event_s() {
            next = next.min(t);
        }
        next.is_finite().then_some(next)
    }

    /// Advances the world to `t`: run due actions, spin the reactor,
    /// deliver responses to clients.
    fn step_to(&mut self, t: f64) {
        self.listener.fabric_mut().advance(t);
        let now = self.listener.fabric_mut().now();
        while let Some((&key, _)) = self.actions.iter().next() {
            if f64::from_bits(key.0) > now {
                break;
            }
            match self.actions.remove(&key).expect("key just observed") {
                Action::Submit { client } => self.submit(client),
                Action::Respond { conn, frame } => self.listener.respond(conn, &frame),
            }
        }
        let inbound = self.listener.turn();
        for inb in inbound {
            self.ingest(inb);
        }
        self.pump_clients();
    }

    /// Writes client `index`'s next request onto the wire.
    fn submit(&mut self, index: usize) {
        let now = self.listener.fabric_mut().now();
        let client = &mut self.clients[index];
        if client.outcome.is_some() {
            return;
        }
        let source =
            client.cfg.instructions[client.completed % client.cfg.instructions.len()].clone();
        let hash = plan_hash(&source);
        let body = if client.cfg.use_plan_hash && client.sent.contains(&hash) {
            WireBody::PlanHash(hash)
        } else {
            client.sent.insert(hash);
            WireBody::Source(source)
        };
        let client_seq = client.next_client_seq;
        client.next_client_seq += 1;
        client.in_flight = Some(client_seq);
        let frame = Frame::Request(WireRequest {
            client_seq,
            sent_s: now,
            tenant: client.cfg.tenant.clone(),
            context: client.cfg.context.clone(),
            priority: client.cfg.priority,
            deadline_s: client.cfg.deadline_s,
            body,
        });
        let conn = client.conn;
        let bytes = encode_frame(&frame);
        self.listener.fabric_mut().client_send(conn, &bytes);
    }

    /// Turns a decoded wire request into a service [`QueryRequest`].
    fn ingest(&mut self, inb: Inbound) {
        let now = self.listener.fabric_mut().now();
        let seq = self.next_seq;
        self.next_seq += 1;
        let mut request =
            QueryRequest::new(inb.request.tenant, inb.request.context, inb.instruction)
                .at(now)
                .submitted(inb.request.sent_s)
                .priority(inb.request.priority);
        if let Some(deadline_s) = inb.request.deadline_s {
            request = request.deadline(deadline_s);
        }
        request.seq = seq;
        self.by_seq.insert(seq, (inb.conn, inb.request.client_seq));
        self.ready.push_back(request);
    }

    /// Drains delivered server->client bytes and runs every client's
    /// reaction to the frames inside.
    fn pump_clients(&mut self) {
        for index in 0..self.clients.len() {
            let conn = self.clients[index].conn;
            let bytes = self.listener.fabric_mut().client_recv(conn);
            if bytes.is_empty() {
                continue;
            }
            self.clients[index].reader.push(&bytes);
            loop {
                match self.clients[index].reader.next_frame() {
                    Ok(Some(frame)) => self.react(index, frame),
                    Ok(None) => break,
                    Err(err) => {
                        let client = &mut self.clients[index];
                        if client.outcome.is_none() {
                            client.outcome = Some(ClientOutcome::WireFailed {
                                completed: client.completed,
                                code: err.kind().to_string(),
                            });
                        }
                        break;
                    }
                }
            }
        }
    }

    /// One client's reaction to one server frame.
    fn react(&mut self, index: usize, frame: Frame) {
        let now = self.listener.fabric_mut().now();
        let client = &mut self.clients[index];
        if client.outcome.is_some() {
            return;
        }
        match frame {
            Frame::Accepted { client_seq, .. } => {
                // Queued; the result will follow. Nothing to decide yet.
                debug_assert_eq!(client.in_flight, Some(client_seq));
            }
            Frame::Completed { client_seq, .. } => {
                if client.in_flight != Some(client_seq) {
                    return;
                }
                client.in_flight = None;
                client.completed += 1;
                client.attempt = 0;
                if client.completed >= client.cfg.queries {
                    client.outcome = Some(ClientOutcome::Completed {
                        queries: client.completed,
                        retries: client.retries_total,
                    });
                    let conn = client.conn;
                    self.listener.fabric_mut().client_close(conn);
                } else {
                    let u = client.rng.next_f64();
                    let think_s = -client.cfg.mean_think_s * (1.0 - u).ln();
                    self.schedule(now + think_s, Action::Submit { client: index });
                }
            }
            Frame::Rejected {
                client_seq,
                retryable,
                reason,
                ..
            } => {
                if client.in_flight != Some(client_seq) {
                    return;
                }
                client.in_flight = None;
                if retryable && client.attempt < client.cfg.max_retries {
                    client.attempt += 1;
                    client.retries_total += 1;
                    // Jittered exponential backoff: base * 2^(attempt-1),
                    // scaled by a seeded factor in [0.75, 1.25).
                    let factor = 0.75 + 0.5 * client.rng.next_f64();
                    let backoff_s = client.cfg.base_backoff_s
                        * f64::from(1u32 << (client.attempt - 1).min(20))
                        * factor;
                    self.schedule(now + backoff_s, Action::Submit { client: index });
                } else {
                    let conn = client.conn;
                    client.outcome = Some(if retryable {
                        ClientOutcome::RetriesExhausted {
                            completed: client.completed,
                            retries: client.retries_total,
                            reason,
                        }
                    } else {
                        ClientOutcome::Abandoned {
                            completed: client.completed,
                            reason,
                        }
                    });
                    self.listener.fabric_mut().client_close(conn);
                }
            }
            Frame::Error { code, .. } => {
                if code == "unknown_plan_hash" && client.in_flight.is_some() {
                    // The server lost the interned source (or never had
                    // it); resend the current query with full text.
                    client.in_flight = None;
                    let instruction =
                        &client.cfg.instructions[client.completed % client.cfg.instructions.len()];
                    let hash = plan_hash(instruction);
                    client.sent.remove(&hash);
                    self.schedule(now, Action::Submit { client: index });
                } else {
                    client.outcome = Some(ClientOutcome::WireFailed {
                        completed: client.completed,
                        code,
                    });
                }
            }
            Frame::Request(_) => {
                // Server never sends Request; treat as a fatal wire bug.
                client.outcome = Some(ClientOutcome::WireFailed {
                    completed: client.completed,
                    code: "unexpected_frame".to_string(),
                });
            }
        }
    }
}

impl RequestSource for LiveSource {
    fn next_arrival(&mut self) -> Option<f64> {
        loop {
            if let Some(front) = self.ready.front() {
                return Some(front.arrival_s);
            }
            let t = self.next_event_s()?;
            self.step_to(t);
        }
    }

    fn pop(&mut self, horizon_s: f64) -> Option<QueryRequest> {
        loop {
            if let Some(front) = self.ready.front() {
                if front.arrival_s <= horizon_s {
                    return self.ready.pop_front();
                }
                return None;
            }
            match self.next_event_s() {
                Some(t) if t <= horizon_s => self.step_to(t),
                _ => return None,
            }
        }
    }

    fn on_admitted(&mut self, seq: u64, _tenant: &TenantId, at_s: f64) {
        let Some(&(conn, client_seq)) = self.by_seq.get(&seq) else {
            return;
        };
        self.schedule(
            at_s,
            Action::Respond {
                conn,
                frame: Frame::Accepted { client_seq, seq },
            },
        );
    }

    fn on_shed(&mut self, shed: &Shed) {
        let Some((conn, client_seq)) = self.by_seq.remove(&shed.seq) else {
            return;
        };
        self.schedule(
            shed.at_s,
            Action::Respond {
                conn,
                frame: Frame::Rejected {
                    client_seq,
                    retryable: shed.reason.retryable(),
                    reason: shed.reason.kind().to_string(),
                    detail: shed.reason.to_string(),
                },
            },
        );
    }

    fn on_completion(&mut self, completion: &Completion) {
        let Some((conn, client_seq)) = self.by_seq.remove(&completion.seq) else {
            return;
        };
        self.schedule(
            completion.end_s,
            Action::Respond {
                conn,
                frame: Frame::Completed {
                    client_seq,
                    seq: completion.seq,
                    latency_s: completion.latency_s(),
                    cost_usd: completion.cost_usd,
                    answered: completion.answered,
                },
            },
        );
    }

    fn finish(&mut self, report: &mut ServiceReport) {
        // Drain the tail: final Completed/Rejected frames are still in
        // flight toward their clients. Clients whose sessions resolved
        // stop submitting, so this terminates.
        while let Some(t) = self.next_event_s() {
            self.step_to(t);
        }
        let outcomes = self.outcomes();
        let count = |kind: &str| outcomes.iter().filter(|o| o.kind() == kind).count() as u64;
        report.net = Some(NetReport {
            stats: self.listener.stats().clone(),
            clients: self.clients.len() as u64,
            clients_completed: count("completed"),
            clients_retries_exhausted: count("retries_exhausted"),
            clients_abandoned: count("abandoned"),
            clients_wire_failed: count("wire_failed"),
            client_retries: self
                .clients
                .iter()
                .map(|c| u64::from(c.retries_total))
                .sum(),
            client_queries: outcomes.iter().map(|o| o.queries_completed() as u64).sum(),
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fleet(n: usize, queries: usize) -> Vec<ClientConfig> {
        (0..n)
            .map(|i| {
                ClientConfig::new(if i % 2 == 0 { "acme" } else { "bolt" }, "reports")
                    .instructions(["count identity theft in 2001"])
                    .queries(queries)
                    .think(5.0)
                    .start(i as f64 * 0.25)
            })
            .collect()
    }

    /// Runs a LiveSource against a scripted in-test "service": every
    /// popped request is admitted and completes `exec_s` later.
    fn run_scripted(mut source: LiveSource, exec_s: f64) -> (Vec<ClientOutcome>, u64) {
        let mut served = 0u64;
        let mut now = 0.0f64;
        while let Some(t) = source.next_arrival() {
            now = now.max(t);
            let Some(request) = source.pop(now) else {
                continue;
            };
            source.on_admitted(request.seq, &request.tenant, request.arrival_s);
            let completion = Completion {
                seq: request.seq,
                tenant: request.tenant.clone(),
                worker: 0,
                submitted_s: request.submitted_s,
                arrival_s: request.arrival_s,
                admit_s: request.arrival_s,
                start_s: now,
                end_s: now + exec_s,
                cost_usd: 0.01,
                tokens: 10,
                llm_calls: 1,
                reuse_hits: 0,
                reuse_misses: 0,
                cache_hits: 0,
                cache_coalesced: 0,
                cache_misses: 0,
                answered: true,
            };
            source.on_completion(&completion);
            served += 1;
        }
        let mut report = ServiceReport::default();
        source.finish(&mut report);
        (source.outcomes(), served)
    }

    #[test]
    fn closed_loop_clients_complete_their_sessions() {
        let source = LiveSource::new(11, fleet(4, 3));
        let (outcomes, served) = run_scripted(source, 2.0);
        assert_eq!(served, 12, "4 clients x 3 queries");
        for outcome in &outcomes {
            assert_eq!(
                outcome,
                &ClientOutcome::Completed {
                    queries: 3,
                    retries: 0
                }
            );
        }
    }

    #[test]
    fn live_requests_carry_wire_timestamps() {
        let mut source = LiveSource::new(13, fleet(1, 1));
        let t = source.next_arrival().expect("one request");
        let request = source.pop(t).expect("poppable at its arrival");
        // The client sent at its start instant; the wire delayed it.
        assert!(request.submitted_s >= 0.0);
        assert!(
            request.arrival_s > request.submitted_s,
            "arrival {} must trail submit {}",
            request.arrival_s,
            request.submitted_s
        );
    }

    #[test]
    fn plan_hash_reuse_kicks_in_on_repeat_queries() {
        let source = LiveSource::new(17, fleet(2, 4));
        let mut source = source;
        let (outcomes, served) = {
            let mut served = 0u64;
            let mut now = 0.0f64;
            while let Some(t) = source.next_arrival() {
                now = now.max(t);
                let Some(request) = source.pop(now) else {
                    continue;
                };
                source.on_admitted(request.seq, &request.tenant, request.arrival_s);
                let completion = Completion {
                    seq: request.seq,
                    tenant: request.tenant.clone(),
                    worker: 0,
                    submitted_s: request.submitted_s,
                    arrival_s: request.arrival_s,
                    admit_s: request.arrival_s,
                    start_s: now,
                    end_s: now + 1.0,
                    cost_usd: 0.0,
                    tokens: 0,
                    llm_calls: 0,
                    reuse_hits: 0,
                    reuse_misses: 0,
                    cache_hits: 0,
                    cache_coalesced: 0,
                    cache_misses: 0,
                    answered: true,
                };
                source.on_completion(&completion);
                served += 1;
            }
            let mut report = ServiceReport::default();
            source.finish(&mut report);
            (source.outcomes(), served)
        };
        assert_eq!(served, 8);
        assert!(outcomes.iter().all(|o| o.kind() == "completed"));
        // Each client sent its one instruction in full once, then hashed.
        assert_eq!(source.listener().stats().plan_hash_hits, 6);
    }

    #[test]
    fn terminal_rejection_abandons_the_session() {
        let mut source = LiveSource::new(19, fleet(1, 5));
        let t = source.next_arrival().expect("first request");
        let request = source.pop(t).expect("poppable");
        let shed = Shed {
            seq: request.seq,
            tenant: request.tenant.clone(),
            at_s: request.arrival_s,
            reason: crate::RejectReason::UnknownTenant,
        };
        source.on_shed(&shed);
        assert_eq!(source.next_arrival(), None, "client hung up");
        let mut report = ServiceReport::default();
        source.finish(&mut report);
        let outcomes = source.outcomes();
        assert_eq!(
            outcomes[0],
            ClientOutcome::Abandoned {
                completed: 0,
                reason: "unknown_tenant".to_string()
            }
        );
        let net = report.net.expect("net report");
        assert_eq!(net.clients_abandoned, 1);
    }

    #[test]
    fn retryable_rejections_back_off_then_exhaust() {
        let clients = vec![ClientConfig::new("acme", "reports")
            .instructions(["q"])
            .queries(1)
            .retries(2)
            .backoff(3.0)];
        let mut source = LiveSource::new(23, clients);
        let mut attempts = Vec::new();
        // Shed every attempt with a retryable reason.
        while let Some(t) = source.next_arrival() {
            let request = source.pop(t).expect("poppable");
            attempts.push(request.arrival_s);
            source.on_shed(&Shed {
                seq: request.seq,
                tenant: request.tenant.clone(),
                at_s: request.arrival_s,
                reason: crate::RejectReason::QueueFull {
                    depth: 8,
                    capacity: 8,
                },
            });
        }
        assert_eq!(attempts.len(), 3, "original + 2 retries");
        // Backoff grows: gap2 (2nd retry) > gap1 (1st retry) since the
        // exponent doubles and jitter stays within [0.75, 1.25).
        let gap1 = attempts[1] - attempts[0];
        let gap2 = attempts[2] - attempts[1];
        assert!(gap1 > 2.0 && gap2 > gap1, "gaps {gap1} {gap2}");
        let mut report = ServiceReport::default();
        source.finish(&mut report);
        match &source.outcomes()[0] {
            ClientOutcome::RetriesExhausted {
                completed,
                retries,
                reason,
            } => {
                assert_eq!((*completed, *retries), (0, 2));
                assert_eq!(reason, "queue_full");
            }
            other => panic!("expected retries_exhausted, got {other:?}"),
        }
    }

    #[test]
    fn same_seed_sources_replay_identically() {
        let run = |seed: u64| {
            let source = LiveSource::new(seed, fleet(6, 2));
            let (outcomes, served) = run_scripted(source, 1.5);
            (outcomes, served)
        };
        assert_eq!(run(31), run(31));
    }
}
