//! The bounded admission queue: per-tenant FIFO queues with priorities,
//! a global capacity bound (backpressure), and smooth weighted
//! round-robin dispatch so one heavy tenant cannot starve the others.

use crate::request::{QueryRequest, RejectReason};
use crate::tenant::TenantConfig;
use crate::TenantId;
use std::collections::{BTreeMap, VecDeque};

/// One tenant's backlog: a FIFO per priority level.
#[derive(Debug, Default)]
struct TenantQueue {
    by_priority: [VecDeque<QueryRequest>; 3],
    /// Smooth-WRR credit: raised by the tenant's weight each dispatch
    /// round, drained by the round's total weight when chosen.
    credit: i64,
}

impl TenantQueue {
    fn len(&self) -> usize {
        self.by_priority.iter().map(VecDeque::len).sum()
    }

    fn push(&mut self, request: QueryRequest) {
        self.by_priority[request.priority.slot()].push_back(request);
    }

    fn pop(&mut self) -> Option<QueryRequest> {
        self.by_priority.iter_mut().find_map(VecDeque::pop_front)
    }
}

/// A bounded, multi-tenant admission queue.
///
/// Dispatch is **smooth weighted round-robin**: every `pop` raises each
/// backlogged tenant's credit by its weight, picks the highest credit
/// (ties to the lexicographically-smallest tenant id — deterministic),
/// and drains the winner by the round's total weight. Within a tenant,
/// higher [`Priority`] pops first, FIFO within a level.
#[derive(Debug)]
pub struct AdmissionQueue {
    capacity: usize,
    depth: usize,
    queues: BTreeMap<TenantId, TenantQueue>,
    weights: BTreeMap<TenantId, u32>,
}

impl AdmissionQueue {
    /// Creates an empty queue holding at most `capacity` requests across
    /// all tenants (minimum 1).
    pub fn new(capacity: usize) -> AdmissionQueue {
        AdmissionQueue {
            capacity: capacity.max(1),
            depth: 0,
            queues: BTreeMap::new(),
            weights: BTreeMap::new(),
        }
    }

    /// Sets a tenant's WRR weight (default 1).
    pub fn set_weight(&mut self, tenant: TenantId, config: &TenantConfig) {
        self.weights.insert(tenant, config.weight.max(1));
    }

    /// Requests currently queued across all tenants.
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// The global capacity bound.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// True when nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.depth == 0
    }

    /// Requests queued for one tenant.
    pub fn tenant_depth(&self, tenant: &TenantId) -> usize {
        self.queues.get(tenant).map(TenantQueue::len).unwrap_or(0)
    }

    /// Admits a request, or sheds it with [`RejectReason::QueueFull`]
    /// when the global bound is reached (backpressure).
    pub fn push(&mut self, request: QueryRequest) -> Result<(), RejectReason> {
        if self.depth >= self.capacity {
            return Err(RejectReason::QueueFull {
                depth: self.depth,
                capacity: self.capacity,
            });
        }
        self.queues
            .entry(request.tenant.clone())
            .or_default()
            .push(request);
        self.depth += 1;
        Ok(())
    }

    /// Dispatches the next request under smooth weighted round-robin.
    pub fn pop(&mut self) -> Option<QueryRequest> {
        if self.depth == 0 {
            return None;
        }
        let mut round_total: i64 = 0;
        let mut winner: Option<(i64, TenantId)> = None;
        for (tenant, queue) in &mut self.queues {
            if queue.len() == 0 {
                continue;
            }
            let weight = i64::from(*self.weights.get(tenant).unwrap_or(&1));
            queue.credit += weight;
            round_total += weight;
            let better = match &winner {
                None => true,
                // Strict > keeps the earliest (smallest id) on ties: the
                // BTreeMap iterates in id order.
                Some((best, _)) => queue.credit > *best,
            };
            if better {
                winner = Some((queue.credit, tenant.clone()));
            }
        }
        let (_, tenant) = winner?;
        let queue = self.queues.get_mut(&tenant)?;
        queue.credit -= round_total;
        let request = queue.pop()?;
        self.depth -= 1;
        Some(request)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::Priority;

    fn req(tenant: &str, seq: u64) -> QueryRequest {
        let mut r = QueryRequest::new(tenant, "ctx", format!("q{seq}"));
        r.seq = seq;
        r
    }

    #[test]
    fn capacity_bound_sheds_with_queue_full() {
        let mut q = AdmissionQueue::new(2);
        q.push(req("a", 0)).unwrap();
        q.push(req("a", 1)).unwrap();
        match q.push(req("b", 2)) {
            Err(RejectReason::QueueFull { depth, capacity }) => {
                assert_eq!((depth, capacity), (2, 2));
            }
            other => panic!("expected QueueFull, got {other:?}"),
        }
        assert_eq!(q.depth(), 2);
    }

    #[test]
    fn equal_weights_round_robin_fairly() {
        let mut q = AdmissionQueue::new(16);
        for seq in 0..3 {
            q.push(req("a", seq)).unwrap();
            q.push(req("b", 10 + seq)).unwrap();
        }
        let order: Vec<String> = std::iter::from_fn(|| q.pop())
            .map(|r| r.tenant.to_string())
            .collect();
        assert_eq!(order, ["a", "b", "a", "b", "a", "b"]);
    }

    #[test]
    fn weights_bias_dispatch_proportionally() {
        let mut q = AdmissionQueue::new(32);
        q.set_weight("heavy".into(), &TenantConfig::weighted(3));
        q.set_weight("light".into(), &TenantConfig::weighted(1));
        for seq in 0..8 {
            q.push(req("heavy", seq)).unwrap();
            q.push(req("light", 100 + seq)).unwrap();
        }
        let first_eight: Vec<String> = (0..8)
            .filter_map(|_| q.pop())
            .map(|r| r.tenant.to_string())
            .collect();
        let heavy = first_eight.iter().filter(|t| *t == "heavy").count();
        assert_eq!(heavy, 6, "3:1 weights → 6 of the first 8: {first_eight:?}");
        // The light tenant is interleaved, not starved.
        assert!(first_eight.contains(&"light".to_string()));
    }

    #[test]
    fn priority_pops_before_fifo_within_tenant() {
        let mut q = AdmissionQueue::new(8);
        q.push(req("a", 0)).unwrap();
        let mut urgent = req("a", 1);
        urgent.priority = Priority::High;
        q.push(urgent).unwrap();
        let mut background = req("a", 2);
        background.priority = Priority::Low;
        q.push(background).unwrap();
        let seqs: Vec<u64> = std::iter::from_fn(|| q.pop()).map(|r| r.seq).collect();
        assert_eq!(seqs, [1, 0, 2]);
    }

    #[test]
    fn one_backlogged_tenant_drains_alone() {
        let mut q = AdmissionQueue::new(8);
        for seq in 0..3 {
            q.push(req("solo", seq)).unwrap();
        }
        let seqs: Vec<u64> = std::iter::from_fn(|| q.pop()).map(|r| r.seq).collect();
        assert_eq!(seqs, [0, 1, 2]);
        assert!(q.pop().is_none());
    }

    #[test]
    fn wrr_is_deterministic_on_ties() {
        // Two equal-weight tenants, identical backlogs: the smaller id
        // always goes first.
        for _ in 0..3 {
            let mut q = AdmissionQueue::new(8);
            q.push(req("b", 1)).unwrap();
            q.push(req("a", 0)).unwrap();
            assert_eq!(q.pop().unwrap().tenant.as_str(), "a");
        }
    }
}
