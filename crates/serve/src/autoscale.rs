//! # autoscale — latency-targeted control of the virtual worker pool
//!
//! The Timeline makes pool size a runtime parameter; this module closes
//! the loop on it. The controller reads the same signals an SRE would
//! page on — the windowed p99 of completed-query latency
//! (`obs::timeseries`) and the multi-window SLO burn rate
//! (`obs::slo` semantics: fast **and** slow windows both over
//! threshold) — and resizes the active worker prefix between a min and
//! max bound.
//!
//! Stability comes from three standard guards:
//!
//! * a **hysteresis band** around the target: scale up above
//!   `target * (1 + h)`, down only below `target * (1 - h)`, so a p99
//!   hovering at the target never oscillates the pool;
//! * a **cooldown** between moves, so one burst produces one decision,
//!   not a staircase of them;
//! * **asymmetric steps**: up by half the current pool (fast escape
//!   from a burn), down by one (gentle reclaim — misjudging down is
//!   cheap to reverse, misjudging up burns SLO).
//!
//! The controller is pure arithmetic over deterministic window
//! snapshots at virtual instants, so a fixed seed replays the exact
//! same scale decisions byte-for-byte.

use aida_obs::json::Json;
use aida_obs::slo::SloPolicy;
use aida_obs::timeseries::SlidingWindow;

/// Error budget implied by a p99 target (mirrors `obs::slo`).
const P99_BUDGET: f64 = 0.01;

/// Controller tuning. Construct with [`AutoscaleConfig::new`] and
/// adjust with the builder methods.
#[derive(Debug, Clone, PartialEq)]
pub struct AutoscaleConfig {
    /// Smallest active pool the controller will hold.
    pub min_workers: usize,
    /// Largest active pool (also the thread-pool capacity the service
    /// provisions).
    pub max_workers: usize,
    /// The p99 latency the pool should hold, virtual seconds.
    pub target_p99_s: f64,
    /// Half-width of the no-action band as a fraction of the target.
    pub hysteresis: f64,
    /// Seconds between controller evaluations.
    pub evaluate_every_s: f64,
    /// Minimum seconds between two scale moves.
    pub cooldown_s: f64,
    /// Trailing window the p99 is measured over.
    pub window_s: f64,
    /// Burn-rate windows + threshold (shared with SLO evaluation).
    pub policy: SloPolicy,
}

impl AutoscaleConfig {
    /// A controller holding p99 ≤ `target_p99_s` with pool bounds
    /// `min..=max`.
    pub fn new(min_workers: usize, max_workers: usize, target_p99_s: f64) -> AutoscaleConfig {
        let min = min_workers.max(1);
        AutoscaleConfig {
            min_workers: min,
            max_workers: max_workers.max(min),
            target_p99_s,
            hysteresis: 0.25,
            evaluate_every_s: 30.0,
            cooldown_s: 60.0,
            window_s: 240.0,
            policy: SloPolicy::default(),
        }
    }

    /// Sets the hysteresis band half-width (fraction of target).
    pub fn hysteresis(mut self, fraction: f64) -> AutoscaleConfig {
        self.hysteresis = fraction.max(0.0);
        self
    }

    /// Sets the evaluation cadence.
    pub fn evaluate_every(mut self, seconds: f64) -> AutoscaleConfig {
        self.evaluate_every_s = seconds.max(1e-9);
        self
    }

    /// Sets the between-moves cooldown.
    pub fn cooldown(mut self, seconds: f64) -> AutoscaleConfig {
        self.cooldown_s = seconds.max(0.0);
        self
    }

    /// Sets the p99 measurement window.
    pub fn window(mut self, seconds: f64) -> AutoscaleConfig {
        self.window_s = seconds.max(1e-9);
        self
    }

    /// Sets the burn-rate policy.
    pub fn policy(mut self, policy: SloPolicy) -> AutoscaleConfig {
        self.policy = policy;
        self
    }
}

/// One committed resize, with the signals that justified it. Emitted
/// as a typed obs event and a `{"type":"scale"}` trace line.
#[derive(Debug, Clone, PartialEq)]
pub struct ScaleEvent {
    /// Virtual instant of the move.
    pub at_s: f64,
    /// Active workers before.
    pub from: usize,
    /// Active workers after.
    pub to: usize,
    /// Windowed p99 at decision time.
    pub p99_s: f64,
    /// Fast-window latency burn rate at decision time.
    pub fast_burn: f64,
    /// Slow-window latency burn rate at decision time.
    pub slow_burn: f64,
    /// Admission-queue depth at decision time.
    pub queue_depth: usize,
}

impl ScaleEvent {
    /// `"up"` or `"down"`.
    pub fn direction(&self) -> &'static str {
        if self.to > self.from {
            "up"
        } else {
            "down"
        }
    }

    /// Serializes as a JSON object (trace lines).
    pub fn to_json(&self) -> Json {
        Json::obj()
            .field("type", "scale")
            .field("at_s", self.at_s)
            .field("direction", self.direction())
            .field("from", self.from as u64)
            .field("to", self.to as u64)
            .field("p99_s", self.p99_s)
            .field("fast_burn", self.fast_burn)
            .field("slow_burn", self.slow_burn)
            .field("queue_depth", self.queue_depth as u64)
    }
}

/// The controller state machine. Feed it the live latency window at
/// dispatch instants; it answers with at most one [`ScaleEvent`] per
/// evaluation tick.
#[derive(Debug, Clone)]
pub struct Autoscaler {
    cfg: AutoscaleConfig,
    workers: usize,
    next_eval_s: f64,
    last_move_s: f64,
}

impl Autoscaler {
    /// Starts the controller at `initial` active workers (clamped to
    /// the configured bounds).
    pub fn new(cfg: AutoscaleConfig, initial: usize) -> Autoscaler {
        let workers = initial.clamp(cfg.min_workers, cfg.max_workers);
        Autoscaler {
            cfg,
            workers,
            next_eval_s: 0.0,
            last_move_s: f64::NEG_INFINITY,
        }
    }

    /// The controller's current pool-size decision.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// The configuration.
    pub fn config(&self) -> &AutoscaleConfig {
        &self.cfg
    }

    /// Evaluates the control signals at `now_s`. Returns a move if the
    /// cadence has elapsed, the cooldown permits, and the signals are
    /// outside the hysteresis band; `None` otherwise. Missed ticks
    /// (idle periods longer than the cadence) collapse into one
    /// evaluation — the controller never replays a backlog of stale
    /// decisions.
    pub fn observe(
        &mut self,
        now_s: f64,
        latency: &SlidingWindow,
        queue_depth: usize,
    ) -> Option<ScaleEvent> {
        if now_s < self.next_eval_s {
            return None;
        }
        self.next_eval_s = now_s + self.cfg.evaluate_every_s;

        // No completions in the window means no signal, not "p99 = 0":
        // deciding on an empty window would shrink an idle pool right
        // before the next burst. Hold instead.
        if latency.count_in(now_s, self.cfg.window_s) == 0 {
            return None;
        }

        let p99_s = latency.quantile_in(now_s, self.cfg.window_s, 0.99);
        let burn = |window_s: f64| {
            latency.fraction_over(now_s, window_s, self.cfg.target_p99_s) / P99_BUDGET
        };
        let fast_burn = burn(self.cfg.policy.fast_window_s);
        let slow_burn = burn(self.cfg.policy.slow_window_s);

        if now_s - self.last_move_s < self.cfg.cooldown_s {
            return None;
        }

        let burning = fast_burn > self.cfg.policy.burn_threshold
            && slow_burn > self.cfg.policy.burn_threshold;
        let above = p99_s > self.cfg.target_p99_s * (1.0 + self.cfg.hysteresis);
        let below = p99_s < self.cfg.target_p99_s * (1.0 - self.cfg.hysteresis);

        let to = if burning || above {
            // Escape fast: grow by half the pool (rounded up).
            (self.workers + self.workers.div_ceil(2)).min(self.cfg.max_workers)
        } else if below && fast_burn == 0.0 && queue_depth <= self.workers {
            // Reclaim gently, and only when nothing is queued beyond
            // what the pool absorbs in one wave.
            self.workers.saturating_sub(1).max(self.cfg.min_workers)
        } else {
            self.workers
        };

        if to == self.workers {
            return None;
        }
        let event = ScaleEvent {
            at_s: now_s,
            from: self.workers,
            to,
            p99_s,
            fast_burn,
            slow_burn,
            queue_depth,
        };
        self.workers = to;
        self.last_move_s = now_s;
        Some(event)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config() -> AutoscaleConfig {
        AutoscaleConfig::new(1, 8, 10.0)
            .hysteresis(0.2)
            .evaluate_every(10.0)
            .cooldown(20.0)
            .window(300.0)
            .policy(SloPolicy {
                fast_window_s: 60.0,
                slow_window_s: 300.0,
                burn_threshold: 1.0,
            })
    }

    fn window() -> SlidingWindow {
        SlidingWindow::new(10.0, 60)
    }

    #[test]
    fn breach_scales_up_and_clear_scales_down() {
        let mut scaler = Autoscaler::new(config(), 2);
        let mut w = window();
        // Sustained breach: every query at 3x the target.
        for i in 0..60 {
            w.record(i as f64 * 5.0, 30.0);
        }
        let up = scaler.observe(300.0, &w, 9).expect("should scale up");
        assert_eq!(up.direction(), "up");
        assert_eq!((up.from, up.to), (2, 3));
        assert!(up.fast_burn > 1.0 && up.slow_burn > 1.0);

        // Burn clears: fresh fast samples all comfortably under target.
        for i in 0..120 {
            w.record(700.0 + i as f64 * 2.5, 2.0);
        }
        let down = scaler.observe(1000.0, &w, 0).expect("should scale down");
        assert_eq!(down.direction(), "down");
        assert_eq!((down.from, down.to), (3, 2));
    }

    #[test]
    fn hysteresis_band_holds_steady() {
        let mut scaler = Autoscaler::new(config(), 4);
        let mut w = window();
        // p99 right at the target: inside the band, no move ever.
        for i in 0..200 {
            w.record(i as f64 * 3.0, 10.0);
        }
        for tick in 0..20 {
            assert_eq!(scaler.observe(tick as f64 * 50.0, &w, 2), None);
        }
        assert_eq!(scaler.workers(), 4);
    }

    #[test]
    fn cooldown_spaces_moves() {
        let mut scaler = Autoscaler::new(config(), 2);
        let mut w = window();
        for i in 0..200 {
            w.record(i as f64 * 2.0, 50.0);
        }
        assert!(scaler.observe(100.0, &w, 10).is_some());
        // Next cadence tick lands inside the cooldown: suppressed.
        assert_eq!(scaler.observe(110.0, &w, 10), None);
        // After the cooldown the still-burning signal moves again.
        assert!(scaler.observe(125.0, &w, 10).is_some());
        assert_eq!(scaler.workers(), 5, "2 -> 3 -> 5 (half-pool steps)");
    }

    #[test]
    fn bounds_clamp_both_directions() {
        let mut scaler = Autoscaler::new(config(), 8);
        let mut w = window();
        for i in 0..200 {
            w.record(i as f64 * 2.0, 50.0);
        }
        // Already at max: a breach produces no event.
        assert_eq!(scaler.observe(100.0, &w, 10), None);

        let mut scaler = Autoscaler::new(config(), 1);
        let mut w = window();
        for i in 0..200 {
            w.record(i as f64 * 2.0, 0.5);
        }
        // Already at min: a quiet pool produces no event.
        assert_eq!(scaler.observe(100.0, &w, 0), None);
    }

    #[test]
    fn queue_pressure_blocks_scale_down() {
        let mut scaler = Autoscaler::new(config(), 4);
        let mut w = window();
        for i in 0..200 {
            w.record(i as f64 * 2.0, 1.0);
        }
        // Latency looks idyllic but the queue is deeper than the pool:
        // shrinking now would manufacture a breach.
        assert_eq!(scaler.observe(100.0, &w, 12), None);
        assert!(scaler.observe(200.0, &w, 0).is_some());
    }

    #[test]
    fn empty_window_never_moves() {
        let mut scaler = Autoscaler::new(config(), 3);
        let w = window();
        for tick in 0..10 {
            assert_eq!(scaler.observe(tick as f64 * 100.0, &w, 0), None);
        }
    }

    #[test]
    fn scale_event_json_shape() {
        let event = ScaleEvent {
            at_s: 120.0,
            from: 2,
            to: 3,
            p99_s: 42.5,
            fast_burn: 3.0,
            slow_burn: 1.5,
            queue_depth: 7,
        };
        let line = event.to_json().render();
        assert!(line.starts_with(r#"{"type":"scale","at_s":120"#));
        assert!(line.contains(r#""direction":"up""#));
        assert!(line.contains(r#""queue_depth":7"#));
    }
}
