//! # net — the wire protocol and the non-blocking front door
//!
//! The paper's runtime is a *service*: queries arrive over the network,
//! not from a replayed vector. This module is the dependency-free front
//! door — a small length-prefixed wire protocol (versioned header,
//! tenant id, priority, Pyrite source or plan hash) and a hand-rolled
//! mio-style readiness loop ([`Listener`]) that turns delivered bytes
//! into [`WireRequest`]s for the admission queue.
//!
//! ## Frame layout (version 1, little-endian)
//!
//! ```text
//! +--------+---------+------+---------+==========+
//! | magic  | version | kind | len     | payload  |
//! | u16    | u8      | u8   | u32     | len bytes|
//! +--------+---------+------+---------+==========+
//! ```
//!
//! `magic` is `0xA1DA`; `len` is capped at [`MAX_FRAME_BYTES`]. Strings
//! are length-prefixed UTF-8 (`u16` for short fields, `u32` for Pyrite
//! source). Every malformed input maps to a typed [`WireError`] — the
//! decoder never panics, whatever bytes arrive (proptested in
//! `tests/net.rs`).
//!
//! ## Transport abstraction
//!
//! The listener is generic over a [`Fabric`]: the deterministic
//! simulated transport (`aida_testkit::NetSim`) for soaks and tests,
//! or [`TcpFabric`] — non-blocking `std::net` — for real sockets. All
//! scheduling lives in the fabric, so the reactor itself has no clock
//! and no randomness: byte-identical replay is the fabric's seed's job.

use crate::request::Priority;
use aida_llm::noise::splitmix64;
use aida_testkit::NetSim;
use std::collections::BTreeMap;
use std::fmt;
use std::io;

/// First two bytes of every frame.
pub const WIRE_MAGIC: u16 = 0xA1DA;
/// The protocol version this build speaks.
pub const WIRE_VERSION: u8 = 1;
/// Largest accepted payload (1 MiB) — anything bigger is a typed
/// [`WireError::Oversize`], not an allocation.
pub const MAX_FRAME_BYTES: u32 = 1 << 20;

const HEADER_BYTES: usize = 8;

/// Everything that can go wrong between bytes and frames. Each variant
/// has a stable [`kind`](WireError::kind) label used as the counter key
/// in [`NetStats`] and in client-visible `Error` frames.
#[derive(Debug, Clone, PartialEq)]
pub enum WireError {
    /// The first two bytes were not [`WIRE_MAGIC`].
    BadMagic {
        /// What arrived instead.
        got: u16,
    },
    /// A version this build does not speak.
    UnsupportedVersion {
        /// The version byte received.
        got: u8,
    },
    /// A frame kind outside the protocol.
    UnknownKind {
        /// The kind byte received.
        got: u8,
    },
    /// Declared payload length above [`MAX_FRAME_BYTES`].
    Oversize {
        /// Declared length.
        len: u32,
        /// The cap.
        max: u32,
    },
    /// The payload ended in the middle of a field.
    Truncated {
        /// Frame being decoded.
        frame: &'static str,
        /// Field that ran dry.
        field: &'static str,
    },
    /// Bytes left over after the last field of a payload.
    TrailingBytes {
        /// Frame being decoded.
        frame: &'static str,
        /// How many bytes too many.
        extra: usize,
    },
    /// A string field was not UTF-8.
    BadUtf8 {
        /// Frame being decoded.
        frame: &'static str,
        /// The offending field.
        field: &'static str,
    },
    /// A field decoded but held an illegal value (bad priority code,
    /// non-finite float, unknown body tag...).
    BadValue {
        /// Frame being decoded.
        frame: &'static str,
        /// The offending field.
        field: &'static str,
    },
    /// The connection ended mid-frame (clean FIN or abort with a
    /// partial header/payload buffered).
    TornFrame {
        /// Bytes of the unfinished frame that did arrive.
        have: usize,
        /// Bytes the frame needed.
        need: usize,
    },
    /// A `Request` referenced a plan hash the server has never seen.
    UnknownPlanHash {
        /// The unresolved hash.
        hash: u128,
    },
    /// A frame kind that is legal on the wire but illegal in this
    /// direction (e.g. a client sending `Completed`).
    UnexpectedFrame {
        /// The frame's kind label.
        kind: &'static str,
    },
}

impl WireError {
    /// Stable lowercase label (counter keys, `Error` frame codes).
    pub fn kind(&self) -> &'static str {
        match self {
            WireError::BadMagic { .. } => "bad_magic",
            WireError::UnsupportedVersion { .. } => "unsupported_version",
            WireError::UnknownKind { .. } => "unknown_kind",
            WireError::Oversize { .. } => "oversize",
            WireError::Truncated { .. } => "truncated",
            WireError::TrailingBytes { .. } => "trailing_bytes",
            WireError::BadUtf8 { .. } => "bad_utf8",
            WireError::BadValue { .. } => "bad_value",
            WireError::TornFrame { .. } => "torn_frame",
            WireError::UnknownPlanHash { .. } => "unknown_plan_hash",
            WireError::UnexpectedFrame { .. } => "unexpected_frame",
        }
    }
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::BadMagic { got } => write!(f, "bad magic 0x{got:04X}"),
            WireError::UnsupportedVersion { got } => write!(f, "unsupported version {got}"),
            WireError::UnknownKind { got } => write!(f, "unknown frame kind {got}"),
            WireError::Oversize { len, max } => write!(f, "frame of {len} bytes exceeds {max}"),
            WireError::Truncated { frame, field } => {
                write!(f, "{frame} payload truncated at {field}")
            }
            WireError::TrailingBytes { frame, extra } => {
                write!(f, "{frame} payload has {extra} trailing bytes")
            }
            WireError::BadUtf8 { frame, field } => write!(f, "{frame}.{field} is not utf-8"),
            WireError::BadValue { frame, field } => {
                write!(f, "{frame}.{field} holds an illegal value")
            }
            WireError::TornFrame { have, need } => {
                write!(f, "connection ended mid-frame ({have} of {need} bytes)")
            }
            WireError::UnknownPlanHash { hash } => write!(f, "unknown plan hash {hash:032x}"),
            WireError::UnexpectedFrame { kind } => write!(f, "unexpected {kind} frame"),
        }
    }
}

/// The body of a `Request`: full Pyrite source, or a 128-bit content
/// hash of source this listener has already interned (a returning
/// client skips re-sending the program).
#[derive(Debug, Clone, PartialEq)]
pub enum WireBody {
    /// Full program text.
    Source(String),
    /// [`plan_hash`] of previously-sent source.
    PlanHash(u128),
}

/// A decoded query submission.
#[derive(Debug, Clone, PartialEq)]
pub struct WireRequest {
    /// Client-side sequence number, echoed in every response so the
    /// client can correlate.
    pub client_seq: u64,
    /// Client's virtual send instant (for ingest-latency attribution).
    pub sent_s: f64,
    /// Requesting tenant.
    pub tenant: String,
    /// Target Context name.
    pub context: String,
    /// Scheduling priority.
    pub priority: Priority,
    /// Optional queueing deadline (seconds).
    pub deadline_s: Option<f64>,
    /// Program text or plan hash.
    pub body: WireBody,
}

/// Every frame the protocol speaks. Clients send `Request`; the server
/// sends the rest.
#[derive(Debug, Clone, PartialEq)]
pub enum Frame {
    /// A query submission (client -> server).
    Request(WireRequest),
    /// The request was admitted to the queue.
    Accepted {
        /// Echo of the client's sequence number.
        client_seq: u64,
        /// Server-assigned global sequence number.
        seq: u64,
    },
    /// The request was shed.
    Rejected {
        /// Echo of the client's sequence number.
        client_seq: u64,
        /// Whether retrying later can help (queue pressure) or not
        /// (budget, unknown names).
        retryable: bool,
        /// [`crate::RejectReason::kind`] label.
        reason: String,
        /// Human-readable detail.
        detail: String,
    },
    /// The query finished.
    Completed {
        /// Echo of the client's sequence number.
        client_seq: u64,
        /// Server-assigned global sequence number.
        seq: u64,
        /// End-to-end latency in virtual seconds.
        latency_s: f64,
        /// Attributed spend.
        cost_usd: f64,
        /// Whether a non-null answer was produced.
        answered: bool,
    },
    /// A protocol-level error notice (usually followed by a close).
    Error {
        /// [`WireError::kind`] label.
        code: String,
        /// Human-readable detail.
        detail: String,
    },
}

impl Frame {
    fn kind_code(&self) -> u8 {
        match self {
            Frame::Request(_) => 1,
            Frame::Accepted { .. } => 2,
            Frame::Rejected { .. } => 3,
            Frame::Completed { .. } => 4,
            Frame::Error { .. } => 5,
        }
    }

    /// Stable lowercase label.
    pub fn kind(&self) -> &'static str {
        match self {
            Frame::Request(_) => "request",
            Frame::Accepted { .. } => "accepted",
            Frame::Rejected { .. } => "rejected",
            Frame::Completed { .. } => "completed",
            Frame::Error { .. } => "error",
        }
    }
}

/// Content hash a client may send in place of Pyrite source it has
/// already transmitted: two independently-offset FNV-1a streams, each
/// finalized through splitmix64, concatenated to 128 bits.
pub fn plan_hash(source: &str) -> u128 {
    let mut lo: u64 = 0xcbf2_9ce4_8422_2325;
    let mut hi: u64 = 0x8422_2325_cbf2_9ce4;
    for byte in source.as_bytes() {
        lo = (lo ^ u64::from(*byte)).wrapping_mul(0x0000_0100_0000_01B3);
        hi = (hi ^ u64::from(*byte)).wrapping_mul(0x0000_0100_0000_01B3);
    }
    (u128::from(splitmix64(hi)) << 64) | u128::from(splitmix64(lo))
}

// ----- encoding -------------------------------------------------------

fn push_str16(out: &mut Vec<u8>, text: &str) {
    let bytes = &text.as_bytes()[..text.len().min(u16::MAX as usize)];
    // Stay on a char boundary if the cap truncated mid-codepoint.
    let mut end = bytes.len();
    while end > 0 && !text.is_char_boundary(end) {
        end -= 1;
    }
    out.extend_from_slice(&(end as u16).to_le_bytes());
    out.extend_from_slice(&bytes[..end]);
}

fn push_str32(out: &mut Vec<u8>, text: &str) {
    out.extend_from_slice(&(text.len() as u32).to_le_bytes());
    out.extend_from_slice(text.as_bytes());
}

/// Encodes a frame to wire bytes (header + payload).
pub fn encode_frame(frame: &Frame) -> Vec<u8> {
    let mut payload = Vec::new();
    match frame {
        Frame::Request(req) => {
            payload.extend_from_slice(&req.client_seq.to_le_bytes());
            payload.extend_from_slice(&req.sent_s.to_le_bytes());
            push_str16(&mut payload, &req.tenant);
            push_str16(&mut payload, &req.context);
            payload.push(req.priority.code());
            match req.deadline_s {
                Some(deadline) => {
                    payload.push(1);
                    payload.extend_from_slice(&deadline.to_le_bytes());
                }
                None => payload.push(0),
            }
            match &req.body {
                WireBody::Source(source) => {
                    payload.push(0);
                    push_str32(&mut payload, source);
                }
                WireBody::PlanHash(hash) => {
                    payload.push(1);
                    payload.extend_from_slice(&hash.to_le_bytes());
                }
            }
        }
        Frame::Accepted { client_seq, seq } => {
            payload.extend_from_slice(&client_seq.to_le_bytes());
            payload.extend_from_slice(&seq.to_le_bytes());
        }
        Frame::Rejected {
            client_seq,
            retryable,
            reason,
            detail,
        } => {
            payload.extend_from_slice(&client_seq.to_le_bytes());
            payload.push(u8::from(*retryable));
            push_str16(&mut payload, reason);
            push_str16(&mut payload, detail);
        }
        Frame::Completed {
            client_seq,
            seq,
            latency_s,
            cost_usd,
            answered,
        } => {
            payload.extend_from_slice(&client_seq.to_le_bytes());
            payload.extend_from_slice(&seq.to_le_bytes());
            payload.extend_from_slice(&latency_s.to_le_bytes());
            payload.extend_from_slice(&cost_usd.to_le_bytes());
            payload.push(u8::from(*answered));
        }
        Frame::Error { code, detail } => {
            push_str16(&mut payload, code);
            push_str16(&mut payload, detail);
        }
    }
    debug_assert!(payload.len() <= MAX_FRAME_BYTES as usize);
    let mut out = Vec::with_capacity(HEADER_BYTES + payload.len());
    out.extend_from_slice(&WIRE_MAGIC.to_le_bytes());
    out.push(WIRE_VERSION);
    out.push(frame.kind_code());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&payload);
    out
}

// ----- decoding -------------------------------------------------------

/// A bounds-checked payload reader: every read either succeeds or
/// yields a typed error — no panics, no silent wrap.
struct PayloadReader<'a> {
    bytes: &'a [u8],
    pos: usize,
    frame: &'static str,
}

impl<'a> PayloadReader<'a> {
    fn take(&mut self, n: usize, field: &'static str) -> Result<&'a [u8], WireError> {
        if self.bytes.len() - self.pos < n {
            return Err(WireError::Truncated {
                frame: self.frame,
                field,
            });
        }
        let slice = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    fn u8(&mut self, field: &'static str) -> Result<u8, WireError> {
        Ok(self.take(1, field)?[0])
    }

    fn u64(&mut self, field: &'static str) -> Result<u64, WireError> {
        Ok(u64::from_le_bytes(
            self.take(8, field)?.try_into().expect("8 bytes"),
        ))
    }

    fn u128(&mut self, field: &'static str) -> Result<u128, WireError> {
        Ok(u128::from_le_bytes(
            self.take(16, field)?.try_into().expect("16 bytes"),
        ))
    }

    fn f64_finite(&mut self, field: &'static str) -> Result<f64, WireError> {
        let value = f64::from_le_bytes(self.take(8, field)?.try_into().expect("8 bytes"));
        if !value.is_finite() {
            return Err(WireError::BadValue {
                frame: self.frame,
                field,
            });
        }
        Ok(value)
    }

    fn str16(&mut self, field: &'static str) -> Result<String, WireError> {
        let len = u16::from_le_bytes(self.take(2, field)?.try_into().expect("2 bytes")) as usize;
        self.str_body(len, field)
    }

    fn str32(&mut self, field: &'static str) -> Result<String, WireError> {
        let len = u32::from_le_bytes(self.take(4, field)?.try_into().expect("4 bytes")) as usize;
        self.str_body(len, field)
    }

    fn str_body(&mut self, len: usize, field: &'static str) -> Result<String, WireError> {
        let bytes = self.take(len, field)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| WireError::BadUtf8 {
            frame: self.frame,
            field,
        })
    }

    fn finish(self) -> Result<(), WireError> {
        if self.pos != self.bytes.len() {
            return Err(WireError::TrailingBytes {
                frame: self.frame,
                extra: self.bytes.len() - self.pos,
            });
        }
        Ok(())
    }
}

fn decode_payload(kind: u8, payload: &[u8]) -> Result<Frame, WireError> {
    let frame_name = match kind {
        1 => "request",
        2 => "accepted",
        3 => "rejected",
        4 => "completed",
        5 => "error",
        got => return Err(WireError::UnknownKind { got }),
    };
    let mut r = PayloadReader {
        bytes: payload,
        pos: 0,
        frame: frame_name,
    };
    let frame = match kind {
        1 => {
            let client_seq = r.u64("client_seq")?;
            let sent_s = r.f64_finite("sent_s")?;
            let tenant = r.str16("tenant")?;
            let context = r.str16("context")?;
            let priority = Priority::from_code(r.u8("priority")?).ok_or(WireError::BadValue {
                frame: frame_name,
                field: "priority",
            })?;
            let deadline_s = match r.u8("deadline_flag")? {
                0 => None,
                1 => Some(r.f64_finite("deadline_s")?),
                _ => {
                    return Err(WireError::BadValue {
                        frame: frame_name,
                        field: "deadline_flag",
                    })
                }
            };
            let body = match r.u8("body_tag")? {
                0 => WireBody::Source(r.str32("source")?),
                1 => WireBody::PlanHash(r.u128("plan_hash")?),
                _ => {
                    return Err(WireError::BadValue {
                        frame: frame_name,
                        field: "body_tag",
                    })
                }
            };
            Frame::Request(WireRequest {
                client_seq,
                sent_s,
                tenant,
                context,
                priority,
                deadline_s,
                body,
            })
        }
        2 => Frame::Accepted {
            client_seq: r.u64("client_seq")?,
            seq: r.u64("seq")?,
        },
        3 => Frame::Rejected {
            client_seq: r.u64("client_seq")?,
            retryable: match r.u8("retryable")? {
                0 => false,
                1 => true,
                _ => {
                    return Err(WireError::BadValue {
                        frame: frame_name,
                        field: "retryable",
                    })
                }
            },
            reason: r.str16("reason")?,
            detail: r.str16("detail")?,
        },
        4 => Frame::Completed {
            client_seq: r.u64("client_seq")?,
            seq: r.u64("seq")?,
            latency_s: r.f64_finite("latency_s")?,
            cost_usd: r.f64_finite("cost_usd")?,
            answered: match r.u8("answered")? {
                0 => false,
                1 => true,
                _ => {
                    return Err(WireError::BadValue {
                        frame: frame_name,
                        field: "answered",
                    })
                }
            },
        },
        _ => Frame::Error {
            code: r.str16("code")?,
            detail: r.str16("detail")?,
        },
    };
    r.finish()?;
    Ok(frame)
}

/// Incremental frame decoder over an arbitrary byte stream. Feed it
/// whatever the transport delivers — single bytes, torn chunks, two
/// frames glued together — and it yields complete frames or typed
/// errors, never panicking and never over-reading.
#[derive(Debug, Default)]
pub struct FrameReader {
    buf: Vec<u8>,
    pos: usize,
}

impl FrameReader {
    /// Creates an empty reader.
    pub fn new() -> FrameReader {
        FrameReader::default()
    }

    /// Appends delivered bytes.
    pub fn push(&mut self, bytes: &[u8]) {
        // Reclaim consumed prefix before it grows unbounded.
        if self.pos > 4096 && self.pos * 2 > self.buf.len() {
            self.buf.drain(..self.pos);
            self.pos = 0;
        }
        self.buf.extend_from_slice(bytes);
    }

    fn pending(&self) -> &[u8] {
        &self.buf[self.pos..]
    }

    /// Decodes the next complete frame, if the buffer holds one.
    /// `Ok(None)` means "need more bytes". After an `Err` the stream is
    /// unframed — the caller must close the connection (there is no
    /// resynchronization point in a length-prefixed protocol).
    pub fn next_frame(&mut self) -> Result<Option<Frame>, WireError> {
        let pending = self.pending();
        if pending.len() < HEADER_BYTES {
            return Ok(None);
        }
        let magic = u16::from_le_bytes([pending[0], pending[1]]);
        if magic != WIRE_MAGIC {
            return Err(WireError::BadMagic { got: magic });
        }
        if pending[2] != WIRE_VERSION {
            return Err(WireError::UnsupportedVersion { got: pending[2] });
        }
        let kind = pending[3];
        let len = u32::from_le_bytes([pending[4], pending[5], pending[6], pending[7]]);
        if len > MAX_FRAME_BYTES {
            return Err(WireError::Oversize {
                len,
                max: MAX_FRAME_BYTES,
            });
        }
        let total = HEADER_BYTES + len as usize;
        if pending.len() < total {
            return Ok(None);
        }
        let frame = decode_payload(kind, &pending[HEADER_BYTES..total])?;
        self.pos += total;
        Ok(Some(frame))
    }

    /// Called at end-of-stream: leftover bytes mean the peer quit
    /// mid-frame.
    pub fn torn(&self) -> Option<WireError> {
        let pending = self.pending();
        if pending.is_empty() {
            return None;
        }
        let need = if pending.len() >= HEADER_BYTES {
            HEADER_BYTES
                + u32::from_le_bytes([pending[4], pending[5], pending[6], pending[7]]) as usize
        } else {
            HEADER_BYTES
        };
        Some(WireError::TornFrame {
            have: pending.len(),
            need,
        })
    }
}

// ----- transport ------------------------------------------------------

/// The transport the listener reacts over: accept, readiness, and
/// non-blocking byte I/O, addressed by opaque connection tokens. Time
/// and event ordering are the fabric's concern — the reactor holds no
/// clock and draws no randomness, which is what keeps a simulated soak
/// byte-identical at a fixed seed.
pub trait Fabric {
    /// Newly-arrived connections (each token reported exactly once).
    fn accept(&mut self) -> Vec<usize>;
    /// Connections with delivered bytes, a reachable EOF, or an error
    /// condition to report.
    fn poll(&mut self) -> Vec<usize>;
    /// Non-blocking read. `Ok(0)` = clean EOF; `WouldBlock` = nothing
    /// delivered yet.
    fn read(&mut self, token: usize, buf: &mut [u8]) -> io::Result<usize>;
    /// Non-blocking write; may accept a prefix (short write).
    fn write(&mut self, token: usize, bytes: &[u8]) -> io::Result<usize>;
    /// Releases the connection.
    fn close(&mut self, token: usize);
}

impl Fabric for NetSim {
    fn accept(&mut self) -> Vec<usize> {
        NetSim::accept(self)
    }

    fn poll(&mut self) -> Vec<usize> {
        NetSim::poll(self)
    }

    fn read(&mut self, token: usize, buf: &mut [u8]) -> io::Result<usize> {
        NetSim::read(self, token, buf)
    }

    fn write(&mut self, token: usize, bytes: &[u8]) -> io::Result<usize> {
        NetSim::write(self, token, bytes)
    }

    fn close(&mut self, token: usize) {
        NetSim::close(self, token)
    }
}

/// Real sockets: a non-blocking `std::net::TcpListener` plus its
/// accepted streams. `poll` is a level-triggered scan — every open
/// token is offered to the reactor, whose reads simply `WouldBlock`
/// when nothing is buffered. Deterministic replay is *not* promised
/// here; that is what [`NetSim`] is for.
#[derive(Debug)]
pub struct TcpFabric {
    listener: std::net::TcpListener,
    conns: BTreeMap<usize, std::net::TcpStream>,
    next_token: usize,
}

impl TcpFabric {
    /// Binds a non-blocking listener (use port 0 for an ephemeral port).
    pub fn bind(addr: &str) -> io::Result<TcpFabric> {
        let listener = std::net::TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        Ok(TcpFabric {
            listener,
            conns: BTreeMap::new(),
            next_token: 0,
        })
    }

    /// The bound address.
    pub fn local_addr(&self) -> io::Result<std::net::SocketAddr> {
        self.listener.local_addr()
    }
}

impl Fabric for TcpFabric {
    fn accept(&mut self) -> Vec<usize> {
        let mut fresh = Vec::new();
        while let Ok((stream, _)) = self.listener.accept() {
            if stream.set_nonblocking(true).is_err() {
                continue;
            }
            let token = self.next_token;
            self.next_token += 1;
            self.conns.insert(token, stream);
            fresh.push(token);
        }
        fresh
    }

    fn poll(&mut self) -> Vec<usize> {
        self.conns.keys().copied().collect()
    }

    fn read(&mut self, token: usize, buf: &mut [u8]) -> io::Result<usize> {
        use io::Read;
        match self.conns.get_mut(&token) {
            Some(stream) => stream.read(buf),
            None => Err(io::Error::from(io::ErrorKind::NotConnected)),
        }
    }

    fn write(&mut self, token: usize, bytes: &[u8]) -> io::Result<usize> {
        use io::Write;
        match self.conns.get_mut(&token) {
            Some(stream) => stream.write(bytes),
            None => Err(io::Error::from(io::ErrorKind::NotConnected)),
        }
    }

    fn close(&mut self, token: usize) {
        self.conns.remove(&token);
    }
}

// ----- the reactor ----------------------------------------------------

/// Front-door traffic counters, reported through `ServiceReport` and
/// mirrored into `obs::registry` metrics by the service.
#[derive(Debug, Default, Clone, PartialEq)]
pub struct NetStats {
    /// Connections accepted.
    pub conns_opened: u64,
    /// Connections fully closed by the server.
    pub conns_closed: u64,
    /// Most connections open at once (accepted, not yet closed).
    pub conns_peak: u64,
    /// Complete request frames decoded.
    pub frames_in: u64,
    /// Response frames queued for send.
    pub frames_out: u64,
    /// Payload + header bytes read off the fabric.
    pub bytes_in: u64,
    /// Bytes accepted by fabric writes.
    pub bytes_out: u64,
    /// `Request` bodies resolved from an interned plan hash.
    pub plan_hash_hits: u64,
    /// Typed wire errors by [`WireError::kind`] label.
    pub wire_errors: BTreeMap<String, u64>,
}

impl NetStats {
    /// Sum across every error kind.
    pub fn wire_error_total(&self) -> u64 {
        self.wire_errors.values().sum()
    }

    fn record_error(&mut self, kind: &str) {
        *self.wire_errors.entry(kind.to_string()).or_insert(0) += 1;
    }
}

/// A fully-decoded inbound submission: the wire request plus its
/// resolved Pyrite source (plan hashes already interned away).
#[derive(Debug, Clone)]
pub struct Inbound {
    /// Token of the connection it arrived on.
    pub conn: usize,
    /// The decoded request.
    pub request: WireRequest,
    /// Resolved program text.
    pub instruction: String,
}

#[derive(Debug, Default)]
struct ConnState {
    reader: FrameReader,
    out: Vec<u8>,
    /// Close once the out-buffer drains (set after a wire error or
    /// peer EOF).
    closing: bool,
}

/// The readiness loop: accepts fabric connections, feeds delivered
/// bytes through per-connection [`FrameReader`]s, interns plan-hash
/// bodies, and flushes buffered responses as the fabric permits. One
/// [`turn`](Listener::turn) is one reactor iteration; the caller (the
/// live driver or a host event loop) decides when turns happen.
#[derive(Debug)]
pub struct Listener<F: Fabric> {
    fabric: F,
    conns: BTreeMap<usize, ConnState>,
    plans: BTreeMap<u128, String>,
    stats: NetStats,
}

impl<F: Fabric> Listener<F> {
    /// Wraps a fabric.
    pub fn new(fabric: F) -> Listener<F> {
        Listener {
            fabric,
            conns: BTreeMap::new(),
            plans: BTreeMap::new(),
            stats: NetStats::default(),
        }
    }

    /// The underlying fabric (the live driver owns the client ends).
    pub fn fabric_mut(&mut self) -> &mut F {
        &mut self.fabric
    }

    /// Traffic counters so far.
    pub fn stats(&self) -> &NetStats {
        &self.stats
    }

    /// Open (accepted, not yet closed) connections.
    pub fn open_conns(&self) -> usize {
        self.conns.len()
    }

    /// One reactor iteration: accept, flush, read, decode. Returns the
    /// requests decoded this turn, in fabric readiness order.
    pub fn turn(&mut self) -> Vec<Inbound> {
        for token in self.fabric.accept() {
            self.conns.insert(token, ConnState::default());
            self.stats.conns_opened += 1;
            self.stats.conns_peak = self.stats.conns_peak.max(self.conns.len() as u64);
        }

        // Writable pass: drain buffered responses, retire closing conns.
        let flushable: Vec<usize> = self.conns.keys().copied().collect();
        for token in flushable {
            self.flush(token);
        }

        let mut inbound = Vec::new();
        for token in self.fabric.poll() {
            if !self.conns.contains_key(&token) {
                continue;
            }
            let mut eof = false;
            let mut buf = [0u8; 1024];
            loop {
                match self.fabric.read(token, &mut buf) {
                    Ok(0) => {
                        eof = true;
                        break;
                    }
                    Ok(n) => {
                        self.stats.bytes_in += n as u64;
                        let state = self.conns.get_mut(&token).expect("conn checked");
                        state.reader.push(&buf[..n]);
                    }
                    Err(err) if err.kind() == io::ErrorKind::WouldBlock => break,
                    Err(_) => {
                        eof = true;
                        break;
                    }
                }
            }
            self.drain_frames(token, &mut inbound);
            if eof {
                if let Some(state) = self.conns.get(&token) {
                    if let Some(torn) = state.reader.torn() {
                        self.stats.record_error(torn.kind());
                    }
                }
                self.retire(token);
            }
        }
        inbound
    }

    fn drain_frames(&mut self, token: usize, inbound: &mut Vec<Inbound>) {
        loop {
            let Some(state) = self.conns.get_mut(&token) else {
                return;
            };
            if state.closing {
                return;
            }
            match state.reader.next_frame() {
                Ok(None) => return,
                Ok(Some(Frame::Request(request))) => {
                    self.stats.frames_in += 1;
                    match &request.body {
                        WireBody::Source(source) => {
                            let instruction = source.clone();
                            self.plans.insert(plan_hash(source), instruction.clone());
                            inbound.push(Inbound {
                                conn: token,
                                request,
                                instruction,
                            });
                        }
                        WireBody::PlanHash(hash) => match self.plans.get(hash) {
                            Some(instruction) => {
                                self.stats.plan_hash_hits += 1;
                                let instruction = instruction.clone();
                                inbound.push(Inbound {
                                    conn: token,
                                    request,
                                    instruction,
                                });
                            }
                            None => {
                                // Well-framed but unresolvable: tell the
                                // client to resend with full source; the
                                // connection stays up.
                                let err = WireError::UnknownPlanHash { hash: *hash };
                                self.stats.record_error(err.kind());
                                self.respond(
                                    token,
                                    &Frame::Error {
                                        code: err.kind().to_string(),
                                        detail: err.to_string(),
                                    },
                                );
                            }
                        },
                    }
                }
                Ok(Some(other)) => {
                    let err = WireError::UnexpectedFrame { kind: other.kind() };
                    self.fail_conn(token, err);
                    return;
                }
                Err(err) => {
                    self.fail_conn(token, err);
                    return;
                }
            }
        }
    }

    /// Records a fatal wire error, notifies the peer, and marks the
    /// connection for close-after-flush.
    fn fail_conn(&mut self, token: usize, err: WireError) {
        self.stats.record_error(err.kind());
        self.respond(
            token,
            &Frame::Error {
                code: err.kind().to_string(),
                detail: err.to_string(),
            },
        );
        if let Some(state) = self.conns.get_mut(&token) {
            state.closing = true;
        }
        self.flush(token);
    }

    /// Queues a response frame toward `token` and flushes what the
    /// fabric will take now; the rest drains on later turns.
    pub fn respond(&mut self, token: usize, frame: &Frame) {
        let Some(state) = self.conns.get_mut(&token) else {
            return;
        };
        state.out.extend_from_slice(&encode_frame(frame));
        self.stats.frames_out += 1;
        self.flush(token);
    }

    fn flush(&mut self, token: usize) {
        let Some(state) = self.conns.get_mut(&token) else {
            return;
        };
        while !state.out.is_empty() {
            match self.fabric.write(token, &state.out) {
                Ok(0) => break,
                Ok(n) => {
                    self.stats.bytes_out += n as u64;
                    state.out.drain(..n);
                }
                Err(err) if err.kind() == io::ErrorKind::WouldBlock => break,
                Err(_) => {
                    // Peer is gone; the response dies with it.
                    state.out.clear();
                    state.closing = true;
                    break;
                }
            }
        }
        if state.closing && state.out.is_empty() {
            self.retire(token);
        }
    }

    fn retire(&mut self, token: usize) {
        if self.conns.remove(&token).is_some() {
            self.fabric.close(token);
            self.stats.conns_closed += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_request() -> Frame {
        Frame::Request(WireRequest {
            client_seq: 7,
            sent_s: 1.25,
            tenant: "acme".into(),
            context: "reports".into(),
            priority: Priority::High,
            deadline_s: Some(60.0),
            body: WireBody::Source("count thefts".into()),
        })
    }

    fn decode_one(bytes: &[u8]) -> Result<Option<Frame>, WireError> {
        let mut reader = FrameReader::new();
        reader.push(bytes);
        reader.next_frame()
    }

    #[test]
    fn frames_round_trip() {
        let frames = [
            sample_request(),
            Frame::Request(WireRequest {
                client_seq: 0,
                sent_s: 0.0,
                tenant: "".into(),
                context: "c".into(),
                priority: Priority::Low,
                deadline_s: None,
                body: WireBody::PlanHash(0xDEAD_BEEF_0102_0304_0506_0708_090A_0B0C),
            }),
            Frame::Accepted {
                client_seq: 9,
                seq: 1000,
            },
            Frame::Rejected {
                client_seq: 3,
                retryable: true,
                reason: "queue_full".into(),
                detail: "queue full (8/8)".into(),
            },
            Frame::Completed {
                client_seq: 4,
                seq: 77,
                latency_s: 12.5,
                cost_usd: 0.0625,
                answered: true,
            },
            Frame::Error {
                code: "bad_magic".into(),
                detail: "bad magic 0x0000".into(),
            },
        ];
        for frame in &frames {
            let bytes = encode_frame(frame);
            let back = decode_one(&bytes).unwrap().unwrap();
            assert_eq!(&back, frame);
        }
    }

    #[test]
    fn reader_handles_byte_at_a_time_and_glued_frames() {
        let a = encode_frame(&sample_request());
        let b = encode_frame(&Frame::Accepted {
            client_seq: 1,
            seq: 2,
        });
        // Byte at a time.
        let mut reader = FrameReader::new();
        let mut seen = 0;
        for byte in a.iter().chain(b.iter()) {
            reader.push(&[*byte]);
            while let Some(_frame) = reader.next_frame().unwrap() {
                seen += 1;
            }
        }
        assert_eq!(seen, 2);
        // Glued in one push.
        let mut reader = FrameReader::new();
        let glued: Vec<u8> = a.iter().chain(b.iter()).copied().collect();
        reader.push(&glued);
        assert!(matches!(
            reader.next_frame().unwrap(),
            Some(Frame::Request(_))
        ));
        assert!(matches!(
            reader.next_frame().unwrap(),
            Some(Frame::Accepted { .. })
        ));
        assert!(reader.next_frame().unwrap().is_none());
        assert!(reader.torn().is_none());
    }

    #[test]
    fn error_taxonomy_is_typed() {
        // Bad magic.
        assert_eq!(
            decode_one(&[0, 0, 0, 0, 0, 0, 0, 0]).unwrap_err(),
            WireError::BadMagic { got: 0 }
        );
        // Bad version.
        let mut bytes = encode_frame(&sample_request());
        bytes[2] = 9;
        assert_eq!(
            decode_one(&bytes).unwrap_err(),
            WireError::UnsupportedVersion { got: 9 }
        );
        // Unknown kind.
        let mut bytes = encode_frame(&sample_request());
        bytes[3] = 42;
        assert_eq!(
            decode_one(&bytes).unwrap_err(),
            WireError::UnknownKind { got: 42 }
        );
        // Oversize.
        let mut bytes = encode_frame(&sample_request());
        bytes[4..8].copy_from_slice(&(MAX_FRAME_BYTES + 1).to_le_bytes());
        assert!(matches!(
            decode_one(&bytes).unwrap_err(),
            WireError::Oversize { .. }
        ));
        // Truncated payload (shrink declared len below what request needs).
        let mut bytes = encode_frame(&sample_request());
        bytes[4..8].copy_from_slice(&4u32.to_le_bytes());
        bytes.truncate(HEADER_BYTES + 4);
        assert!(matches!(
            decode_one(&bytes).unwrap_err(),
            WireError::Truncated { .. }
        ));
        // Trailing bytes (inflate declared len, pad payload).
        let frame = encode_frame(&Frame::Accepted {
            client_seq: 1,
            seq: 2,
        });
        let mut bytes = frame.clone();
        bytes[4..8].copy_from_slice(&20u32.to_le_bytes());
        bytes.extend_from_slice(&[0u8; 4]);
        assert_eq!(
            decode_one(&bytes).unwrap_err(),
            WireError::TrailingBytes {
                frame: "accepted",
                extra: 4
            }
        );
        // Bad priority code.
        let mut bytes = encode_frame(&sample_request());
        // priority sits after header + 8 (client_seq) + 8 (sent_s)
        // + 2+4 (tenant) + 2+7 (context).
        let at = HEADER_BYTES + 8 + 8 + 6 + 9;
        bytes[at] = 99;
        assert_eq!(
            decode_one(&bytes).unwrap_err(),
            WireError::BadValue {
                frame: "request",
                field: "priority"
            }
        );
        // Every kind label is distinct and stable.
        let labels = [
            WireError::BadMagic { got: 0 }.kind(),
            WireError::UnsupportedVersion { got: 0 }.kind(),
            WireError::UnknownKind { got: 0 }.kind(),
            WireError::Oversize { len: 0, max: 0 }.kind(),
            WireError::Truncated {
                frame: "f",
                field: "x",
            }
            .kind(),
            WireError::TrailingBytes {
                frame: "f",
                extra: 0,
            }
            .kind(),
            WireError::BadUtf8 {
                frame: "f",
                field: "x",
            }
            .kind(),
            WireError::BadValue {
                frame: "f",
                field: "x",
            }
            .kind(),
            WireError::TornFrame { have: 0, need: 0 }.kind(),
            WireError::UnknownPlanHash { hash: 0 }.kind(),
            WireError::UnexpectedFrame { kind: "error" }.kind(),
        ];
        let unique: std::collections::BTreeSet<_> = labels.iter().collect();
        assert_eq!(unique.len(), labels.len());
    }

    #[test]
    fn torn_stream_is_reported() {
        let bytes = encode_frame(&sample_request());
        let mut reader = FrameReader::new();
        reader.push(&bytes[..bytes.len() - 3]);
        assert!(reader.next_frame().unwrap().is_none());
        let torn = reader.torn().unwrap();
        assert_eq!(torn.kind(), "torn_frame");
        assert!(matches!(torn, WireError::TornFrame { need, .. } if need == bytes.len()));
    }

    #[test]
    fn plan_hash_distinguishes_sources() {
        assert_eq!(plan_hash("count thefts"), plan_hash("count thefts"));
        assert_ne!(plan_hash("count thefts"), plan_hash("count theft"));
        assert_ne!(plan_hash(""), plan_hash(" "));
        // The two 64-bit halves are independent streams.
        let h = plan_hash("x");
        assert_ne!((h >> 64) as u64, h as u64);
    }

    #[test]
    fn listener_decodes_over_the_simulated_fabric() {
        let mut listener = Listener::new(NetSim::seeded(5));
        let token = listener.fabric_mut().connect(0.0);
        listener.fabric_mut().advance(0.0);
        let frame = encode_frame(&sample_request());
        listener.fabric_mut().client_send(token, &frame);
        let mut got = Vec::new();
        while let Some(t) = listener.fabric_mut().next_event_s() {
            listener.fabric_mut().advance(t);
            got.extend(listener.turn());
        }
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].request.tenant, "acme");
        assert_eq!(got[0].instruction, "count thefts");
        assert_eq!(listener.stats().frames_in, 1);
        assert_eq!(listener.stats().conns_opened, 1);

        // Plan-hash round trip on the same listener.
        let now = listener.fabric_mut().now();
        let token2 = listener.fabric_mut().connect(now);
        let hashed = Frame::Request(WireRequest {
            client_seq: 8,
            sent_s: 2.0,
            tenant: "acme".into(),
            context: "reports".into(),
            priority: Priority::Normal,
            deadline_s: None,
            body: WireBody::PlanHash(plan_hash("count thefts")),
        });
        listener
            .fabric_mut()
            .client_send(token2, &encode_frame(&hashed));
        let mut got = Vec::new();
        while let Some(t) = listener.fabric_mut().next_event_s() {
            listener.fabric_mut().advance(t);
            got.extend(listener.turn());
        }
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].instruction, "count thefts");
        assert_eq!(listener.stats().plan_hash_hits, 1);
    }

    #[test]
    fn listener_counts_mid_frame_disconnects() {
        // Tiny segments so the frame spans several delivery events and
        // the abort lands mid-frame.
        let mut listener = Listener::new(NetSim::new(aida_testkit::NetSimConfig {
            seed: 6,
            max_chunk: 8,
            ..aida_testkit::NetSimConfig::default()
        }));
        let token = listener.fabric_mut().connect(0.0);
        listener.fabric_mut().advance(0.0);
        let frame = encode_frame(&sample_request());
        listener.fabric_mut().client_send(token, &frame);
        // Deliver the first chunk only, then abort.
        let first = listener.fabric_mut().next_event_s().unwrap();
        listener.fabric_mut().advance(first);
        listener.turn();
        listener.fabric_mut().client_abort(token);
        listener.fabric_mut().advance(first + 1.0);
        listener.turn();
        assert_eq!(listener.stats().wire_errors.get("torn_frame"), Some(&1));
        assert_eq!(listener.stats().conns_closed, 1);
        assert_eq!(listener.open_conns(), 0);
    }

    #[test]
    fn listener_replies_typed_error_and_closes_on_garbage() {
        let mut listener = Listener::new(NetSim::seeded(7));
        let token = listener.fabric_mut().connect(0.0);
        listener.fabric_mut().advance(0.0);
        listener
            .fabric_mut()
            .client_send(token, b"GET / HTTP/1.1\r\n\r\n");
        while let Some(t) = listener.fabric_mut().next_event_s() {
            listener.fabric_mut().advance(t);
            listener.turn();
        }
        assert_eq!(listener.stats().wire_errors.get("bad_magic"), Some(&1));
        // The client received a decodable Error frame before the close.
        let bytes = listener.fabric_mut().client_recv(token);
        let mut reader = FrameReader::new();
        reader.push(&bytes);
        match reader.next_frame().unwrap().unwrap() {
            Frame::Error { code, .. } => assert_eq!(code, "bad_magic"),
            other => panic!("expected error frame, got {other:?}"),
        }
        assert_eq!(listener.open_conns(), 0);
    }

    #[test]
    fn tcp_fabric_serves_a_real_socket() {
        use std::io::{Read, Write};
        let fabric = match TcpFabric::bind("127.0.0.1:0") {
            Ok(fabric) => fabric,
            // Sandboxed environments may forbid binding; the simulated
            // fabric is the contract, TCP is best-effort glue.
            Err(_) => return,
        };
        let addr = fabric.local_addr().unwrap();
        let mut listener = Listener::new(fabric);
        let mut client = std::net::TcpStream::connect(addr).unwrap();
        client.write_all(&encode_frame(&sample_request())).unwrap();
        client.flush().unwrap();
        let mut got = Vec::new();
        for _ in 0..200 {
            got.extend(listener.turn());
            if !got.is_empty() {
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        assert_eq!(got.len(), 1, "request did not arrive over TCP");
        listener.respond(
            got[0].conn,
            &Frame::Accepted {
                client_seq: 7,
                seq: 1,
            },
        );
        client
            .set_read_timeout(Some(std::time::Duration::from_secs(5)))
            .unwrap();
        let mut reader = FrameReader::new();
        let mut buf = [0u8; 256];
        loop {
            listener.turn(); // keep flushing
            match client.read(&mut buf) {
                Ok(0) => panic!("server closed early"),
                Ok(n) => {
                    reader.push(&buf[..n]);
                    if let Some(frame) = reader.next_frame().unwrap() {
                        assert_eq!(
                            frame,
                            Frame::Accepted {
                                client_seq: 7,
                                seq: 1
                            }
                        );
                        break;
                    }
                }
                Err(err) => panic!("client read failed: {err}"),
            }
        }
    }
}
