//! Per-tenant configuration and accounting, plus the append-only
//! tenant-ledger WAL that makes quotas, spend attribution, and
//! cache-credit balances exact across service restarts.

use crate::request::TenantId;
use aida_llm::snapshot::{self, esc, unesc, FailPlan, SnapshotError};
use aida_obs::SloTarget;
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// Per-tenant service configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct TenantConfig {
    /// Weighted-round-robin share (≥ 1): a weight-3 tenant is dispatched
    /// three times as often as a weight-1 tenant under contention.
    pub weight: u32,
    /// Dollar quota: once the tenant's attributed spend reaches this, new
    /// requests are shed with [`RejectReason::BudgetExhausted`]
    /// (`None` = unlimited).
    ///
    /// [`RejectReason::BudgetExhausted`]: crate::RejectReason::BudgetExhausted
    pub dollar_quota: Option<f64>,
    /// Token quota (`None` = unlimited).
    pub token_quota: Option<u64>,
    /// Declared service-level objectives. Unlike quotas, SLOs never shed
    /// traffic — they are evaluated against the windowed health series at
    /// the end of each [`QueryService::run`] and surface as burn-rate
    /// verdicts in the report.
    ///
    /// [`QueryService::run`]: crate::QueryService::run
    pub slo: SloTarget,
}

impl Default for TenantConfig {
    fn default() -> Self {
        TenantConfig {
            weight: 1,
            dollar_quota: None,
            token_quota: None,
            slo: SloTarget::none(),
        }
    }
}

impl TenantConfig {
    /// A config with the given WRR weight.
    pub fn weighted(weight: u32) -> TenantConfig {
        TenantConfig {
            weight: weight.max(1),
            ..TenantConfig::default()
        }
    }

    /// Sets the dollar quota.
    pub fn dollars(mut self, quota: f64) -> TenantConfig {
        self.dollar_quota = Some(quota);
        self
    }

    /// Sets the token quota.
    pub fn tokens(mut self, quota: u64) -> TenantConfig {
        self.token_quota = Some(quota);
        self
    }

    /// Declares a p99 latency objective in virtual seconds.
    pub fn p99_latency(mut self, seconds: f64) -> TenantConfig {
        self.slo = self.slo.p99_latency(seconds);
        self
    }

    /// Declares a $/query objective.
    pub fn usd_per_query(mut self, dollars: f64) -> TenantConfig {
        self.slo = self.slo.usd_per_query(dollars);
        self
    }
}

/// Spend attributed to one tenant (accumulated from per-query
/// `UsageSnapshot::delta_since` deltas).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Spend {
    /// Dollars.
    pub usd: f64,
    /// Tokens (input + output).
    pub tokens: u64,
    /// Billed LLM calls.
    pub calls: u64,
    /// Semantic-cache hits attributed to this tenant (calls the tenant
    /// issued that were served from the shared cache for free).
    pub cache_hits: u64,
    /// Semantic-cache coalesced waiters attributed to this tenant.
    pub cache_coalesced: u64,
}

impl Spend {
    /// Accumulates one query's delta.
    pub fn add(&mut self, usd: f64, tokens: u64, calls: u64) {
        self.usd += usd;
        self.tokens += tokens;
        self.calls += calls;
    }

    /// Accumulates one query's semantic-cache savings.
    pub fn add_cache(&mut self, hits: u64, coalesced: u64) {
        self.cache_hits += hits;
        self.cache_coalesced += coalesced;
    }
}

/// The service's tenant ledger: configs + attributed spend.
#[derive(Debug, Clone, Default)]
pub struct TenantLedger {
    configs: BTreeMap<TenantId, TenantConfig>,
    spend: BTreeMap<TenantId, Spend>,
}

impl TenantLedger {
    /// Creates an empty ledger.
    pub fn new() -> TenantLedger {
        TenantLedger::default()
    }

    /// Registers (or reconfigures) a tenant.
    pub fn register(&mut self, tenant: TenantId, config: TenantConfig) {
        self.configs.insert(tenant, config);
    }

    /// Whether the tenant is registered.
    pub fn knows(&self, tenant: &TenantId) -> bool {
        self.configs.contains_key(tenant)
    }

    /// The tenant's config (default for unregistered tenants).
    pub fn config(&self, tenant: &TenantId) -> TenantConfig {
        self.configs.get(tenant).cloned().unwrap_or_default()
    }

    /// Registered tenants in id order.
    pub fn tenants(&self) -> impl Iterator<Item = (&TenantId, &TenantConfig)> {
        self.configs.iter()
    }

    /// The tenant's attributed spend so far.
    pub fn spend(&self, tenant: &TenantId) -> Spend {
        self.spend.get(tenant).copied().unwrap_or_default()
    }

    /// Every tenant with attributed spend, in id order.
    pub fn spends(&self) -> impl Iterator<Item = (&TenantId, &Spend)> {
        self.spend.iter()
    }

    /// Applies one durable ledger record. Replaying a WAL through this
    /// reproduces the exact spend state the records were written under.
    pub fn apply(&mut self, record: &LedgerRecord) {
        match record {
            // Admissions carry no spend; they make the WAL a complete
            // audit trail of what entered the service.
            LedgerRecord::Admit { .. } => {}
            LedgerRecord::Spend {
                tenant,
                usd,
                tokens,
                calls,
                cache_hits,
                cache_coalesced,
            } => {
                self.charge(tenant, *usd, *tokens, *calls);
                self.credit_cache(tenant, *cache_hits, *cache_coalesced);
            }
        }
    }

    /// Attributes one query's meter delta to a tenant.
    pub fn charge(&mut self, tenant: &TenantId, usd: f64, tokens: u64, calls: u64) {
        self.spend
            .entry(tenant.clone())
            .or_default()
            .add(usd, tokens, calls);
    }

    /// Attributes one query's semantic-cache savings to a tenant. Cache
    /// hits are free, so they adjust no quota — but the ledger records
    /// who benefited from the shared cache.
    pub fn credit_cache(&mut self, tenant: &TenantId, hits: u64, coalesced: u64) {
        self.spend
            .entry(tenant.clone())
            .or_default()
            .add_cache(hits, coalesced);
    }

    /// Dollar headroom under the tenant's quota: `quota - spend`,
    /// floored at zero. `None` when the tenant has no dollar quota —
    /// unlimited headroom, which the static bound gate treats as
    /// nothing to violate.
    pub fn remaining_usd(&self, tenant: &TenantId) -> Option<f64> {
        let quota = self.config(tenant).dollar_quota?;
        Some((quota - self.spend(tenant).usd).max(0.0))
    }

    /// Checks the tenant's quotas against its attributed spend, returning
    /// the violated quota if any. This is the pre-admission gate: a tenant
    /// at or over quota has every new request shed before it can consume
    /// a queue slot or a worker.
    pub fn over_quota(&self, tenant: &TenantId) -> Option<crate::RejectReason> {
        let config = self.config(tenant);
        let spend = self.spend(tenant);
        if let Some(quota) = config.dollar_quota {
            if spend.usd >= quota {
                return Some(crate::RejectReason::BudgetExhausted {
                    spent_usd: spend.usd,
                    quota_usd: quota,
                });
            }
        }
        if let Some(quota) = config.token_quota {
            if spend.tokens >= quota {
                return Some(crate::RejectReason::TokensExhausted {
                    spent_tokens: spend.tokens,
                    quota_tokens: quota,
                });
            }
        }
        None
    }
}

// ---- tenant-ledger WAL -------------------------------------------------

/// One durable ledger event. A completed query writes a single
/// [`LedgerRecord::Spend`] carrying both the meter delta and the cache
/// credits, so charge and credit land atomically — a crash can lose an
/// entire record, never half of one.
#[derive(Debug, Clone, PartialEq)]
pub enum LedgerRecord {
    /// A request passed admission (audit trail; no spend).
    Admit {
        /// The admitted tenant.
        tenant: TenantId,
    },
    /// One completed query's attributed spend and cache credits.
    Spend {
        /// The charged tenant.
        tenant: TenantId,
        /// Dollars attributed.
        usd: f64,
        /// Tokens attributed.
        tokens: u64,
        /// Billed LLM calls attributed.
        calls: u64,
        /// Semantic-cache hits credited.
        cache_hits: u64,
        /// Semantic-cache coalesced waiters credited.
        cache_coalesced: u64,
    },
}

impl LedgerRecord {
    /// Encodes the record as a tab-separated WAL payload (newline-free;
    /// the WAL layer adds the sequence number and checksum).
    pub fn encode(&self) -> String {
        match self {
            LedgerRecord::Admit { tenant } => {
                let mut out = String::from("admit\t");
                esc(tenant.as_str(), &mut out);
                out
            }
            LedgerRecord::Spend {
                tenant,
                usd,
                tokens,
                calls,
                cache_hits,
                cache_coalesced,
            } => {
                let mut out = String::from("spend\t");
                esc(tenant.as_str(), &mut out);
                out.push_str(&format!(
                    "\t{:016x}\t{tokens}\t{calls}\t{cache_hits}\t{cache_coalesced}",
                    usd.to_bits()
                ));
                out
            }
        }
    }

    /// Decodes a WAL payload. Dollars round-trip via `f64::to_bits`, so
    /// a replayed ledger is bit-identical to the one that wrote it.
    pub fn decode(payload: &str) -> Result<LedgerRecord, SnapshotError> {
        let fail = |msg: &str| SnapshotError::Format(msg.to_string());
        let fields: Vec<&str> = payload.split('\t').collect();
        match fields.first() {
            Some(&"admit") if fields.len() == 2 => Ok(LedgerRecord::Admit {
                tenant: TenantId::new(unesc(fields[1])?),
            }),
            Some(&"spend") if fields.len() == 7 => Ok(LedgerRecord::Spend {
                tenant: TenantId::new(unesc(fields[1])?),
                usd: u64::from_str_radix(fields[2], 16)
                    .map(f64::from_bits)
                    .map_err(|_| fail("bad usd bits"))?,
                tokens: fields[3].parse().map_err(|_| fail("bad tokens"))?,
                calls: fields[4].parse().map_err(|_| fail("bad calls"))?,
                cache_hits: fields[5].parse().map_err(|_| fail("bad cache_hits"))?,
                cache_coalesced: fields[6].parse().map_err(|_| fail("bad cache_coalesced"))?,
            }),
            _ => Err(fail("unknown ledger record")),
        }
    }
}

/// What [`LedgerWal::recover`] reconstructed at startup.
#[derive(Debug, Clone, Copy, Default)]
pub struct WalRecovery {
    /// Whether a compacted ledger snapshot was loaded first.
    pub snapshot_loaded: bool,
    /// WAL records replayed into the ledger.
    pub replayed: u64,
    /// WAL records skipped because the compacted snapshot already covers
    /// them (a crash between snapshot-commit and WAL-truncate leaves
    /// such records behind; skipping keeps replay idempotent).
    pub skipped: u64,
    /// Whether a torn/corrupt suffix was truncated — physically, so
    /// post-recovery appends start on a fresh line rather than merging
    /// into the torn record. Damage inside a sealed segment also drops
    /// every later segment and the active tail.
    pub dropped_tail: bool,
    /// Sealed segment files whose intact records were replayed.
    pub sealed_segments: u64,
    /// The next sequence number new appends will use.
    pub next_seq: u64,
}

/// Lifetime I/O counters for one [`LedgerWal`] (monotone; diff two
/// snapshots for a per-run delta).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WalStats {
    /// Data-file fsyncs issued (appends, batch flushes, compactions;
    /// directory fsyncs excluded).
    pub fsyncs: u64,
    /// Group-commit batches flushed (one fsync each).
    pub group_flushes: u64,
    /// Tail files sealed into immutable segments.
    pub segments_sealed: u64,
}

const LEDGER_MAGIC: &str = "aida-ledger v1";

/// The append-only tenant-ledger WAL. Every admit and every completed
/// query appends one checksummed, sequence-numbered record; on startup
/// [`LedgerWal::recover`] loads the compacted snapshot (the WAL path's
/// `.ledger` sibling), replays every sealed segment in sequence order,
/// then replays the intact active tail, so quotas and spend are exact
/// across restarts.
///
/// # Log structure
///
/// With [`LedgerWal::segment_records`] set, the active tail file is
/// sealed into an immutable sibling named `<wal>.<first_seq:hex16>.seg`
/// once it holds that many records (hex-16 names sort in sequence
/// order). Compaction then folds the durable state into the snapshot and
/// deletes only sealed segment files — the active tail is never
/// rewritten, so compaction cost is independent of concurrent appends
/// (tail records the snapshot already covers replay as `skipped`).
/// Without segmentation the WAL is a single file and compaction
/// truncates it, as before.
#[derive(Debug)]
pub struct LedgerWal {
    path: PathBuf,
    snapshot_path: PathBuf,
    next_seq: u64,
    records_in_wal: usize,
    /// Records physically in the active tail file (covered-by-snapshot
    /// records included) — the seal threshold counts these.
    records_in_tail: usize,
    /// Sequence number of the tail's first record (names the segment the
    /// tail becomes when sealed).
    tail_first_seq: u64,
    compact_threshold: usize,
    segment_max_records: usize,
    stats: WalStats,
    plan: Option<Arc<FailPlan>>,
}

impl LedgerWal {
    /// Opens a WAL at `path` (nothing is read until
    /// [`LedgerWal::recover`]). The compacted snapshot lives beside it
    /// with a `.ledger` suffix.
    pub fn open(path: impl Into<PathBuf>) -> LedgerWal {
        let path = path.into();
        let mut os = path.as_os_str().to_owned();
        os.push(".ledger");
        LedgerWal {
            snapshot_path: PathBuf::from(os),
            path,
            next_seq: 0,
            records_in_wal: 0,
            records_in_tail: 0,
            tail_first_seq: 0,
            compact_threshold: 256,
            segment_max_records: 0,
            stats: WalStats::default(),
            plan: None,
        }
    }

    /// Sets how many replayable WAL records trigger compaction
    /// (0 = never compact automatically).
    pub fn compact_threshold(mut self, records: usize) -> LedgerWal {
        self.compact_threshold = records;
        self
    }

    /// Seals the active tail into an immutable `.seg` segment once it
    /// holds this many records (0 = never seal; single-file WAL).
    pub fn segment_records(mut self, records: usize) -> LedgerWal {
        self.segment_max_records = records;
        self
    }

    /// Installs a crash-injection plan on every durable write this WAL
    /// performs (durability suite only).
    pub fn with_fail_plan(mut self, plan: Arc<FailPlan>) -> LedgerWal {
        self.plan = Some(plan);
        self
    }

    /// The WAL file path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// The compacted-snapshot sibling path.
    pub fn snapshot_path(&self) -> &Path {
        &self.snapshot_path
    }

    /// The sequence number the next append will use.
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// Lifetime I/O counters (fsyncs, group flushes, seals).
    pub fn stats(&self) -> WalStats {
        self.stats
    }

    /// Whether the replayable WAL has reached the compaction threshold.
    /// The query path checks this to *count* deferred compactions; the
    /// ops-interval hook acts on it.
    pub fn compaction_due(&self) -> bool {
        self.compact_threshold > 0 && self.records_in_wal >= self.compact_threshold
    }

    /// The sealed-segment path for a tail whose first record is `seq`.
    fn segment_path(&self, first_seq: u64) -> PathBuf {
        let mut os = self.path.as_os_str().to_owned();
        os.push(format!(".{first_seq:016x}.seg"));
        PathBuf::from(os)
    }

    /// Sealed segment files beside the WAL, sorted by first sequence
    /// number (the hex-16 name embeds it, so lexical order is replay
    /// order).
    fn sealed_segments(&self) -> std::io::Result<Vec<(u64, PathBuf)>> {
        let parent = match self.path.parent() {
            Some(p) if !p.as_os_str().is_empty() => p,
            _ => Path::new("."),
        };
        let Some(stem) = self
            .path
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
        else {
            return Ok(Vec::new());
        };
        let entries = match std::fs::read_dir(parent) {
            Ok(entries) => entries,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Vec::new()),
            Err(e) => return Err(e),
        };
        let mut out = Vec::new();
        for entry in entries {
            let entry = entry?;
            let name = entry.file_name();
            let Some(name) = name.to_str() else { continue };
            let Some(hex) = name
                .strip_prefix(stem.as_str())
                .and_then(|rest| rest.strip_prefix('.'))
                .and_then(|rest| rest.strip_suffix(".seg"))
            else {
                continue;
            };
            if hex.len() != 16 {
                continue;
            }
            let Ok(seq) = u64::from_str_radix(hex, 16) else {
                continue;
            };
            out.push((seq, entry.path()));
        }
        out.sort_by_key(|(seq, _)| *seq);
        Ok(out)
    }

    /// Rebuilds `ledger` from disk: applies the compacted snapshot (if
    /// any), replays every sealed segment in sequence order, then
    /// replays the intact active tail — skipping records the snapshot
    /// already covers. A torn suffix is physically truncated so
    /// subsequent appends never merge into the torn record; damage
    /// inside a sealed segment additionally drops every later segment
    /// and the tail, so two recoveries in a row trust the same prefix.
    /// A corrupt snapshot is a typed error (the caller decides whether
    /// to start cold).
    pub fn recover(&mut self, ledger: &mut TenantLedger) -> Result<WalRecovery, SnapshotError> {
        let mut recovery = WalRecovery::default();
        let mut base_seq = 0u64;
        match std::fs::read_to_string(&self.snapshot_path) {
            Ok(text) => {
                let (seq, spends) = decode_ledger_snapshot(&text)?;
                base_seq = seq;
                for (tenant, spend) in spends {
                    ledger.charge(&tenant, spend.usd, spend.tokens, spend.calls);
                    ledger.credit_cache(&tenant, spend.cache_hits, spend.cache_coalesced);
                }
                recovery.snapshot_loaded = true;
            }
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
            Err(e) => return Err(e.into()),
        }
        self.next_seq = base_seq;
        self.records_in_wal = 0;
        self.records_in_tail = 0;

        // Replay stops trusting the log at the first violation; once a
        // sealed segment is damaged or out of sequence, every later
        // segment and the tail are dropped *physically*, so the next
        // recovery reconstructs the identical state.
        let mut last_seq: Option<u64> = None;
        let mut poisoned = false;
        for (_, seg_path) in self.sealed_segments().map_err(SnapshotError::Io)? {
            if poisoned {
                std::fs::remove_file(&seg_path).map_err(SnapshotError::Io)?;
                continue;
            }
            let replay = snapshot::wal_replay(&seg_path)?;
            // Within a file wal_replay enforces increasing sequence
            // numbers, so a cross-file break can only show at the first
            // record: a segment that does not continue the chain is not
            // ours — drop it whole.
            let continues = replay
                .records
                .first()
                .is_none_or(|(seq, _)| last_seq.is_none_or(|last| *seq > last));
            if !continues {
                std::fs::remove_file(&seg_path).map_err(SnapshotError::Io)?;
                recovery.dropped_tail = true;
                poisoned = true;
                continue;
            }
            for (seq, payload) in &replay.records {
                if *seq < base_seq {
                    recovery.skipped += 1;
                } else {
                    let record = LedgerRecord::decode(payload)?;
                    ledger.apply(&record);
                    recovery.replayed += 1;
                    self.records_in_wal += 1;
                }
                last_seq = Some(*seq);
                self.next_seq = *seq + 1;
            }
            recovery.sealed_segments += 1;
            if replay.dropped_tail {
                let file = std::fs::OpenOptions::new().write(true).open(&seg_path)?;
                file.set_len(replay.valid_len)?;
                file.sync_all()?;
                recovery.dropped_tail = true;
                poisoned = true;
            }
        }

        if poisoned {
            truncate_durably(&self.path, 0)?;
            self.tail_first_seq = self.next_seq;
            recovery.next_seq = self.next_seq;
            return Ok(recovery);
        }
        let replay = snapshot::wal_replay(&self.path)?;
        let continues = replay
            .records
            .first()
            .is_none_or(|(seq, _)| last_seq.is_none_or(|last| *seq > last));
        if !continues {
            truncate_durably(&self.path, 0)?;
            recovery.dropped_tail = true;
            self.tail_first_seq = self.next_seq;
            recovery.next_seq = self.next_seq;
            return Ok(recovery);
        }
        if replay.dropped_tail {
            // Physically truncate the torn tail, not just logically skip
            // it: a later append would otherwise land on the torn line,
            // fail its checksum on the next replay, and drop every
            // acknowledged record written after this recovery.
            truncate_durably(&self.path, replay.valid_len)?;
            recovery.dropped_tail = true;
        }
        self.tail_first_seq = replay
            .records
            .first()
            .map_or(self.next_seq, |(seq, _)| *seq);
        for (seq, payload) in &replay.records {
            if *seq < base_seq {
                recovery.skipped += 1;
            } else {
                let record = LedgerRecord::decode(payload)?;
                ledger.apply(&record);
                recovery.replayed += 1;
                self.records_in_wal += 1;
            }
            self.records_in_tail += 1;
            self.next_seq = *seq + 1;
        }
        recovery.next_seq = self.next_seq;
        Ok(recovery)
    }

    /// Appends one record durably, returning its sequence number. On an
    /// error the record may or may not have landed (exactly the crash
    /// model); the caller must stop appending and recover via
    /// [`LedgerWal::recover`] before trusting the ledger again.
    pub fn append(&mut self, record: &LedgerRecord) -> std::io::Result<u64> {
        let seq = self.next_seq;
        snapshot::wal_append(&self.path, seq, &record.encode(), self.plan.as_deref())?;
        self.stats.fsyncs += 1;
        self.next_seq = seq + 1;
        self.records_in_wal += 1;
        self.records_in_tail += 1;
        self.maybe_seal()?;
        Ok(seq)
    }

    /// Appends a batch of records under a SINGLE fsync (group commit),
    /// returning the first record's sequence number. Either a prefix of
    /// the batch survives a tear or the whole batch lands; on an error
    /// the caller must stop appending and recover, exactly as for
    /// [`LedgerWal::append`].
    pub fn append_batch(&mut self, records: &[LedgerRecord]) -> std::io::Result<u64> {
        let first = self.next_seq;
        if records.is_empty() {
            return Ok(first);
        }
        let payloads: Vec<String> = records.iter().map(|r| r.encode()).collect();
        snapshot::wal_append_batch(&self.path, first, &payloads, self.plan.as_deref())?;
        self.stats.fsyncs += 1;
        self.stats.group_flushes += 1;
        self.next_seq = first + records.len() as u64;
        self.records_in_wal += records.len();
        self.records_in_tail += records.len();
        self.maybe_seal()?;
        Ok(first)
    }

    /// Seals the active tail into an immutable segment if it has reached
    /// the segment size. Sealing renames the fsynced tail (records stay
    /// durable throughout); the next append recreates the tail file.
    fn maybe_seal(&mut self) -> std::io::Result<bool> {
        if self.segment_max_records == 0 || self.records_in_tail < self.segment_max_records {
            return Ok(false);
        }
        let sealed = self.segment_path(self.tail_first_seq);
        snapshot::wal_seal_segment(&self.path, &sealed, self.plan.as_deref())?;
        self.stats.fsyncs += 1;
        self.stats.segments_sealed += 1;
        self.records_in_tail = 0;
        self.tail_first_seq = self.next_seq;
        Ok(true)
    }

    /// Compacts if the replayable WAL has reached the threshold.
    /// Returns whether a compaction ran.
    pub fn maybe_compact(&mut self, ledger: &TenantLedger) -> std::io::Result<bool> {
        if !self.compaction_due() {
            return Ok(false);
        }
        self.compact(ledger)
    }

    /// Writes the ledger's current state into the compacted snapshot
    /// (atomic commit), then reclaims log space. A crash between the two
    /// steps is safe: recovery skips WAL records the snapshot already
    /// covers.
    ///
    /// `ledger` must reflect every record appended so far — with a
    /// group-commit buffer in front of this WAL, flush it first, or the
    /// snapshot would claim coverage of spends whose records never
    /// landed.
    ///
    /// Segmented WALs delete sealed segment files only and leave the
    /// active tail in place (its covered records replay as skipped);
    /// single-file WALs truncate, as before.
    pub fn compact(&mut self, ledger: &TenantLedger) -> std::io::Result<bool> {
        let framed = encode_ledger_snapshot(self.next_seq, ledger);
        snapshot::commit_atomic(&self.snapshot_path, &framed, self.plan.as_deref())?;
        self.stats.fsyncs += 1;
        if self.segment_max_records == 0 {
            // Durable truncate: `fs::write(path, "")` alone leaves the
            // zero-length state unsynced, so after a power cut the WAL's
            // on-disk length is undefined — stale pre-compaction bytes
            // could coexist with post-compaction appends in whatever
            // order the filesystem flushed them. fsyncing the truncation
            // pins the empty state before any new append lands.
            let wal = std::fs::OpenOptions::new()
                .write(true)
                .create(true)
                .truncate(true)
                .open(&self.path)?;
            wal.sync_all()?;
            self.stats.fsyncs += 1;
            self.records_in_tail = 0;
            self.tail_first_seq = self.next_seq;
        } else {
            for (_, seg) in self.sealed_segments()? {
                std::fs::remove_file(seg)?;
            }
            snapshot::sync_parent_dir(&self.path)?;
        }
        self.records_in_wal = 0;
        Ok(true)
    }
}

/// Truncates `path` to `len` bytes and fsyncs, so the dropped suffix is
/// gone durably — not just until the next power cut. Missing files are
/// fine (an empty tail needs no truncation).
fn truncate_durably(path: &Path, len: u64) -> std::io::Result<()> {
    let file = match std::fs::OpenOptions::new().write(true).open(path) {
        Ok(file) => file,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(()),
        Err(e) => return Err(e),
    };
    file.set_len(len)?;
    file.sync_all()
}

fn encode_ledger_snapshot(next_seq: u64, ledger: &TenantLedger) -> String {
    let mut body = format!("Q\t{next_seq}\n");
    for (tenant, spend) in ledger.spends() {
        body.push_str("S\t");
        esc(tenant.as_str(), &mut body);
        body.push_str(&format!(
            "\t{:016x}\t{}\t{}\t{}\t{}\n",
            spend.usd.to_bits(),
            spend.tokens,
            spend.calls,
            spend.cache_hits,
            spend.cache_coalesced
        ));
    }
    snapshot::encode_file(LEDGER_MAGIC, &body)
}

fn decode_ledger_snapshot(text: &str) -> Result<(u64, Vec<(TenantId, Spend)>), SnapshotError> {
    let fail = |msg: &str| SnapshotError::Format(msg.to_string());
    let body = snapshot::decode_file(LEDGER_MAGIC, text)?;
    let mut lines = body.lines();
    let next_seq = lines
        .next()
        .and_then(|line| line.strip_prefix("Q\t"))
        .and_then(|raw| raw.parse::<u64>().ok())
        .ok_or_else(|| fail("bad sequence line"))?;
    let mut spends = Vec::new();
    for line in lines {
        let fields: Vec<&str> = line.split('\t').collect();
        if fields.first() != Some(&"S") || fields.len() != 7 {
            return Err(fail("bad spend line"));
        }
        let tenant = TenantId::new(unesc(fields[1])?);
        let spend = Spend {
            usd: u64::from_str_radix(fields[2], 16)
                .map(f64::from_bits)
                .map_err(|_| fail("bad usd bits"))?,
            tokens: fields[3].parse().map_err(|_| fail("bad tokens"))?,
            calls: fields[4].parse().map_err(|_| fail("bad calls"))?,
            cache_hits: fields[5].parse().map_err(|_| fail("bad cache_hits"))?,
            cache_coalesced: fields[6].parse().map_err(|_| fail("bad cache_coalesced"))?,
        };
        spends.push((tenant, spend));
    }
    Ok((next_seq, spends))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quotas_gate_on_attributed_spend() {
        let mut ledger = TenantLedger::new();
        let acme: TenantId = "acme".into();
        ledger.register(acme.clone(), TenantConfig::weighted(2).dollars(1.0));
        assert!(ledger.over_quota(&acme).is_none());
        ledger.charge(&acme, 0.6, 1000, 2);
        assert!(ledger.over_quota(&acme).is_none());
        ledger.charge(&acme, 0.4, 800, 1);
        match ledger.over_quota(&acme) {
            Some(crate::RejectReason::BudgetExhausted {
                spent_usd,
                quota_usd,
            }) => {
                assert!((spent_usd - 1.0).abs() < 1e-12);
                assert_eq!(quota_usd, 1.0);
            }
            other => panic!("expected BudgetExhausted, got {other:?}"),
        }
        assert_eq!(ledger.spend(&acme).calls, 3);
    }

    #[test]
    fn token_quota_is_independent() {
        let mut ledger = TenantLedger::new();
        let t: TenantId = "t".into();
        ledger.register(t.clone(), TenantConfig::default().tokens(100));
        ledger.charge(&t, 0.0, 100, 1);
        assert!(matches!(
            ledger.over_quota(&t),
            Some(crate::RejectReason::TokensExhausted { .. })
        ));
    }

    #[test]
    fn unregistered_tenants_get_defaults() {
        let ledger = TenantLedger::new();
        let ghost: TenantId = "ghost".into();
        assert!(!ledger.knows(&ghost));
        assert_eq!(ledger.config(&ghost).weight, 1);
        assert!(ledger.over_quota(&ghost).is_none());
    }

    #[test]
    fn weight_floor_is_one() {
        assert_eq!(TenantConfig::weighted(0).weight, 1);
    }

    #[test]
    fn slo_targets_ride_on_the_config_without_gating_admission() {
        let config = TenantConfig::default()
            .p99_latency(30.0)
            .usd_per_query(0.01);
        assert!(config.slo.is_declared());
        assert_eq!(config.slo.p99_latency_s, Some(30.0));
        assert_eq!(config.slo.usd_per_query, Some(0.01));
        // SLOs never shed: the quota gate ignores them entirely.
        let mut ledger = TenantLedger::new();
        let acme: TenantId = "acme".into();
        ledger.register(acme.clone(), config);
        ledger.charge(&acme, 100.0, 1_000_000, 50);
        assert!(ledger.over_quota(&acme).is_none());
    }

    fn wal_dir(name: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("aida-wal-test-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    fn spend_record(tenant: &TenantId, usd: f64) -> LedgerRecord {
        LedgerRecord::Spend {
            tenant: tenant.clone(),
            usd,
            tokens: 120,
            calls: 3,
            cache_hits: 2,
            cache_coalesced: 1,
        }
    }

    #[test]
    fn wal_replay_reproduces_bit_identical_spend() {
        let d = wal_dir("replay");
        let acme: TenantId = "acme".into();
        let mut ledger = TenantLedger::new();
        ledger.register(acme.clone(), TenantConfig::weighted(2).dollars(1.0));
        let mut wal = LedgerWal::open(d.join("tenants.wal"));
        for record in [
            LedgerRecord::Admit {
                tenant: acme.clone(),
            },
            spend_record(&acme, 0.123456789),
            spend_record(&acme, 0.000000071),
        ] {
            ledger.apply(&record);
            wal.append(&record).unwrap();
        }

        let mut restarted = TenantLedger::new();
        let mut wal2 = LedgerWal::open(d.join("tenants.wal"));
        let recovery = wal2.recover(&mut restarted).unwrap();
        assert_eq!(recovery.replayed, 3);
        assert!(!recovery.dropped_tail);
        assert_eq!(wal2.next_seq(), wal.next_seq());
        // Bit-identical dollars, not just approximately equal.
        assert_eq!(
            restarted.spend(&acme).usd.to_bits(),
            ledger.spend(&acme).usd.to_bits()
        );
        assert_eq!(restarted.spend(&acme), ledger.spend(&acme));
        let _ = std::fs::remove_dir_all(&d);
    }

    #[test]
    fn record_codec_round_trips() {
        let r = spend_record(&"team a\twith\ttabs".into(), -0.5);
        assert_eq!(LedgerRecord::decode(&r.encode()).unwrap(), r);
        let a = LedgerRecord::Admit {
            tenant: "bolt".into(),
        };
        assert_eq!(LedgerRecord::decode(&a.encode()).unwrap(), a);
        assert!(LedgerRecord::decode("refund\tacme\t1").is_err());
    }

    #[test]
    fn compaction_is_crash_idempotent() {
        let d = wal_dir("compact");
        let acme: TenantId = "acme".into();
        let mut ledger = TenantLedger::new();
        let mut wal = LedgerWal::open(d.join("tenants.wal")).compact_threshold(3);
        for i in 0..3 {
            let record = spend_record(&acme, 0.01 * (i + 1) as f64);
            ledger.apply(&record);
            wal.append(&record).unwrap();
        }
        // Simulate a crash between snapshot-commit and WAL-truncate: run
        // the compaction, then restore the pre-truncate WAL bytes.
        let wal_bytes = std::fs::read(wal.path()).unwrap();
        assert!(wal.maybe_compact(&ledger).unwrap());
        std::fs::write(wal.path(), &wal_bytes).unwrap();

        let mut restarted = TenantLedger::new();
        let mut wal2 = LedgerWal::open(d.join("tenants.wal"));
        let recovery = wal2.recover(&mut restarted).unwrap();
        assert!(recovery.snapshot_loaded);
        // Every leftover record predates the snapshot: skipped, so the
        // spend is applied exactly once.
        assert_eq!(recovery.skipped, 3);
        assert_eq!(recovery.replayed, 0);
        assert_eq!(
            restarted.spend(&acme).usd.to_bits(),
            ledger.spend(&acme).usd.to_bits()
        );
        let _ = std::fs::remove_dir_all(&d);
    }

    #[test]
    fn recovery_truncates_torn_tail_so_later_appends_survive_a_second_restart() {
        use aida_llm::snapshot::CrashPoint;
        let d = wal_dir("torn-repair");
        let acme: TenantId = "acme".into();
        let mut wal = LedgerWal::open(d.join("tenants.wal"));
        wal.append(&spend_record(&acme, 0.25)).unwrap();
        wal.append(&spend_record(&acme, 0.5)).unwrap();
        let plan = Arc::new(FailPlan::new(CrashPoint::WalTornAppend).torn_keep(9));
        let mut torn = LedgerWal::open(d.join("tenants.wal")).with_fail_plan(plan);
        let mut scratch = TenantLedger::new();
        torn.recover(&mut scratch).unwrap();
        assert!(torn.append(&spend_record(&acme, 1.0)).is_err());

        // Restart 1: recovery drops the torn tail (and removes it from
        // disk), so the acknowledged post-recovery append below lands on
        // its own line.
        let mut ledger = TenantLedger::new();
        let mut wal2 = LedgerWal::open(d.join("tenants.wal"));
        let recovery = wal2.recover(&mut ledger).unwrap();
        assert!(recovery.dropped_tail);
        assert_eq!(recovery.replayed, 2);
        let post = spend_record(&acme, 2.0);
        wal2.append(&post).unwrap();
        ledger.apply(&post);

        // Restart 2: the post-recovery record replays intact instead of
        // being swallowed with the remnants of the torn one.
        let mut ledger2 = TenantLedger::new();
        let mut wal3 = LedgerWal::open(d.join("tenants.wal"));
        let recovery2 = wal3.recover(&mut ledger2).unwrap();
        assert!(!recovery2.dropped_tail);
        assert_eq!(recovery2.replayed, 3);
        assert_eq!(
            ledger2.spend(&acme).usd.to_bits(),
            ledger.spend(&acme).usd.to_bits()
        );
        let _ = std::fs::remove_dir_all(&d);
    }

    #[test]
    fn segments_seal_and_recovery_replays_them_in_order() {
        let d = wal_dir("segments");
        let acme: TenantId = "acme".into();
        let mut ledger = TenantLedger::new();
        let mut wal = LedgerWal::open(d.join("tenants.wal")).segment_records(2);
        for i in 0..5 {
            let record = spend_record(&acme, 0.01 * (i + 1) as f64);
            ledger.apply(&record);
            wal.append(&record).unwrap();
        }
        // 5 appends at segment size 2: two sealed segments + 1-record tail.
        assert_eq!(wal.stats().segments_sealed, 2);
        assert!(d.join("tenants.wal.0000000000000000.seg").is_file());
        assert!(d.join("tenants.wal.0000000000000002.seg").is_file());
        assert!(d.join("tenants.wal").is_file());

        let mut restarted = TenantLedger::new();
        let mut wal2 = LedgerWal::open(d.join("tenants.wal")).segment_records(2);
        let recovery = wal2.recover(&mut restarted).unwrap();
        assert_eq!(recovery.sealed_segments, 2);
        assert_eq!(recovery.replayed, 5);
        assert!(!recovery.dropped_tail);
        assert_eq!(wal2.next_seq(), 5);
        assert_eq!(
            restarted.spend(&acme).usd.to_bits(),
            ledger.spend(&acme).usd.to_bits()
        );

        // Post-recovery appends continue the chain and survive another
        // restart.
        let post = spend_record(&acme, 1.0);
        restarted.apply(&post);
        wal2.append(&post).unwrap();
        let mut again = TenantLedger::new();
        let recovery2 = LedgerWal::open(d.join("tenants.wal"))
            .segment_records(2)
            .recover(&mut again)
            .unwrap();
        assert_eq!(recovery2.replayed, 6);
        assert_eq!(
            again.spend(&acme).usd.to_bits(),
            restarted.spend(&acme).usd.to_bits()
        );
        let _ = std::fs::remove_dir_all(&d);
    }

    #[test]
    fn batch_append_costs_one_fsync_and_replays_bit_identical() {
        let d = wal_dir("batch");
        let acme: TenantId = "acme".into();
        let bolt: TenantId = "bolt".into();
        let mut ledger = TenantLedger::new();
        let mut wal = LedgerWal::open(d.join("tenants.wal"));
        let batch = vec![
            LedgerRecord::Admit {
                tenant: acme.clone(),
            },
            spend_record(&acme, 0.123456789),
            spend_record(&bolt, 0.000000071),
        ];
        for record in &batch {
            ledger.apply(record);
        }
        assert_eq!(wal.append_batch(&batch).unwrap(), 0);
        let stats = wal.stats();
        assert_eq!(stats.fsyncs, 1, "one sync_all for the whole batch");
        assert_eq!(stats.group_flushes, 1);
        assert_eq!(wal.next_seq(), 3);

        let mut restarted = TenantLedger::new();
        let recovery = LedgerWal::open(d.join("tenants.wal"))
            .recover(&mut restarted)
            .unwrap();
        assert_eq!(recovery.replayed, 3);
        assert_eq!(
            restarted.spend(&acme).usd.to_bits(),
            ledger.spend(&acme).usd.to_bits()
        );
        assert_eq!(
            restarted.spend(&bolt).usd.to_bits(),
            ledger.spend(&bolt).usd.to_bits()
        );
        let _ = std::fs::remove_dir_all(&d);
    }

    #[test]
    fn segmented_compaction_deletes_sealed_files_and_leaves_the_tail() {
        let d = wal_dir("seg-compact");
        let acme: TenantId = "acme".into();
        let mut ledger = TenantLedger::new();
        let mut wal = LedgerWal::open(d.join("tenants.wal"))
            .segment_records(2)
            .compact_threshold(4);
        for i in 0..5 {
            let record = spend_record(&acme, 0.01 * (i + 1) as f64);
            ledger.apply(&record);
            wal.append(&record).unwrap();
        }
        assert!(wal.maybe_compact(&ledger).unwrap());
        // Sealed segments are reclaimed; the 1-record active tail stays.
        assert!(!d.join("tenants.wal.0000000000000000.seg").exists());
        assert!(!d.join("tenants.wal.0000000000000002.seg").exists());
        assert!(d.join("tenants.wal").is_file());
        assert!(std::fs::metadata(d.join("tenants.wal")).unwrap().len() > 0);

        // The tail's leftover record is covered by the snapshot: skipped,
        // so spend applies exactly once.
        let mut restarted = TenantLedger::new();
        let recovery = LedgerWal::open(d.join("tenants.wal"))
            .segment_records(2)
            .recover(&mut restarted)
            .unwrap();
        assert!(recovery.snapshot_loaded);
        assert_eq!(recovery.replayed, 0);
        assert_eq!(recovery.skipped, 1);
        assert_eq!(recovery.next_seq, 5);
        assert_eq!(
            restarted.spend(&acme).usd.to_bits(),
            ledger.spend(&acme).usd.to_bits()
        );
        let _ = std::fs::remove_dir_all(&d);
    }

    #[test]
    fn segmented_compaction_is_crash_idempotent() {
        let d = wal_dir("seg-compact-crash");
        let acme: TenantId = "acme".into();
        let mut ledger = TenantLedger::new();
        let mut wal = LedgerWal::open(d.join("tenants.wal"))
            .segment_records(2)
            .compact_threshold(4);
        for i in 0..4 {
            let record = spend_record(&acme, 0.01 * (i + 1) as f64);
            ledger.apply(&record);
            wal.append(&record).unwrap();
        }
        // Simulate a crash between snapshot-commit and segment deletion:
        // compact, then restore the sealed segment files.
        let seg_a = d.join("tenants.wal.0000000000000000.seg");
        let seg_b = d.join("tenants.wal.0000000000000002.seg");
        let bytes_a = std::fs::read(&seg_a).unwrap();
        let bytes_b = std::fs::read(&seg_b).unwrap();
        assert!(wal.maybe_compact(&ledger).unwrap());
        std::fs::write(&seg_a, &bytes_a).unwrap();
        std::fs::write(&seg_b, &bytes_b).unwrap();

        let mut restarted = TenantLedger::new();
        let recovery = LedgerWal::open(d.join("tenants.wal"))
            .segment_records(2)
            .recover(&mut restarted)
            .unwrap();
        assert!(recovery.snapshot_loaded);
        assert_eq!(recovery.skipped, 4);
        assert_eq!(recovery.replayed, 0);
        assert_eq!(
            restarted.spend(&acme).usd.to_bits(),
            ledger.spend(&acme).usd.to_bits()
        );
        let _ = std::fs::remove_dir_all(&d);
    }

    #[test]
    fn damage_in_a_sealed_segment_drops_everything_after_it() {
        let d = wal_dir("seg-damage");
        let acme: TenantId = "acme".into();
        let mut ledger = TenantLedger::new();
        let mut wal = LedgerWal::open(d.join("tenants.wal")).segment_records(2);
        for i in 0..5 {
            let record = spend_record(&acme, 0.01 * (i + 1) as f64);
            ledger.apply(&record);
            wal.append(&record).unwrap();
        }
        // Corrupt the first segment's second record: replay trusts only
        // record 0 and must drop the rest of the log — the later segment
        // and the tail — physically.
        let seg_a = d.join("tenants.wal.0000000000000000.seg");
        let seg_b = d.join("tenants.wal.0000000000000002.seg");
        let mut bytes = std::fs::read(&seg_a).unwrap();
        let split = bytes.iter().position(|b| *b == b'\n').unwrap();
        let flip = split + 10;
        bytes[flip] ^= 0x5a;
        std::fs::write(&seg_a, &bytes).unwrap();

        let mut restarted = TenantLedger::new();
        let mut wal2 = LedgerWal::open(d.join("tenants.wal")).segment_records(2);
        let recovery = wal2.recover(&mut restarted).unwrap();
        assert_eq!(recovery.replayed, 1);
        assert!(recovery.dropped_tail);
        assert_eq!(wal2.next_seq(), 1);
        assert!(!seg_b.exists(), "later segment must be dropped");
        assert_eq!(std::fs::metadata(d.join("tenants.wal")).unwrap().len(), 0);

        // A second recovery reconstructs the identical state, and
        // post-recovery appends replay intact.
        let post = spend_record(&acme, 2.0);
        restarted.apply(&post);
        wal2.append(&post).unwrap();
        let mut again = TenantLedger::new();
        let recovery2 = LedgerWal::open(d.join("tenants.wal"))
            .segment_records(2)
            .recover(&mut again)
            .unwrap();
        assert!(!recovery2.dropped_tail);
        assert_eq!(recovery2.replayed, 2);
        assert_eq!(
            again.spend(&acme).usd.to_bits(),
            restarted.spend(&acme).usd.to_bits()
        );
        let _ = std::fs::remove_dir_all(&d);
    }

    #[test]
    fn seal_crash_leaves_records_durable_in_the_tail() {
        use aida_llm::snapshot::CrashPoint;
        let d = wal_dir("seal-crash");
        let acme: TenantId = "acme".into();
        let plan = Arc::new(FailPlan::new(CrashPoint::WalSegmentSeal));
        let mut wal = LedgerWal::open(d.join("tenants.wal"))
            .segment_records(2)
            .with_fail_plan(plan);
        let mut ledger = TenantLedger::new();
        let first = spend_record(&acme, 0.25);
        ledger.apply(&first);
        wal.append(&first).unwrap();
        // The second append lands durably, then the seal crashes.
        let second = spend_record(&acme, 0.5);
        ledger.apply(&second);
        let err = wal.append(&second).unwrap_err();
        assert!(FailPlan::is_crash(&err));

        // Recovery finds both records in the (unsealed) tail: the crash
        // lost the rename, never the acknowledged data.
        let mut restarted = TenantLedger::new();
        let recovery = LedgerWal::open(d.join("tenants.wal"))
            .segment_records(2)
            .recover(&mut restarted)
            .unwrap();
        assert_eq!(recovery.sealed_segments, 0);
        assert_eq!(recovery.replayed, 2);
        assert_eq!(
            restarted.spend(&acme).usd.to_bits(),
            ledger.spend(&acme).usd.to_bits()
        );
        let _ = std::fs::remove_dir_all(&d);
    }

    #[test]
    fn cache_credits_accumulate_without_touching_quota() {
        let mut ledger = TenantLedger::new();
        let acme: TenantId = "acme".into();
        ledger.register(acme.clone(), TenantConfig::default().dollars(1.0));
        ledger.credit_cache(&acme, 5, 2);
        ledger.credit_cache(&acme, 3, 0);
        let spend = ledger.spend(&acme);
        assert_eq!(spend.cache_hits, 8);
        assert_eq!(spend.cache_coalesced, 2);
        // Hits are free: the quota gate never fires on cache traffic.
        assert!(ledger.over_quota(&acme).is_none());
    }
}
