//! Per-tenant configuration and accounting.

use crate::request::TenantId;
use std::collections::BTreeMap;

/// Per-tenant service configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct TenantConfig {
    /// Weighted-round-robin share (≥ 1): a weight-3 tenant is dispatched
    /// three times as often as a weight-1 tenant under contention.
    pub weight: u32,
    /// Dollar quota: once the tenant's attributed spend reaches this, new
    /// requests are shed with [`RejectReason::BudgetExhausted`]
    /// (`None` = unlimited).
    ///
    /// [`RejectReason::BudgetExhausted`]: crate::RejectReason::BudgetExhausted
    pub dollar_quota: Option<f64>,
    /// Token quota (`None` = unlimited).
    pub token_quota: Option<u64>,
}

impl Default for TenantConfig {
    fn default() -> Self {
        TenantConfig {
            weight: 1,
            dollar_quota: None,
            token_quota: None,
        }
    }
}

impl TenantConfig {
    /// A config with the given WRR weight.
    pub fn weighted(weight: u32) -> TenantConfig {
        TenantConfig {
            weight: weight.max(1),
            ..TenantConfig::default()
        }
    }

    /// Sets the dollar quota.
    pub fn dollars(mut self, quota: f64) -> TenantConfig {
        self.dollar_quota = Some(quota);
        self
    }

    /// Sets the token quota.
    pub fn tokens(mut self, quota: u64) -> TenantConfig {
        self.token_quota = Some(quota);
        self
    }
}

/// Spend attributed to one tenant (accumulated from per-query
/// `UsageSnapshot::delta_since` deltas).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Spend {
    /// Dollars.
    pub usd: f64,
    /// Tokens (input + output).
    pub tokens: u64,
    /// Billed LLM calls.
    pub calls: u64,
    /// Semantic-cache hits attributed to this tenant (calls the tenant
    /// issued that were served from the shared cache for free).
    pub cache_hits: u64,
    /// Semantic-cache coalesced waiters attributed to this tenant.
    pub cache_coalesced: u64,
}

impl Spend {
    /// Accumulates one query's delta.
    pub fn add(&mut self, usd: f64, tokens: u64, calls: u64) {
        self.usd += usd;
        self.tokens += tokens;
        self.calls += calls;
    }

    /// Accumulates one query's semantic-cache savings.
    pub fn add_cache(&mut self, hits: u64, coalesced: u64) {
        self.cache_hits += hits;
        self.cache_coalesced += coalesced;
    }
}

/// The service's tenant ledger: configs + attributed spend.
#[derive(Debug, Clone, Default)]
pub struct TenantLedger {
    configs: BTreeMap<TenantId, TenantConfig>,
    spend: BTreeMap<TenantId, Spend>,
}

impl TenantLedger {
    /// Creates an empty ledger.
    pub fn new() -> TenantLedger {
        TenantLedger::default()
    }

    /// Registers (or reconfigures) a tenant.
    pub fn register(&mut self, tenant: TenantId, config: TenantConfig) {
        self.configs.insert(tenant, config);
    }

    /// Whether the tenant is registered.
    pub fn knows(&self, tenant: &TenantId) -> bool {
        self.configs.contains_key(tenant)
    }

    /// The tenant's config (default for unregistered tenants).
    pub fn config(&self, tenant: &TenantId) -> TenantConfig {
        self.configs.get(tenant).cloned().unwrap_or_default()
    }

    /// Registered tenants in id order.
    pub fn tenants(&self) -> impl Iterator<Item = (&TenantId, &TenantConfig)> {
        self.configs.iter()
    }

    /// The tenant's attributed spend so far.
    pub fn spend(&self, tenant: &TenantId) -> Spend {
        self.spend.get(tenant).copied().unwrap_or_default()
    }

    /// Attributes one query's meter delta to a tenant.
    pub fn charge(&mut self, tenant: &TenantId, usd: f64, tokens: u64, calls: u64) {
        self.spend
            .entry(tenant.clone())
            .or_default()
            .add(usd, tokens, calls);
    }

    /// Attributes one query's semantic-cache savings to a tenant. Cache
    /// hits are free, so they adjust no quota — but the ledger records
    /// who benefited from the shared cache.
    pub fn credit_cache(&mut self, tenant: &TenantId, hits: u64, coalesced: u64) {
        self.spend
            .entry(tenant.clone())
            .or_default()
            .add_cache(hits, coalesced);
    }

    /// Checks the tenant's quotas against its attributed spend, returning
    /// the violated quota if any. This is the pre-admission gate: a tenant
    /// at or over quota has every new request shed before it can consume
    /// a queue slot or a worker.
    pub fn over_quota(&self, tenant: &TenantId) -> Option<crate::RejectReason> {
        let config = self.config(tenant);
        let spend = self.spend(tenant);
        if let Some(quota) = config.dollar_quota {
            if spend.usd >= quota {
                return Some(crate::RejectReason::BudgetExhausted {
                    spent_usd: spend.usd,
                    quota_usd: quota,
                });
            }
        }
        if let Some(quota) = config.token_quota {
            if spend.tokens >= quota {
                return Some(crate::RejectReason::TokensExhausted {
                    spent_tokens: spend.tokens,
                    quota_tokens: quota,
                });
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quotas_gate_on_attributed_spend() {
        let mut ledger = TenantLedger::new();
        let acme: TenantId = "acme".into();
        ledger.register(acme.clone(), TenantConfig::weighted(2).dollars(1.0));
        assert!(ledger.over_quota(&acme).is_none());
        ledger.charge(&acme, 0.6, 1000, 2);
        assert!(ledger.over_quota(&acme).is_none());
        ledger.charge(&acme, 0.4, 800, 1);
        match ledger.over_quota(&acme) {
            Some(crate::RejectReason::BudgetExhausted {
                spent_usd,
                quota_usd,
            }) => {
                assert!((spent_usd - 1.0).abs() < 1e-12);
                assert_eq!(quota_usd, 1.0);
            }
            other => panic!("expected BudgetExhausted, got {other:?}"),
        }
        assert_eq!(ledger.spend(&acme).calls, 3);
    }

    #[test]
    fn token_quota_is_independent() {
        let mut ledger = TenantLedger::new();
        let t: TenantId = "t".into();
        ledger.register(t.clone(), TenantConfig::default().tokens(100));
        ledger.charge(&t, 0.0, 100, 1);
        assert!(matches!(
            ledger.over_quota(&t),
            Some(crate::RejectReason::TokensExhausted { .. })
        ));
    }

    #[test]
    fn unregistered_tenants_get_defaults() {
        let ledger = TenantLedger::new();
        let ghost: TenantId = "ghost".into();
        assert!(!ledger.knows(&ghost));
        assert_eq!(ledger.config(&ghost).weight, 1);
        assert!(ledger.over_quota(&ghost).is_none());
    }

    #[test]
    fn weight_floor_is_one() {
        assert_eq!(TenantConfig::weighted(0).weight, 1);
    }

    #[test]
    fn cache_credits_accumulate_without_touching_quota() {
        let mut ledger = TenantLedger::new();
        let acme: TenantId = "acme".into();
        ledger.register(acme.clone(), TenantConfig::default().dollars(1.0));
        ledger.credit_cache(&acme, 5, 2);
        ledger.credit_cache(&acme, 3, 0);
        let spend = ledger.spend(&acme);
        assert_eq!(spend.cache_hits, 8);
        assert_eq!(spend.cache_coalesced, 2);
        // Hits are free: the quota gate never fires on cache traffic.
        assert!(ledger.over_quota(&acme).is_none());
    }
}
