//! # aida-serve — the multi-tenant query service layer
//!
//! The paper frames Deep Research as an *analytics system*; a system
//! serves many users at once. This crate turns the single-user
//! [`Runtime`] into a service: tenants submit [`QueryRequest`]s against
//! registered Contexts, a bounded [`AdmissionQueue`] applies
//! backpressure and typed load-shedding, per-tenant quotas are enforced
//! from metered spend, and a weighted-round-robin scheduler dispatches
//! onto a worker pool. All tenants share one runtime — and therefore one
//! ContextManager — so Contexts materialized for one tenant accelerate
//! and cheapen every other tenant's queries.
//!
//! Everything is deterministic on the virtual clock: the same seed and
//! workload produce byte-identical [`ServiceReport`]s no matter how the
//! host interleaves the real worker threads (see [`QueryService`] for
//! how).
//!
//! ```
//! use aida_core::{Context, Runtime};
//! use aida_data::{DataLake, Document};
//! use aida_serve::{open_loop, QueryService, ServeConfig, TenantConfig, TenantLoad};
//!
//! let rt = Runtime::builder().seed(1).build();
//! let lake = DataLake::from_docs([Document::new("a.txt", "thefts in 2001: 86250")]);
//! let ctx = Context::builder("lake", lake).description("theft reports").build(&rt);
//!
//! let mut svc = QueryService::new(rt, ServeConfig::with_workers(2));
//! svc.register_context("reports", ctx);
//! svc.register_tenant("acme", TenantConfig::weighted(2).dollars(5.0));
//!
//! let load = TenantLoad::new("acme", "reports")
//!     .instructions(["count identity theft reports in 2001"])
//!     .queries(2)
//!     .mean_interarrival(10.0);
//! let report = svc.run(open_loop(1, &[load]));
//! assert_eq!(report.completions.len(), 2);
//! println!("{}", report.render());
//! ```
//!
//! [`Runtime`]: aida_core::Runtime

mod autoscale;
mod bounds;
mod client;
mod driver;
mod net;
mod queue;
mod report;
mod request;
mod service;
mod tenant;

pub use autoscale::{AutoscaleConfig, Autoscaler, ScaleEvent};
pub use bounds::{BoundGate, StaticVerdict};
pub use client::{ClientConfig, ClientOutcome, LiveSource};
pub use driver::{open_loop, ReplaySource, RequestSource, TenantLoad};
pub use net::{
    encode_frame, plan_hash, Fabric, Frame, FrameReader, Inbound, Listener, NetStats, TcpFabric,
    WireBody, WireError, WireRequest, MAX_FRAME_BYTES, WIRE_MAGIC, WIRE_VERSION,
};
pub use queue::AdmissionQueue;
pub use report::{NetReport, ServiceReport, TenantHealth, TenantReport};
pub use request::{Completion, Priority, QueryRequest, RejectReason, Shed, TenantId};
pub use service::{QueryService, ServeConfig};
pub use tenant::{LedgerRecord, LedgerWal, Spend, TenantConfig, TenantLedger, WalRecovery};
