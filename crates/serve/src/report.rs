//! The service dashboard: per-tenant latency percentiles, shed/admit
//! counters, queue-depth trajectory, cross-tenant reuse trend, and the
//! shared-vs-isolated cost comparison.

use crate::autoscale::ScaleEvent;
use crate::net::NetStats;
use crate::request::{Completion, Shed};
use crate::TenantId;
use aida_obs::{Gauge, Json, SloVerdict, Summary, WindowSnapshot};
use std::collections::BTreeMap;
use std::fmt::Write;

/// What the live front door saw: wire-level traffic counters plus the
/// closed-loop client fleet's resolved outcomes. `None` on the report
/// means the run was batch replay — no listener was attached.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct NetReport {
    /// Listener traffic counters (connections, frames, bytes, errors).
    pub stats: NetStats,
    /// Closed-loop clients that connected.
    pub clients: u64,
    /// Clients that completed every query they wanted.
    pub clients_completed: u64,
    /// Clients that exhausted their retry budget on a retryable shed.
    pub clients_retries_exhausted: u64,
    /// Clients that hit a terminal rejection and hung up.
    pub clients_abandoned: u64,
    /// Clients whose session died on a wire error (or never resolved).
    pub clients_wire_failed: u64,
    /// Retries spent across the fleet.
    pub client_retries: u64,
    /// Queries completed across the fleet (client-side count).
    pub client_queries: u64,
}

impl NetReport {
    /// Serializes as one `net` JSONL object.
    pub fn to_json(&self) -> Json {
        let mut errors = Json::obj();
        for (kind, n) in &self.stats.wire_errors {
            errors = errors.field(kind, *n);
        }
        Json::obj()
            .field("type", "net")
            .field("conns_opened", self.stats.conns_opened)
            .field("conns_closed", self.stats.conns_closed)
            .field("conns_peak", self.stats.conns_peak)
            .field("frames_in", self.stats.frames_in)
            .field("frames_out", self.stats.frames_out)
            .field("bytes_in", self.stats.bytes_in)
            .field("bytes_out", self.stats.bytes_out)
            .field("plan_hash_hits", self.stats.plan_hash_hits)
            .field("wire_errors", errors)
            .field("clients", self.clients)
            .field("clients_completed", self.clients_completed)
            .field("clients_retries_exhausted", self.clients_retries_exhausted)
            .field("clients_abandoned", self.clients_abandoned)
            .field("clients_wire_failed", self.clients_wire_failed)
            .field("client_retries", self.client_retries)
            .field("client_queries", self.client_queries)
    }
}

/// One tenant's windowed health: trailing-window latency/cost/queue-wait
/// statistics plus the SLO burn-rate verdict, evaluated at the end of a
/// [`QueryService::run`].
///
/// [`QueryService::run`]: crate::QueryService::run
#[derive(Debug, Clone)]
pub struct TenantHealth {
    /// The tenant this row describes.
    pub tenant: TenantId,
    /// End-to-end latency over the trailing window (virtual seconds).
    pub latency: WindowSnapshot,
    /// Dollars per completed query over the trailing window.
    pub cost: WindowSnapshot,
    /// Queue wait over the trailing window (virtual seconds).
    pub queue_wait: WindowSnapshot,
    /// Fraction of windowed completions served at least partly from the
    /// semantic cache.
    pub cache_hit_rate: f64,
    /// Burn-rate evaluation of the tenant's declared SLO targets.
    pub slo: SloVerdict,
}

impl TenantHealth {
    /// Serializes as one `health` JSONL object.
    pub fn to_json(&self) -> Json {
        Json::obj()
            .field("type", "health")
            .field("tenant", self.tenant.as_str())
            .field("latency", self.latency.to_json())
            .field("cost_usd", self.cost.to_json())
            .field("queue_wait", self.queue_wait.to_json())
            .field("cache_hit_rate", self.cache_hit_rate)
            .field("slo", self.slo.to_json())
    }
}

/// Aggregates for one tenant.
#[derive(Debug, Clone, Default)]
pub struct TenantReport {
    /// Requests the tenant submitted.
    pub submitted: u64,
    /// Requests admitted into the queue.
    pub admitted: u64,
    /// Requests served to completion.
    pub completed: u64,
    /// Requests shed, by typed-reason kind.
    pub shed: BTreeMap<&'static str, u64>,
    /// Dollars attributed to the tenant.
    pub cost_usd: f64,
    /// Tokens attributed to the tenant.
    pub tokens: u64,
    /// Billed LLM calls attributed to the tenant.
    pub llm_calls: u64,
    /// Semantic-cache hits attributed to the tenant.
    pub cache_hits: u64,
    /// Semantic-cache coalesced waiters attributed to the tenant.
    pub cache_coalesced: u64,
    /// Semantic-cache misses attributed to the tenant.
    pub cache_misses: u64,
    /// End-to-end latency summary (virtual seconds).
    pub latency: Summary,
    /// Queue-wait summary (virtual seconds).
    pub queue_wait: Summary,
}

impl TenantReport {
    /// Total requests shed across reasons.
    pub fn shed_total(&self) -> u64 {
        self.shed.values().sum()
    }
}

/// Everything one [`QueryService::run`] observed.
///
/// [`QueryService::run`]: crate::QueryService::run
#[derive(Debug, Clone, Default)]
pub struct ServiceReport {
    /// Worker-pool size the run was served with.
    pub workers: usize,
    /// Served queries in dispatch order.
    pub completions: Vec<Completion>,
    /// Refused requests in rejection order.
    pub sheds: Vec<Shed>,
    /// Per-tenant aggregates, in tenant-id order.
    pub tenants: BTreeMap<TenantId, TenantReport>,
    /// Queue depth sampled at every admission and dispatch.
    pub queue_depth: Gauge,
    /// Virtual instant the last worker finished.
    pub makespan_s: f64,
    /// Dollars across all tenants.
    pub total_cost_usd: f64,
    /// Context-reuse hits across the run.
    pub reuse_hits: u64,
    /// Context-reuse misses across the run.
    pub reuse_misses: u64,
    /// Contexts evicted by the ContextManager capacity bound.
    pub evictions: u64,
    /// Semantic-cache hits across the run (zero-spend LLM calls).
    pub cache_hits: u64,
    /// Semantic-cache coalesced waiters across the run.
    pub cache_coalesced: u64,
    /// Semantic-cache misses across the run.
    pub cache_misses: u64,
    /// Resident semantic-cache bytes when the run finished (`None` when
    /// the runtime has no cache configured).
    pub cache_bytes: Option<u64>,
    /// The same workload's cost through isolated per-tenant runtimes
    /// (filled by [`ServiceReport::set_isolated_baseline`]; `None` when
    /// the baseline wasn't run).
    pub isolated_cost_usd: Option<f64>,
    /// Ledger-WAL records appended during the run (admits + spends).
    pub wal_appends: u64,
    /// Ledger-WAL compactions triggered during the run.
    pub wal_compactions: u64,
    /// Compactions found due on the query path and deferred to the
    /// ops-interval hook (one count per completion served while due).
    pub wal_compactions_deferred: u64,
    /// Ledger-WAL records replayed at startup before this run.
    pub wal_replayed: u64,
    /// Data-file fsyncs the ledger WAL issued during the run.
    pub wal_fsyncs: u64,
    /// Group-commit batches flushed during the run (one fsync each).
    pub wal_group_flushes: u64,
    /// WAL tails sealed into immutable segments during the run.
    pub wal_segments_sealed: u64,
    /// The crash-staleness bound in records: the durable log trails the
    /// in-memory ledger by at most this many records (1 = per-record
    /// durability; >1 = group commit; 0 = no WAL attached).
    pub wal_batch_bound: u64,
    /// True when a WAL append or compaction failed and dispatch stopped
    /// early (crash semantics: the durable log is at most
    /// `wal_batch_bound` records behind the in-memory ledger).
    pub wal_failed: bool,
    /// Per-tenant windowed health rows, in tenant-id order (empty until
    /// a run evaluates them).
    pub health: Vec<TenantHealth>,
    /// Windowed admission-queue depth statistics (service-wide).
    pub queue_depth_health: Option<WindowSnapshot>,
    /// Tenants whose SLO burn rates were alerting at end of run.
    pub slo_alerts: u64,
    /// Autoscaler moves committed during the run, in virtual-time order
    /// (empty when no autoscaler was configured).
    pub scale_events: Vec<ScaleEvent>,
    /// Integral of active workers over the run: `Σ active(t) dt` up to
    /// the makespan. With a fixed pool this is `workers * makespan_s`;
    /// with an autoscaler it is what the latency target actually cost.
    pub worker_seconds: f64,
    /// Live front-door traffic and client outcomes (`None` in batch
    /// replay).
    pub net: Option<NetReport>,
    /// True when the static cost-bound admission gate was configured
    /// for the run (`ServeConfig::cost_bounds`).
    pub bounds_gated: bool,
    /// Instructions the static bound gate checked (Pyrite plans only;
    /// cache hits included).
    pub bounds_checked: u64,
    /// Checked instructions whose dollar bound was not finite (admitted
    /// conservatively).
    pub bounds_unbounded: u64,
    /// Gate verdicts served from the plan-hash cache.
    pub bounds_cache_hits: u64,
}

impl ServiceReport {
    /// Records what the workload costs without the shared runtime, for
    /// the headline shared-vs-isolated comparison.
    pub fn set_isolated_baseline(&mut self, cost_usd: f64) {
        self.isolated_cost_usd = Some(cost_usd);
    }

    /// Reuse hit rate over the first half of completions (dispatch
    /// order) — the cold half.
    pub fn first_half_hit_rate(&self) -> f64 {
        Self::hit_rate(&self.completions[..self.completions.len() / 2])
    }

    /// Reuse hit rate over the second half of completions — the warmed
    /// half. Cross-tenant reuse shows up as this exceeding the first.
    pub fn second_half_hit_rate(&self) -> f64 {
        Self::hit_rate(&self.completions[self.completions.len() / 2..])
    }

    /// Semantic-cache hit rate across the run: hits + coalesced waiters
    /// over all cache lookups (both avoid a billed LLM call).
    pub fn cache_hit_rate(&self) -> f64 {
        let saved = self.cache_hits + self.cache_coalesced;
        let lookups = saved + self.cache_misses;
        if lookups == 0 {
            0.0
        } else {
            saved as f64 / lookups as f64
        }
    }

    /// Scale-up moves committed during the run.
    pub fn scale_ups(&self) -> u64 {
        self.scale_events
            .iter()
            .filter(|e| e.direction() == "up")
            .count() as u64
    }

    /// Scale-down moves committed during the run.
    pub fn scale_downs(&self) -> u64 {
        self.scale_events
            .iter()
            .filter(|e| e.direction() == "down")
            .count() as u64
    }

    /// Requests shed because a static cost bound exceeded the tenant's
    /// remaining dollars.
    pub fn bounds_rejects(&self) -> u64 {
        self.sheds
            .iter()
            .filter(|s| s.reason.kind() == "cost_bound_exceeded")
            .count() as u64
    }

    fn hit_rate(completions: &[Completion]) -> f64 {
        let hits: u64 = completions.iter().map(|c| c.reuse_hits).sum();
        let misses: u64 = completions.iter().map(|c| c.reuse_misses).sum();
        if hits + misses == 0 {
            0.0
        } else {
            hits as f64 / (hits + misses) as f64
        }
    }

    /// Renders the service dashboard.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "SERVICE REPORT  ({} workers, {} served, {} shed)",
            self.workers,
            self.completions.len(),
            self.sheds.len()
        );
        let _ = writeln!(
            out,
            "{:<10} {:>9} {:>8} {:>5} {:>9} {:>10} {:>8} {:>8} {:>8} {:>8}",
            "tenant",
            "submitted",
            "admitted",
            "shed",
            "served",
            "$spend",
            "tokens",
            "p50 s",
            "p95 s",
            "p99 s"
        );
        for (tenant, report) in &self.tenants {
            let _ = writeln!(
                out,
                "{:<10} {:>9} {:>8} {:>5} {:>9} {:>10.4} {:>8} {:>8.1} {:>8.1} {:>8.1}",
                tenant.as_str(),
                report.submitted,
                report.admitted,
                report.shed_total(),
                report.completed,
                report.cost_usd,
                report.tokens,
                report.latency.p50(),
                report.latency.p95(),
                report.latency.p99(),
            );
        }
        let mut shed_by_reason: BTreeMap<&'static str, u64> = BTreeMap::new();
        for report in self.tenants.values() {
            for (kind, n) in &report.shed {
                *shed_by_reason.entry(kind).or_insert(0) += n;
            }
        }
        if !shed_by_reason.is_empty() {
            let rendered: Vec<String> = shed_by_reason
                .iter()
                .map(|(kind, n)| format!("{kind}={n}"))
                .collect();
            let _ = writeln!(out, "shed by reason: {}", rendered.join(" "));
        }
        let _ = writeln!(
            out,
            "queue depth: max {:.0}, final {:.0}  ({} samples)",
            self.queue_depth.max(),
            self.queue_depth.last(),
            self.queue_depth.samples.len()
        );
        let _ = writeln!(
            out,
            "context reuse: {} hits / {} misses  (first half {:.1}%, second half {:.1}%)  evictions={}",
            self.reuse_hits,
            self.reuse_misses,
            100.0 * self.first_half_hit_rate(),
            100.0 * self.second_half_hit_rate(),
            self.evictions,
        );
        if self.cache_bytes.is_some()
            || self.cache_hits + self.cache_coalesced + self.cache_misses > 0
        {
            let _ = writeln!(
                out,
                "semantic cache: {} hits / {} coalesced / {} misses  (hit rate {:.1}%, {} bytes resident)",
                self.cache_hits,
                self.cache_coalesced,
                self.cache_misses,
                100.0 * self.cache_hit_rate(),
                self.cache_bytes.unwrap_or(0),
            );
        }
        if self.bounds_gated {
            let _ = writeln!(
                out,
                "cost bounds: {} plans checked, {} unbounded, {} over-budget rejects  ({} cache hits)",
                self.bounds_checked,
                self.bounds_unbounded,
                self.bounds_rejects(),
                self.bounds_cache_hits,
            );
        }
        self.render_health(&mut out);
        self.render_pool(&mut out);
        self.render_durability(&mut out);
        match self.isolated_cost_usd {
            Some(isolated) if isolated > 0.0 => {
                let _ = writeln!(
                    out,
                    "total cost: ${:.4} shared vs ${:.4} isolated per-tenant runtimes ({:.1}% saved)",
                    self.total_cost_usd,
                    isolated,
                    100.0 * (1.0 - self.total_cost_usd / isolated),
                );
            }
            _ => {
                let _ = writeln!(out, "total cost: ${:.4} shared", self.total_cost_usd);
            }
        }
        let _ = writeln!(out, "makespan: {:.1} virtual s", self.makespan_s);
        out
    }

    /// The windowed-health section of the dashboard (one row per tenant
    /// with an SLO verdict), skipped when no run evaluated health.
    fn render_health(&self, out: &mut String) {
        if self.health.is_empty() {
            return;
        }
        let window_s = self.health[0].latency.window_s;
        let _ = writeln!(
            out,
            "health ({window_s:.0}s window, {} slo alerts):",
            self.slo_alerts
        );
        for h in &self.health {
            let burns: Vec<String> = h
                .slo
                .burns
                .iter()
                .map(|b| format!("{} {:.2}/{:.2}", b.kind.name(), b.fast, b.slow))
                .collect();
            let _ = writeln!(
                out,
                "  {:<10} n={:<4} p50 {:>6.1}s p95 {:>6.1}s p99 {:>6.1}s  ${:.4}/q  cache {:>5.1}%  slo {}{}",
                h.tenant.as_str(),
                h.latency.count,
                h.latency.p50,
                h.latency.p95,
                h.latency.p99,
                h.cost.mean,
                100.0 * h.cache_hit_rate,
                h.slo.verdict(),
                if burns.is_empty() {
                    String::new()
                } else {
                    format!("  (burn {})", burns.join(", "))
                },
            );
        }
    }

    /// The worker-pool and front-door sections: autoscaler moves plus
    /// the live listener's traffic and client outcomes.
    fn render_pool(&self, out: &mut String) {
        if !self.scale_events.is_empty() || self.worker_seconds > 0.0 {
            let final_workers = self
                .scale_events
                .last()
                .map(|e| e.to)
                .unwrap_or(self.workers);
            let _ = writeln!(
                out,
                "autoscale: {} ups / {} downs  (worker-seconds {:.1}, final pool {})",
                self.scale_ups(),
                self.scale_downs(),
                self.worker_seconds,
                final_workers,
            );
        }
        if let Some(net) = &self.net {
            let _ = writeln!(
                out,
                "front door: {} conns ({} peak open, {} closed), {} frames in / {} out, {} bytes in / {} out, {} plan-hash hits, {} wire errors",
                net.stats.conns_opened,
                net.stats.conns_peak,
                net.stats.conns_closed,
                net.stats.frames_in,
                net.stats.frames_out,
                net.stats.bytes_in,
                net.stats.bytes_out,
                net.stats.plan_hash_hits,
                net.stats.wire_error_total(),
            );
            let _ = writeln!(
                out,
                "clients: {} total — {} completed, {} retries exhausted, {} abandoned, {} wire failed  ({} queries, {} retries)",
                net.clients,
                net.clients_completed,
                net.clients_retries_exhausted,
                net.clients_abandoned,
                net.clients_wire_failed,
                net.client_queries,
                net.client_retries,
            );
        }
    }

    /// The ledger-WAL durability section, skipped when no WAL touched
    /// the run.
    fn render_durability(&self, out: &mut String) {
        if self.wal_appends + self.wal_replayed == 0 && !self.wal_failed {
            return;
        }
        let _ = writeln!(
            out,
            "durability: {} wal appends / {} compactions  ({} replayed at startup{})",
            self.wal_appends,
            self.wal_compactions,
            self.wal_replayed,
            if self.wal_failed { ", WAL FAILED" } else { "" },
        );
        let _ = writeln!(
            out,
            "log i/o: {} fsyncs / {} group flushes  (staleness bound {} records, {} segments sealed, {} compactions deferred)",
            self.wal_fsyncs,
            self.wal_group_flushes,
            self.wal_batch_bound,
            self.wal_segments_sealed,
            self.wal_compactions_deferred,
        );
    }

    /// Folds one completion into the per-tenant aggregates and the
    /// dispatch-ordered completion log. The scheduler calls this once
    /// per served query.
    pub(crate) fn settle(&mut self, completion: Completion) {
        let tenant_report = self.tenants.entry(completion.tenant.clone()).or_default();
        tenant_report.completed += 1;
        tenant_report.cost_usd += completion.cost_usd;
        tenant_report.tokens += completion.tokens;
        tenant_report.llm_calls += completion.llm_calls;
        tenant_report.cache_hits += completion.cache_hits;
        tenant_report.cache_coalesced += completion.cache_coalesced;
        tenant_report.cache_misses += completion.cache_misses;
        tenant_report.latency.record(completion.latency_s());
        tenant_report.queue_wait.record(completion.queue_wait_s());
        self.completions.push(completion);
    }

    /// Exports the run as JSONL: one `query` line per completion in
    /// dispatch order, one `shed` line per rejection, one `tenant` line
    /// per tenant, and a final `service` summary line. Only virtual time
    /// appears, so two same-seed runs export identical bytes.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for c in &self.completions {
            let line = Json::obj()
                .field("type", "query")
                .field("seq", c.seq)
                .field("tenant", c.tenant.as_str())
                .field("worker", c.worker as u64)
                .field("submitted_s", c.submitted_s)
                .field("arrival_s", c.arrival_s)
                .field("admit_s", c.admit_s)
                .field("start_s", c.start_s)
                .field("end_s", c.end_s)
                .field("latency_s", c.latency_s())
                .field("queue_wait_s", c.queue_wait_s())
                .field("ingest_s", c.ingest_s())
                .field("cost_usd", c.cost_usd)
                .field("tokens", c.tokens)
                .field("llm_calls", c.llm_calls)
                .field("reuse_hits", c.reuse_hits)
                .field("reuse_misses", c.reuse_misses)
                .field("cache_hits", c.cache_hits)
                .field("cache_coalesced", c.cache_coalesced)
                .field("cache_misses", c.cache_misses)
                .field("answered", c.answered);
            out.push_str(&line.render());
            out.push('\n');
        }
        for s in &self.sheds {
            let line = Json::obj()
                .field("type", "shed")
                .field("seq", s.seq)
                .field("tenant", s.tenant.as_str())
                .field("at_s", s.at_s)
                .field("reason", s.reason.kind())
                .field("detail", s.reason.to_string());
            out.push_str(&line.render());
            out.push('\n');
        }
        for e in &self.scale_events {
            out.push_str(&e.to_json().render());
            out.push('\n');
        }
        if let Some(net) = &self.net {
            out.push_str(&net.to_json().render());
            out.push('\n');
        }
        for (tenant, report) in &self.tenants {
            let mut shed = Json::obj();
            for (kind, n) in &report.shed {
                shed = shed.field(kind, *n);
            }
            let line = Json::obj()
                .field("type", "tenant")
                .field("tenant", tenant.as_str())
                .field("submitted", report.submitted)
                .field("admitted", report.admitted)
                .field("completed", report.completed)
                .field("shed", shed)
                .field("cost_usd", report.cost_usd)
                .field("tokens", report.tokens)
                .field("llm_calls", report.llm_calls)
                .field("cache_hits", report.cache_hits)
                .field("cache_coalesced", report.cache_coalesced)
                .field("cache_misses", report.cache_misses)
                .field("latency", report.latency.to_json())
                .field("queue_wait", report.queue_wait.to_json());
            out.push_str(&line.render());
            out.push('\n');
        }
        for h in &self.health {
            out.push_str(&h.to_json().render());
            out.push('\n');
        }
        let mut summary = Json::obj()
            .field("type", "service")
            .field("workers", self.workers as u64)
            .field("served", self.completions.len() as u64)
            .field("shed", self.sheds.len() as u64)
            .field("total_cost_usd", self.total_cost_usd)
            .field("reuse_hits", self.reuse_hits)
            .field("reuse_misses", self.reuse_misses)
            .field("first_half_hit_rate", self.first_half_hit_rate())
            .field("second_half_hit_rate", self.second_half_hit_rate())
            .field("evictions", self.evictions)
            .field("cache_hits", self.cache_hits)
            .field("cache_coalesced", self.cache_coalesced)
            .field("cache_misses", self.cache_misses)
            .field("cache_hit_rate", self.cache_hit_rate())
            .field("wal_appends", self.wal_appends)
            .field("wal_compactions", self.wal_compactions)
            .field("wal_compactions_deferred", self.wal_compactions_deferred)
            .field("wal_replayed", self.wal_replayed)
            .field("wal_fsyncs", self.wal_fsyncs)
            .field("wal_group_flushes", self.wal_group_flushes)
            .field("wal_segments_sealed", self.wal_segments_sealed)
            .field("wal_batch_bound", self.wal_batch_bound)
            .field("wal_failed", self.wal_failed)
            .field("bounds_gated", self.bounds_gated)
            .field("bounds_checked", self.bounds_checked)
            .field("bounds_unbounded", self.bounds_unbounded)
            .field("bounds_rejects", self.bounds_rejects())
            .field("bounds_cache_hits", self.bounds_cache_hits)
            .field("slo_alerts", self.slo_alerts)
            .field("scale_ups", self.scale_ups())
            .field("scale_downs", self.scale_downs())
            .field("worker_seconds", self.worker_seconds)
            .field("makespan_s", self.makespan_s)
            .field("queue_depth", self.queue_depth.to_json());
        if let Some(bytes) = self.cache_bytes {
            summary = summary.field("cache_bytes", bytes);
        }
        if let Some(isolated) = self.isolated_cost_usd {
            summary = summary.field("isolated_cost_usd", isolated);
        }
        out.push_str(&summary.render());
        out.push('\n');
        out
    }

    /// Exports the windowed health rows as standalone JSONL — one
    /// `health` line per tenant plus a final `health_summary` line. This
    /// is the payload of `results/health.jsonl`; only virtual time and
    /// deterministic statistics appear, so two same-seed runs export
    /// identical bytes.
    pub fn health_jsonl(&self) -> String {
        let mut out = String::new();
        for h in &self.health {
            out.push_str(&h.to_json().render());
            out.push('\n');
        }
        let mut summary = Json::obj()
            .field("type", "health_summary")
            .field("tenants", self.health.len() as u64)
            .field("slo_alerts", self.slo_alerts)
            .field("makespan_s", self.makespan_s);
        if let Some(depth) = &self.queue_depth_health {
            summary = summary.field("queue_depth", depth.to_json());
        }
        out.push_str(&summary.render());
        out.push('\n');
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn completion(seq: u64, hits: u64, misses: u64) -> Completion {
        Completion {
            seq,
            tenant: "t".into(),
            worker: 0,
            submitted_s: 0.0,
            arrival_s: 0.0,
            admit_s: 0.0,
            start_s: 1.0,
            end_s: 2.0,
            cost_usd: 0.5,
            tokens: 100,
            llm_calls: 1,
            reuse_hits: hits,
            reuse_misses: misses,
            cache_hits: 0,
            cache_coalesced: 0,
            cache_misses: 0,
            answered: true,
        }
    }

    #[test]
    fn half_split_hit_rates() {
        let mut report = ServiceReport::default();
        // First half: all misses. Second half: all hits.
        report.completions.push(completion(0, 0, 2));
        report.completions.push(completion(1, 0, 2));
        report.completions.push(completion(2, 2, 0));
        report.completions.push(completion(3, 2, 0));
        assert_eq!(report.first_half_hit_rate(), 0.0);
        assert_eq!(report.second_half_hit_rate(), 1.0);
    }

    #[test]
    fn empty_report_renders_and_exports() {
        let report = ServiceReport::default();
        assert_eq!(report.first_half_hit_rate(), 0.0);
        let text = report.render();
        assert!(text.contains("SERVICE REPORT"));
        let jsonl = report.to_jsonl();
        assert!(jsonl.trim_end().ends_with('}'));
        assert!(jsonl.contains(r#""type":"service""#));
    }

    #[test]
    fn jsonl_lines_are_typed() {
        let mut report = ServiceReport::default();
        report.completions.push(completion(7, 1, 0));
        report.sheds.push(Shed {
            seq: 8,
            tenant: "t".into(),
            at_s: 3.0,
            reason: crate::RejectReason::UnknownTenant,
        });
        report.tenants.insert("t".into(), TenantReport::default());
        let jsonl = report.to_jsonl();
        let lines: Vec<&str> = jsonl.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with(r#"{"type":"query","seq":7"#));
        assert!(lines[1].starts_with(r#"{"type":"shed","seq":8"#));
        assert!(lines[2].starts_with(r#"{"type":"tenant""#));
        assert!(lines[3].starts_with(r#"{"type":"service""#));
    }

    #[test]
    fn cache_line_renders_only_when_cache_was_active() {
        let mut report = ServiceReport::default();
        assert!(!report.render().contains("semantic cache"));
        report.cache_hits = 6;
        report.cache_coalesced = 2;
        report.cache_misses = 8;
        report.cache_bytes = Some(1024);
        let text = report.render();
        assert!(
            text.contains("semantic cache: 6 hits / 2 coalesced / 8 misses"),
            "{text}"
        );
        assert!(text.contains("hit rate 50.0%"), "{text}");
        let jsonl = report.to_jsonl();
        assert!(jsonl.contains(r#""cache_hits":6"#));
        assert!(jsonl.contains(r#""cache_bytes":1024"#));
    }

    #[test]
    fn durability_line_renders_only_when_wal_was_active() {
        let mut report = ServiceReport::default();
        assert!(!report.render().contains("durability:"));
        report.wal_appends = 12;
        report.wal_compactions = 1;
        report.wal_replayed = 4;
        let text = report.render();
        assert!(
            text.contains("durability: 12 wal appends / 1 compactions  (4 replayed at startup)"),
            "{text}"
        );
        report.wal_failed = true;
        assert!(report.render().contains("WAL FAILED"));
        let jsonl = report.to_jsonl();
        assert!(jsonl.contains(r#""wal_appends":12"#));
        assert!(jsonl.contains(r#""wal_failed":true"#));
    }

    #[test]
    fn log_io_line_surfaces_group_commit_and_staleness_bound() {
        let mut report = ServiceReport::default();
        assert!(!report.render().contains("log i/o:"));
        report.wal_appends = 40;
        report.wal_fsyncs = 6;
        report.wal_group_flushes = 5;
        report.wal_batch_bound = 8;
        report.wal_segments_sealed = 2;
        report.wal_compactions_deferred = 3;
        let text = report.render();
        assert!(
            text.contains(
                "log i/o: 6 fsyncs / 5 group flushes  (staleness bound 8 records, 2 segments sealed, 3 compactions deferred)"
            ),
            "{text}"
        );
        let jsonl = report.to_jsonl();
        assert!(jsonl.contains(r#""wal_fsyncs":6"#));
        assert!(jsonl.contains(r#""wal_group_flushes":5"#));
        assert!(jsonl.contains(r#""wal_batch_bound":8"#));
        assert!(jsonl.contains(r#""wal_segments_sealed":2"#));
        assert!(jsonl.contains(r#""wal_compactions_deferred":3"#));
    }

    fn health_row(tenant: &str, alerting: bool) -> TenantHealth {
        let snap = |v: f64| WindowSnapshot {
            window_s: 300.0,
            count: 4,
            mean: v,
            p50: v,
            p95: v,
            p99: v,
        };
        TenantHealth {
            tenant: tenant.into(),
            latency: snap(2.0),
            cost: snap(0.001),
            queue_wait: snap(0.5),
            cache_hit_rate: 0.25,
            slo: SloVerdict {
                tenant: tenant.to_string(),
                burns: vec![aida_obs::BurnRate {
                    kind: aida_obs::SloKind::Latency,
                    fast: if alerting { 3.0 } else { 0.0 },
                    slow: if alerting { 2.0 } else { 0.0 },
                    alerting,
                }],
                alerting,
            },
        }
    }

    #[test]
    fn health_section_renders_and_exports() {
        let mut report = ServiceReport::default();
        assert!(!report.render().contains("health ("));
        report.health.push(health_row("acme", true));
        report.health.push(health_row("bolt", false));
        report.slo_alerts = 1;
        let text = report.render();
        assert!(
            text.contains("health (300s window, 1 slo alerts):"),
            "{text}"
        );
        assert!(text.contains("slo breach"), "{text}");
        assert!(text.contains("slo ok"), "{text}");
        let health = report.health_jsonl();
        let lines: Vec<&str> = health.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].starts_with(r#"{"type":"health","tenant":"acme""#));
        assert!(lines[0].contains(r#""verdict":"breach""#));
        assert!(lines[2].starts_with(r#"{"type":"health_summary","tenants":2,"slo_alerts":1"#));
        // The combined export carries the same rows plus a summary field.
        let jsonl = report.to_jsonl();
        assert!(jsonl.contains(r#""type":"health""#));
        assert!(jsonl.contains(r#""slo_alerts":1"#));
    }

    #[test]
    fn autoscale_section_renders_and_exports() {
        let mut report = ServiceReport::default();
        assert!(!report.render().contains("autoscale:"));
        report.workers = 8;
        report.worker_seconds = 750.0;
        report.scale_events.push(ScaleEvent {
            at_s: 60.0,
            from: 2,
            to: 3,
            p99_s: 40.0,
            fast_burn: 3.0,
            slow_burn: 2.0,
            queue_depth: 6,
        });
        report.scale_events.push(ScaleEvent {
            at_s: 400.0,
            from: 3,
            to: 2,
            p99_s: 4.0,
            fast_burn: 0.0,
            slow_burn: 0.2,
            queue_depth: 0,
        });
        let text = report.render();
        assert!(
            text.contains("autoscale: 1 ups / 1 downs  (worker-seconds 750.0, final pool 2)"),
            "{text}"
        );
        let jsonl = report.to_jsonl();
        assert!(jsonl.contains(r#"{"type":"scale","at_s":60"#), "{jsonl}");
        assert!(jsonl.contains(r#""scale_ups":1"#) && jsonl.contains(r#""scale_downs":1"#));
        assert!(jsonl.contains(r#""worker_seconds":750"#));
    }

    #[test]
    fn net_section_renders_and_exports() {
        let mut report = ServiceReport::default();
        assert!(!report.render().contains("front door:"));
        let mut net = NetReport {
            clients: 4,
            clients_completed: 3,
            clients_retries_exhausted: 1,
            client_retries: 5,
            client_queries: 9,
            ..NetReport::default()
        };
        net.stats.conns_opened = 4;
        net.stats.conns_closed = 4;
        net.stats.conns_peak = 3;
        net.stats.frames_in = 14;
        net.stats.frames_out = 23;
        net.stats.wire_errors.insert("bad_magic".to_string(), 2);
        report.net = Some(net);
        let text = report.render();
        assert!(
            text.contains("front door: 4 conns (3 peak open, 4 closed)"),
            "{text}"
        );
        assert!(
            text.contains("clients: 4 total — 3 completed, 1 retries exhausted"),
            "{text}"
        );
        let jsonl = report.to_jsonl();
        assert!(
            jsonl.contains(r#"{"type":"net","conns_opened":4"#),
            "{jsonl}"
        );
        assert!(
            jsonl.contains(r#""wire_errors":{"bad_magic":2}"#),
            "{jsonl}"
        );
    }

    #[test]
    fn query_lines_carry_the_full_timestamp_chain() {
        let mut report = ServiceReport::default();
        let mut c = completion(0, 0, 0);
        c.submitted_s = 0.5;
        c.arrival_s = 1.0;
        c.admit_s = 1.0;
        report.completions.push(c);
        let jsonl = report.to_jsonl();
        assert!(
            jsonl.contains(r#""submitted_s":0.5,"arrival_s":1,"admit_s":1"#),
            "{jsonl}"
        );
        assert!(jsonl.contains(r#""queue_wait_s":0"#), "{jsonl}");
        assert!(jsonl.contains(r#""ingest_s":0.5"#), "{jsonl}");
    }

    #[test]
    fn isolated_baseline_changes_render() {
        let mut report = ServiceReport {
            total_cost_usd: 1.0,
            ..Default::default()
        };
        assert!(report.render().contains("$1.0000 shared\n"));
        report.set_isolated_baseline(4.0);
        let text = report.render();
        assert!(text.contains("75.0% saved"), "{text}");
    }
}
