//! The session/request model: tenants, priorities, query requests, and
//! typed admission rejections.

use std::fmt;

/// Identifies one tenant (a paying user or team multiplexed onto the
/// shared runtime).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TenantId(String);

impl TenantId {
    /// Creates a tenant id.
    pub fn new(id: impl Into<String>) -> TenantId {
        TenantId(id.into())
    }

    /// The id as a string slice.
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl fmt::Display for TenantId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl From<&str> for TenantId {
    fn from(id: &str) -> TenantId {
        TenantId::new(id)
    }
}

/// Scheduling priority within a tenant's queue (higher pops first;
/// FIFO within a level).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Default)]
pub enum Priority {
    /// Background / best-effort.
    Low,
    /// The default.
    #[default]
    Normal,
    /// Latency-sensitive.
    High,
}

impl Priority {
    /// Queue-slot index (0 = highest priority).
    pub(crate) fn slot(self) -> usize {
        match self {
            Priority::High => 0,
            Priority::Normal => 1,
            Priority::Low => 2,
        }
    }

    /// Stable lowercase label.
    pub fn name(self) -> &'static str {
        match self {
            Priority::High => "high",
            Priority::Normal => "normal",
            Priority::Low => "low",
        }
    }

    /// Wire-protocol code (see `net`): 0 = low, 1 = normal, 2 = high.
    pub fn code(self) -> u8 {
        match self {
            Priority::Low => 0,
            Priority::Normal => 1,
            Priority::High => 2,
        }
    }

    /// Decodes a wire-protocol code; anything else is `None`.
    pub fn from_code(code: u8) -> Option<Priority> {
        match code {
            0 => Some(Priority::Low),
            1 => Some(Priority::Normal),
            2 => Some(Priority::High),
            _ => None,
        }
    }
}

/// One query submitted to the service: a `compute` instruction against a
/// named registered Context, on behalf of a tenant.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryRequest {
    /// Submission sequence number (unique; assigned by the driver or by
    /// the caller). Ties on `arrival_s` resolve by `seq`.
    pub seq: u64,
    /// The requesting tenant.
    pub tenant: TenantId,
    /// Name of a Context registered with the service.
    pub context: String,
    /// The `compute` instruction to run.
    pub instruction: String,
    /// Scheduling priority within the tenant's queue.
    pub priority: Priority,
    /// Maximum virtual seconds the request may wait in the queue before
    /// it is shed instead of dispatched.
    pub deadline_s: Option<f64>,
    /// Virtual instant the request reached the service (open-loop: set
    /// by the workload driver; live: when the front door decoded the
    /// frame).
    pub arrival_s: f64,
    /// Virtual instant the *client* sent the request. In batch replay
    /// this equals `arrival_s`; over the live front door it precedes it
    /// by the wire's ingest delay.
    pub submitted_s: f64,
}

impl QueryRequest {
    /// Creates a normal-priority request arriving at t = 0.
    pub fn new(
        tenant: impl Into<TenantId>,
        context: impl Into<String>,
        instruction: impl Into<String>,
    ) -> QueryRequest {
        QueryRequest {
            seq: 0,
            tenant: tenant.into(),
            context: context.into(),
            instruction: instruction.into(),
            priority: Priority::Normal,
            deadline_s: None,
            arrival_s: 0.0,
            submitted_s: 0.0,
        }
    }

    /// Sets the arrival instant (and, for batch replay, the submit
    /// instant with it — a replayed request has no wire delay).
    pub fn at(mut self, arrival_s: f64) -> QueryRequest {
        self.arrival_s = arrival_s;
        self.submitted_s = arrival_s;
        self
    }

    /// Sets the client-side submit instant independently of arrival
    /// (live traffic: submit precedes arrival by the ingest delay).
    pub fn submitted(mut self, submitted_s: f64) -> QueryRequest {
        self.submitted_s = submitted_s;
        self
    }

    /// Sets the priority.
    pub fn priority(mut self, priority: Priority) -> QueryRequest {
        self.priority = priority;
        self
    }

    /// Sets the queueing deadline.
    pub fn deadline(mut self, deadline_s: f64) -> QueryRequest {
        self.deadline_s = Some(deadline_s);
        self
    }
}

impl From<String> for TenantId {
    fn from(id: String) -> TenantId {
        TenantId(id)
    }
}

/// Why a request was shed instead of executed. Every rejection is typed
/// so clients can distinguish "try later" (queue pressure) from "stop
/// sending" (budget) without parsing strings.
#[derive(Debug, Clone, PartialEq)]
pub enum RejectReason {
    /// The admission queue is at capacity (backpressure / load shedding).
    QueueFull {
        /// Queue depth at rejection time.
        depth: usize,
        /// The configured bound.
        capacity: usize,
    },
    /// The tenant's dollar quota is exhausted.
    BudgetExhausted {
        /// Dollars the tenant has spent so far.
        spent_usd: f64,
        /// The tenant's quota.
        quota_usd: f64,
    },
    /// The tenant's token quota is exhausted.
    TokensExhausted {
        /// Tokens the tenant has spent so far.
        spent_tokens: u64,
        /// The tenant's quota.
        quota_tokens: u64,
    },
    /// The request waited in the queue past its deadline.
    DeadlineExpired {
        /// Virtual seconds the request waited.
        waited_s: f64,
        /// The request's deadline.
        deadline_s: f64,
    },
    /// The request names a Context the service doesn't know.
    UnknownContext {
        /// The unknown name.
        name: String,
    },
    /// The request names a tenant the service doesn't know (strict mode).
    UnknownTenant,
    /// Static analysis proved the request's worst-case spend exceeds
    /// the tenant's remaining dollar quota, so it was shed *before*
    /// dispatch at zero attributed cost (see `aida_script::bounds`).
    CostBoundExceeded {
        /// The plan's static worst-case dollars at the serving tier.
        usd_max: f64,
        /// Dollars the tenant had left when the request arrived.
        remaining_usd: f64,
    },
}

impl RejectReason {
    /// Stable lowercase kind label (counter keys, JSONL).
    pub fn kind(&self) -> &'static str {
        match self {
            RejectReason::QueueFull { .. } => "queue_full",
            RejectReason::BudgetExhausted { .. } => "budget_exhausted",
            RejectReason::TokensExhausted { .. } => "tokens_exhausted",
            RejectReason::DeadlineExpired { .. } => "deadline_expired",
            RejectReason::UnknownContext { .. } => "unknown_context",
            RejectReason::UnknownTenant => "unknown_tenant",
            RejectReason::CostBoundExceeded { .. } => "cost_bound_exceeded",
        }
    }

    /// Whether a client that backs off and retries can expect a
    /// different answer. Queue pressure and queue-wait deadline expiry
    /// are transient; exhausted quotas and unknown names are not.
    pub fn retryable(&self) -> bool {
        matches!(
            self,
            RejectReason::QueueFull { .. } | RejectReason::DeadlineExpired { .. }
        )
    }
}

impl fmt::Display for RejectReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RejectReason::QueueFull { depth, capacity } => {
                write!(f, "queue full ({depth}/{capacity})")
            }
            RejectReason::BudgetExhausted {
                spent_usd,
                quota_usd,
            } => write!(f, "budget exhausted (${spent_usd:.4} of ${quota_usd:.4})"),
            RejectReason::TokensExhausted {
                spent_tokens,
                quota_tokens,
            } => write!(f, "tokens exhausted ({spent_tokens} of {quota_tokens})"),
            RejectReason::DeadlineExpired {
                waited_s,
                deadline_s,
            } => write!(
                f,
                "deadline expired (waited {waited_s:.1}s > {deadline_s:.1}s)"
            ),
            RejectReason::UnknownContext { name } => write!(f, "unknown context {name:?}"),
            RejectReason::UnknownTenant => write!(f, "unknown tenant"),
            RejectReason::CostBoundExceeded {
                usd_max,
                remaining_usd,
            } => write!(
                f,
                "cost bound exceeded (worst case ${usd_max:.4} > ${remaining_usd:.4} remaining)"
            ),
        }
    }
}

/// A request the service refused, with when and why.
#[derive(Debug, Clone, PartialEq)]
pub struct Shed {
    /// The refused request's sequence number.
    pub seq: u64,
    /// The refused request's tenant.
    pub tenant: TenantId,
    /// Virtual instant of the rejection.
    pub at_s: f64,
    /// The typed reason.
    pub reason: RejectReason,
}

/// One served query: placement, latency, and attributed spend.
#[derive(Debug, Clone, PartialEq)]
pub struct Completion {
    /// The request's sequence number.
    pub seq: u64,
    /// The tenant served.
    pub tenant: TenantId,
    /// Virtual worker that served the query.
    pub worker: usize,
    /// Client-side submit instant (equals `arrival_s` in batch replay).
    pub submitted_s: f64,
    /// Instant the request reached the service.
    pub arrival_s: f64,
    /// Instant the request passed admission into the queue.
    pub admit_s: f64,
    /// Virtual instant execution began.
    pub start_s: f64,
    /// Virtual instant execution finished.
    pub end_s: f64,
    /// Dollars this query cost (meter delta).
    pub cost_usd: f64,
    /// Tokens this query consumed (meter delta).
    pub tokens: u64,
    /// Billed LLM calls (meter delta).
    pub llm_calls: u64,
    /// Context-reuse hits observed during this query.
    pub reuse_hits: u64,
    /// Context-reuse misses observed during this query.
    pub reuse_misses: u64,
    /// Semantic-cache hits observed during this query (LLM calls served
    /// from the shared cache at zero marginal spend).
    pub cache_hits: u64,
    /// Semantic-cache coalesced waiters observed during this query
    /// (duplicate in-flight calls folded into one computation).
    pub cache_coalesced: u64,
    /// Semantic-cache misses observed during this query (calls that went
    /// through to the simulated LLM).
    pub cache_misses: u64,
    /// Whether the query produced a non-null answer.
    pub answered: bool,
}

impl Completion {
    /// End-to-end latency the *client* observed (submit → completion)
    /// in virtual seconds. In batch replay `submitted_s == arrival_s`,
    /// so this is the classic arrival-to-completion number; live runs
    /// fold the wire's ingest delay in, and both paths feed the same
    /// report and SLO evaluation.
    pub fn latency_s(&self) -> f64 {
        self.end_s - self.submitted_s
    }

    /// Time spent waiting in the queue (admission → execution start).
    pub fn queue_wait_s(&self) -> f64 {
        self.start_s - self.admit_s
    }

    /// Front-door delay (submit → admission): zero in batch replay,
    /// wire propagation + decode over the live listener.
    pub fn ingest_s(&self) -> f64 {
        self.admit_s - self.submitted_s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_builder_sets_fields() {
        let r = QueryRequest::new("acme", "legal", "find the reports")
            .at(3.5)
            .priority(Priority::High)
            .deadline(60.0);
        assert_eq!(r.tenant.as_str(), "acme");
        assert_eq!(r.arrival_s, 3.5);
        assert_eq!(r.priority, Priority::High);
        assert_eq!(r.deadline_s, Some(60.0));
    }

    #[test]
    fn priorities_order_high_first() {
        assert!(Priority::High > Priority::Normal);
        assert!(Priority::Normal > Priority::Low);
        assert_eq!(Priority::High.slot(), 0);
        assert_eq!(Priority::Low.slot(), 2);
    }

    #[test]
    fn reject_kinds_are_stable() {
        assert_eq!(
            RejectReason::QueueFull {
                depth: 4,
                capacity: 4
            }
            .kind(),
            "queue_full"
        );
        assert_eq!(
            RejectReason::BudgetExhausted {
                spent_usd: 1.0,
                quota_usd: 0.5
            }
            .to_string(),
            "budget exhausted ($1.0000 of $0.5000)"
        );
        assert_eq!(
            RejectReason::CostBoundExceeded {
                usd_max: 0.5,
                remaining_usd: 0.1
            }
            .kind(),
            "cost_bound_exceeded"
        );
        assert_eq!(
            RejectReason::CostBoundExceeded {
                usd_max: 0.5,
                remaining_usd: 0.1
            }
            .to_string(),
            "cost bound exceeded (worst case $0.5000 > $0.1000 remaining)"
        );
    }

    #[test]
    fn priority_wire_codes_round_trip() {
        for p in [Priority::Low, Priority::Normal, Priority::High] {
            assert_eq!(Priority::from_code(p.code()), Some(p));
        }
        assert_eq!(Priority::from_code(3), None);
        assert_eq!(Priority::from_code(255), None);
    }

    #[test]
    fn retryable_classification() {
        assert!(RejectReason::QueueFull {
            depth: 1,
            capacity: 1
        }
        .retryable());
        assert!(RejectReason::DeadlineExpired {
            waited_s: 2.0,
            deadline_s: 1.0
        }
        .retryable());
        assert!(!RejectReason::BudgetExhausted {
            spent_usd: 1.0,
            quota_usd: 1.0
        }
        .retryable());
        assert!(!RejectReason::UnknownTenant.retryable());
        // A statically over-budget plan will stay over budget: a retry
        // of the same plan cannot get a different answer.
        assert!(!RejectReason::CostBoundExceeded {
            usd_max: 1.0,
            remaining_usd: 0.5
        }
        .retryable());
    }

    #[test]
    fn completion_latency_math() {
        let c = Completion {
            seq: 0,
            tenant: "t".into(),
            worker: 0,
            submitted_s: 1.0,
            arrival_s: 2.0,
            admit_s: 2.0,
            start_s: 5.0,
            end_s: 9.0,
            cost_usd: 0.0,
            tokens: 0,
            llm_calls: 0,
            reuse_hits: 0,
            reuse_misses: 0,
            cache_hits: 0,
            cache_coalesced: 0,
            cache_misses: 0,
            answered: true,
        };
        assert_eq!(c.latency_s(), 8.0); // submit -> end
        assert_eq!(c.queue_wait_s(), 3.0); // admit -> start
        assert_eq!(c.ingest_s(), 1.0); // submit -> admit
    }
}
