//! `aida-synth`: seeded synthetic workload generators.
//!
//! The paper evaluates on two real datasets we cannot ship: the Kramabench
//! legal workload (132 FTC consumer-report files) and a 250-email subset of
//! the Enron corpus. This crate generates structurally-equivalent synthetic
//! workloads with known ground truth:
//!
//! * [`legal`] — 132 CSV/HTML/text files: one national ground-truth CSV
//!   with fraud/identity-theft/other report counts for 2001–2024, dozens of
//!   state-level distractors that share vocabulary and years, HTML report
//!   pages, and partial-year traps. The evaluation query asks for the
//!   2024/2001 identity-theft ratio.
//! * [`enron`] — 250 emails with hidden relevance labels for the paper's
//!   two predicates (mentions one of several business transactions;
//!   discusses it firsthand). Relevant emails split into keyword-explicit
//!   and oblique phrasings; distractors include forwarded news articles
//!   that mention the transactions secondhand — exactly the structure that
//!   makes regex agents high-precision/low-recall and per-email LLM
//!   filtering near-perfect.
//!
//! Each generator returns a [`Workload`]: the data lake, the natural
//! language query, machine-checkable ground truth, and an oracle
//! registration hook for the simulated LLM.

pub mod enron;
pub mod legal;
pub mod text;

use aida_data::DataLake;
use aida_llm::SimLlm;

/// Ground truth for one evaluation query.
#[derive(Debug, Clone, PartialEq)]
pub enum GroundTruth {
    /// The query's answer is a single number (e.g. the theft ratio).
    Number(f64),
    /// The query's answer is a set of document ids (e.g. relevant emails).
    DocSet(Vec<String>),
}

impl GroundTruth {
    /// Numeric accessor.
    pub fn as_number(&self) -> Option<f64> {
        match self {
            GroundTruth::Number(n) => Some(*n),
            GroundTruth::DocSet(_) => None,
        }
    }

    /// Document-set accessor.
    pub fn as_doc_set(&self) -> Option<&[String]> {
        match self {
            GroundTruth::DocSet(ids) => Some(ids),
            GroundTruth::Number(_) => None,
        }
    }
}

/// A generated evaluation workload.
pub struct Workload {
    /// Short identifier (`legal-easy-3`, `enron-filter`).
    pub name: String,
    /// The data lake the systems query.
    pub lake: DataLake,
    /// The natural-language query posed to each system.
    pub query: String,
    /// A human-readable description of the lake (becomes the Context
    /// description).
    pub description: String,
    /// Machine-checkable ground truth.
    pub truth: GroundTruth,
}

impl Workload {
    /// Registers this workload's oracle rules with a simulated LLM so
    /// semantic operations over the lake resolve against ground truth.
    pub fn install_oracle(&self, llm: &SimLlm) {
        if self.name.starts_with("legal") {
            legal::register_oracle(llm);
        } else if self.name.starts_with("enron") {
            enron::register_oracle(llm);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ground_truth_accessors() {
        let n = GroundTruth::Number(13.2);
        assert_eq!(n.as_number(), Some(13.2));
        assert!(n.as_doc_set().is_none());
        let d = GroundTruth::DocSet(vec!["a".into()]);
        assert_eq!(d.as_doc_set().unwrap().len(), 1);
        assert!(d.as_number().is_none());
    }
}
