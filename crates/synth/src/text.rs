//! Shared vocabulary for the generators: state names, person names, and
//! prose fragments used to pad documents to realistic sizes.

/// US states and territories used for the state-level distractor files.
pub const STATES: &[&str] = &[
    "alabama",
    "alaska",
    "arizona",
    "arkansas",
    "california",
    "colorado",
    "connecticut",
    "delaware",
    "florida",
    "georgia",
    "hawaii",
    "idaho",
    "illinois",
    "indiana",
    "iowa",
    "kansas",
    "kentucky",
    "louisiana",
    "maine",
    "maryland",
    "massachusetts",
    "michigan",
    "minnesota",
    "mississippi",
    "missouri",
    "montana",
    "nebraska",
    "nevada",
    "new_hampshire",
    "new_jersey",
    "new_mexico",
    "new_york",
    "north_carolina",
    "north_dakota",
    "ohio",
    "oklahoma",
    "oregon",
    "pennsylvania",
    "rhode_island",
    "south_carolina",
    "south_dakota",
    "tennessee",
    "texas",
    "utah",
    "vermont",
    "virginia",
    "washington",
    "west_virginia",
    "wisconsin",
    "wyoming",
];

/// First names for email senders.
pub const FIRST_NAMES: &[&str] = &[
    "jeff",
    "andrea",
    "kenneth",
    "louise",
    "sara",
    "vince",
    "tana",
    "mark",
    "susan",
    "gerald",
    "kay",
    "phillip",
    "steven",
    "carol",
    "richard",
    "elizabeth",
    "daniel",
    "michelle",
    "greg",
    "lindsay",
];

/// Last names for email senders.
pub const LAST_NAMES: &[&str] = &[
    "dasovich",
    "ring",
    "lay",
    "kitchen",
    "shackleton",
    "kaminski",
    "jones",
    "taylor",
    "bailey",
    "nemec",
    "mann",
    "allen",
    "kean",
    "clair",
    "shapiro",
    "sager",
    "scholtes",
    "lokay",
    "whalley",
    "donoho",
];

/// Business-transaction code names the Enron query targets.
pub const TRANSACTIONS: &[&str] = &["Raptor", "Chewco", "LJM", "Talon", "Condor"];

/// Oblique descriptions of the same transactions (no code name), used for
/// relevant-but-keyword-free emails.
pub const OBLIQUE_REFERENCES: &[&str] = &[
    "the structured hedge vehicle we set up last quarter",
    "the off-balance-sheet entity the finance group created",
    "our special purpose partnership",
    "the equity hedge structure",
    "that investment vehicle the board approved in the fall",
];

/// Firsthand-discussion sentence templates (the `{ref}` placeholder is
/// replaced with a transaction name or oblique reference).
pub const FIRSTHAND_TEMPLATES: &[&str] = &[
    "I met with the accountants this morning to walk through {ref} and I am \
     increasingly worried about the mark-to-market exposure.",
    "We need to unwind part of {ref} before the quarter closes - can you pull \
     together the position summary by Friday?",
    "As discussed in yesterday's meeting, {ref} requires a capital infusion of \
     at least $35 million to stay above the trigger threshold.",
    "My team finished the valuation work on {ref}; the collateral shortfall is \
     larger than we projected in October.",
    "Per your request, here are the restructuring options for {ref}. Option two \
     keeps the hedge intact but requires board notification.",
    "I signed the amended agreements for {ref} this afternoon. Legal still needs \
     the side letter before we can fund.",
];

/// Secondhand / forwarded-news sentence templates mentioning a transaction
/// by name (these are the precision traps for keyword filters).
pub const SECONDHAND_TEMPLATES: &[&str] = &[
    "FYI - the Journal is running a piece tomorrow that mentions {ref} in the \
     context of partnership accounting. Forwarding the draft below.",
    "Saw this on the newswire: analysts are asking questions about {ref}. No \
     action needed, just keeping you in the loop.",
    "Forwarded message follows. The article speculates about {ref} but quotes \
     no one from our side.",
];

/// Ordinary business filler sentences for irrelevant emails.
pub const FILLER_SENTENCES: &[&str] = &[
    "The quarterly headcount review is scheduled for Thursday at 10am in 30C1.",
    "Please submit your expense reports before the end of the month.",
    "The gas desk is moving to the 32nd floor over the weekend.",
    "Reminder: the all-hands on the west power book is moved to Tuesday.",
    "Can you send me the latest curve snapshot for the California zone?",
    "The new trade-capture system goes live Monday; training materials attached.",
    "HR asked me to remind everyone about the benefits enrollment deadline.",
    "Let's grab lunch next week to catch up on the storage project.",
    "The pipeline scheduling call moved to 9:30 to accommodate the west desk.",
    "Facilities will be testing the fire alarms on Saturday morning.",
    "I'll be out of the office Friday; call my cell if the desk needs anything.",
    "The risk book reconciliation for October is complete and tied out.",
];

/// Prose fragments for padding report pages.
pub const REPORT_PROSE: &[&str] = &[
    "The Consumer Sentinel Network collects reports from consumers about fraud, \
     identity theft, and other consumer protection problems.",
    "Report counts reflect complaints filed directly by consumers as well as \
     reports contributed by state and federal law enforcement partners.",
    "Identity theft reports include credit card fraud, government documents or \
     benefits fraud, loan or lease fraud, and employment or tax-related fraud.",
    "Figures are unaudited and may be revised as duplicate reports are removed \
     from the network database.",
    "State-level tables rank jurisdictions by reports per 100,000 population.",
    "Methodology notes and category definitions appear in the appendix of the \
     annual data book.",
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vocabulary_is_nonempty_and_sized() {
        assert_eq!(STATES.len(), 50);
        assert!(FIRST_NAMES.len() >= 10);
        assert!(TRANSACTIONS.len() >= 3);
        assert!(FIRSTHAND_TEMPLATES.iter().all(|t| t.contains("{ref}")));
        assert!(SECONDHAND_TEMPLATES.iter().all(|t| t.contains("{ref}")));
    }
}
