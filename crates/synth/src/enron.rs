//! The Enron-style email workload.
//!
//! 250 emails reproducing the structure that drives the paper's Table 2:
//!
//! * **18 keyword-explicit relevant** emails: firsthand discussion that
//!   names a transaction (`Raptor`, `Chewco`, …). Regex agents find these.
//! * **21 oblique relevant** emails: firsthand discussion phrased without
//!   any code name ("the structured hedge vehicle…"). Regex agents miss
//!   these — the recall gap.
//! * **5 secondhand forwards**: news articles that *mention* a transaction
//!   by name but contain no firsthand discussion. Regex agents wrongly
//!   return some of these — the precision gap. They are also the
//!   high-difficulty judgements for cheap LLM tiers.
//! * **206 ordinary business emails** (easy negatives).
//!
//! Ground truth: 39 relevant emails; both predicate labels
//! (`gt_mentions_txn`, `gt_relevant`) are planted on every document.

use crate::text::{
    FILLER_SENTENCES, FIRSTHAND_TEMPLATES, FIRST_NAMES, LAST_NAMES, OBLIQUE_REFERENCES,
    SECONDHAND_TEMPLATES, TRANSACTIONS,
};
use crate::{GroundTruth, Workload};
use aida_data::{DataLake, Document};
use aida_llm::noise::KeyedRng;
use aida_llm::oracle::{FnRule, OracleAnswer};
use aida_llm::SimLlm;
use std::sync::Arc;

/// Total emails in the workload.
pub const N_EMAILS: usize = 250;
/// Relevant emails that name a transaction explicitly.
pub const N_KEYWORD_RELEVANT: usize = 18;
/// Relevant emails phrased without any transaction name.
pub const N_OBLIQUE_RELEVANT: usize = 21;
/// Secondhand forwards that name a transaction but are not firsthand.
pub const N_SECONDHAND: usize = 5;

/// The evaluation query (the paper's Enron document-processing task).
pub const QUERY: &str =
    "Filter the emails for ones which contain firsthand discussion of one or more of the \
     Raptor, Chewco, LJM, Talon, or Condor business transactions, and extract the sender, \
     subject, and a short summary of each matching email.";

/// Generates the 250-email workload. The seed shuffles which slots are
/// relevant and perturbs prose, but the *counts* above are invariant.
pub fn generate(seed: u64) -> Workload {
    let mut rng = KeyedRng::new(seed ^ 0xe17a11);
    // Assign roles to positions deterministically.
    let mut roles: Vec<Role> = Vec::with_capacity(N_EMAILS);
    roles.extend(std::iter::repeat_n(
        Role::KeywordRelevant,
        N_KEYWORD_RELEVANT,
    ));
    roles.extend(std::iter::repeat_n(
        Role::ObliqueRelevant,
        N_OBLIQUE_RELEVANT,
    ));
    roles.extend(std::iter::repeat_n(Role::Secondhand, N_SECONDHAND));
    roles.extend(std::iter::repeat_n(
        Role::Filler,
        N_EMAILS - N_KEYWORD_RELEVANT - N_OBLIQUE_RELEVANT - N_SECONDHAND,
    ));
    shuffle(&mut roles, &mut rng);

    let mut lake = DataLake::new();
    let mut relevant = Vec::new();
    for (i, role) in roles.iter().enumerate() {
        let name = format!("email_{:04}.eml", i + 1);
        let doc = build_email(&name, *role, seed, i);
        if matches!(role, Role::KeywordRelevant | Role::ObliqueRelevant) {
            relevant.push(name.clone());
        }
        lake.add(doc);
    }

    Workload {
        name: "enron-filter".to_string(),
        lake,
        query: QUERY.to_string(),
        description: format!(
            "A data lake of {N_EMAILS} corporate emails (.eml files with From/To/Subject \
             headers) from an energy-trading company, covering trading operations, \
             finance-structure discussions, and general business communication."
        ),
        truth: GroundTruth::DocSet(relevant),
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Role {
    KeywordRelevant,
    ObliqueRelevant,
    Secondhand,
    Filler,
}

fn shuffle<T>(items: &mut [T], rng: &mut KeyedRng) {
    for i in (1..items.len()).rev() {
        let j = rng.below(i + 1);
        items.swap(i, j);
    }
}

fn person(rng: &mut KeyedRng) -> (String, String) {
    let first = *rng.pick(FIRST_NAMES);
    let last = *rng.pick(LAST_NAMES);
    (
        format!("{first} {last}"),
        format!("{first}.{last}@enrot.com"),
    )
}

fn build_email(name: &str, role: Role, seed: u64, index: usize) -> Document {
    let mut rng = KeyedRng::new(seed ^ aida_llm::noise::hash_str(name) ^ 0xe0a1);
    let (sender_name, sender_addr) = person(&mut rng);
    let (_, to_addr) = person(&mut rng);

    let (subject, lead_sentences, mentions, relevant, difficulty) = match role {
        Role::KeywordRelevant => {
            let txn = *rng.pick(TRANSACTIONS);
            let subject = format!(
                "{txn} {}",
                rng.pick(&["position", "restructuring", "update", "funding"][..])
            );
            let mut leads = Vec::new();
            for _ in 0..rng.range_i64(1, 2) {
                leads.push(rng.pick(FIRSTHAND_TEMPLATES).replace("{ref}", txn));
            }
            (subject, leads, true, true, 0.1)
        }
        Role::ObliqueRelevant => {
            let oblique = *rng.pick(OBLIQUE_REFERENCES);
            let subject = rng
                .pick(
                    &[
                        "hedge follow-up",
                        "structure question",
                        "Q4 positions",
                        "valuation work",
                    ][..],
                )
                .to_string();
            let mut leads = Vec::new();
            for _ in 0..rng.range_i64(1, 2) {
                leads.push(rng.pick(FIRSTHAND_TEMPLATES).replace("{ref}", oblique));
            }
            // Oblique phrasing is somewhat harder for weak models.
            (subject, leads, true, true, 0.35)
        }
        Role::Secondhand => {
            let txn = *rng.pick(TRANSACTIONS);
            let subject = format!("FW: press mention of {txn}");
            let leads = vec![rng.pick(SECONDHAND_TEMPLATES).replace("{ref}", txn)];
            // The classic precision trap: mentions the name, not firsthand.
            (subject, leads, true, false, 0.7)
        }
        Role::Filler => {
            let subject = rng
                .pick(
                    &[
                        "expense reports",
                        "desk move",
                        "Tuesday meeting",
                        "curve snapshot",
                        "training materials",
                        "benefits enrollment",
                    ][..],
                )
                .to_string();
            (
                subject,
                vec![rng.pick(FILLER_SENTENCES).to_string()],
                false,
                false,
                0.08,
            )
        }
    };

    let mut body = String::new();
    for lead in &lead_sentences {
        body.push_str(lead);
        body.push_str("\n\n");
    }
    for _ in 0..rng.range_i64(2, 5) {
        body.push_str(rng.pick(FILLER_SENTENCES).as_ref());
        body.push('\n');
    }
    body.push_str(&format!("\nThanks,\n{sender_name}\n"));
    // Quoted thread padding: gives every email realistic bulk (the cost
    // model reads whole emails) without adding predicate signal.
    body.push_str("\n-----Original Message-----\n");
    let quoted_lines = rng.range_i64(60, 110);
    for _ in 0..quoted_lines {
        body.push_str("> ");
        body.push_str(rng.pick(FILLER_SENTENCES).as_ref());
        body.push('\n');
    }

    let date_day = 1 + (index % 28);
    let content = format!(
        "From: {sender_addr}\nTo: {to_addr}\nSubject: {subject}\nDate: 2001-10-{date_day:02}\n\n{body}"
    );
    Document::new(name, content)
        .with_label("gt_mentions_txn", mentions)
        .with_label("gt_relevant", relevant)
        .with_label("difficulty", difficulty)
        .with_label("gt_sender", sender_addr)
        .with_label("gt_subject", subject)
}

/// Registers the Enron workload's oracle rules: firsthand-discussion
/// filters resolve against `gt_relevant`; bare transaction-mention filters
/// against `gt_mentions_txn`.
pub fn register_oracle(llm: &SimLlm) {
    llm.oracle().register(Arc::new(FnRule::new(
        "enron-filters",
        |instruction, subject| {
            let lower = instruction.to_ascii_lowercase();
            if lower.contains(" :: ") {
                // Extraction queries read the content instead.
                return None;
            }
            let mentions_txn_vocab = TRANSACTIONS
                .iter()
                .any(|t| lower.contains(&t.to_ascii_lowercase()))
                || lower.contains("transaction");
            if lower.contains("firsthand") {
                // Firsthandness is the genuinely hard judgement: use the
                // document's planted difficulty.
                return subject
                    .label("gt_relevant")
                    .map(|v| OracleAnswer::Bool(v.truthy()));
            }
            if mentions_txn_vocab {
                // Spotting whether a transaction is *mentioned* is close to
                // string matching — easy for every tier.
                return subject
                    .label("gt_mentions_txn")
                    .map(|v| OracleAnswer::BoolWithDifficulty(v.truthy(), 0.04));
            }
            None
        },
    )));
}

#[cfg(test)]
mod tests {
    use super::*;
    use aida_llm::oracle::Subject;
    use aida_llm::{LlmTask, ModelId};

    #[test]
    fn counts_are_exact() {
        let w = generate(11);
        assert_eq!(w.lake.len(), N_EMAILS);
        let relevant = w.truth.as_doc_set().unwrap();
        assert_eq!(relevant.len(), N_KEYWORD_RELEVANT + N_OBLIQUE_RELEVANT);
        let mentions = w
            .lake
            .docs()
            .iter()
            .filter(|d| d.label("gt_mentions_txn").is_some_and(|v| v.truthy()))
            .count();
        assert_eq!(
            mentions,
            N_KEYWORD_RELEVANT + N_OBLIQUE_RELEVANT + N_SECONDHAND
        );
    }

    #[test]
    fn oblique_relevant_emails_contain_no_transaction_names() {
        let w = generate(11);
        for doc in w.lake.docs() {
            let relevant = doc.label("gt_relevant").is_some_and(|v| v.truthy());
            let named = TRANSACTIONS.iter().any(|t| doc.content.contains(t));
            if relevant && !named {
                // Oblique: must still be labeled as mentioning a txn.
                assert!(doc.label("gt_mentions_txn").unwrap().truthy());
            }
            if !doc.label("gt_mentions_txn").is_some_and(|v| v.truthy()) {
                assert!(!named, "{} leaks a transaction name", doc.name);
            }
        }
        // And there are oblique ones at all.
        let oblique = w
            .lake
            .docs()
            .iter()
            .filter(|d| {
                d.label("gt_relevant").is_some_and(|v| v.truthy())
                    && !TRANSACTIONS.iter().any(|t| d.content.contains(t))
            })
            .count();
        assert_eq!(oblique, N_OBLIQUE_RELEVANT);
    }

    #[test]
    fn secondhand_forwards_name_transactions_but_are_irrelevant() {
        let w = generate(3);
        let traps: Vec<_> = w
            .lake
            .docs()
            .iter()
            .filter(|d| {
                d.label("gt_mentions_txn").is_some_and(|v| v.truthy())
                    && !d.label("gt_relevant").is_some_and(|v| v.truthy())
            })
            .collect();
        assert_eq!(traps.len(), N_SECONDHAND);
        for trap in traps {
            assert!(TRANSACTIONS.iter().any(|t| trap.content.contains(t)));
            assert!(trap.label("difficulty").unwrap().as_float().unwrap() > 0.5);
        }
    }

    #[test]
    fn emails_have_headers_and_realistic_size() {
        let w = generate(5);
        for doc in w.lake.docs().iter().take(20) {
            assert!(doc.email_header("from").is_some(), "{}", doc.name);
            assert!(doc.email_header("subject").is_some(), "{}", doc.name);
            assert!(doc.size() > 1_200, "{} only {} bytes", doc.name, doc.size());
            assert!(doc.size() < 12_000, "{} is {} bytes", doc.name, doc.size());
        }
    }

    #[test]
    fn different_seeds_shuffle_roles() {
        let a = generate(1);
        let b = generate(2);
        assert_ne!(a.truth, b.truth);
        // Same counts though.
        assert_eq!(
            a.truth.as_doc_set().unwrap().len(),
            b.truth.as_doc_set().unwrap().len()
        );
    }

    #[test]
    fn same_seed_is_identical() {
        let a = generate(4);
        let b = generate(4);
        assert_eq!(a.truth, b.truth);
        for (da, db) in a.lake.docs().iter().zip(b.lake.docs()) {
            assert_eq!(da.content, db.content);
        }
    }

    #[test]
    fn oracle_rules_resolve_both_predicates() {
        let w = generate(9);
        let llm = SimLlm::new(9);
        register_oracle(&llm);
        let relevant_name = &w.truth.as_doc_set().unwrap()[0];
        let doc = w.lake.get(relevant_name).unwrap();
        let resp = llm.invoke(
            ModelId::Flagship,
            &LlmTask::Filter {
                instruction: "the email contains firsthand discussion of the Raptor, Chewco, \
                              LJM, Talon, or Condor transactions",
                subject: Subject::doc(doc),
            },
        );
        if !resp.corrupted {
            assert_eq!(resp.value, aida_data::Value::Bool(true));
        }
        // Mention-only filter is answered by the mention label.
        let resp = llm.invoke(
            ModelId::Flagship,
            &LlmTask::Filter {
                instruction: "the email mentions the Raptor transaction or similar entities",
                subject: Subject::doc(doc),
            },
        );
        if !resp.corrupted {
            assert_eq!(resp.value, aida_data::Value::Bool(true));
        }
    }

    #[test]
    fn sender_and_subject_labels_match_headers() {
        let w = generate(2);
        for doc in w.lake.docs().iter().take(30) {
            let from = doc.email_header("from").unwrap();
            assert_eq!(doc.label("gt_sender").unwrap().as_str().unwrap(), from);
            let subject = doc.email_header("subject").unwrap();
            assert_eq!(doc.label("gt_subject").unwrap().as_str().unwrap(), subject);
        }
    }
}
