//! The Kramabench-style legal workload.
//!
//! 132 files mirroring the FTC Consumer Sentinel data lake the paper's
//! `legal-easy-3` query runs over:
//!
//! * **1 national CSV** (the ground-truth needle) with fraud, identity
//!   theft, and other report counts for every year 2001–2024.
//! * **100 state CSVs** (50 states × 2 years) with per-category counts —
//!   they mention "identity theft" and "2024" but can never answer the
//!   2024/2001 ratio question.
//! * **24 annual HTML report pages**, one per year, which report identity
//!   theft *per 100,000 population* — numbers that exist, look plausible,
//!   and are wrong for the ratio (the trap naive agents fall into).
//! * **6 category-breakdown CSVs** and **1 README**.
//!
//! The generated lake is deterministic in everything that defines ground
//! truth; the seed only perturbs distractor content.

use crate::text::{REPORT_PROSE, STATES};
use crate::{GroundTruth, Workload};
use aida_data::{DataLake, Document};
use aida_llm::noise::KeyedRng;
use aida_llm::oracle::{FnRule, OracleAnswer};
use aida_llm::SimLlm;
use std::sync::Arc;

/// First year covered by the national series.
pub const FIRST_YEAR: i64 = 2001;
/// Last year covered by the national series.
pub const LAST_YEAR: i64 = 2024;
/// Identity-theft reports in the first year (fixed; defines ground truth).
pub const THEFTS_FIRST: i64 = 86_250;
/// Identity-theft reports in the last year (fixed; defines ground truth).
pub const THEFTS_LAST: i64 = 1_135_291;

/// Name of the ground-truth national file.
pub const NATIONAL_FILE: &str = "sentinel_national_reports_by_year_2001_2024.csv";

/// The evaluation query (the paper's `legal-easy-3`).
pub const QUERY: &str = "What is the ratio between the number of identity theft reports in \
                         2024 and the number of identity theft reports in 2001?";

/// The ground-truth answer.
pub fn true_ratio() -> f64 {
    THEFTS_LAST as f64 / THEFTS_FIRST as f64
}

/// The national identity-theft series: exponential interpolation between
/// the fixed endpoints with small deterministic wiggle in interior years.
pub fn theft_series() -> Vec<(i64, i64)> {
    let years = (FIRST_YEAR..=LAST_YEAR).collect::<Vec<_>>();
    let n = (years.len() - 1) as f64;
    let growth = (THEFTS_LAST as f64 / THEFTS_FIRST as f64).powf(1.0 / n);
    years
        .iter()
        .enumerate()
        .map(|(i, &year)| {
            if year == FIRST_YEAR {
                (year, THEFTS_FIRST)
            } else if year == LAST_YEAR {
                (year, THEFTS_LAST)
            } else {
                // Interior wiggle is keyed to the year only, not the run
                // seed, so every trial sees the same lake.
                let base = THEFTS_FIRST as f64 * growth.powi(i as i32);
                let mut rng = KeyedRng::new(0x1ea1 ^ year as u64);
                let wiggle = rng.range_f64(0.93, 1.07);
                (year, (base * wiggle) as i64)
            }
        })
        .collect()
}

/// US population by year (millions, linearized) — used for the per-100k
/// trap numbers on the annual report pages.
fn population(year: i64) -> f64 {
    285.0 + (year - FIRST_YEAR) as f64 * 2.3
}

/// Generates the full 132-file workload. The seed perturbs distractor
/// content only; ground truth is seed-independent.
pub fn generate(seed: u64) -> Workload {
    generate_scaled(seed, STATES.len())
}

/// Generates a scaled variant with `n_states` states × 2 years of state
/// files (used by the access-path ablation). `n_states` beyond 50 cycles
/// state names with numeric suffixes.
pub fn generate_scaled(seed: u64, n_states: usize) -> Workload {
    let mut lake = DataLake::new();
    let series = theft_series();

    // --- 1. National ground-truth CSV -----------------------------------
    lake.add(national_file(&series));

    // --- 2. State-level distractors (n_states x 2 years) ----------------
    for i in 0..n_states {
        let base = STATES[i % STATES.len()];
        let state = if i < STATES.len() {
            base.to_string()
        } else {
            format!("{base}_{}", i / STATES.len() + 1)
        };
        for year in [2023i64, 2024] {
            lake.add(state_file(&state, year, seed));
        }
    }

    // --- 3. Annual HTML report pages (per-100k traps) --------------------
    for &(year, thefts) in &series {
        lake.add(annual_report(year, thefts, seed));
    }

    // --- 4. Category breakdowns and README -------------------------------
    for category in ["fraud", "identity_theft", "other"] {
        for year in [2023i64, 2024] {
            lake.add(category_file(category, year, seed, &series));
        }
    }
    lake.add(readme());

    Workload {
        name: "legal-easy-3".to_string(),
        lake,
        query: QUERY.to_string(),
        description: format!(
            "A data lake of {} files from the Consumer Sentinel Network: national and \
             state-level CSV statistics on fraud, identity theft, and other consumer \
             reports, plus annual HTML report pages covering {FIRST_YEAR}-{LAST_YEAR}.",
            // Computed below; re-rendered for the default scale.
            1 + n_states * 2 + series.len() + 6 + 1
        ),
        truth: GroundTruth::Number(true_ratio()),
    }
}

fn national_file(series: &[(i64, i64)]) -> Document {
    let mut content = String::from("year,fraud_reports,identity_theft_reports,other_reports\n");
    for &(year, thefts) in series {
        let mut rng = KeyedRng::new(0xf4a0d ^ year as u64);
        let fraud = (thefts as f64 * rng.range_f64(1.8, 2.6)) as i64;
        let other = (thefts as f64 * rng.range_f64(1.2, 1.9)) as i64;
        content.push_str(&format!("{year},{fraud},{thefts},{other}\n"));
    }
    Document::new(NATIONAL_FILE, content)
        .with_label("gt_idtheft_filter", true)
        .with_label("gt_national", true)
        .with_label("difficulty", 0.02)
}

const STATE_CATEGORIES: &[&str] = &[
    "imposter scams",
    "identity theft",
    "online shopping",
    "prizes and sweepstakes",
    "internet services",
    "telephone and mobile services",
    "debt collection",
    "banks and lenders",
    "auto related",
    "credit bureaus",
    "health care",
    "travel and vacations",
    "investment related",
    "business and job opportunities",
    "mortgage foreclosure relief",
    "advance payments for credit services",
    "tax preparers",
    "utilities",
    "real estate",
    "charitable solicitations",
];

fn state_file(state: &str, year: i64, seed: u64) -> Document {
    let mut rng =
        KeyedRng::new(seed ^ aida_llm::noise::hash_str(state) ^ (year as u64).wrapping_mul(0x9e37));
    let mut content = format!("category,reports_{year},rank\n");
    for (rank, category) in STATE_CATEGORIES.iter().enumerate() {
        let count = rng.range_i64(400, 45_000);
        content.push_str(&format!("{category},{count},{}\n", rank + 1));
    }
    // Padding rows: metro-area breakdowns to give the file realistic bulk.
    content.push_str("\nmetro_area,total_reports,reports_per_100k\n");
    for i in 0..rng.range_i64(140, 240) {
        let total = rng.range_i64(1_000, 90_000);
        let per100k = rng.range_f64(80.0, 900.0);
        content.push_str(&format!("metro_{state}_{i},{total},{per100k:.1}\n"));
    }
    Document::new(format!("sentinel_state_{state}_{year}.csv"), content)
        .with_label("gt_idtheft_filter", false)
        .with_label("difficulty", 0.05)
}

fn annual_report(year: i64, thefts: i64, seed: u64) -> Document {
    let mut rng = KeyedRng::new(seed ^ (year as u64).wrapping_mul(0xabcd));
    let pop = population(year);
    // Fiscal-year accounting and methodology changes make the published
    // per-100k rates deviate from calendar-year totals; the perturbation is
    // keyed to the year so every trial sees the same page.
    let mut rate_rng = KeyedRng::new(0x4a7e ^ (year as u64).wrapping_mul(0x51d3));
    let per100k = thefts as f64 / (pop * 1e6) * 1e5 * rate_rng.range_f64(0.70, 1.35);
    let mut body = String::new();
    body.push_str(&format!(
        "<html><head><title>Consumer Sentinel Network Annual Data Book {year}</title></head>\n<body>\n"
    ));
    body.push_str(&format!(
        "<h1>Consumer Sentinel Network Data Book {year}</h1>\n"
    ));
    for _ in 0..3 {
        body.push_str(&format!("<p>{}</p>\n", rng.pick(REPORT_PROSE)));
    }
    body.push_str(&format!(
        "<p>In {year}, identity theft reports were filed at a rate of {per100k:.1} \
         reports per 100,000 population nationwide.</p>\n"
    ));
    body.push_str("<h2>Top report categories</h2>\n<table>\n");
    body.push_str("<tr><th>category</th><th>share_of_reports</th><th>per_100k</th></tr>\n");
    let mut share_left: f64 = 100.0;
    for category in &STATE_CATEGORIES[..8] {
        let share = rng.range_f64(2.0, share_left.min(24.0)).max(1.0);
        share_left = (share_left - share).max(2.0);
        let rate = rng.range_f64(10.0, 380.0);
        body.push_str(&format!(
            "<tr><td>{category}</td><td>{share:.1}%</td><td>{rate:.1}</td></tr>\n"
        ));
    }
    body.push_str("</table>\n");
    // Padding prose to give the page realistic size.
    for _ in 0..rng.range_i64(60, 90) {
        body.push_str(&format!("<p>{}</p>\n", rng.pick(REPORT_PROSE)));
    }
    body.push_str("</body></html>\n");
    // The 2001 and 2024 pages are the hard traps: they discuss identity
    // theft for one of the query's years, so weak models (and hurried
    // agents) mistake them for the answer file.
    let difficulty = if year == FIRST_YEAR || year == LAST_YEAR {
        0.35
    } else {
        0.15
    };
    Document::new(format!("sentinel_annual_report_{year}.html"), body)
        .with_label("gt_idtheft_filter", false)
        .with_label("per_100k", per100k)
        .with_label("difficulty", difficulty)
}

fn category_file(category: &str, year: i64, seed: u64, series: &[(i64, i64)]) -> Document {
    let mut rng = KeyedRng::new(seed ^ aida_llm::noise::hash_str(category) ^ year as u64);
    let mut content = format!("subtype,reports_{year}\n");
    let subtypes: &[&str] = match category {
        "identity_theft" => &[
            "credit card fraud",
            "government documents or benefits fraud",
            "loan or lease fraud",
            "employment or tax-related fraud",
            "phone or utilities fraud",
            "bank fraud",
        ],
        "fraud" => &[
            "imposter scams",
            "online shopping",
            "prizes sweepstakes and lotteries",
            "internet services",
            "telephone and mobile services",
        ],
        _ => &[
            "debt collection",
            "credit bureaus",
            "banks and lenders",
            "auto related",
        ],
    };
    let year_total = series
        .iter()
        .find(|(y, _)| *y == year)
        .map(|(_, t)| *t)
        .unwrap_or(1_000_000);
    let mut remaining = if category == "identity_theft" {
        year_total
    } else {
        (year_total as f64 * rng.range_f64(1.5, 2.5)) as i64
    };
    for subtype in subtypes {
        let part = (remaining as f64 * rng.range_f64(0.15, 0.4)) as i64;
        remaining -= part;
        content.push_str(&format!("{subtype},{part}\n"));
    }
    // Identity-theft breakdowns for a single year are moderately hard
    // negatives: they are about identity theft but cannot give both years.
    let difficulty = if category == "identity_theft" {
        0.35
    } else {
        0.1
    };
    Document::new(format!("sentinel_category_{category}_{year}.csv"), content)
        .with_label("gt_idtheft_filter", false)
        .with_label("difficulty", difficulty)
}

fn readme() -> Document {
    Document::new(
        "README.txt",
        "Consumer Sentinel Network data extract.\n\n\
         Files:\n\
         - sentinel_national_reports_by_year_2001_2024.csv: national totals by year\n\
         - sentinel_state_<state>_<year>.csv: per-state category breakdowns\n\
         - sentinel_annual_report_<year>.html: annual data book pages\n\
         - sentinel_category_<category>_<year>.csv: national category breakdowns\n",
    )
    .with_label("gt_idtheft_filter", false)
    .with_label("difficulty", 0.05)
}

/// Registers the legal workload's oracle rule: semantic filters asking for
/// national identity-theft statistics resolve against the planted
/// `gt_idtheft_filter` labels.
pub fn register_oracle(llm: &SimLlm) {
    llm.oracle().register(Arc::new(FnRule::new(
        "legal-idtheft-filter",
        |instruction, subject| {
            let lower = instruction.to_ascii_lowercase();
            if !lower.contains("identity theft") {
                return None;
            }
            // Extraction-style oracle queries ("… :: field") are answered by
            // reading the content, not by the filter label.
            if lower.contains(" :: ") {
                return None;
            }
            subject
                .label("gt_idtheft_filter")
                .map(|v| OracleAnswer::Bool(v.truthy()))
        },
    )));
}

#[cfg(test)]
mod tests {
    use super::*;
    use aida_llm::oracle::Subject;
    use aida_llm::{LlmTask, ModelId};

    #[test]
    fn lake_has_exactly_132_files() {
        let w = generate(1);
        assert_eq!(w.lake.len(), 132);
    }

    #[test]
    fn ground_truth_is_seed_independent() {
        let a = generate(1);
        let b = generate(999);
        assert_eq!(a.truth, b.truth);
        let nat_a = a.lake.get(NATIONAL_FILE).unwrap();
        let nat_b = b.lake.get(NATIONAL_FILE).unwrap();
        assert_eq!(nat_a.content, nat_b.content);
    }

    #[test]
    fn national_file_answers_the_query() {
        let w = generate(7);
        let doc = w.lake.get(NATIONAL_FILE).unwrap();
        let tables = doc.tables().unwrap();
        let t = &tables[0];
        let thefts_2024 = t.find_row("year", &aida_data::Value::Int(2024)).unwrap()
            [t.schema().index_of("identity_theft_reports").unwrap()]
        .clone();
        let thefts_2001 = t.find_row("year", &aida_data::Value::Int(2001)).unwrap()
            [t.schema().index_of("identity_theft_reports").unwrap()]
        .clone();
        let ratio = thefts_2024.as_float().unwrap() / thefts_2001.as_float().unwrap();
        assert!((ratio - true_ratio()).abs() < 1e-9);
    }

    #[test]
    fn series_is_monotone_enough_and_anchored() {
        let s = theft_series();
        assert_eq!(s.len(), 24);
        assert_eq!(s[0], (2001, THEFTS_FIRST));
        assert_eq!(s[23], (2024, THEFTS_LAST));
        // Roughly increasing: each interior point within wiggle of trend.
        for w in s.windows(4) {
            assert!(w[3].1 > w[0].1, "series should trend upward: {w:?}");
        }
    }

    #[test]
    fn only_national_file_is_labeled_positive() {
        let w = generate(3);
        let positives: Vec<_> = w
            .lake
            .docs()
            .iter()
            .filter(|d| d.label("gt_idtheft_filter").is_some_and(|v| v.truthy()))
            .collect();
        assert_eq!(positives.len(), 1);
        assert_eq!(positives[0].name, NATIONAL_FILE);
    }

    #[test]
    fn annual_reports_have_per100k_not_totals() {
        let w = generate(3);
        let page = w.lake.get("sentinel_annual_report_2024.html").unwrap();
        assert!(page.content.contains("per 100,000"));
        // The true total must not appear verbatim in the trap pages.
        assert!(!page.content.contains("1135291"));
        assert!(!page.content.contains("1,135,291"));
    }

    #[test]
    fn oracle_rule_resolves_filter_against_labels() {
        let w = generate(5);
        let llm = SimLlm::new(5);
        register_oracle(&llm);
        let national = w.lake.get(NATIONAL_FILE).unwrap();
        let resp = llm.invoke(
            ModelId::Flagship,
            &LlmTask::Filter {
                instruction:
                    "the file contains national identity theft report statistics covering \
                     both 2001 and 2024",
                subject: Subject::doc(national),
            },
        );
        assert_eq!(resp.value, aida_data::Value::Bool(true));
        let state = w.lake.get("sentinel_state_alabama_2024.csv").unwrap();
        let resp = llm.invoke(
            ModelId::Flagship,
            &LlmTask::Filter {
                instruction:
                    "the file contains national identity theft report statistics covering \
                     both 2001 and 2024",
                subject: Subject::doc(state),
            },
        );
        // Flagship on a 0.3-difficulty subject is almost always right.
        if !resp.corrupted {
            assert_eq!(resp.value, aida_data::Value::Bool(false));
        }
    }

    #[test]
    fn scaled_generation_grows_linearly() {
        let w = generate_scaled(1, 100);
        assert_eq!(w.lake.len(), 1 + 200 + 24 + 6 + 1);
        // Names stay unique past 50 states.
        let names = w.lake.names();
        let unique: std::collections::HashSet<_> = names.iter().collect();
        assert_eq!(unique.len(), names.len());
    }

    #[test]
    fn state_files_are_plausibly_sized() {
        let w = generate(2);
        let doc = w.lake.get("sentinel_state_texas_2024.csv").unwrap();
        assert!(doc.size() > 400, "state file too small: {}", doc.size());
        assert!(doc.content.contains("identity theft"));
    }
}
