//! The semantic call cache: content-addressed memoization of simulated
//! LLM calls.
//!
//! The ContextManager amortizes whole *Contexts* across queries; this
//! layer sits one level below and memoizes individual `(model, prompt,
//! decode-params)` calls, so a warmed workload drives the marginal cost
//! of repeated semantic work toward zero. Three properties matter:
//!
//! 1. **Content addressing** — the key hashes *every* determinant of a
//!    simulated response: the simulator seed, the model name, the task
//!    kind and all of its fields, and the subject (name, text, and
//!    oracle labels). Two calls collide only when the simulator would
//!    answer them identically, so a hit can return the stored response
//!    verbatim and replay stays bit-for-bit.
//! 2. **In-flight dedup** — when concurrent workers issue the same call
//!    before the first one lands, only the first computes; the rest
//!    block on a pending marker and share the result, counted as
//!    `coalesced` (one simulated call billed for the whole group).
//! 3. **Disk spill** — [`SemanticCache::save`] writes a versioned,
//!    checksummed snapshot and [`SemanticCache::load`] restores it, so a
//!    service restart keeps a warm cache. A truncated or garbled
//!    snapshot is rejected (the caller starts cold); it never panics.
//!
//! Hits cost zero dollars and zero tokens; they are reported with a
//! configurable small `hit_latency_s` so virtual-time accounting still
//! reflects a (fast) round trip to the cache tier.

use crate::noise;
use crate::sim::LlmResponse;
use crate::snapshot::{self, decode_value, encode_value, esc, unesc, FailPlan};
use aida_data::Value;
use std::collections::HashMap;
use std::io::Read;
use std::path::Path;
use std::sync::{Arc, Condvar, Mutex};

pub use crate::snapshot::SnapshotError;

/// A 128-bit content-addressed call key. Two independent 64-bit digests
/// over the same part stream make accidental collisions (which would
/// silently serve a wrong answer) astronomically unlikely.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CacheKey {
    /// Primary digest ([`noise::combine`]).
    pub hi: u64,
    /// Secondary digest (independent mixing constants).
    pub lo: u64,
}

impl CacheKey {
    /// Builds a key from the ordered part stream.
    pub fn from_parts(parts: &[u64]) -> CacheKey {
        let mut alt = 0x6a09_e667_f3bc_c909u64;
        for p in parts {
            alt = noise::splitmix64(alt ^ p.rotate_left(32));
        }
        CacheKey {
            hi: noise::combine(parts),
            lo: alt,
        }
    }
}

/// Hashes a [`Value`] for key construction, tagging each variant so
/// `Int(1)` and `Bool(true)` (say) cannot collide.
pub fn hash_value(value: &Value) -> u64 {
    match value {
        Value::Null => noise::combine(&[0x11]),
        Value::Bool(b) => noise::combine(&[0x22, u64::from(*b)]),
        Value::Int(i) => noise::combine(&[0x33, *i as u64]),
        Value::Float(f) => noise::combine(&[0x44, f.to_bits()]),
        Value::Str(s) => noise::combine(&[0x55, noise::hash_str(s)]),
        Value::List(items) => {
            let mut parts = vec![0x66u64, items.len() as u64];
            parts.extend(items.iter().map(hash_value));
            noise::combine(&parts)
        }
    }
}

/// Tunables for the cache.
#[derive(Debug, Clone)]
pub struct CacheConfig {
    /// Maximum resident entries (0 = unbounded).
    pub capacity: usize,
    /// Byte budget over stored responses (0 = unbounded).
    pub max_bytes: usize,
    /// Latency reported for an exact hit, in virtual seconds.
    pub hit_latency_s: f64,
}

impl Default for CacheConfig {
    fn default() -> Self {
        CacheConfig {
            capacity: 0,
            max_bytes: 0,
            hit_latency_s: 0.02,
        }
    }
}

/// A monotonic counter snapshot of cache activity. Deltas between two
/// snapshots attribute hits to one query or tenant.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Exact hits served from the store.
    pub hits: u64,
    /// Calls that computed and admitted a new entry.
    pub misses: u64,
    /// Calls that shared another caller's in-flight computation (or a
    /// batch-deduplicated duplicate).
    pub coalesced: u64,
    /// The subset of `hits` whose content key was derived from a compiled
    /// plan's bytecode hash rather than the raw program text — two
    /// textually different programs that lower to the same bytecode share
    /// one entry, and these hits count how often that sharing paid off.
    pub plan_hits: u64,
    /// Entries evicted by the capacity or byte budget.
    pub evictions: u64,
    /// Resident entries right now.
    pub entries: u64,
    /// Approximate resident bytes right now.
    pub bytes: u64,
}

impl CacheStats {
    /// Total lookups observed (hits + misses + coalesced).
    pub fn lookups(&self) -> u64 {
        self.hits + self.misses + self.coalesced
    }

    /// Hit rate counting coalesced waiters as hits (they paid nothing).
    pub fn hit_rate(&self) -> f64 {
        let lookups = self.lookups();
        if lookups == 0 {
            0.0
        } else {
            (self.hits + self.coalesced) as f64 / lookups as f64
        }
    }

    /// Monotonic-counter difference `self - earlier` (gauges `entries`
    /// and `bytes` keep the current value).
    pub fn delta_since(&self, earlier: &CacheStats) -> CacheStats {
        CacheStats {
            hits: self.hits - earlier.hits,
            misses: self.misses - earlier.misses,
            coalesced: self.coalesced - earlier.coalesced,
            plan_hits: self.plan_hits - earlier.plan_hits,
            evictions: self.evictions - earlier.evictions,
            entries: self.entries,
            bytes: self.bytes,
        }
    }
}

#[derive(Debug, Clone)]
struct Entry {
    resp: LlmResponse,
    bytes: usize,
    tick: u64,
}

#[derive(Debug, Default)]
struct State {
    entries: HashMap<CacheKey, Entry>,
    pending: std::collections::HashSet<CacheKey>,
    tick: u64,
    bytes: usize,
    hits: u64,
    misses: u64,
    coalesced: u64,
    plan_hits: u64,
    evictions: u64,
}

#[derive(Debug)]
struct Inner {
    state: Mutex<State>,
    cond: Condvar,
    config: CacheConfig,
}

/// The shared semantic call cache. Clones share one store.
#[derive(Debug, Clone)]
pub struct SemanticCache {
    inner: Arc<Inner>,
}

/// The outcome of [`SemanticCache::begin`].
pub enum Lookup {
    /// Exact hit: the stored response, zero marginal cost.
    Hit(LlmResponse),
    /// Shared an in-flight computation: the freshly admitted response.
    Coalesced(LlmResponse),
    /// This caller must compute; admit the result via the guard.
    Compute(Pending),
}

/// Marks a key as in-flight until [`SemanticCache::admit`] lands the
/// response. Dropping it without admitting (a panic in the computation)
/// releases the key so waiters retry instead of deadlocking.
pub struct Pending {
    cache: SemanticCache,
    key: CacheKey,
    admitted: bool,
}

impl Drop for Pending {
    fn drop(&mut self) {
        if !self.admitted {
            let mut st = self.cache.inner.state.lock().unwrap();
            st.pending.remove(&self.key);
            drop(st);
            self.cache.inner.cond.notify_all();
        }
    }
}

impl SemanticCache {
    /// Creates an empty cache.
    pub fn new(config: CacheConfig) -> SemanticCache {
        SemanticCache {
            inner: Arc::new(Inner {
                state: Mutex::new(State::default()),
                cond: Condvar::new(),
                config,
            }),
        }
    }

    /// Creates a cache bounded to `capacity` entries with default byte
    /// budget and hit latency.
    pub fn with_capacity(capacity: usize) -> SemanticCache {
        SemanticCache::new(CacheConfig {
            capacity,
            ..CacheConfig::default()
        })
    }

    /// The configured hit latency in virtual seconds.
    pub fn hit_latency_s(&self) -> f64 {
        self.inner.config.hit_latency_s
    }

    /// Looks `key` up. On a resident entry, bumps recency and returns
    /// [`Lookup::Hit`]. If another caller is computing the same key,
    /// blocks until it lands and returns [`Lookup::Coalesced`]. Otherwise
    /// marks the key in-flight and returns [`Lookup::Compute`] — the
    /// caller runs the real call and must [`SemanticCache::admit`] it.
    pub fn begin(&self, key: CacheKey) -> Lookup {
        let mut st = self.inner.state.lock().unwrap();
        let mut waited = false;
        loop {
            if st.entries.contains_key(&key) {
                st.tick += 1;
                let tick = st.tick;
                let entry = st.entries.get_mut(&key).expect("entry present");
                entry.tick = tick;
                let resp = entry.resp.clone();
                return if waited {
                    st.coalesced += 1;
                    Lookup::Coalesced(resp)
                } else {
                    st.hits += 1;
                    Lookup::Hit(resp)
                };
            }
            if st.pending.contains(&key) {
                waited = true;
                st = self.inner.cond.wait(st).unwrap();
                continue;
            }
            st.pending.insert(key);
            st.misses += 1;
            return Lookup::Compute(Pending {
                cache: self.clone(),
                key,
                admitted: false,
            });
        }
    }

    /// Admits a computed response for the pending key, waking any
    /// coalesced waiters and evicting LRU entries past the budgets.
    pub fn admit(&self, mut pending: Pending, resp: LlmResponse) {
        pending.admitted = true;
        let key = pending.key;
        let bytes = approx_bytes(&resp);
        let mut st = self.inner.state.lock().unwrap();
        st.pending.remove(&key);
        st.tick += 1;
        let tick = st.tick;
        st.bytes += bytes;
        st.entries.insert(key, Entry { resp, bytes, tick });
        Self::evict_over_budget(&mut st, &self.inner.config);
        drop(st);
        self.inner.cond.notify_all();
    }

    /// Records a hit whose key was derived from a compiled plan's content
    /// hash (see [`CacheStats::plan_hits`]). Called by the simulator after
    /// [`SemanticCache::begin`] returns [`Lookup::Hit`] for such a key.
    pub fn note_plan_hit(&self) {
        self.inner.state.lock().unwrap().plan_hits += 1;
    }

    /// Records `n` batch-deduplicated duplicates that shared one call
    /// without going through the pending machinery (execution engines
    /// dedup virtually-simultaneous batches deterministically).
    pub fn record_coalesced(&self, n: u64) {
        self.inner.state.lock().unwrap().coalesced += n;
    }

    fn evict_over_budget(st: &mut State, config: &CacheConfig) {
        let over = |st: &State| {
            (config.capacity > 0 && st.entries.len() > config.capacity)
                || (config.max_bytes > 0 && st.bytes > config.max_bytes && st.entries.len() > 1)
        };
        while over(st) {
            let victim = st
                .entries
                .iter()
                .min_by_key(|(key, e)| (e.tick, **key))
                .map(|(key, _)| *key);
            let Some(key) = victim else { break };
            if let Some(entry) = st.entries.remove(&key) {
                st.bytes -= entry.bytes;
                st.evictions += 1;
            }
        }
    }

    /// Current counter snapshot.
    pub fn stats(&self) -> CacheStats {
        let st = self.inner.state.lock().unwrap();
        CacheStats {
            hits: st.hits,
            misses: st.misses,
            coalesced: st.coalesced,
            plan_hits: st.plan_hits,
            evictions: st.evictions,
            entries: st.entries.len() as u64,
            bytes: st.bytes as u64,
        }
    }

    /// Resident entry count.
    pub fn len(&self) -> usize {
        self.inner.state.lock().unwrap().entries.len()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops every entry (counters are kept).
    pub fn clear(&self) {
        let mut st = self.inner.state.lock().unwrap();
        st.entries.clear();
        st.bytes = 0;
    }

    /// Writes a versioned, checksummed snapshot of the store via an
    /// atomic temp-file-and-rename commit, so a crash mid-save never
    /// clobbers the previous snapshot. Entries are written LRU→MRU so a
    /// reload preserves eviction order.
    pub fn save(&self, path: &Path) -> std::io::Result<()> {
        self.save_with(path, None)
    }

    /// [`SemanticCache::save`] with an optional crash-injection plan
    /// (threaded through by the durability suite).
    pub fn save_with(&self, path: &Path, plan: Option<&FailPlan>) -> std::io::Result<()> {
        let body = {
            let st = self.inner.state.lock().unwrap();
            let mut ordered: Vec<(&CacheKey, &Entry)> = st.entries.iter().collect();
            ordered.sort_by_key(|(key, e)| (e.tick, **key));
            let mut body = String::new();
            for (key, entry) in ordered {
                body.push_str(&encode_entry(key, &entry.resp));
                body.push('\n');
            }
            body
        };
        snapshot::commit_atomic(path, &snapshot::encode_file(MAGIC, &body), plan)
    }

    /// Loads a snapshot, merging its entries into the store (freshly
    /// ticked, then trimmed to the budgets). Returns how many entries
    /// were restored. Any format, count, or checksum violation returns
    /// [`SnapshotError`] and leaves the store untouched — callers start
    /// cold instead of crashing.
    pub fn load(&self, path: &Path) -> Result<usize, SnapshotError> {
        let mut text = String::new();
        std::fs::File::open(path)?.read_to_string(&mut text)?;
        let entries = decode_snapshot(&text)?;
        let n = entries.len();
        // Recovery must not panic: if another thread poisoned the lock,
        // take the state anyway — worst case the warm-start merge lands
        // on a cache that a dying thread left half-updated, which the
        // budget trim below re-normalizes.
        let mut st = self
            .inner
            .state
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        for (key, resp) in entries {
            let bytes = approx_bytes(&resp);
            st.tick += 1;
            let tick = st.tick;
            if let Some(old) = st.entries.insert(key, Entry { resp, bytes, tick }) {
                st.bytes -= old.bytes;
            }
            st.bytes += bytes;
        }
        Self::evict_over_budget(&mut st, &self.inner.config);
        Ok(n)
    }
}

const MAGIC: &str = "aida-semcache v1";

/// Approximate resident size of a stored response, for the byte budget.
fn approx_bytes(resp: &LlmResponse) -> usize {
    64 + resp.text.len() + value_bytes(&resp.value)
}

fn value_bytes(value: &Value) -> usize {
    match value {
        Value::Null | Value::Bool(_) | Value::Int(_) | Value::Float(_) => 16,
        Value::Str(s) => 16 + s.len(),
        Value::List(items) => 16 + items.iter().map(value_bytes).sum::<usize>(),
    }
}

// ---- snapshot encoding -------------------------------------------------
//
// One tab-separated line per entry:
//   <hi:hex16> <lo:hex16> <in_tokens> <out_tokens> <latency_bits:hex16>
//   <corrupted 0|1> <value-enc> <text-escaped>
// The escaping and value codec are the shared ones in [`snapshot`].

fn encode_entry(key: &CacheKey, resp: &LlmResponse) -> String {
    let mut line = format!(
        "{:016x}\t{:016x}\t{}\t{}\t{:016x}\t{}\t",
        key.hi,
        key.lo,
        resp.input_tokens,
        resp.output_tokens,
        resp.latency_s.to_bits(),
        u8::from(resp.corrupted),
    );
    encode_value(&resp.value, &mut line);
    line.push('\t');
    esc(&resp.text, &mut line);
    line
}

fn decode_entry(line: &str) -> Result<(CacheKey, LlmResponse), SnapshotError> {
    let fields: Vec<&str> = line.split('\t').collect();
    if fields.len() != 8 {
        return Err(SnapshotError::Format(format!(
            "expected 8 fields, got {}",
            fields.len()
        )));
    }
    let hex = |raw: &str, what: &str| {
        u64::from_str_radix(raw, 16).map_err(|_| SnapshotError::Format(format!("bad {what}")))
    };
    let key = CacheKey {
        hi: hex(fields[0], "key.hi")?,
        lo: hex(fields[1], "key.lo")?,
    };
    let input_tokens = fields[2]
        .parse::<usize>()
        .map_err(|_| SnapshotError::Format("bad input_tokens".into()))?;
    let output_tokens = fields[3]
        .parse::<usize>()
        .map_err(|_| SnapshotError::Format("bad output_tokens".into()))?;
    let latency_s = f64::from_bits(hex(fields[4], "latency bits")?);
    let corrupted = match fields[5] {
        "0" => false,
        "1" => true,
        _ => return Err(SnapshotError::Format("bad corrupted flag".into())),
    };
    Ok((
        key,
        LlmResponse {
            value: decode_value(fields[6])?,
            text: unesc(fields[7])?,
            input_tokens,
            output_tokens,
            latency_s,
            corrupted,
        },
    ))
}

fn decode_snapshot(text: &str) -> Result<Vec<(CacheKey, LlmResponse)>, SnapshotError> {
    let body = snapshot::decode_file(MAGIC, text)?;
    let mut entries = Vec::new();
    for line in body.lines() {
        entries.push(decode_entry(line)?);
    }
    Ok(entries)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn resp(text: &str, value: Value) -> LlmResponse {
        LlmResponse {
            value,
            text: text.to_string(),
            input_tokens: 10,
            output_tokens: 4,
            latency_s: 1.5,
            corrupted: false,
        }
    }

    fn key(n: u64) -> CacheKey {
        CacheKey::from_parts(&[n])
    }

    fn admit(cache: &SemanticCache, k: CacheKey, r: LlmResponse) {
        match cache.begin(k) {
            Lookup::Compute(pending) => cache.admit(pending, r),
            _ => panic!("expected compute"),
        }
    }

    #[test]
    fn miss_then_hit_round_trips_the_response() {
        let cache = SemanticCache::new(CacheConfig::default());
        admit(&cache, key(1), resp("hello", Value::Int(7)));
        match cache.begin(key(1)) {
            Lookup::Hit(r) => {
                assert_eq!(r.value, Value::Int(7));
                assert_eq!(r.text, "hello");
            }
            _ => panic!("expected hit"),
        }
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.entries), (1, 1, 1));
        assert!(stats.bytes > 0);
    }

    #[test]
    fn keys_differ_by_any_part() {
        let a = CacheKey::from_parts(&[1, 2, 3]);
        let b = CacheKey::from_parts(&[1, 2, 4]);
        let c = CacheKey::from_parts(&[1, 2]);
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_eq!(a, CacheKey::from_parts(&[1, 2, 3]));
    }

    #[test]
    fn lru_eviction_respects_capacity_and_counts() {
        let cache = SemanticCache::new(CacheConfig {
            capacity: 2,
            ..CacheConfig::default()
        });
        admit(&cache, key(1), resp("a", Value::Null));
        admit(&cache, key(2), resp("b", Value::Null));
        // Touch key 1 so key 2 is the LRU victim.
        assert!(matches!(cache.begin(key(1)), Lookup::Hit(_)));
        admit(&cache, key(3), resp("c", Value::Null));
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.stats().evictions, 1);
        assert!(matches!(cache.begin(key(1)), Lookup::Hit(_)));
        assert!(matches!(cache.begin(key(2)), Lookup::Compute(_)));
    }

    #[test]
    fn byte_budget_evicts_oldest() {
        let cache = SemanticCache::new(CacheConfig {
            max_bytes: 200,
            ..CacheConfig::default()
        });
        admit(&cache, key(1), resp(&"x".repeat(120), Value::Null));
        admit(&cache, key(2), resp(&"y".repeat(120), Value::Null));
        assert_eq!(cache.len(), 1, "byte budget holds one entry");
        assert!(cache.stats().bytes <= 200 + 200);
        assert!(matches!(cache.begin(key(2)), Lookup::Hit(_)));
    }

    #[test]
    fn concurrent_same_key_charges_once() {
        let cache = SemanticCache::new(CacheConfig::default());
        let computed = std::sync::atomic::AtomicU64::new(0);
        std::thread::scope(|scope| {
            for _ in 0..8 {
                let cache = cache.clone();
                let computed = &computed;
                scope.spawn(move || match cache.begin(key(9)) {
                    Lookup::Compute(pending) => {
                        // Hold the pending marker long enough for the
                        // other threads to pile up on it.
                        std::thread::sleep(std::time::Duration::from_millis(20));
                        computed.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
                        cache.admit(pending, resp("once", Value::Null));
                    }
                    Lookup::Hit(r) | Lookup::Coalesced(r) => assert_eq!(r.text, "once"),
                });
            }
        });
        assert_eq!(computed.load(std::sync::atomic::Ordering::SeqCst), 1);
        let stats = cache.stats();
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.hits + stats.coalesced, 7);
    }

    #[test]
    fn abandoned_pending_unblocks_waiters() {
        let cache = SemanticCache::new(CacheConfig::default());
        match cache.begin(key(5)) {
            Lookup::Compute(pending) => drop(pending),
            _ => panic!("expected compute"),
        }
        // The key is free again: a second caller gets to compute.
        assert!(matches!(cache.begin(key(5)), Lookup::Compute(_)));
    }

    #[test]
    #[allow(clippy::excessive_precision)] // the extra digits probe f64 rounding
    fn snapshot_round_trips_every_value_shape() {
        let dir = std::env::temp_dir().join("aida-semcache-test-roundtrip");
        let path = dir.join("snap.cache");
        let cache = SemanticCache::new(CacheConfig::default());
        let tricky = Value::List(vec![
            Value::Null,
            Value::Bool(true),
            Value::Int(-42),
            Value::Float(13.1600000000000001),
            Value::Str("tabs\tand\nnewlines, [brackets] \\slashes".into()),
            Value::List(vec![]),
        ]);
        admit(&cache, key(1), resp("line one\nline two\ttabbed", tricky));
        admit(
            &cache,
            key(2),
            resp("plain", Value::Float(f64::MIN_POSITIVE)),
        );
        cache.save(&path).unwrap();

        let restored = SemanticCache::new(CacheConfig::default());
        assert_eq!(restored.load(&path).unwrap(), 2);
        for k in [key(1), key(2)] {
            let (Lookup::Hit(a), Lookup::Hit(b)) = (cache.begin(k), restored.begin(k)) else {
                panic!("both caches should hit");
            };
            assert_eq!(a, b);
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn truncated_snapshot_is_rejected() {
        let dir = std::env::temp_dir().join("aida-semcache-test-truncated");
        let path = dir.join("snap.cache");
        let cache = SemanticCache::new(CacheConfig::default());
        admit(&cache, key(1), resp("a", Value::Int(1)));
        admit(&cache, key(2), resp("b", Value::Int(2)));
        cache.save(&path).unwrap();
        let full = std::fs::read_to_string(&path).unwrap();
        std::fs::write(&path, &full[..full.len() - 10]).unwrap();
        let cold = SemanticCache::new(CacheConfig::default());
        assert!(matches!(cold.load(&path), Err(SnapshotError::Format(_))));
        assert!(cold.is_empty(), "a rejected snapshot leaves the cache cold");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn garbled_snapshot_is_rejected() {
        let dir = std::env::temp_dir().join("aida-semcache-test-garbled");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("snap.cache");
        std::fs::write(&path, "not a snapshot at all\n").unwrap();
        let cache = SemanticCache::new(CacheConfig::default());
        assert!(matches!(cache.load(&path), Err(SnapshotError::Format(_))));
        // Flipping a payload byte breaks the checksum.
        let good = SemanticCache::new(CacheConfig::default());
        admit(&good, key(3), resp("abc", Value::Str("xyz".into())));
        good.save(&path).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        let last = bytes.len() - 2;
        bytes[last] = bytes[last].wrapping_add(1);
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(cache.load(&path), Err(SnapshotError::Format(_))));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn delta_since_isolates_one_window() {
        let cache = SemanticCache::new(CacheConfig::default());
        admit(&cache, key(1), resp("a", Value::Null));
        let before = cache.stats();
        assert!(matches!(cache.begin(key(1)), Lookup::Hit(_)));
        cache.record_coalesced(3);
        let delta = cache.stats().delta_since(&before);
        assert_eq!((delta.hits, delta.misses, delta.coalesced), (1, 0, 3));
        assert!(delta.hit_rate() > 0.99);
    }
}
