//! `aida-llm`: a deterministic simulated large-language-model substrate.
//!
//! The paper's prototype calls OpenAI GPT-4o for every semantic operation
//! and agent step. This crate replaces those calls with a **simulated LLM**
//! that preserves the three properties the evaluation depends on:
//!
//! 1. **Economics** — every call consumes input/output tokens that are
//!    priced per model tier ([`ModelCatalog`]) and take simulated time
//!    ([`latency`]); all spend flows through a single [`UsageMeter`].
//! 2. **Tiered accuracy** — cheaper models are noisier. Answers are
//!    computed by *reading the subject text* (phrase classifiers, table
//!    extraction) or by consulting generator-registered [`oracle`] rules,
//!    then corrupted by a seeded, tier-dependent noise channel
//!    ([`noise`]).
//! 3. **Determinism** — identical `(seed, model, instruction, subject)`
//!    always produces the identical answer, so every experiment replays
//!    bit-for-bit.
//!
//! The crate also provides the [`embed::Embedder`] used for vector search
//! and Context-description similarity, and the virtual clock
//! ([`clock::SimClock`]) that execution engines advance to report
//! simulated wall-time.

pub mod cache;
pub mod clock;
pub mod embed;
pub mod models;
pub mod noise;
pub mod oracle;
pub mod sim;
pub mod snapshot;
pub mod tokens;
pub mod usage;

pub use cache::{CacheConfig, CacheKey, CacheStats, SemanticCache, SnapshotError};
pub use clock::{ScheduledSlot, SimClock, Timeline, WallStopwatch};
pub use embed::Embedder;
pub use models::{ModelCatalog, ModelId, ModelSpec};
pub use oracle::{Oracle, OracleAnswer, OracleRule, Subject};
pub use sim::{LlmResponse, LlmTask, PlanHasher, SimLlm};
pub use snapshot::{CrashPoint, FailPlan};
pub use usage::{Usage, UsageMeter, UsageSnapshot};
