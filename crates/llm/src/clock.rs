//! Virtual time.
//!
//! Experiments report simulated wall-clock seconds, not host time. The
//! clock is advanced explicitly by execution engines: a sequential agent
//! loop advances by each call's full latency, while the batched semantic
//! operator executor advances by the critical path of a parallel batch
//! (`total_latency / parallelism`, rounded up per wave).

use parking_lot::Mutex;
use std::sync::Arc;

/// A shared, monotonically-advancing virtual clock (seconds).
#[derive(Debug, Clone, Default)]
pub struct SimClock {
    now_s: Arc<Mutex<f64>>,
}

impl SimClock {
    /// Creates a clock at t = 0.
    pub fn new() -> Self {
        Self::default()
    }

    /// The current virtual time in seconds.
    pub fn now(&self) -> f64 {
        *self.now_s.lock()
    }

    /// Advances the clock by `seconds` (negative advances are ignored).
    pub fn advance(&self, seconds: f64) {
        if seconds > 0.0 && seconds.is_finite() {
            *self.now_s.lock() += seconds;
        }
    }

    /// Advances by the elapsed virtual time of `n_calls` parallel calls of
    /// `total_latency_s` aggregate latency across `parallelism` workers:
    /// the critical path is `ceil(n/p)` waves of average call latency.
    pub fn advance_parallel(&self, total_latency_s: f64, n_calls: usize, parallelism: usize) {
        if n_calls == 0 {
            return;
        }
        let p = parallelism.max(1);
        let avg = total_latency_s / n_calls as f64;
        let waves = n_calls.div_ceil(p);
        self.advance(avg * waves as f64);
    }

    /// Resets to t = 0.
    pub fn reset(&self) {
        *self.now_s.lock() = 0.0;
    }
}

/// A scoped stopwatch over the virtual clock.
#[derive(Debug)]
pub struct SimStopwatch {
    clock: SimClock,
    start_s: f64,
}

impl SimStopwatch {
    /// Starts timing at the clock's current instant.
    pub fn start(clock: &SimClock) -> Self {
        SimStopwatch {
            clock: clock.clone(),
            start_s: clock.now(),
        }
    }

    /// Virtual seconds elapsed since `start`.
    pub fn elapsed(&self) -> f64 {
        self.clock.now() - self.start_s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn advance_accumulates() {
        let clock = SimClock::new();
        clock.advance(1.5);
        clock.advance(0.5);
        assert!((clock.now() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn negative_and_nan_advances_ignored() {
        let clock = SimClock::new();
        clock.advance(-5.0);
        clock.advance(f64::NAN);
        assert_eq!(clock.now(), 0.0);
    }

    #[test]
    fn clones_share_time() {
        let a = SimClock::new();
        let b = a.clone();
        b.advance(3.0);
        assert_eq!(a.now(), 3.0);
        a.reset();
        assert_eq!(b.now(), 0.0);
    }

    #[test]
    fn parallel_advance_uses_waves() {
        let clock = SimClock::new();
        // 10 calls of 1s each over 4 workers: 3 waves of 1s.
        clock.advance_parallel(10.0, 10, 4);
        assert!((clock.now() - 3.0).abs() < 1e-9);
        // Zero calls: no movement.
        clock.advance_parallel(10.0, 0, 4);
        assert!((clock.now() - 3.0).abs() < 1e-9);
    }

    #[test]
    fn sequential_equals_parallelism_one() {
        let clock = SimClock::new();
        clock.advance_parallel(7.0, 7, 1);
        assert!((clock.now() - 7.0).abs() < 1e-9);
    }

    #[test]
    fn stopwatch_measures_interval() {
        let clock = SimClock::new();
        clock.advance(1.0);
        let sw = SimStopwatch::start(&clock);
        clock.advance(2.5);
        assert!((sw.elapsed() - 2.5).abs() < 1e-12);
    }
}
