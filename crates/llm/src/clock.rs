//! Virtual time.
//!
//! Experiments report simulated wall-clock seconds, not host time. The
//! clock is advanced explicitly by execution engines: a sequential agent
//! loop advances by each call's full latency, while the batched semantic
//! operator executor advances by the critical path of a parallel batch
//! (`total_latency / parallelism`, rounded up per wave).

use parking_lot::Mutex;
use std::sync::Arc;

/// A shared, monotonically-advancing virtual clock (seconds).
#[derive(Debug, Clone, Default)]
pub struct SimClock {
    now_s: Arc<Mutex<f64>>,
}

impl SimClock {
    /// Creates a clock at t = 0.
    pub fn new() -> Self {
        Self::default()
    }

    /// The current virtual time in seconds.
    pub fn now(&self) -> f64 {
        *self.now_s.lock()
    }

    /// Advances the clock by `seconds` (negative advances are ignored).
    pub fn advance(&self, seconds: f64) {
        if seconds > 0.0 && seconds.is_finite() {
            *self.now_s.lock() += seconds;
        }
    }

    /// Advances by the elapsed virtual time of `n_calls` parallel calls of
    /// `total_latency_s` aggregate latency across `parallelism` workers:
    /// the critical path is `ceil(n/p)` waves of average call latency.
    pub fn advance_parallel(&self, total_latency_s: f64, n_calls: usize, parallelism: usize) {
        if n_calls == 0 {
            return;
        }
        let p = parallelism.max(1);
        let avg = total_latency_s / n_calls as f64;
        let waves = n_calls.div_ceil(p);
        self.advance(avg * waves as f64);
    }

    /// Resets to t = 0.
    pub fn reset(&self) {
        *self.now_s.lock() = 0.0;
    }
}

/// A slot assigned by a [`Timeline`]: which worker ran the job and when,
/// in virtual time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScheduledSlot {
    /// Index of the worker that served the job.
    pub worker: usize,
    /// Virtual start instant (seconds).
    pub start_s: f64,
    /// Virtual completion instant (seconds).
    pub end_s: f64,
}

/// Virtual-clock concurrency semantics for overlapping queries.
///
/// The shared [`SimClock`] is advanced serially by whichever execution is
/// holding the runtime, so it cannot express *overlap*: two queries served
/// by two workers should occupy the same virtual interval, not
/// concatenated ones. A `Timeline` models an `N`-worker pool as a
/// deterministic discrete-event simulation: jobs are submitted in a fixed
/// order with a ready instant and a measured duration, each is placed on
/// the earliest-free worker (lowest index breaking ties), and the slot
/// records the overlapped virtual start/end. Service latency, makespan,
/// and queue-wait all fall out of the slots — byte-identically across
/// runs, no matter how host threads interleave.
/// Autoscaling note: the pool has a fixed *capacity* (`workers()`) but
/// only the first `active()` workers accept new placements. Deactivating
/// a worker never cancels committed slots — its `free_at` survives, so a
/// later reactivation resumes from wherever its last job ended.
#[derive(Debug, Clone)]
pub struct Timeline {
    free_at: Vec<f64>,
    active: usize,
}

impl Timeline {
    /// Creates a timeline over `workers` parallel workers (at least 1),
    /// all active.
    pub fn new(workers: usize) -> Self {
        let n = workers.max(1);
        Timeline {
            free_at: vec![0.0; n],
            active: n,
        }
    }

    /// Pool capacity: total workers, active or not.
    pub fn workers(&self) -> usize {
        self.free_at.len()
    }

    /// Workers currently accepting placements (indices `0..active`).
    pub fn active(&self) -> usize {
        self.active
    }

    /// Resizes the active prefix of the pool, clamped to
    /// `1..=workers()`; returns the applied size. Placement only ever
    /// targets indices below the active count, so shrinking strands no
    /// committed work — a deactivated worker simply stops taking jobs.
    pub fn set_active(&mut self, n: usize) -> usize {
        self.active = n.clamp(1, self.free_at.len());
        self.active
    }

    /// The earliest virtual instant at which any *active* worker is free.
    pub fn next_free(&self) -> f64 {
        self.free_at[..self.active]
            .iter()
            .copied()
            .fold(f64::INFINITY, f64::min)
    }

    /// The placement `schedule` would commit for a job ready at
    /// `ready_s`, without committing it. Worker choice is independent of
    /// the job's duration, so callers that must *run* a job to learn its
    /// duration (the serving layer measures durations by executing) can
    /// peek the worker/start first and commit after.
    pub fn peek(&self, ready_s: f64) -> ScheduledSlot {
        let worker = self.earliest_free_worker();
        let start_s = ready_s.max(self.free_at[worker]);
        ScheduledSlot {
            worker,
            start_s,
            end_s: start_s,
        }
    }

    fn earliest_free_worker(&self) -> usize {
        let mut worker = 0;
        for i in 1..self.active {
            if self.free_at[i] < self.free_at[worker] {
                worker = i;
            }
        }
        worker
    }

    /// Places a job that becomes ready at `ready_s` and runs for
    /// `duration_s` onto the earliest-free worker; ties go to the lowest
    /// worker index so placement is deterministic.
    pub fn schedule(&mut self, ready_s: f64, duration_s: f64) -> ScheduledSlot {
        let worker = self.earliest_free_worker();
        let start_s = ready_s.max(self.free_at[worker]);
        let end_s = start_s + duration_s.max(0.0);
        self.free_at[worker] = end_s;
        ScheduledSlot {
            worker,
            start_s,
            end_s,
        }
    }

    /// The virtual instant the last worker finishes (0 when idle).
    pub fn makespan(&self) -> f64 {
        self.free_at.iter().copied().fold(0.0, f64::max)
    }
}

/// A scoped stopwatch over the virtual clock.
#[derive(Debug)]
pub struct SimStopwatch {
    clock: SimClock,
    start_s: f64,
}

impl SimStopwatch {
    /// Starts timing at the clock's current instant.
    pub fn start(clock: &SimClock) -> Self {
        SimStopwatch {
            clock: clock.clone(),
            start_s: clock.now(),
        }
    }

    /// Virtual seconds elapsed since `start`.
    pub fn elapsed(&self) -> f64 {
        self.clock.now() - self.start_s
    }
}

/// A wall-clock stopwatch for *measuring the harness itself* (e.g. the
/// recorder-overhead check in `serve_soak`). This is the only place in
/// the workspace allowed to touch host time (lint rule D1): wall-clock
/// readings must never feed a trace, a report, or any simulated result —
/// only meta-measurements that compare two executions of the harness.
#[derive(Debug)]
pub struct WallStopwatch {
    start: std::time::Instant,
}

impl Default for WallStopwatch {
    fn default() -> Self {
        Self::start()
    }
}

impl WallStopwatch {
    /// Starts timing now, in host time.
    pub fn start() -> Self {
        WallStopwatch {
            start: std::time::Instant::now(),
        }
    }

    /// Host seconds elapsed since `start`.
    pub fn elapsed_s(&self) -> f64 {
        self.start.elapsed().as_secs_f64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn advance_accumulates() {
        let clock = SimClock::new();
        clock.advance(1.5);
        clock.advance(0.5);
        assert!((clock.now() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn negative_and_nan_advances_ignored() {
        let clock = SimClock::new();
        clock.advance(-5.0);
        clock.advance(f64::NAN);
        assert_eq!(clock.now(), 0.0);
    }

    #[test]
    fn clones_share_time() {
        let a = SimClock::new();
        let b = a.clone();
        b.advance(3.0);
        assert_eq!(a.now(), 3.0);
        a.reset();
        assert_eq!(b.now(), 0.0);
    }

    #[test]
    fn parallel_advance_uses_waves() {
        let clock = SimClock::new();
        // 10 calls of 1s each over 4 workers: 3 waves of 1s.
        clock.advance_parallel(10.0, 10, 4);
        assert!((clock.now() - 3.0).abs() < 1e-9);
        // Zero calls: no movement.
        clock.advance_parallel(10.0, 0, 4);
        assert!((clock.now() - 3.0).abs() < 1e-9);
    }

    #[test]
    fn sequential_equals_parallelism_one() {
        let clock = SimClock::new();
        clock.advance_parallel(7.0, 7, 1);
        assert!((clock.now() - 7.0).abs() < 1e-9);
    }

    #[test]
    fn timeline_overlaps_jobs_across_workers() {
        let mut tl = Timeline::new(2);
        // Three 10s jobs all ready at t=0: two overlap, the third waits.
        let a = tl.schedule(0.0, 10.0);
        let b = tl.schedule(0.0, 10.0);
        let c = tl.schedule(0.0, 10.0);
        assert_eq!((a.worker, a.start_s, a.end_s), (0, 0.0, 10.0));
        assert_eq!((b.worker, b.start_s, b.end_s), (1, 0.0, 10.0));
        assert_eq!((c.worker, c.start_s, c.end_s), (0, 10.0, 20.0));
        assert_eq!(tl.makespan(), 20.0);
        assert_eq!(tl.next_free(), 10.0);
    }

    #[test]
    fn timeline_respects_ready_instants() {
        let mut tl = Timeline::new(1);
        let a = tl.schedule(5.0, 2.0);
        assert_eq!((a.start_s, a.end_s), (5.0, 7.0));
        // A job ready earlier than the worker frees still waits.
        let b = tl.schedule(6.0, 1.0);
        assert_eq!((b.start_s, b.end_s), (7.0, 8.0));
        // A gap: the worker idles until the job is ready.
        let c = tl.schedule(20.0, 1.0);
        assert_eq!((c.start_s, c.end_s), (20.0, 21.0));
    }

    #[test]
    fn timeline_ties_pick_lowest_worker() {
        let mut tl = Timeline::new(3);
        assert_eq!(tl.schedule(0.0, 0.0).worker, 0);
        // All still free at t=0 (zero-length job): lowest index again.
        assert_eq!(tl.schedule(0.0, 1.0).worker, 0);
        assert_eq!(tl.schedule(0.0, 1.0).worker, 1);
        assert_eq!(tl.schedule(0.0, 1.0).worker, 2);
        // Negative durations are clamped to zero-length slots.
        let s = tl.schedule(0.0, -4.0);
        assert_eq!(s.start_s, s.end_s);
    }

    #[test]
    fn timeline_peek_matches_schedule() {
        let mut tl = Timeline::new(2);
        tl.schedule(0.0, 5.0);
        // Peeking does not commit: repeated peeks agree.
        let peeked = tl.peek(1.0);
        assert_eq!(tl.peek(1.0), peeked);
        let committed = tl.schedule(1.0, 3.0);
        assert_eq!(peeked.worker, committed.worker);
        assert_eq!(peeked.start_s, committed.start_s);
        assert_eq!((committed.worker, committed.end_s), (1, 4.0));
    }

    #[test]
    fn timeline_active_prefix_bounds_placement() {
        let mut tl = Timeline::new(4);
        assert_eq!(tl.active(), 4);
        assert_eq!(tl.set_active(2), 2);
        // Two 10s jobs saturate the active pair; the third queues on
        // worker 0 even though workers 2/3 idle deactivated.
        let a = tl.schedule(0.0, 10.0);
        let b = tl.schedule(0.0, 10.0);
        let c = tl.schedule(0.0, 10.0);
        assert_eq!((a.worker, b.worker, c.worker), (0, 1, 0));
        assert_eq!(c.start_s, 10.0);
        assert_eq!(tl.next_free(), 10.0);
        // Reactivating exposes the idle workers again.
        tl.set_active(4);
        assert_eq!(tl.next_free(), 0.0);
        assert_eq!(tl.schedule(12.0, 1.0).worker, 2);
    }

    #[test]
    fn timeline_set_active_clamps() {
        let mut tl = Timeline::new(3);
        assert_eq!(tl.set_active(0), 1);
        assert_eq!(tl.set_active(9), 3);
        assert_eq!(tl.workers(), 3);
    }

    #[test]
    fn timeline_deactivation_preserves_committed_work() {
        let mut tl = Timeline::new(2);
        tl.schedule(0.0, 4.0); // worker 0 busy to t=4
        tl.schedule(0.0, 9.0); // worker 1 busy to t=9
        tl.set_active(1);
        assert_eq!(tl.makespan(), 9.0); // worker 1's slot survives
        tl.set_active(2);
        // Worker 1 resumes from its last end, not from zero.
        let s = tl.schedule(4.0, 10.0);
        assert_eq!((s.worker, s.start_s), (0, 4.0));
        let s = tl.schedule(4.0, 1.0);
        assert_eq!((s.worker, s.start_s), (1, 9.0));
    }

    #[test]
    fn timeline_zero_workers_is_one_worker() {
        let mut tl = Timeline::new(0);
        assert_eq!(tl.workers(), 1);
        let a = tl.schedule(0.0, 3.0);
        let b = tl.schedule(0.0, 3.0);
        assert_eq!(a.end_s, b.start_s);
    }

    #[test]
    fn stopwatch_measures_interval() {
        let clock = SimClock::new();
        clock.advance(1.0);
        let sw = SimStopwatch::start(&clock);
        clock.advance(2.5);
        assert!((sw.elapsed() - 2.5).abs() < 1e-12);
    }

    #[test]
    fn wall_stopwatch_is_monotone() {
        let sw = WallStopwatch::start();
        let a = sw.elapsed_s();
        let b = sw.elapsed_s();
        assert!(a >= 0.0 && b >= a);
    }
}
