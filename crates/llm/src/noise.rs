//! Deterministic noise channel.
//!
//! Every stochastic decision in the simulator — does a model misjudge this
//! document? which wrong row does a faulty extraction return? — derives
//! from a 64-bit hash of the decision's identity (seed, model, instruction,
//! subject). Replays are exact; changing the seed re-rolls everything.

/// SplitMix64: a fast, well-distributed 64-bit mixer.
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Hashes a string into a 64-bit key (FNV-1a, then mixed).
pub fn hash_str(text: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in text.as_bytes() {
        h ^= u64::from(*byte);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    splitmix64(h)
}

/// Combines hash keys into one (order-sensitive).
pub fn combine(parts: &[u64]) -> u64 {
    let mut acc: u64 = 0x51_7c_c1_b7_27_22_0a_95;
    for p in parts {
        acc = splitmix64(acc ^ p.rotate_left(17));
    }
    acc
}

/// Maps a key to a uniform float in `[0, 1)`.
pub fn unit_f64(key: u64) -> f64 {
    // Use the top 53 bits for a uniform double.
    (splitmix64(key) >> 11) as f64 / (1u64 << 53) as f64
}

/// Deterministic Bernoulli draw: true with probability `p`.
pub fn decide(key: u64, p: f64) -> bool {
    if p <= 0.0 {
        return false;
    }
    if p >= 1.0 {
        return true;
    }
    unit_f64(key) < p
}

/// Deterministic choice of an index in `0..n`.
pub fn choose(key: u64, n: usize) -> usize {
    if n == 0 {
        return 0;
    }
    (splitmix64(key) % (n as u64)) as usize
}

/// A tiny deterministic keyed RNG for sequences of draws.
#[derive(Debug, Clone)]
pub struct KeyedRng {
    state: u64,
}

impl KeyedRng {
    /// Seeds the generator from a key.
    pub fn new(key: u64) -> Self {
        KeyedRng {
            state: splitmix64(key ^ 0xA076_1D64_78BD_642F),
        }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        splitmix64(self.state)
    }

    /// Next uniform float in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform integer in `[0, n)`.
    pub fn below(&mut self, n: usize) -> usize {
        if n == 0 {
            0
        } else {
            (self.next_u64() % n as u64) as usize
        }
    }

    /// Bernoulli draw.
    pub fn chance(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// Uniform float in `[lo, hi)`.
    pub fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        lo + self.next_f64() * (hi - lo)
    }

    /// Uniform integer in `[lo, hi]` inclusive.
    pub fn range_i64(&mut self, lo: i64, hi: i64) -> i64 {
        debug_assert!(lo <= hi);
        let span = (hi - lo) as u64 + 1;
        lo + (self.next_u64() % span) as i64
    }

    /// Picks a random element of a slice.
    pub fn pick<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        debug_assert!(!items.is_empty());
        &items[self.below(items.len())]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hashing_is_deterministic_and_distinct() {
        assert_eq!(hash_str("abc"), hash_str("abc"));
        assert_ne!(hash_str("abc"), hash_str("abd"));
        assert_ne!(hash_str(""), hash_str("a"));
    }

    #[test]
    fn combine_is_order_sensitive() {
        assert_ne!(combine(&[1, 2]), combine(&[2, 1]));
        assert_eq!(combine(&[1, 2, 3]), combine(&[1, 2, 3]));
    }

    #[test]
    fn unit_values_are_in_range_and_spread() {
        let mut below_half = 0;
        for i in 0..1000u64 {
            let u = unit_f64(i);
            assert!((0.0..1.0).contains(&u));
            if u < 0.5 {
                below_half += 1;
            }
        }
        // Roughly uniform: 50% +/- 10%.
        assert!((400..=600).contains(&below_half), "{below_half}");
    }

    #[test]
    fn decide_matches_probability_empirically() {
        let hits = (0..10_000u64)
            .filter(|i| decide(combine(&[7, *i]), 0.2))
            .count();
        assert!((1700..=2300).contains(&hits), "{hits}");
        assert!(!decide(1, 0.0));
        assert!(decide(1, 1.0));
    }

    #[test]
    fn keyed_rng_replays() {
        let mut a = KeyedRng::new(42);
        let mut b = KeyedRng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = KeyedRng::new(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn range_draws_stay_in_bounds() {
        let mut rng = KeyedRng::new(7);
        for _ in 0..1000 {
            let v = rng.range_i64(-3, 3);
            assert!((-3..=3).contains(&v));
            let f = rng.range_f64(1.0, 2.0);
            assert!((1.0..2.0).contains(&f));
            assert!(rng.below(5) < 5);
        }
    }

    #[test]
    fn choose_covers_all_indices() {
        let mut seen = [false; 5];
        for i in 0..200u64 {
            seen[choose(i, 5)] = true;
        }
        assert!(seen.iter().all(|s| *s));
        assert_eq!(choose(9, 0), 0);
    }
}
