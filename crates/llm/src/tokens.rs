//! Token counting.
//!
//! A deterministic approximation of BPE tokenization: whitespace-separated
//! words contribute roughly `ceil(len/4)` tokens (long words split into
//! multiple pieces, as real tokenizers do), and standalone punctuation or
//! digits contribute one token per run. The absolute scale is close enough
//! to `cl100k_base` on English prose (±15%) that simulated dollar costs
//! land in the right ballpark.

/// Counts the tokens in `text`.
///
/// Empty or whitespace-only text counts zero tokens.
pub fn count(text: &str) -> usize {
    let mut total = 0usize;
    for word in text.split_whitespace() {
        total += word_tokens(word);
    }
    total
}

fn word_tokens(word: &str) -> usize {
    // Split a "word" into alphanumeric and punctuation runs; each
    // alphanumeric run costs ceil(len/4) with a minimum of 1, punctuation
    // runs cost 1 token each.
    let mut tokens = 0usize;
    let mut alpha_len = 0usize;
    let mut prev_punct = false;
    for c in word.chars() {
        if c.is_alphanumeric() {
            alpha_len += 1;
            prev_punct = false;
        } else {
            if alpha_len > 0 {
                tokens += alpha_len.div_ceil(4).max(1);
                alpha_len = 0;
            }
            if !prev_punct {
                tokens += 1;
            }
            prev_punct = true;
        }
    }
    if alpha_len > 0 {
        tokens += alpha_len.div_ceil(4).max(1);
    }
    tokens.max(1)
}

/// Counts tokens for a prompt assembled from multiple parts, adding a small
/// per-part framing overhead (role headers, separators).
pub fn count_parts(parts: &[&str]) -> usize {
    parts.iter().map(|p| count(p) + 4).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_text_is_zero_tokens() {
        assert_eq!(count(""), 0);
        assert_eq!(count("   \n\t "), 0);
    }

    #[test]
    fn short_words_are_one_token() {
        assert_eq!(count("a"), 1);
        assert_eq!(count("the"), 1);
        assert_eq!(count("the cat sat"), 3);
    }

    #[test]
    fn long_words_split_into_pieces() {
        // 12 letters -> 3 pieces.
        assert_eq!(count("unbelievable"), 3);
        // 8 letters -> 2 pieces.
        assert_eq!(count("neighbor"), 2);
    }

    #[test]
    fn punctuation_costs_tokens() {
        assert_eq!(count("end."), 2);
        assert_eq!(count("a,b"), 3);
        // A run of punctuation is one token.
        assert_eq!(count("wait..."), 2);
    }

    #[test]
    fn prose_scale_is_plausible() {
        let text = "The Federal Trade Commission received 1,135,291 identity \
                    theft reports in 2024, up from 86,250 in 2001.";
        let n = count(text);
        // ~18 words + numbers/punct: expect roughly 25-40 tokens.
        assert!((25..=40).contains(&n), "got {n}");
    }

    #[test]
    fn parts_add_framing_overhead() {
        assert_eq!(count_parts(&["a", "b"]), count("a") + count("b") + 8);
    }

    #[test]
    fn count_is_monotonic_in_concatenation() {
        let a = "identity theft reports";
        let b = "rose sharply in 2024";
        assert!(count(&format!("{a} {b}")) >= count(a).max(count(b)));
    }
}
