//! The simulated LLM itself.
//!
//! [`SimLlm::invoke`] is the single entry point every semantic operator and
//! agent step goes through. It (1) computes the true answer — via a
//! registered oracle rule when one applies, otherwise by generically
//! *reading* the subject text — (2) corrupts the answer through the
//! tier/difficulty noise channel, and (3) bills tokens to the shared
//! [`UsageMeter`] and reports the call's simulated latency.

use crate::cache::{self, CacheKey, Lookup, SemanticCache};
use crate::models::{ModelCatalog, ModelId};
use crate::noise;
use crate::oracle::{Oracle, OracleAnswer, Subject};
use crate::tokens;
use crate::usage::UsageMeter;
use aida_data::Value;
use aida_obs::{Event, Recorder};

/// A semantic task submitted to the simulated LLM.
#[derive(Debug, Clone)]
pub enum LlmTask<'a> {
    /// Boolean judgement over a subject (semantic filter).
    Filter {
        /// Natural-language predicate.
        instruction: &'a str,
        /// What the model reads.
        subject: Subject<'a>,
    },
    /// Field extraction from a subject (semantic map/extract).
    Extract {
        /// Natural-language instruction.
        instruction: &'a str,
        /// Target field name.
        field: &'a str,
        /// Field description (guides the generic reader).
        field_desc: &'a str,
        /// What the model reads.
        subject: Subject<'a>,
    },
    /// Free-text transformation (summaries); `target_tokens` bounds the
    /// completion length for billing.
    Map {
        /// Natural-language instruction.
        instruction: &'a str,
        /// What the model reads.
        subject: Subject<'a>,
        /// Completion-length budget in tokens.
        target_tokens: usize,
    },
    /// Pick one of several options (LLM-judge).
    Choose {
        /// The question posed.
        question: &'a str,
        /// Candidate answers.
        options: &'a [String],
        /// Ground-truth index if the caller knows it.
        correct: Option<usize>,
    },
    /// A planning/tool-selection call whose completion the caller already
    /// synthesized (agent policies); the simulator only bills it.
    Freeform {
        /// Prompt text (billed as input).
        prompt: &'a str,
        /// Completion text (billed as output, returned verbatim).
        response: &'a str,
    },
}

/// The result of a simulated call.
#[derive(Debug, Clone, PartialEq)]
pub struct LlmResponse {
    /// The structured answer (Bool for filters, extracted Value, Str).
    pub value: Value,
    /// The answer rendered as completion text.
    pub text: String,
    /// Prompt tokens billed.
    pub input_tokens: usize,
    /// Completion tokens billed.
    pub output_tokens: usize,
    /// Simulated call latency in seconds (callers advance the clock).
    pub latency_s: f64,
    /// Whether the noise channel corrupted the true answer.
    pub corrupted: bool,
}

/// Hashes a freeform completion into a stable plan identity, when the
/// completion is a compilable program. Installed by layers that know the
/// program language (the script crate's bytecode compiler) without this
/// crate depending on them. Returning `None` means "not a program" and
/// the raw text is hashed instead.
pub type PlanHasher = fn(&str) -> Option<(u64, u64)>;

/// The simulated LLM service.
#[derive(Debug, Clone)]
pub struct SimLlm {
    catalog: ModelCatalog,
    oracle: Oracle,
    meter: UsageMeter,
    seed: u64,
    fault_rate: f64,
    recorder: Recorder,
    cache: Option<SemanticCache>,
    plan_hasher: Option<PlanHasher>,
}

impl SimLlm {
    /// Creates a simulator with the default catalog and a fresh meter.
    pub fn new(seed: u64) -> Self {
        SimLlm {
            catalog: ModelCatalog::default(),
            oracle: Oracle::new(),
            meter: UsageMeter::new(),
            seed,
            fault_rate: 0.0,
            recorder: Recorder::disabled(),
            cache: None,
            plan_hasher: None,
        }
    }

    /// Attaches a trace recorder: every billed call (including injected
    /// faults and retry backoff) is reported as an event on the innermost
    /// open span.
    pub fn with_recorder(mut self, recorder: Recorder) -> Self {
        self.recorder = recorder;
        self
    }

    /// The attached trace recorder (disabled unless opted in).
    pub fn recorder(&self) -> &Recorder {
        &self.recorder
    }

    /// Enables transient-fault injection: with this per-call probability a
    /// call "fails once and is retried" — the failed attempt's prompt (and
    /// a truncated completion) is billed, and a backoff is added to the
    /// call's latency. Deterministic per call key, like all noise.
    pub fn with_fault_rate(mut self, rate: f64) -> Self {
        self.fault_rate = rate.clamp(0.0, 1.0);
        self
    }

    /// The configured transient-fault rate.
    pub fn fault_rate(&self) -> f64 {
        self.fault_rate
    }

    /// Replaces the model catalog.
    pub fn with_catalog(mut self, catalog: ModelCatalog) -> Self {
        self.catalog = catalog;
        self
    }

    /// The model catalog.
    pub fn catalog(&self) -> &ModelCatalog {
        &self.catalog
    }

    /// The shared usage meter.
    pub fn meter(&self) -> &UsageMeter {
        &self.meter
    }

    /// The oracle rule registry (generators register rules here).
    pub fn oracle(&self) -> &Oracle {
        &self.oracle
    }

    /// The base seed for this simulator instance.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Re-seeds (used to run independent trials on one setup).
    pub fn reseed(&mut self, seed: u64) {
        self.seed = seed;
    }

    /// Attaches a semantic call cache: repeated calls with an identical
    /// content key are served from the store at zero dollars/tokens and
    /// the cache's configured hit latency. Off by default.
    pub fn with_cache(mut self, cache: SemanticCache) -> Self {
        self.cache = Some(cache);
        self
    }

    /// The attached semantic cache, if any.
    pub fn cache(&self) -> Option<&SemanticCache> {
        self.cache.as_ref()
    }

    /// Installs a plan hasher: freeform completions it can hash (i.e.
    /// compilable agent programs) are cache-keyed by their compiled
    /// bytecode's content hash instead of their raw text, so two
    /// textually different plans that lower to identical bytecode share
    /// one cache entry. Hits on such keys are counted separately as
    /// [`crate::cache::CacheStats::plan_hits`].
    pub fn with_plan_hasher(mut self, hasher: PlanHasher) -> Self {
        self.plan_hasher = Some(hasher);
        self
    }

    /// The content-addressed cache key for a call: every determinant of
    /// the simulated response (seed, model, task kind and fields, and
    /// the subject's name, text, and oracle labels) is hashed, so equal
    /// keys imply the simulator would answer identically.
    pub fn content_key(&self, model: ModelId, task: &LlmTask<'_>) -> CacheKey {
        self.keyed(model, task).0
    }

    /// The content key plus whether it was derived from a compiled plan's
    /// bytecode hash (drives the `plan_hits` stat class on hits).
    fn keyed(&self, model: ModelId, task: &LlmTask<'_>) -> (CacheKey, bool) {
        let mut plan_keyed = false;
        let mut parts: Vec<u64> = vec![self.seed, noise::hash_str(model.name())];
        let push_subject = |parts: &mut Vec<u64>, subject: &Subject<'_>| {
            parts.push(noise::hash_str(&subject.name));
            parts.push(noise::hash_str(&subject.text));
            if let Some(labels) = subject.labels {
                for (name, value) in labels {
                    parts.push(noise::hash_str(name));
                    parts.push(cache::hash_value(value));
                }
            }
        };
        match task {
            LlmTask::Filter {
                instruction,
                subject,
            } => {
                parts.push(1);
                parts.push(noise::hash_str(instruction));
                push_subject(&mut parts, subject);
            }
            LlmTask::Extract {
                instruction,
                field,
                field_desc,
                subject,
            } => {
                parts.push(2);
                parts.push(noise::hash_str(instruction));
                parts.push(noise::hash_str(field));
                parts.push(noise::hash_str(field_desc));
                push_subject(&mut parts, subject);
            }
            LlmTask::Map {
                instruction,
                subject,
                target_tokens,
            } => {
                parts.push(3);
                parts.push(noise::hash_str(instruction));
                parts.push(*target_tokens as u64);
                push_subject(&mut parts, subject);
            }
            LlmTask::Choose {
                question,
                options,
                correct,
            } => {
                parts.push(4);
                parts.push(noise::hash_str(question));
                parts.push(options.len() as u64);
                parts.extend(options.iter().map(|o| noise::hash_str(o)));
                parts.push(correct.map(|i| i as u64 + 1).unwrap_or(0));
            }
            LlmTask::Freeform { prompt, response } => {
                parts.push(5);
                parts.push(noise::hash_str(prompt));
                match self.plan_hasher.and_then(|hash| hash(response)) {
                    Some((hi, lo)) => {
                        // Inner discriminator: a plan-keyed entry can
                        // never collide with a text-keyed one even if
                        // the bytecode hash equals some text hash.
                        parts.push(6);
                        parts.push(hi);
                        parts.push(lo);
                        plan_keyed = true;
                    }
                    None => parts.push(noise::hash_str(response)),
                }
            }
        }
        (CacheKey::from_parts(&parts), plan_keyed)
    }

    /// Executes a task with the given model, billing the meter. With a
    /// cache attached, an exact content-key hit skips billing entirely
    /// and returns the stored response at the cache's hit latency.
    pub fn invoke(&self, model: ModelId, task: &LlmTask<'_>) -> LlmResponse {
        let Some(cache) = &self.cache else {
            return self.dispatch(model, task);
        };
        let (key, plan_keyed) = self.keyed(model, task);
        match cache.begin(key) {
            Lookup::Hit(mut resp) => {
                resp.latency_s = cache.hit_latency_s();
                if plan_keyed {
                    cache.note_plan_hit();
                }
                if self.recorder.is_enabled() {
                    self.recorder.counter_add(aida_obs::registry::CACHE_HIT, 1);
                }
                resp
            }
            // A coalesced waiter shares the in-flight call: nothing is
            // billed, but it waits out the call's full latency.
            Lookup::Coalesced(resp) => {
                if self.recorder.is_enabled() {
                    self.recorder
                        .counter_add(aida_obs::registry::CACHE_COALESCED, 1);
                }
                resp
            }
            Lookup::Compute(pending) => {
                let resp = self.dispatch(model, task);
                cache.admit(pending, resp.clone());
                if self.recorder.is_enabled() {
                    self.recorder.counter_add(aida_obs::registry::CACHE_MISS, 1);
                    let stats = cache.stats();
                    self.recorder.gauge_set(
                        aida_obs::registry::CACHE_BYTES,
                        stats.lookups() as f64,
                        stats.bytes as f64,
                    );
                }
                resp
            }
        }
    }

    fn dispatch(&self, model: ModelId, task: &LlmTask<'_>) -> LlmResponse {
        match task {
            LlmTask::Filter {
                instruction,
                subject,
            } => self.run_filter(model, instruction, subject),
            LlmTask::Extract {
                instruction,
                field,
                field_desc,
                subject,
            } => self.run_extract(model, instruction, field, field_desc, subject),
            LlmTask::Map {
                instruction,
                subject,
                target_tokens,
            } => self.run_map(model, instruction, subject, *target_tokens),
            LlmTask::Choose {
                question,
                options,
                correct,
            } => self.run_choose(model, question, options, *correct),
            LlmTask::Freeform { prompt, response } => self.run_freeform(model, prompt, response),
        }
    }

    fn call_key(&self, model: ModelId, instruction: &str, subject_name: &str) -> u64 {
        noise::combine(&[
            self.seed,
            noise::hash_str(model.name()),
            noise::hash_str(instruction),
            noise::hash_str(subject_name),
        ])
    }

    /// Bills a call (and, when fault injection fires for this call key,
    /// the failed first attempt plus a retry backoff). Returns the billed
    /// tokens and the call's total simulated latency.
    fn bill(
        &self,
        model: ModelId,
        input_tokens: usize,
        output_tokens: usize,
        key: u64,
    ) -> (usize, usize, f64) {
        let spec = self.catalog.spec(model);
        let mut latency = spec.latency(input_tokens, output_tokens);
        let mut faulted = false;
        if self.fault_rate > 0.0
            && noise::decide(noise::combine(&[key, 0x00FA_017E]), self.fault_rate)
        {
            // The failed attempt consumed the prompt and a truncated
            // completion before dying; add a retry backoff.
            let truncated = output_tokens / 4;
            self.meter.record(model, input_tokens, truncated);
            let backoff = spec.latency(input_tokens, truncated) + 1.0;
            latency += backoff;
            faulted = true;
            if self.recorder.is_enabled() {
                self.recorder.event(Event::FaultRetry {
                    model: model.name().to_string(),
                    backoff_s: backoff,
                    billed_input_tokens: input_tokens as u64,
                    billed_output_tokens: truncated as u64,
                    cost_usd: spec.cost(input_tokens, truncated),
                });
                self.recorder
                    .counter_add(aida_obs::registry::LLM_FAULT_RETRIES, 1);
            }
        }
        self.meter.record(model, input_tokens, output_tokens);
        if self.recorder.is_enabled() {
            self.recorder.event(Event::LlmCall {
                model: model.name().to_string(),
                input_tokens: input_tokens as u64,
                output_tokens: output_tokens as u64,
                cost_usd: spec.cost(input_tokens, output_tokens),
                latency_s: latency,
                faulted,
            });
            self.recorder.counter_add(aida_obs::registry::LLM_CALLS, 1);
            self.recorder
                .counter_add(&format!("llm.calls.{}", model.name()), 1);
            self.recorder.histogram_record(
                aida_obs::registry::LLM_TOKENS_PER_CALL,
                (input_tokens + output_tokens) as f64,
            );
        }
        (input_tokens, output_tokens, latency)
    }

    fn run_filter(&self, model: ModelId, instruction: &str, subject: &Subject<'_>) -> LlmResponse {
        let mut difficulty = subject.difficulty();
        let truth = match self.oracle.answer(instruction, subject) {
            Some(OracleAnswer::Bool(b)) => b,
            Some(OracleAnswer::BoolWithDifficulty(b, d)) => {
                difficulty = d.clamp(0.0, 1.0);
                b
            }
            Some(OracleAnswer::Value(v)) => v.truthy(),
            Some(OracleAnswer::Text(t)) => !t.is_empty(),
            None => generic_filter(instruction, &subject.text),
        };
        let key = self.call_key(model, instruction, &subject.name);
        let err = self.catalog.spec(model).error_at(difficulty);
        let corrupted = noise::decide(key, err);
        let answer = if corrupted { !truth } else { truth };
        let input = tokens::count_parts(&[FILTER_PREAMBLE, instruction, &subject.text]);
        let (input_tokens, output_tokens, latency_s) = self.bill(model, input, 4, key);
        LlmResponse {
            value: Value::Bool(answer),
            text: if answer {
                "true".into()
            } else {
                "false".into()
            },
            input_tokens,
            output_tokens,
            latency_s,
            corrupted,
        }
    }

    fn run_extract(
        &self,
        model: ModelId,
        instruction: &str,
        field: &str,
        field_desc: &str,
        subject: &Subject<'_>,
    ) -> LlmResponse {
        let oracle_query = format!("{instruction} :: {field}");
        let mut difficulty = subject.difficulty();
        let truth = match self.oracle.answer(&oracle_query, subject) {
            Some(OracleAnswer::Value(v)) => v,
            Some(OracleAnswer::Bool(b)) => Value::Bool(b),
            Some(OracleAnswer::BoolWithDifficulty(b, d)) => {
                difficulty = d.clamp(0.0, 1.0);
                Value::Bool(b)
            }
            Some(OracleAnswer::Text(t)) => Value::Str(t),
            None => generic_extract(instruction, field, field_desc, &subject.text),
        };
        let key = self.call_key(model, &oracle_query, &subject.name);
        let err = self.catalog.spec(model).error_at(difficulty);
        let corrupted = noise::decide(key, err);
        let value = if corrupted {
            corrupt_value(&truth, &subject.text, key)
        } else {
            truth
        };
        let prompt = tokens::count_parts(&[
            EXTRACT_PREAMBLE,
            instruction,
            field,
            field_desc,
            &subject.text,
        ]);
        let out = tokens::count(&value.to_string()).max(4) + 6;
        let (input_tokens, output_tokens, latency_s) = self.bill(model, prompt, out, key);
        LlmResponse {
            text: value.to_string(),
            value,
            input_tokens,
            output_tokens,
            latency_s,
            corrupted,
        }
    }

    fn run_map(
        &self,
        model: ModelId,
        instruction: &str,
        subject: &Subject<'_>,
        target_tokens: usize,
    ) -> LlmResponse {
        let truth = match self.oracle.answer(instruction, subject) {
            Some(OracleAnswer::Text(t)) => t,
            Some(OracleAnswer::Value(v)) => v.to_string(),
            Some(OracleAnswer::Bool(b)) => b.to_string(),
            Some(OracleAnswer::BoolWithDifficulty(b, _)) => b.to_string(),
            None if instruction.to_ascii_lowercase().contains("common theme") => {
                theme_label(&subject.text)
            }
            None => generic_summary(&subject.text, target_tokens),
        };
        let key = self.call_key(model, instruction, &subject.name);
        let err = self.catalog.spec(model).error_at(subject.difficulty());
        let corrupted = noise::decide(key, err);
        let text = if corrupted {
            // A degraded summary: drop the tail half.
            let cut = truth.len() / 2;
            let mut t = truth[..floor_char_boundary(&truth, cut)].to_string();
            t.push_str(" …");
            t
        } else {
            truth
        };
        let prompt = tokens::count_parts(&[MAP_PREAMBLE, instruction, &subject.text]);
        let out = tokens::count(&text).clamp(1, target_tokens.max(8));
        let (input_tokens, output_tokens, latency_s) = self.bill(model, prompt, out, key);
        LlmResponse {
            value: Value::Str(text.clone()),
            text,
            input_tokens,
            output_tokens,
            latency_s,
            corrupted,
        }
    }

    fn run_choose(
        &self,
        model: ModelId,
        question: &str,
        options: &[String],
        correct: Option<usize>,
    ) -> LlmResponse {
        let key = self.call_key(model, question, "choose");
        let err = self.catalog.spec(model).error_at(0.3);
        let corrupted = !options.is_empty() && noise::decide(key, err);
        let truth = correct.unwrap_or(0).min(options.len().saturating_sub(1));
        let pick = if corrupted && options.len() > 1 {
            // Deterministically pick a different option.
            let offset = 1 + noise::choose(noise::splitmix64(key), options.len() - 1);
            (truth + offset) % options.len()
        } else {
            truth
        };
        let text = options.get(pick).cloned().unwrap_or_default();
        let options_text = options.join("\n");
        let prompt = tokens::count_parts(&[CHOOSE_PREAMBLE, question, &options_text]);
        let (input_tokens, output_tokens, latency_s) =
            self.bill(model, prompt, tokens::count(&text).max(2), key);
        LlmResponse {
            value: Value::Int(pick as i64),
            text,
            input_tokens,
            output_tokens,
            latency_s,
            corrupted,
        }
    }

    fn run_freeform(&self, model: ModelId, prompt: &str, response: &str) -> LlmResponse {
        let input = tokens::count_parts(&[AGENT_PREAMBLE, prompt]);
        let out = tokens::count(response).max(1);
        let key = self.call_key(model, prompt, "freeform");
        let (input_tokens, output_tokens, latency_s) = self.bill(model, input, out, key);
        LlmResponse {
            value: Value::Str(response.to_string()),
            text: response.to_string(),
            input_tokens,
            output_tokens,
            latency_s,
            corrupted: false,
        }
    }
}

const FILTER_PREAMBLE: &str = "You are a precise data analyst. Answer true or false: does the \
                               following item satisfy the predicate?";
const EXTRACT_PREAMBLE: &str = "You are a precise data analyst. Extract the requested field from \
                                the following item. Reply with only the value.";
const MAP_PREAMBLE: &str = "You are a precise data analyst. Transform the following item as \
                            instructed.";
const CHOOSE_PREAMBLE: &str = "You are a careful judge. Pick the best option for the question.";
const AGENT_PREAMBLE: &str = "You are an expert data-analysis agent that plans, writes code, and \
                              uses tools to answer questions over a data lake.";

/// Words too common to carry signal in keyword matching.
pub const STOPWORDS: &[&str] = &[
    "a",
    "an",
    "and",
    "are",
    "as",
    "at",
    "be",
    "but",
    "by",
    "for",
    "from",
    "has",
    "have",
    "in",
    "is",
    "it",
    "its",
    "of",
    "on",
    "or",
    "that",
    "the",
    "this",
    "to",
    "was",
    "were",
    "which",
    "with",
    "all",
    "any",
    "each",
    "every",
    "file",
    "files",
    "find",
    "return",
    "contain",
    "contains",
    "containing",
    "list",
    "does",
    "do",
    "into",
    "about",
    "between",
    "their",
    "they",
    "if",
    "then",
    "than",
    "only",
    "also",
    "please",
    "compute",
    "number",
    "value",
];

fn content_words(text: &str) -> Vec<String> {
    text.split(|c: char| !c.is_alphanumeric())
        .filter(|w| w.len() > 1)
        .map(|w| w.to_ascii_lowercase())
        .filter(|w| !STOPWORDS.contains(&w.as_str()))
        .collect()
}

/// Generic keyword-overlap filter: true when at least half of the
/// instruction's content words appear in the subject text.
pub fn generic_filter(instruction: &str, text: &str) -> bool {
    let needles = content_words(instruction);
    if needles.is_empty() {
        return true;
    }
    let haystack = text.to_ascii_lowercase();
    let hits = needles
        .iter()
        .filter(|w| haystack.contains(w.as_str()))
        .count();
    (hits as f64) / (needles.len() as f64) >= 0.5
}

/// Table-aware extraction for CSV-like text: picks the column whose header
/// tokens best overlap the instruction/field tokens, and the row keyed by a
/// year (or other number) mentioned in the instruction. Returns `None` when
/// the text doesn't look tabular or nothing matches.
pub fn table_extract(instruction: &str, field: &str, text: &str) -> Option<Value> {
    let comma_lines: Vec<&str> = text.lines().filter(|l| l.contains(',')).collect();
    if comma_lines.len() < 3 {
        return None;
    }
    let header = comma_lines[0];
    let cols: Vec<String> = header
        .split(',')
        .map(|c| c.trim().to_ascii_lowercase())
        .collect();
    let mut needles = content_words(instruction);
    needles.extend(content_words(&field.replace('_', " ")));
    // Score each column by token overlap with the needles.
    let mut best_col: Option<(usize, usize)> = None; // (score, idx)
    for (i, col) in cols.iter().enumerate() {
        let col_tokens = content_words(&col.replace('_', " "));
        let score = col_tokens.iter().filter(|t| needles.contains(t)).count();
        if score > 0 && best_col.is_none_or(|(s, _)| score > s) {
            best_col = Some((score, i));
        }
    }
    let (_, col_idx) = best_col?;
    // Row key: a year mentioned in the instruction, else the first number.
    let key = instruction
        .split(|c: char| !c.is_ascii_digit())
        .filter_map(|t| t.parse::<i64>().ok())
        .find(|n| (1900..=2100).contains(n))?;
    for line in &comma_lines[1..] {
        let cells: Vec<&str> = line.split(',').collect();
        let keyed = cells
            .iter()
            .any(|c| c.trim().parse::<i64>().map(|v| v == key).unwrap_or(false));
        if keyed {
            // A ragged keyed row (shorter than the chosen column) is
            // skipped so a later well-formed row can still answer.
            let Some(raw) = cells.get(col_idx).map(|c| c.trim()) else {
                continue;
            };
            let cleaned: String = raw.chars().filter(|c| *c != ',').collect();
            if let Ok(i) = cleaned.parse::<i64>() {
                return Some(Value::Int(i));
            }
            if let Ok(f) = cleaned.parse::<f64>() {
                return Some(Value::Float(f));
            }
            return Some(Value::Str(raw.to_string()));
        }
    }
    None
}

/// Generic line-oriented extraction: tries table-aware extraction first,
/// then scores lines by overlap with the instruction/field tokens and pulls
/// the first number (or the line text) from the best line.
pub fn generic_extract(instruction: &str, field: &str, field_desc: &str, text: &str) -> Value {
    if let Some(v) = table_extract(instruction, field, text) {
        return v;
    }
    let mut needles = content_words(instruction);
    needles.extend(content_words(&field.replace('_', " ")));
    needles.extend(content_words(field_desc));
    let mut best: Option<(usize, &str)> = None;
    for line in text.lines() {
        let lower = line.to_ascii_lowercase();
        let score = needles
            .iter()
            .filter(|w| lower.contains(w.as_str()))
            .count();
        if score > 0 && best.is_none_or(|(s, _)| score > s) {
            best = Some((score, line));
        }
    }
    let want_year = field.to_ascii_lowercase().contains("year");
    let line = match best {
        Some((_, line)) => line,
        None => {
            // No line matched the keywords; fall back to the first number
            // anywhere in the text (a model would still read something).
            return text
                .lines()
                .find_map(|l| first_number(l, want_year))
                .unwrap_or(Value::Null);
        }
    };
    match first_number(line, want_year) {
        Some(v) => v,
        None => Value::Str(line.trim().to_string()),
    }
}

/// Finds the first number in a line; `prefer_year` picks a 4-digit integer
/// when present. Handles thousands separators.
pub fn first_number(line: &str, prefer_year: bool) -> Option<Value> {
    let mut numbers: Vec<Value> = Vec::new();
    let mut current = String::new();
    let flush = |current: &mut String, numbers: &mut Vec<Value>| {
        if current.is_empty() {
            return;
        }
        let cleaned: String = current.chars().filter(|c| *c != ',').collect();
        if let Ok(i) = cleaned.parse::<i64>() {
            numbers.push(Value::Int(i));
        } else if let Ok(f) = cleaned.parse::<f64>() {
            numbers.push(Value::Float(f));
        }
        current.clear();
    };
    for c in line.chars() {
        if c.is_ascii_digit() || c == '.' || c == ',' {
            current.push(c);
        } else {
            flush(&mut current, &mut numbers);
        }
    }
    flush(&mut current, &mut numbers);
    if prefer_year {
        if let Some(year) = numbers
            .iter()
            .find(|v| matches!(v, Value::Int(i) if (1900..=2100).contains(i)))
        {
            return Some(year.clone());
        }
    }
    numbers.into_iter().next()
}

/// Names the dominant theme of a text: its three most frequent content
/// words (the generic solver for "name the common theme" instructions,
/// used by the semantic group-by labeller).
pub fn theme_label(text: &str) -> String {
    let mut counts: std::collections::BTreeMap<String, usize> = std::collections::BTreeMap::new();
    for line in text.lines() {
        // Email headers are structure, not content.
        let lower = line.trim_start().to_ascii_lowercase();
        if lower.starts_with("from:")
            || lower.starts_with("to:")
            || lower.starts_with("date:")
            || lower.starts_with("cc:")
        {
            continue;
        }
        // Count each word once per line so repeated quoting doesn't drown
        // the signal.
        let mut seen = std::collections::BTreeSet::new();
        for w in content_words(line) {
            // Skip header-ish tokens, pronouns, and bare numbers — they
            // carry no thematic signal.
            if matches!(
                w.as_str(),
                "subject"
                    | "date"
                    | "com"
                    | "www"
                    | "http"
                    | "me"
                    | "we"
                    | "you"
                    | "our"
                    | "your"
                    | "please"
                    | "thanks"
            ) || w.chars().all(|c| c.is_ascii_digit())
            {
                continue;
            }
            if seen.insert(w.clone()) {
                *counts.entry(w).or_insert(0) += 1;
            }
        }
    }
    let mut ranked: Vec<(&String, &usize)> = counts.iter().collect();
    ranked.sort_by(|a, b| b.1.cmp(a.1).then(a.0.cmp(b.0)));
    let words: Vec<&str> = ranked.iter().take(3).map(|(w, _)| w.as_str()).collect();
    if words.is_empty() {
        "miscellaneous".to_string()
    } else {
        words.join(" / ")
    }
}

fn generic_summary(text: &str, target_tokens: usize) -> String {
    let mut out = String::new();
    let mut words = text.split_whitespace();
    for word in words.by_ref().take(target_tokens) {
        if !out.is_empty() {
            out.push(' ');
        }
        out.push_str(word);
    }
    if words.next().is_some() {
        out.push('…');
    }
    out
}

fn corrupt_value(truth: &Value, text: &str, key: u64) -> Value {
    match noise::choose(noise::splitmix64(key ^ 0x00C0_FFEE), 3) {
        0 => Value::Null,
        1 => {
            // A number from elsewhere in the text, if any.
            let lines: Vec<&str> = text.lines().collect();
            if lines.is_empty() {
                return Value::Null;
            }
            let idx = noise::choose(key ^ 0xBEEF, lines.len());
            first_number(lines[idx], false).unwrap_or(Value::Null)
        }
        _ => match truth {
            Value::Int(i) => {
                let delta = 1 + (noise::splitmix64(key) % 9) as i64;
                Value::Int(i + delta * if key & 1 == 0 { 1 } else { -1 })
            }
            Value::Float(f) => {
                let factor = 1.0 + 0.1 * noise::unit_f64(key);
                Value::Float(f * factor)
            }
            other => other.clone(),
        },
    }
}

fn floor_char_boundary(s: &str, mut idx: usize) -> usize {
    idx = idx.min(s.len());
    while idx > 0 && !s.is_char_boundary(idx) {
        idx -= 1;
    }
    idx
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::LabelRule;
    use aida_data::Document;
    use std::sync::Arc;

    fn sim() -> SimLlm {
        SimLlm::new(42)
    }

    #[test]
    fn filter_uses_oracle_label_when_registered() {
        let llm = sim();
        llm.oracle().register(Arc::new(LabelRule::new(
            "enron",
            ["firsthand"],
            "gt_relevant",
        )));
        let doc = Document::new("m.eml", "Subject: hi\n\nnothing about deals")
            .with_label("gt_relevant", true)
            .with_label("difficulty", 0.0);
        let task = LlmTask::Filter {
            instruction: "firsthand discussion of transactions",
            subject: Subject::doc(&doc),
        };
        let resp = llm.invoke(ModelId::Flagship, &task);
        assert_eq!(resp.value, Value::Bool(true));
        assert!(!resp.corrupted);
        assert!(resp.input_tokens > 0 && resp.output_tokens > 0);
    }

    #[test]
    fn filter_is_deterministic() {
        let llm = sim();
        let doc = Document::new("a.txt", "identity theft reports 2024");
        let task = LlmTask::Filter {
            instruction: "mentions identity theft",
            subject: Subject::doc(&doc),
        };
        let a = llm.invoke(ModelId::Nano, &task);
        let b = llm.invoke(ModelId::Nano, &task);
        assert_eq!(a.value, b.value);
    }

    #[test]
    fn noisier_model_corrupts_more() {
        let llm = sim();
        let mut flips = [0usize; 2];
        for i in 0..500 {
            let name = format!("doc{i}.txt");
            let doc = Document::new(name, "identity theft data here").with_label("difficulty", 1.0);
            let task = LlmTask::Filter {
                instruction: "mentions identity theft",
                subject: Subject::doc(&doc),
            };
            flips[0] += usize::from(llm.invoke(ModelId::Flagship, &task).corrupted);
            flips[1] += usize::from(llm.invoke(ModelId::Nano, &task).corrupted);
        }
        assert!(
            flips[1] > flips[0] * 2,
            "nano {} vs flagship {}",
            flips[1],
            flips[0]
        );
    }

    #[test]
    fn generic_filter_matches_keyword_overlap() {
        assert!(generic_filter(
            "mentions identity theft reports",
            "Identity theft reports rose to 1,135,291 in 2024."
        ));
        assert!(!generic_filter(
            "mentions natural gas pipelines",
            "Identity theft reports rose in 2024."
        ));
        // Empty instruction passes everything.
        assert!(generic_filter("of the", "anything"));
    }

    #[test]
    fn generic_extract_finds_numbers_on_best_line() {
        let text = "fraud reports: 500000\nidentity theft reports: 86250\nother: 100";
        let v = generic_extract("identity theft", "thefts", "number of reports", text);
        assert_eq!(v, Value::Int(86_250));
    }

    #[test]
    fn generic_extract_prefers_years_for_year_fields() {
        let v = generic_extract(
            "report year",
            "year",
            "the year",
            "in 2024 there were 1,135,291",
        );
        assert_eq!(v, Value::Int(2024));
    }

    #[test]
    fn generic_extract_null_when_nothing_matches() {
        let v = generic_extract("identity theft", "thefts", "", "completely unrelated words");
        assert_eq!(v, Value::Null);
    }

    #[test]
    fn table_extract_reads_csv_by_column_and_year() {
        let csv = "year,fraud_reports,identity_theft_reports,other_reports\n\
                   2001,325519,86250,120000\n\
                   2023,2400000,1036900,1900000\n\
                   2024,2600000,1135291,2000000\n";
        let v = table_extract("number of identity theft reports in 2024", "thefts", csv);
        assert_eq!(v, Some(Value::Int(1_135_291)));
        let v = table_extract("identity theft reports in 2001", "thefts", csv);
        assert_eq!(v, Some(Value::Int(86_250)));
        // Different column selected for a fraud question.
        let v = table_extract("fraud reports in 2024", "fraud", csv);
        assert_eq!(v, Some(Value::Int(2_600_000)));
    }

    #[test]
    fn table_extract_rejects_non_tabular_text() {
        assert_eq!(
            table_extract("thefts in 2024", "thefts", "no commas here"),
            None
        );
        assert_eq!(
            table_extract("thefts in 2024", "thefts", "a,b\n1,2\n"),
            None,
            "needs at least three comma lines"
        );
    }

    #[test]
    fn table_extract_skips_ragged_keyed_rows() {
        // The first 2024-keyed row is ragged; the next one answers.
        let csv = "year,fraud,identity_theft_reports\n2001,1,2\n2024\n2024,9,1135291\n";
        assert_eq!(
            table_extract("identity theft reports in 2024", "thefts", csv),
            Some(Value::Int(1_135_291))
        );
    }

    #[test]
    fn table_extract_requires_year_key() {
        let csv = "year,thefts\n2001,1\n2024,2\n";
        assert_eq!(table_extract("thefts somewhere", "thefts", csv), None);
    }

    #[test]
    fn first_number_handles_commas_and_floats() {
        assert_eq!(
            first_number("total 1,234,567 reports", false),
            Some(Value::Int(1_234_567))
        );
        assert_eq!(
            first_number("ratio 13.16", false),
            Some(Value::Float(13.16))
        );
        assert_eq!(first_number("no numbers", false), None);
    }

    #[test]
    fn theme_labels_use_dominant_content_words() {
        let text = "pipeline maintenance schedule\npipeline capacity maintenance\npipeline gas";
        let label = theme_label(text);
        assert!(label.contains("pipeline"), "{label}");
        assert!(label.contains("maintenance"), "{label}");
        assert_eq!(theme_label(""), "miscellaneous");
    }

    #[test]
    fn map_bills_output_within_target() {
        let llm = sim();
        let doc = Document::new("a.txt", "word ".repeat(500));
        let task = LlmTask::Map {
            instruction: "summarize",
            subject: Subject::doc(&doc),
            target_tokens: 40,
        };
        let resp = llm.invoke(ModelId::Mini, &task);
        assert!(resp.output_tokens <= 40);
        assert!(resp.latency_s > 0.0);
    }

    #[test]
    fn choose_returns_correct_index_without_noise() {
        let llm = sim();
        let options = vec!["a".to_string(), "b".to_string(), "c".to_string()];
        let task = LlmTask::Choose {
            question: "which is second?",
            options: &options,
            correct: Some(1),
        };
        let resp = llm.invoke(ModelId::Flagship, &task);
        let idx = resp.value.as_int().unwrap() as usize;
        assert!(idx < 3);
        if !resp.corrupted {
            assert_eq!(idx, 1);
        } else {
            assert_ne!(idx, 1);
        }
    }

    #[test]
    fn fault_injection_bills_retries_deterministically() {
        let doc = Document::new("a.txt", "word ".repeat(200));
        let run = |rate: f64| {
            let llm = SimLlm::new(4).with_fault_rate(rate);
            let mut latency = 0.0;
            for i in 0..200 {
                let name = format!("d{i}");
                let d = Document::new(name, doc.content.clone());
                let resp = llm.invoke(
                    ModelId::Mini,
                    &LlmTask::Filter {
                        instruction: "mentions word",
                        subject: Subject::doc(&d),
                    },
                );
                latency += resp.latency_s;
            }
            (llm.meter().snapshot().usage(ModelId::Mini).calls, latency)
        };
        let (calls_clean, lat_clean) = run(0.0);
        let (calls_faulty, lat_faulty) = run(0.25);
        assert_eq!(calls_clean, 200);
        // Roughly a quarter of calls billed twice.
        assert!(
            (230..=275).contains(&(calls_faulty as i64)),
            "faulty calls {calls_faulty}"
        );
        assert!(lat_faulty > lat_clean + 30.0, "{lat_faulty} vs {lat_clean}");
        // Determinism: the same config replays exactly.
        assert_eq!(run(0.25), run(0.25));
    }

    #[test]
    fn recorder_sees_every_billed_attempt() {
        use aida_obs::{Recorder, SpanKind};
        let recorder = Recorder::new();
        let llm = SimLlm::new(4)
            .with_fault_rate(0.25)
            .with_recorder(recorder.clone());
        let span = recorder.span(SpanKind::Other, "batch", 0.0);
        for i in 0..100 {
            let name = format!("d{i}");
            let d = Document::new(name, "word ".repeat(200));
            llm.invoke(
                ModelId::Mini,
                &LlmTask::Filter {
                    instruction: "mentions word",
                    subject: Subject::doc(&d),
                },
            );
        }
        span.finish(1.0);
        let trace = recorder.trace();
        let snap = llm.meter().snapshot();
        // The span's self aggregates equal the meter: successes + retries.
        assert_eq!(trace.spans[0].calls, snap.usage(ModelId::Mini).calls);
        assert_eq!(
            trace.spans[0].input_tokens + trace.spans[0].output_tokens,
            snap.total_tokens()
        );
        assert!((trace.spans[0].cost_usd - snap.cost(llm.catalog())).abs() < 1e-9);
        assert_eq!(trace.counters["llm.calls"], 100);
        let retries = trace.counters["llm.fault_retries"];
        assert!(retries > 0, "expected some injected faults");
        assert_eq!(trace.counters["llm.calls.sim-4o-mini"], 100);
        assert_eq!(
            trace.spans[0]
                .events
                .iter()
                .filter(|e| e.name() == "fault_retry")
                .count() as u64,
            retries
        );
    }

    #[test]
    fn freeform_bills_both_sides_and_echoes() {
        let llm = sim();
        let before = llm.meter().snapshot();
        let task = LlmTask::Freeform {
            prompt: "plan the next step",
            response: "files = list_files()",
        };
        let resp = llm.invoke(ModelId::Flagship, &task);
        assert_eq!(resp.text, "files = list_files()");
        let delta = llm.meter().snapshot().since(&before);
        assert_eq!(delta.usage(ModelId::Flagship).calls, 1);
        assert!(delta.usage(ModelId::Flagship).output_tokens >= 4);
    }

    #[test]
    fn meter_accumulates_across_invocations() {
        let llm = sim();
        let doc = Document::new("a.txt", "text body");
        for _ in 0..3 {
            llm.invoke(
                ModelId::Mini,
                &LlmTask::Filter {
                    instruction: "text",
                    subject: Subject::doc(&doc),
                },
            );
        }
        assert_eq!(llm.meter().snapshot().usage(ModelId::Mini).calls, 3);
    }

    #[test]
    fn cached_repeat_is_free_and_identical() {
        use crate::cache::{CacheConfig, SemanticCache};
        let llm = SimLlm::new(42).with_cache(SemanticCache::new(CacheConfig::default()));
        let doc = Document::new("a.txt", "identity theft reports 2024");
        let task = LlmTask::Filter {
            instruction: "mentions identity theft",
            subject: Subject::doc(&doc),
        };
        let cold = llm.invoke(ModelId::Nano, &task);
        let before = llm.meter().snapshot();
        let warm = llm.invoke(ModelId::Nano, &task);
        let delta = llm.meter().snapshot().since(&before);
        assert_eq!(delta.total_calls(), 0, "a hit bills nothing");
        assert_eq!(warm.value, cold.value);
        assert_eq!(warm.text, cold.text);
        assert!(warm.latency_s < cold.latency_s);
        let stats = llm.cache().unwrap().stats();
        assert_eq!((stats.hits, stats.misses), (1, 1));
        // An uncached simulator answers identically (cache transparency).
        let plain = SimLlm::new(42).invoke(ModelId::Nano, &task);
        assert_eq!(plain.value, warm.value);
    }

    #[test]
    fn content_key_separates_models_seeds_and_tasks() {
        use crate::cache::{CacheConfig, SemanticCache};
        let llm = SimLlm::new(1).with_cache(SemanticCache::new(CacheConfig::default()));
        let doc = Document::new("a.txt", "body text");
        let filter = LlmTask::Filter {
            instruction: "text",
            subject: Subject::doc(&doc),
        };
        let map = LlmTask::Map {
            instruction: "text",
            subject: Subject::doc(&doc),
            target_tokens: 20,
        };
        let k1 = llm.content_key(ModelId::Nano, &filter);
        assert_ne!(k1, llm.content_key(ModelId::Mini, &filter), "model");
        assert_ne!(k1, llm.content_key(ModelId::Nano, &map), "task kind");
        assert_ne!(
            k1,
            SimLlm::new(2).content_key(ModelId::Nano, &filter),
            "seed"
        );
        let relabeled = Document::new("a.txt", "body text").with_label("gt_relevant", true);
        let relabeled_task = LlmTask::Filter {
            instruction: "text",
            subject: Subject::doc(&relabeled),
        };
        assert_ne!(
            k1,
            llm.content_key(ModelId::Nano, &relabeled_task),
            "labels"
        );
        assert_eq!(k1, llm.content_key(ModelId::Nano, &filter), "stable");
    }

    #[test]
    fn plan_hasher_keys_freeform_calls_by_plan_identity() {
        use crate::cache::{CacheConfig, SemanticCache};
        // Stand-in for a real program hasher: identifies a "plan" by its
        // whitespace-stripped text, and declines non-plans (empty text).
        fn by_shape(s: &str) -> Option<(u64, u64)> {
            let canon: String = s.chars().filter(|c| !c.is_whitespace()).collect();
            if canon.is_empty() {
                return None;
            }
            Some((noise::hash_str(&canon), canon.len() as u64))
        }
        let llm = SimLlm::new(7)
            .with_cache(SemanticCache::new(CacheConfig::default()))
            .with_plan_hasher(by_shape);
        let call = |resp: &str| {
            llm.invoke(
                ModelId::Nano,
                &LlmTask::Freeform {
                    prompt: "task",
                    response: resp,
                },
            )
        };
        call("x = 1");
        call("x  =  1"); // same plan identity → plan-keyed hit
        call("x = 2"); // different plan → miss
        let stats = llm.cache().unwrap().stats();
        assert_eq!((stats.hits, stats.misses), (1, 2));
        assert_eq!(stats.plan_hits, 1);
        // A hasher that declines falls back to raw-text keying, and such
        // hits are not counted as plan hits.
        call("   ");
        call("   ");
        let stats = llm.cache().unwrap().stats();
        assert_eq!((stats.hits, stats.misses), (2, 3));
        assert_eq!(stats.plan_hits, 1, "text-keyed hit is not a plan hit");
        // Without a hasher the same two responses key differently.
        let plain = SimLlm::new(7).with_cache(SemanticCache::new(CacheConfig::default()));
        let ka = plain.content_key(
            ModelId::Nano,
            &LlmTask::Freeform {
                prompt: "task",
                response: "x = 1",
            },
        );
        let kb = plain.content_key(
            ModelId::Nano,
            &LlmTask::Freeform {
                prompt: "task",
                response: "x  =  1",
            },
        );
        assert_ne!(ka, kb);
    }

    #[test]
    fn cache_counters_flow_to_recorder() {
        use crate::cache::{CacheConfig, SemanticCache};
        use aida_obs::{Recorder, SpanKind};
        let recorder = Recorder::new();
        let llm = SimLlm::new(3)
            .with_cache(SemanticCache::new(CacheConfig::default()))
            .with_recorder(recorder.clone());
        let span = recorder.span(SpanKind::Other, "batch", 0.0);
        let doc = Document::new("a.txt", "text body");
        let task = LlmTask::Filter {
            instruction: "text",
            subject: Subject::doc(&doc),
        };
        llm.invoke(ModelId::Mini, &task);
        llm.invoke(ModelId::Mini, &task);
        llm.invoke(ModelId::Mini, &task);
        span.finish(1.0);
        let trace = recorder.trace();
        assert_eq!(trace.counters["cache.miss"], 1);
        assert_eq!(trace.counters["cache.hit"], 2);
        assert_eq!(trace.counters["llm.calls"], 1, "hits are not billed");
        assert!(trace.gauges["cache.bytes"].last() > 0.0);
    }

    #[test]
    fn reseeding_changes_noise_pattern() {
        let mut a = SimLlm::new(1);
        let mut observed_difference = false;
        for i in 0..50 {
            let name = format!("d{i}");
            let doc = Document::new(name, "identity theft").with_label("difficulty", 1.0);
            let task = LlmTask::Filter {
                instruction: "mentions identity theft",
                subject: Subject::doc(&doc),
            };
            let r1 = a.invoke(ModelId::Nano, &task);
            a.reseed(2);
            let r2 = a.invoke(ModelId::Nano, &task);
            a.reseed(1);
            if r1.corrupted != r2.corrupted {
                observed_difference = true;
                break;
            }
        }
        assert!(observed_difference);
    }
}
