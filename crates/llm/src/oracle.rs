//! The ground-truth oracle behind the simulated LLM.
//!
//! A real model answers a semantic question by reading the document. The
//! simulator reproduces that with two mechanisms, tried in order:
//!
//! 1. **Registered rules** ([`OracleRule`]): workload generators know the
//!    true answer for the predicates/extractions their queries use (they
//!    planted it), so they register rules mapping instruction patterns to
//!    ground-truth labels or content-derived answers.
//! 2. **Generic reading** (in [`crate::sim`]): keyword-overlap filtering and
//!    line-oriented numeric extraction directly over the subject text.
//!
//! Either way, the *noise channel* then corrupts the answer according to the
//! model tier and the subject's difficulty, which is what makes cheap models
//! cheap.

use aida_data::{Document, Record, Value};
use parking_lot::RwLock;
use std::borrow::Cow;
use std::collections::BTreeMap;
use std::sync::Arc;

/// The thing a semantic question is being asked about.
#[derive(Debug, Clone)]
pub struct Subject<'a> {
    /// Name of the underlying document or record source.
    pub name: Cow<'a, str>,
    /// Visible text the "model" reads.
    pub text: Cow<'a, str>,
    /// Hidden ground-truth labels (set by workload generators).
    pub labels: Option<&'a BTreeMap<String, Value>>,
}

impl<'a> Subject<'a> {
    /// A subject backed by a document (HTML is stripped to text).
    pub fn doc(doc: &'a Document) -> Subject<'a> {
        Subject {
            name: Cow::Borrowed(doc.name.as_str()),
            text: Cow::Owned(doc.text()),
            labels: Some(&doc.labels),
        }
    }

    /// A subject backed by a record, optionally linked to the document it
    /// was scanned from (which carries the ground-truth labels).
    pub fn record(record: &'a Record, origin: Option<&'a Document>) -> Subject<'a> {
        Subject {
            name: Cow::Borrowed(record.source.as_str()),
            text: Cow::Owned(record.render()),
            labels: origin.map(|d| &d.labels),
        }
    }

    /// A plain-text subject with no labels.
    pub fn text_only(name: &'a str, text: &'a str) -> Subject<'a> {
        Subject {
            name: Cow::Borrowed(name),
            text: Cow::Borrowed(text),
            labels: None,
        }
    }

    /// Ground-truth label lookup.
    pub fn label(&self, key: &str) -> Option<&Value> {
        self.labels.and_then(|m| m.get(key))
    }

    /// The subject's judgement difficulty in `[0, 1]`.
    ///
    /// Generators mark borderline items (e.g. a forwarded news article that
    /// *mentions* a transaction secondhand) with a `difficulty` label; the
    /// default is an easy 0.15.
    pub fn difficulty(&self) -> f64 {
        match self.label("difficulty") {
            Some(v) => v.as_float().unwrap_or(0.15).clamp(0.0, 1.0),
            None => 0.15,
        }
    }
}

/// A ground-truth answer produced by the oracle.
#[derive(Debug, Clone, PartialEq)]
pub enum OracleAnswer {
    /// Boolean judgement (semantic filters).
    Bool(bool),
    /// Boolean judgement with an explicit per-question difficulty that
    /// overrides the subject's document-level difficulty. Generators use
    /// this when different questions about the same document have very
    /// different hardness (spotting a name mention vs. judging
    /// firsthandness).
    BoolWithDifficulty(bool, f64),
    /// Extracted value (semantic maps/extracts).
    Value(Value),
    /// Free text (summaries).
    Text(String),
}

/// A rule that recognizes a family of instructions and answers them from
/// ground truth.
pub trait OracleRule: Send + Sync {
    /// Diagnostic name.
    fn name(&self) -> &str;
    /// Returns the true answer, or `None` when the rule doesn't apply to
    /// this instruction/subject.
    fn answer(&self, instruction: &str, subject: &Subject<'_>) -> Option<OracleAnswer>;
}

/// A rule matching instructions that contain **all** of a set of keywords
/// (case-insensitive) and answering with a subject label.
pub struct LabelRule {
    name: String,
    keywords: Vec<String>,
    label: String,
}

impl LabelRule {
    /// Creates a rule: when the instruction mentions every keyword, answer
    /// with the subject's `label` value.
    pub fn new(
        name: impl Into<String>,
        keywords: impl IntoIterator<Item = impl Into<String>>,
        label: impl Into<String>,
    ) -> Self {
        LabelRule {
            name: name.into(),
            keywords: keywords
                .into_iter()
                .map(|k| k.into().to_ascii_lowercase())
                .collect(),
            label: label.into(),
        }
    }
}

impl OracleRule for LabelRule {
    fn name(&self) -> &str {
        &self.name
    }

    fn answer(&self, instruction: &str, subject: &Subject<'_>) -> Option<OracleAnswer> {
        let lower = instruction.to_ascii_lowercase();
        if !self.keywords.iter().all(|k| lower.contains(k.as_str())) {
            return None;
        }
        match subject.label(&self.label)? {
            Value::Bool(b) => Some(OracleAnswer::Bool(*b)),
            Value::Str(s) => Some(OracleAnswer::Text(s.clone())),
            other => Some(OracleAnswer::Value(other.clone())),
        }
    }
}

/// A rule backed by a closure (used by generators for computed answers).
pub struct FnRule<F> {
    name: String,
    func: F,
}

impl<F> FnRule<F>
where
    F: Fn(&str, &Subject<'_>) -> Option<OracleAnswer> + Send + Sync,
{
    /// Wraps a closure as a rule.
    pub fn new(name: impl Into<String>, func: F) -> Self {
        FnRule {
            name: name.into(),
            func,
        }
    }
}

impl<F> OracleRule for FnRule<F>
where
    F: Fn(&str, &Subject<'_>) -> Option<OracleAnswer> + Send + Sync,
{
    fn name(&self) -> &str {
        &self.name
    }

    fn answer(&self, instruction: &str, subject: &Subject<'_>) -> Option<OracleAnswer> {
        (self.func)(instruction, subject)
    }
}

/// A shared, append-only registry of oracle rules.
#[derive(Clone, Default)]
pub struct Oracle {
    rules: Arc<RwLock<Vec<Arc<dyn OracleRule>>>>,
}

impl Oracle {
    /// Creates an empty oracle.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a rule; later registrations take precedence.
    pub fn register(&self, rule: Arc<dyn OracleRule>) {
        self.rules.write().push(rule);
    }

    /// Asks every rule (most recently registered first) for an answer.
    pub fn answer(&self, instruction: &str, subject: &Subject<'_>) -> Option<OracleAnswer> {
        let rules = self.rules.read();
        rules
            .iter()
            .rev()
            .find_map(|rule| rule.answer(instruction, subject))
    }

    /// Number of registered rules.
    pub fn len(&self) -> usize {
        self.rules.read().len()
    }

    /// True when no rules are registered.
    pub fn is_empty(&self) -> bool {
        self.rules.read().is_empty()
    }
}

impl std::fmt::Debug for Oracle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Oracle({} rules)", self.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aida_data::Document;

    fn email(relevant: bool, difficulty: f64) -> Document {
        Document::new("m.eml", "Subject: x\n\nbody text")
            .with_label("gt_relevant", relevant)
            .with_label("difficulty", difficulty)
    }

    #[test]
    fn label_rule_requires_all_keywords() {
        let rule = LabelRule::new("enron", ["firsthand", "transaction"], "gt_relevant");
        let doc = email(true, 0.0);
        let subject = Subject::doc(&doc);
        assert_eq!(
            rule.answer(
                "filter emails with firsthand discussion of a transaction",
                &subject
            ),
            Some(OracleAnswer::Bool(true))
        );
        assert_eq!(rule.answer("firsthand accounts only", &subject), None);
    }

    #[test]
    fn label_rule_missing_label_is_none() {
        let rule = LabelRule::new("r", ["q"], "missing");
        let doc = email(true, 0.0);
        assert_eq!(rule.answer("q", &Subject::doc(&doc)), None);
    }

    #[test]
    fn oracle_prefers_later_registrations() {
        let oracle = Oracle::new();
        oracle.register(Arc::new(FnRule::new("first", |_, _| {
            Some(OracleAnswer::Bool(false))
        })));
        oracle.register(Arc::new(FnRule::new("second", |_, _| {
            Some(OracleAnswer::Bool(true))
        })));
        let doc = email(false, 0.0);
        assert_eq!(
            oracle.answer("anything", &Subject::doc(&doc)),
            Some(OracleAnswer::Bool(true))
        );
        assert_eq!(oracle.len(), 2);
    }

    #[test]
    fn subject_difficulty_defaults_and_clamps() {
        let doc = email(true, 0.9);
        assert!((Subject::doc(&doc).difficulty() - 0.9).abs() < 1e-12);
        let plain = Document::new("a.txt", "hi");
        assert!((Subject::doc(&plain).difficulty() - 0.15).abs() < 1e-12);
        let wild = Document::new("b.txt", "hi").with_label("difficulty", 5.0);
        assert_eq!(Subject::doc(&wild).difficulty(), 1.0);
    }

    #[test]
    fn record_subject_renders_fields() {
        let rec = aida_data::Record::new("f.csv").with("year", 2024i64);
        let subject = Subject::record(&rec, None);
        assert!(subject.text.contains("year=2024"));
        assert_eq!(subject.name, "f.csv");
        assert!(subject.label("x").is_none());
    }
}
