//! The simulated model catalog.
//!
//! Three tiers mirror the price/quality spread of the GPT-4o family the
//! paper evaluated with: a flagship model, a mini model, and a nano model.
//! Prices are per million tokens; error rates drive the noise channel; the
//! latency model is `base + in_tokens·per_in + out_tokens·per_out` seconds.

use std::fmt;

/// Identifier of a simulated model tier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ModelId {
    /// Highest quality, highest price ("sim-4o").
    Flagship,
    /// Mid quality/price ("sim-4o-mini").
    Mini,
    /// Cheapest, noisiest ("sim-4o-nano").
    Nano,
}

impl ModelId {
    /// All tiers, best-first.
    pub const ALL: [ModelId; 3] = [ModelId::Flagship, ModelId::Mini, ModelId::Nano];

    /// The model's API-style name.
    pub fn name(self) -> &'static str {
        match self {
            ModelId::Flagship => "sim-4o",
            ModelId::Mini => "sim-4o-mini",
            ModelId::Nano => "sim-4o-nano",
        }
    }

    /// Parses an API-style name.
    pub fn parse(name: &str) -> Option<ModelId> {
        match name {
            "sim-4o" => Some(ModelId::Flagship),
            "sim-4o-mini" => Some(ModelId::Mini),
            "sim-4o-nano" => Some(ModelId::Nano),
            _ => None,
        }
    }
}

impl fmt::Display for ModelId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Pricing, latency, and quality parameters for one model tier.
#[derive(Debug, Clone, PartialEq)]
pub struct ModelSpec {
    /// Which tier this spec describes.
    pub id: ModelId,
    /// Dollars per million input tokens.
    pub input_price: f64,
    /// Dollars per million output tokens.
    pub output_price: f64,
    /// Fixed per-call latency in seconds (network + prefill overhead).
    pub latency_base_s: f64,
    /// Seconds per input token (prefill).
    pub latency_per_input_token_s: f64,
    /// Seconds per output token (decode).
    pub latency_per_output_token_s: f64,
    /// Error probability on easy semantic judgements (difficulty 0).
    pub easy_error: f64,
    /// Error probability on hard judgements (difficulty 1).
    pub hard_error: f64,
}

impl ModelSpec {
    /// Error probability at a difficulty in `[0, 1]` (linear interpolation,
    /// clamped).
    pub fn error_at(&self, difficulty: f64) -> f64 {
        let d = difficulty.clamp(0.0, 1.0);
        self.easy_error + (self.hard_error - self.easy_error) * d
    }

    /// Dollar cost of a call.
    pub fn cost(&self, input_tokens: usize, output_tokens: usize) -> f64 {
        (input_tokens as f64) * self.input_price / 1e6
            + (output_tokens as f64) * self.output_price / 1e6
    }

    /// Simulated latency of a call in seconds.
    pub fn latency(&self, input_tokens: usize, output_tokens: usize) -> f64 {
        self.latency_base_s
            + (input_tokens as f64) * self.latency_per_input_token_s
            + (output_tokens as f64) * self.latency_per_output_token_s
    }
}

/// The set of models available to the runtime and optimizer.
#[derive(Debug, Clone, PartialEq)]
pub struct ModelCatalog {
    specs: Vec<ModelSpec>,
}

impl Default for ModelCatalog {
    fn default() -> Self {
        ModelCatalog {
            specs: vec![
                ModelSpec {
                    id: ModelId::Flagship,
                    input_price: 2.50,
                    output_price: 10.00,
                    latency_base_s: 1.1,
                    latency_per_input_token_s: 0.0011,
                    latency_per_output_token_s: 0.030,
                    easy_error: 0.002,
                    hard_error: 0.06,
                },
                ModelSpec {
                    id: ModelId::Mini,
                    input_price: 0.15,
                    output_price: 0.60,
                    latency_base_s: 0.7,
                    latency_per_input_token_s: 0.0007,
                    latency_per_output_token_s: 0.020,
                    easy_error: 0.015,
                    hard_error: 0.22,
                },
                ModelSpec {
                    id: ModelId::Nano,
                    input_price: 0.05,
                    output_price: 0.20,
                    latency_base_s: 0.5,
                    latency_per_input_token_s: 0.0005,
                    latency_per_output_token_s: 0.015,
                    easy_error: 0.05,
                    hard_error: 0.38,
                },
            ],
        }
    }
}

impl ModelCatalog {
    /// The spec for a tier.
    pub fn spec(&self, id: ModelId) -> &ModelSpec {
        self.specs
            .iter()
            .find(|s| s.id == id)
            .expect("catalog contains every ModelId")
    }

    /// All specs, best tier first.
    pub fn specs(&self) -> &[ModelSpec] {
        &self.specs
    }

    /// Replaces a spec (used by tests and ablations to re-price tiers).
    pub fn set_spec(&mut self, spec: ModelSpec) {
        match self.specs.iter_mut().find(|s| s.id == spec.id) {
            Some(slot) => *slot = spec,
            None => self.specs.push(spec),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_round_trip() {
        for id in ModelId::ALL {
            assert_eq!(ModelId::parse(id.name()), Some(id));
        }
        assert_eq!(ModelId::parse("gpt-5"), None);
    }

    #[test]
    fn tiers_are_price_ordered() {
        let cat = ModelCatalog::default();
        let f = cat.spec(ModelId::Flagship);
        let m = cat.spec(ModelId::Mini);
        let n = cat.spec(ModelId::Nano);
        assert!(f.input_price > m.input_price && m.input_price > n.input_price);
        assert!(f.easy_error < m.easy_error && m.easy_error < n.easy_error);
        assert!(f.hard_error < m.hard_error && m.hard_error < n.hard_error);
    }

    #[test]
    fn cost_scales_with_tokens() {
        let cat = ModelCatalog::default();
        let f = cat.spec(ModelId::Flagship);
        let c = f.cost(1_000_000, 0);
        assert!((c - 2.50).abs() < 1e-9);
        let c = f.cost(0, 500_000);
        assert!((c - 5.00).abs() < 1e-9);
    }

    #[test]
    fn error_interpolates_and_clamps() {
        let cat = ModelCatalog::default();
        let n = cat.spec(ModelId::Nano);
        assert!((n.error_at(0.0) - n.easy_error).abs() < 1e-12);
        assert!((n.error_at(1.0) - n.hard_error).abs() < 1e-12);
        assert!((n.error_at(2.0) - n.hard_error).abs() < 1e-12);
        let mid = n.error_at(0.5);
        assert!(mid > n.easy_error && mid < n.hard_error);
    }

    #[test]
    fn latency_increases_with_output() {
        let cat = ModelCatalog::default();
        let f = cat.spec(ModelId::Flagship);
        assert!(f.latency(100, 100) > f.latency(100, 10));
        assert!(f.latency(1000, 10) > f.latency(100, 10));
    }

    #[test]
    fn set_spec_replaces() {
        let mut cat = ModelCatalog::default();
        let mut spec = cat.spec(ModelId::Nano).clone();
        spec.input_price = 99.0;
        cat.set_spec(spec);
        assert_eq!(cat.spec(ModelId::Nano).input_price, 99.0);
        assert_eq!(cat.specs().len(), 3);
    }
}
