//! Usage metering: the single ledger for simulated dollars.
//!
//! Every simulated LLM call reports its token usage here, tagged by model.
//! Experiment harnesses snapshot the meter before/after a system run and
//! difference the snapshots, so concurrent systems sharing a runtime never
//! double-count.

use crate::models::{ModelCatalog, ModelId};
use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::sync::Arc;

/// Token usage for one model.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Usage {
    /// Total input (prompt) tokens.
    pub input_tokens: u64,
    /// Total output (completion) tokens.
    pub output_tokens: u64,
    /// Number of calls.
    pub calls: u64,
}

impl Usage {
    /// Element-wise sum.
    pub fn add(&mut self, other: Usage) {
        self.input_tokens += other.input_tokens;
        self.output_tokens += other.output_tokens;
        self.calls += other.calls;
    }

    /// Element-wise difference (saturating; used for snapshot deltas).
    pub fn saturating_sub(&self, other: Usage) -> Usage {
        Usage {
            input_tokens: self.input_tokens.saturating_sub(other.input_tokens),
            output_tokens: self.output_tokens.saturating_sub(other.output_tokens),
            calls: self.calls.saturating_sub(other.calls),
        }
    }
}

/// An immutable point-in-time copy of the meter.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct UsageSnapshot {
    per_model: BTreeMap<ModelId, Usage>,
}

impl UsageSnapshot {
    /// Usage for one model (zero if the model never ran).
    pub fn usage(&self, id: ModelId) -> Usage {
        self.per_model.get(&id).copied().unwrap_or_default()
    }

    /// Per-model usage in tier order.
    pub fn per_model(&self) -> &BTreeMap<ModelId, Usage> {
        &self.per_model
    }

    /// Total calls across models.
    pub fn total_calls(&self) -> u64 {
        self.per_model.values().map(|u| u.calls).sum()
    }

    /// Total tokens (input + output) across models.
    pub fn total_tokens(&self) -> u64 {
        self.per_model
            .values()
            .map(|u| u.input_tokens + u.output_tokens)
            .sum()
    }

    /// Dollar cost of this snapshot under a catalog's pricing.
    pub fn cost(&self, catalog: &ModelCatalog) -> f64 {
        let total: f64 = self
            .per_model
            .iter()
            .map(|(id, u)| {
                catalog
                    .spec(*id)
                    .cost(u.input_tokens as usize, u.output_tokens as usize)
            })
            .sum();
        // An empty sum is IEEE -0.0; normalize so reports never print "-0".
        total + 0.0
    }

    /// The delta from an earlier snapshot to this one. Models with no new
    /// activity are absent from the delta.
    pub fn delta_since(&self, earlier: &UsageSnapshot) -> UsageSnapshot {
        let mut per_model = BTreeMap::new();
        for (id, usage) in &self.per_model {
            let before = earlier.usage(*id);
            let delta = usage.saturating_sub(before);
            if delta != Usage::default() {
                per_model.insert(*id, delta);
            }
        }
        UsageSnapshot { per_model }
    }

    /// Alias of [`UsageSnapshot::delta_since`] (the historical name).
    pub fn since(&self, earlier: &UsageSnapshot) -> UsageSnapshot {
        self.delta_since(earlier)
    }
}

/// A thread-safe, shared usage ledger.
#[derive(Debug, Clone, Default)]
pub struct UsageMeter {
    inner: Arc<Mutex<BTreeMap<ModelId, Usage>>>,
}

impl UsageMeter {
    /// Creates an empty meter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one call.
    pub fn record(&self, id: ModelId, input_tokens: usize, output_tokens: usize) {
        let mut inner = self.inner.lock();
        let usage = inner.entry(id).or_default();
        usage.add(Usage {
            input_tokens: input_tokens as u64,
            output_tokens: output_tokens as u64,
            calls: 1,
        });
    }

    /// Snapshots current totals.
    pub fn snapshot(&self) -> UsageSnapshot {
        UsageSnapshot {
            per_model: self.inner.lock().clone(),
        }
    }

    /// Resets all counters to zero.
    pub fn reset(&self) {
        self.inner.lock().clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_accumulates_per_model() {
        let meter = UsageMeter::new();
        meter.record(ModelId::Flagship, 100, 10);
        meter.record(ModelId::Flagship, 50, 5);
        meter.record(ModelId::Nano, 10, 1);
        let snap = meter.snapshot();
        assert_eq!(
            snap.usage(ModelId::Flagship),
            Usage {
                input_tokens: 150,
                output_tokens: 15,
                calls: 2
            }
        );
        assert_eq!(snap.usage(ModelId::Nano).calls, 1);
        assert_eq!(snap.usage(ModelId::Mini), Usage::default());
        assert_eq!(snap.total_calls(), 3);
        assert_eq!(snap.total_tokens(), 150 + 15 + 11);
    }

    #[test]
    fn cost_uses_catalog_pricing() {
        let meter = UsageMeter::new();
        meter.record(ModelId::Flagship, 1_000_000, 0);
        let cost = meter.snapshot().cost(&ModelCatalog::default());
        assert!((cost - 2.50).abs() < 1e-9);
    }

    #[test]
    fn snapshot_delta_isolates_a_run() {
        let meter = UsageMeter::new();
        meter.record(ModelId::Mini, 100, 10);
        let before = meter.snapshot();
        meter.record(ModelId::Mini, 30, 3);
        meter.record(ModelId::Nano, 7, 1);
        let delta = meter.snapshot().delta_since(&before);
        assert_eq!(
            delta.usage(ModelId::Mini),
            Usage {
                input_tokens: 30,
                output_tokens: 3,
                calls: 1
            }
        );
        assert_eq!(delta.usage(ModelId::Nano).input_tokens, 7);
        // Models with no new activity are absent from the delta.
        assert!(!delta.per_model().contains_key(&ModelId::Flagship));
        // The historical alias produces the identical delta.
        assert_eq!(meter.snapshot().since(&before), delta);
    }

    #[test]
    fn meter_is_shared_across_clones() {
        let a = UsageMeter::new();
        let b = a.clone();
        b.record(ModelId::Nano, 1, 1);
        assert_eq!(a.snapshot().total_calls(), 1);
        a.reset();
        assert_eq!(b.snapshot().total_calls(), 0);
    }

    #[test]
    fn meter_is_thread_safe() {
        let meter = UsageMeter::new();
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let m = meter.clone();
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        m.record(ModelId::Mini, 1, 1);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(meter.snapshot().usage(ModelId::Mini).calls, 8000);
    }
}
