//! Shared durable-state plumbing: checksummed snapshot framing, atomic
//! file commits, an append-only WAL record codec, and deterministic
//! crash injection.
//!
//! Both whole-file durable stores in the workspace — the semantic call
//! cache ([`crate::cache`]) and the ContextManager snapshot in
//! `aida-core` — write the same shape:
//!
//! ```text
//! <magic line>
//! entries <n>
//! checksum <fnv64(body) as hex16>
//! <body: n lines>
//! ```
//!
//! A reader verifies the magic, the declared line count, and the
//! checksum before trusting a single byte; any violation is a typed
//! [`SnapshotError`] and the caller starts cold. The tenant-ledger WAL
//! in `aida-serve` uses the per-record variant instead
//! ([`wal_append`] / [`wal_replay`]): every record carries its own
//! monotone sequence number and checksum, so a torn tail truncates to
//! the last intact record instead of rejecting the whole file.
//!
//! Crash injection: every durable write site threads an optional
//! [`FailPlan`] through [`commit_atomic`] and [`wal_append`]. A plan
//! names one [`CrashPoint`] and fires once — erroring before the write,
//! tearing it mid-record, or erroring after the commit. The durability
//! suite (`tests/durability.rs`) uses this to prove the invariant
//! `recover(crash(S)) ∈ {S_pre, S_committed}` at every point.

use aida_data::Value;
use std::fmt;
use std::io::{self, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU32, Ordering};

/// Why a snapshot (or WAL ledger snapshot) failed to load.
#[derive(Debug)]
pub enum SnapshotError {
    /// The file could not be read.
    Io(std::io::Error),
    /// The file is not a well-formed snapshot (bad magic, count,
    /// checksum, or entry encoding).
    Format(String),
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::Io(e) => write!(f, "snapshot io error: {e}"),
            SnapshotError::Format(msg) => write!(f, "snapshot format error: {msg}"),
        }
    }
}

impl std::error::Error for SnapshotError {}

impl From<std::io::Error> for SnapshotError {
    fn from(e: std::io::Error) -> Self {
        SnapshotError::Io(e)
    }
}

/// FNV-1a 64 over raw bytes (the snapshot and WAL-record checksum).
pub fn fnv64(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for b in bytes {
        hash ^= *b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

// ---- string / value codec ----------------------------------------------
//
// Strings escape `\`, tab, newline, and CR so one encoded field never
// spans a tab-separated column or a line; value payloads additionally
// escape the structural `,` `[` `]` so the recursive decoder can split
// on them. Floats round-trip via `f64::to_bits`.

/// Escapes a string for a tab-separated snapshot field.
pub fn esc(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\t' => out.push_str("\\t"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            _ => out.push(c),
        }
    }
}

fn esc_value_str(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\t' => out.push_str("\\t"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            ',' => out.push_str("\\c"),
            '[' => out.push_str("\\o"),
            ']' => out.push_str("\\e"),
            _ => out.push(c),
        }
    }
}

/// Reverses [`esc`]. Any malformed escape is a format error.
pub fn unesc(raw: &str) -> Result<String, SnapshotError> {
    let mut out = String::with_capacity(raw.len());
    let mut chars = raw.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        out.push(match chars.next() {
            Some('\\') => '\\',
            Some('t') => '\t',
            Some('n') => '\n',
            Some('r') => '\r',
            _ => return Err(SnapshotError::Format("bad text escape".into())),
        });
    }
    Ok(out)
}

/// Appends the tagged encoding of a [`Value`] (`n`, `b0`/`b1`, `i…`,
/// `f<bits>`, `s…`, `l[…]`).
pub fn encode_value(value: &Value, out: &mut String) {
    match value {
        Value::Null => out.push('n'),
        Value::Bool(b) => out.push_str(if *b { "b1" } else { "b0" }),
        Value::Int(i) => {
            out.push('i');
            out.push_str(&i.to_string());
        }
        Value::Float(f) => {
            out.push('f');
            out.push_str(&format!("{:016x}", f.to_bits()));
        }
        Value::Str(s) => {
            out.push('s');
            esc_value_str(s, out);
        }
        Value::List(items) => {
            out.push_str("l[");
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                encode_value(item, out);
            }
            out.push(']');
        }
    }
}

struct ValueParser<'a> {
    chars: std::iter::Peekable<std::str::Chars<'a>>,
}

impl ValueParser<'_> {
    fn fail<T>(msg: &str) -> Result<T, SnapshotError> {
        Err(SnapshotError::Format(msg.to_string()))
    }

    /// Reads characters until an unescaped structural delimiter (`,` or
    /// `]`) or end of input, unescaping as it goes.
    fn read_str(&mut self) -> Result<String, SnapshotError> {
        let mut out = String::new();
        while let Some(&c) = self.chars.peek() {
            match c {
                ',' | ']' => break,
                '\\' => {
                    self.chars.next();
                    let Some(esc) = self.chars.next() else {
                        return Self::fail("dangling escape");
                    };
                    out.push(match esc {
                        '\\' => '\\',
                        't' => '\t',
                        'n' => '\n',
                        'r' => '\r',
                        'c' => ',',
                        'o' => '[',
                        'e' => ']',
                        _ => return Self::fail("unknown escape"),
                    });
                }
                _ => {
                    self.chars.next();
                    out.push(c);
                }
            }
        }
        Ok(out)
    }

    fn parse(&mut self) -> Result<Value, SnapshotError> {
        let Some(tag) = self.chars.next() else {
            return Self::fail("empty value");
        };
        match tag {
            'n' => Ok(Value::Null),
            'b' => match self.chars.next() {
                Some('1') => Ok(Value::Bool(true)),
                Some('0') => Ok(Value::Bool(false)),
                _ => Self::fail("bad bool"),
            },
            'i' => {
                let raw = self.read_str()?;
                raw.parse::<i64>()
                    .map(Value::Int)
                    .map_err(|_| SnapshotError::Format("bad int".into()))
            }
            'f' => {
                let raw = self.read_str()?;
                u64::from_str_radix(&raw, 16)
                    .map(|bits| Value::Float(f64::from_bits(bits)))
                    .map_err(|_| SnapshotError::Format("bad float bits".into()))
            }
            's' => Ok(Value::Str(self.read_str()?)),
            'l' => {
                if self.chars.next() != Some('[') {
                    return Self::fail("list missing [");
                }
                let mut items = Vec::new();
                if self.chars.peek() == Some(&']') {
                    self.chars.next();
                    return Ok(Value::List(items));
                }
                loop {
                    items.push(self.parse()?);
                    match self.chars.next() {
                        Some(',') => continue,
                        Some(']') => break,
                        _ => return Self::fail("unterminated list"),
                    }
                }
                Ok(Value::List(items))
            }
            _ => Self::fail("unknown value tag"),
        }
    }
}

/// Reverses [`encode_value`]; trailing bytes are a format error.
pub fn decode_value(raw: &str) -> Result<Value, SnapshotError> {
    let mut parser = ValueParser {
        chars: raw.chars().peekable(),
    };
    let value = parser.parse()?;
    if parser.chars.next().is_some() {
        return Err(SnapshotError::Format("trailing value bytes".into()));
    }
    Ok(value)
}

// ---- whole-file snapshot framing ---------------------------------------

/// Frames a body under the `magic / entries n / checksum` header.
pub fn encode_file(magic: &str, body: &str) -> String {
    let n = body.lines().count();
    format!(
        "{magic}\nentries {n}\nchecksum {:016x}\n{body}",
        fnv64(body.as_bytes())
    )
}

/// Verifies the frame and returns the body. Rejects the whole file on a
/// bad magic, entry count, or checksum — a durable store never applies a
/// partially-trusted snapshot.
pub fn decode_file<'a>(magic: &str, text: &'a str) -> Result<&'a str, SnapshotError> {
    let mut lines = text.splitn(4, '\n');
    let found = lines.next().unwrap_or("");
    if found != magic {
        return Err(SnapshotError::Format(format!("bad magic {found:?}")));
    }
    let count_line = lines.next().unwrap_or("");
    let declared: usize = count_line
        .strip_prefix("entries ")
        .and_then(|n| n.parse().ok())
        .ok_or_else(|| SnapshotError::Format("bad entry count".into()))?;
    let checksum_line = lines.next().unwrap_or("");
    let declared_sum = checksum_line
        .strip_prefix("checksum ")
        .and_then(|raw| u64::from_str_radix(raw, 16).ok())
        .ok_or_else(|| SnapshotError::Format("bad checksum line".into()))?;
    let body = lines.next().unwrap_or("");
    if fnv64(body.as_bytes()) != declared_sum {
        return Err(SnapshotError::Format("checksum mismatch".into()));
    }
    let found_lines = body.lines().count();
    if found_lines != declared {
        return Err(SnapshotError::Format(format!(
            "declared {declared} entries, found {found_lines}"
        )));
    }
    Ok(body)
}

// ---- crash injection ---------------------------------------------------

/// A named instant in a durable write where an injected crash can fire.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CrashPoint {
    /// Before any snapshot byte is written (temp file not created).
    SnapshotBeforeWrite,
    /// Mid-write of the snapshot temp file: a prefix lands, then the
    /// process dies. The real path is never touched.
    SnapshotTornWrite,
    /// After the temp file is complete but before the atomic rename.
    SnapshotBeforeRename,
    /// After the rename: the snapshot IS committed, the process dies
    /// before it can report success.
    SnapshotAfterCommit,
    /// Before a WAL record's first byte reaches the file.
    WalBeforeAppend,
    /// Mid-append: a prefix of the record lands, then the process dies.
    WalTornAppend,
    /// After the record is fully appended: the write IS durable, the
    /// process dies before acknowledging.
    WalAfterAppend,
    /// Before the rename that seals the active WAL tail into an
    /// immutable segment. The records themselves are already durable;
    /// only the seal is lost, so recovery replays the unsealed tail.
    WalSegmentSeal,
    /// Mid-append of a delta frame: a prefix of the frame lands, then
    /// the process dies. Replay truncates to the previous intact frame.
    DeltaTornAppend,
    /// Before a group-commit batch reaches the file: every record in
    /// the batch is lost together, so the durable log trails memory by
    /// at most one batch.
    GroupCommitFlush,
}

impl CrashPoint {
    /// Every crash point, for exhaustive matrices in tests.
    pub const ALL: [CrashPoint; 10] = [
        CrashPoint::SnapshotBeforeWrite,
        CrashPoint::SnapshotTornWrite,
        CrashPoint::SnapshotBeforeRename,
        CrashPoint::SnapshotAfterCommit,
        CrashPoint::WalBeforeAppend,
        CrashPoint::WalTornAppend,
        CrashPoint::WalAfterAppend,
        CrashPoint::WalSegmentSeal,
        CrashPoint::DeltaTornAppend,
        CrashPoint::GroupCommitFlush,
    ];

    /// Whether the write at this point is already durable when the crash
    /// fires (i.e. recovery must land on `S_committed`, not `S_pre`).
    pub fn is_post_commit(self) -> bool {
        matches!(
            self,
            CrashPoint::SnapshotAfterCommit | CrashPoint::WalAfterAppend
        )
    }
}

/// A seeded, one-shot crash plan threaded through the durable write
/// paths. The plan fires at the `skip`-th matching [`CrashPoint`]
/// encounter (default: the first) and then never again, so recovery code
/// running after the "crash" sees a healthy filesystem.
#[derive(Debug)]
pub struct FailPlan {
    point: CrashPoint,
    skip: AtomicU32,
    torn_keep: usize,
    tripped: AtomicBool,
    /// Flight-recorder handle: when enabled, a firing plan notes the
    /// crash and triggers the recorder's autodump, so the forensic tail
    /// is on disk before the injected error even surfaces.
    recorder: aida_obs::Recorder,
}

impl FailPlan {
    /// A plan that fires at the first encounter of `point`.
    pub fn new(point: CrashPoint) -> FailPlan {
        FailPlan::nth(point, 0)
    }

    /// A plan that skips `skip` matching encounters before firing.
    pub fn nth(point: CrashPoint, skip: u32) -> FailPlan {
        FailPlan {
            point,
            skip: AtomicU32::new(skip),
            torn_keep: 7,
            tripped: AtomicBool::new(false),
            recorder: aida_obs::Recorder::disabled(),
        }
    }

    /// Attaches a flight-recorder handle: when the plan fires, the crash
    /// is recorded and the recorder's configured autodump is written.
    pub fn with_recorder(mut self, recorder: aida_obs::Recorder) -> FailPlan {
        self.recorder = recorder;
        self
    }

    /// A deterministic plan derived from a test seed: which encounter
    /// dies and how many bytes a torn write keeps both vary with `seed`.
    pub fn seeded(point: CrashPoint, seed: u64) -> FailPlan {
        let mut plan = FailPlan::nth(point, (seed % 3) as u32);
        plan.torn_keep = 1 + ((seed / 3) % 23) as usize;
        plan
    }

    /// Sets how many bytes a torn write leaves behind.
    pub fn torn_keep(mut self, bytes: usize) -> FailPlan {
        self.torn_keep = bytes;
        self
    }

    /// The crash point this plan targets.
    pub fn point(&self) -> CrashPoint {
        self.point
    }

    /// Whether the plan has fired.
    pub fn tripped(&self) -> bool {
        self.tripped.load(Ordering::Relaxed)
    }

    fn fires(&self, point: CrashPoint) -> bool {
        if point != self.point || self.tripped() {
            return false;
        }
        let mut fired = false;
        let _ = self
            .skip
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |s| {
                if s == 0 {
                    fired = true;
                    None
                } else {
                    fired = false;
                    Some(s - 1)
                }
            });
        if fired {
            self.tripped.store(true, Ordering::Relaxed);
            self.recorder
                .flight("llm.crash", "crash_point", format!("{point:?}"));
            self.recorder.flight_autodump("crash_point");
        }
        fired
    }

    /// Returns the injected crash error if the plan fires at `point`.
    pub fn check(&self, point: CrashPoint) -> io::Result<()> {
        if self.fires(point) {
            Err(FailPlan::crash_error(point))
        } else {
            Ok(())
        }
    }

    /// For torn points: how many bytes to keep if the plan fires here.
    fn torn(&self, point: CrashPoint) -> Option<usize> {
        if self.fires(point) {
            Some(self.torn_keep)
        } else {
            None
        }
    }

    /// The error an injected crash surfaces as.
    pub fn crash_error(point: CrashPoint) -> io::Error {
        io::Error::new(
            io::ErrorKind::Interrupted,
            format!("injected crash at {point:?}"),
        )
    }

    /// Whether an error came from an injected crash (vs. a real I/O
    /// failure).
    pub fn is_crash(err: &io::Error) -> bool {
        err.kind() == io::ErrorKind::Interrupted && err.to_string().contains("injected crash")
    }
}

fn tmp_sibling(path: &Path) -> PathBuf {
    let mut os = path.as_os_str().to_owned();
    os.push(".tmp");
    PathBuf::from(os)
}

/// Fsyncs `path`'s parent directory so a just-created or just-renamed
/// entry survives an OS crash/power cut, not merely a process crash.
/// Platforms whose directory handles reject fsync (e.g. Windows) report
/// success once the rename itself has been issued.
pub fn sync_parent_dir(path: &Path) -> io::Result<()> {
    if !cfg!(unix) {
        return Ok(());
    }
    let Some(dir) = path.parent().filter(|d| !d.as_os_str().is_empty()) else {
        return Ok(());
    };
    std::fs::File::open(dir)?.sync_all()
}

/// Writes `contents` to a temp sibling and renames it over `path`, so
/// readers only ever observe the old snapshot or the complete new one.
/// The optional [`FailPlan`] injects a crash at the snapshot points.
pub fn commit_atomic(path: &Path, contents: &str, plan: Option<&FailPlan>) -> io::Result<()> {
    if let Some(dir) = path.parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir)?;
        }
    }
    if let Some(plan) = plan {
        plan.check(CrashPoint::SnapshotBeforeWrite)?;
    }
    let tmp = tmp_sibling(path);
    let bytes = contents.as_bytes();
    if let Some(keep) = plan.and_then(|p| p.torn(CrashPoint::SnapshotTornWrite)) {
        std::fs::write(&tmp, &bytes[..keep.min(bytes.len())])?;
        return Err(FailPlan::crash_error(CrashPoint::SnapshotTornWrite));
    }
    {
        let mut file = std::fs::File::create(&tmp)?;
        file.write_all(bytes)?;
        // sync_all (not just flush) so the rename below never commits a
        // name whose contents are still in the page cache: a power cut
        // must yield the old snapshot or the complete new one.
        file.sync_all()?;
    }
    if let Some(plan) = plan {
        plan.check(CrashPoint::SnapshotBeforeRename)?;
    }
    std::fs::rename(&tmp, path)?;
    sync_parent_dir(path)?;
    if let Some(plan) = plan {
        plan.check(CrashPoint::SnapshotAfterCommit)?;
    }
    Ok(())
}

// ---- append-only WAL ---------------------------------------------------
//
// One record per line:
//   <seq:hex16> \t <payload> \t <fnv64(seq-hex \t payload):hex16> \n
// The payload may itself contain tabs (its fields are escaped with
// `esc`, which removes raw newlines), so a reader peels the checksum off
// the right and the sequence number off the left.

/// Encodes one WAL record line (including the trailing newline).
pub fn wal_record_line(seq: u64, payload: &str) -> String {
    debug_assert!(
        !payload.contains('\n'),
        "WAL payloads must be newline-free (escape fields with esc)"
    );
    let head = format!("{seq:016x}\t{payload}");
    format!("{head}\t{:016x}\n", fnv64(head.as_bytes()))
}

/// Appends one checksummed record to the WAL at `path`, creating the
/// file (and parent directory) if needed. The optional [`FailPlan`]
/// injects a crash at the WAL points; a torn append leaves a prefix of
/// the record behind, exactly as a mid-write power cut would.
pub fn wal_append(path: &Path, seq: u64, payload: &str, plan: Option<&FailPlan>) -> io::Result<()> {
    if let Some(dir) = path.parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir)?;
        }
    }
    let line = wal_record_line(seq, payload);
    let created = !path.exists();
    let mut file = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)?;
    if let Some(plan) = plan {
        plan.check(CrashPoint::WalBeforeAppend)?;
        if let Some(keep) = plan.torn(CrashPoint::WalTornAppend) {
            let bytes = line.as_bytes();
            file.write_all(&bytes[..keep.min(bytes.len())])?;
            file.flush()?;
            return Err(FailPlan::crash_error(CrashPoint::WalTornAppend));
        }
    }
    file.write_all(line.as_bytes())?;
    // sync_all (not just flush) so an acknowledged record survives an OS
    // crash/power cut, not merely a process crash.
    file.sync_all()?;
    if created {
        sync_parent_dir(path)?;
    }
    if let Some(plan) = plan {
        plan.check(CrashPoint::WalAfterAppend)?;
    }
    Ok(())
}

/// Appends a batch of records to the WAL at `path` with a SINGLE
/// `sync_all` (group commit): records are numbered `first_seq..` in
/// order and written as one contiguous byte run, so either the batch's
/// prefix survives a tear (the per-record checksums truncate the rest)
/// or the whole batch lands durably under one fsync. The optional
/// [`FailPlan`] can drop the entire batch before any byte lands
/// ([`CrashPoint::GroupCommitFlush`]) or tear it mid-record
/// ([`CrashPoint::WalTornAppend`]).
pub fn wal_append_batch(
    path: &Path,
    first_seq: u64,
    payloads: &[String],
    plan: Option<&FailPlan>,
) -> io::Result<()> {
    if payloads.is_empty() {
        return Ok(());
    }
    if let Some(dir) = path.parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir)?;
        }
    }
    let mut batch = String::new();
    for (i, payload) in payloads.iter().enumerate() {
        batch.push_str(&wal_record_line(first_seq + i as u64, payload));
    }
    if let Some(plan) = plan {
        plan.check(CrashPoint::GroupCommitFlush)?;
    }
    let created = !path.exists();
    let mut file = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)?;
    if let Some(keep) = plan.and_then(|p| p.torn(CrashPoint::WalTornAppend)) {
        let bytes = batch.as_bytes();
        file.write_all(&bytes[..keep.min(bytes.len())])?;
        file.flush()?;
        return Err(FailPlan::crash_error(CrashPoint::WalTornAppend));
    }
    file.write_all(batch.as_bytes())?;
    // One sync_all for the whole batch: this is the entire point of
    // group commit — durability cost amortizes across the records.
    file.sync_all()?;
    if created {
        sync_parent_dir(path)?;
    }
    if let Some(plan) = plan {
        plan.check(CrashPoint::WalAfterAppend)?;
    }
    Ok(())
}

/// Seals the active WAL tail at `path` into the immutable segment file
/// at `sealed` via rename. The records inside are already individually
/// durable (every append fsyncs), so the seal is pure metadata: a crash
/// before the rename ([`CrashPoint::WalSegmentSeal`]) simply leaves the
/// tail active and recovery replays it in place. `sync_all` on the tail
/// plus the parent-directory fsync make the new name itself survive a
/// power cut.
pub fn wal_seal_segment(path: &Path, sealed: &Path, plan: Option<&FailPlan>) -> io::Result<()> {
    if let Some(plan) = plan {
        plan.check(CrashPoint::WalSegmentSeal)?;
    }
    // Re-sync the tail so no acknowledged byte is still in the page
    // cache when the rename commits the segment's final name.
    std::fs::File::open(path)?.sync_all()?;
    std::fs::rename(path, sealed)?;
    sync_parent_dir(sealed)?;
    Ok(())
}

/// Appends one checksummed delta frame to the chain at `path`. Same
/// record codec and fsync discipline as [`wal_append`], but with its
/// own torn-write crash point ([`CrashPoint::DeltaTornAppend`]) so the
/// durability suite can kill a checkpoint's delta emission
/// independently of the ledger WAL.
pub fn delta_append(
    path: &Path,
    seq: u64,
    payload: &str,
    plan: Option<&FailPlan>,
) -> io::Result<()> {
    if let Some(dir) = path.parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir)?;
        }
    }
    let line = wal_record_line(seq, payload);
    let created = !path.exists();
    let mut file = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)?;
    if let Some(keep) = plan.and_then(|p| p.torn(CrashPoint::DeltaTornAppend)) {
        let bytes = line.as_bytes();
        file.write_all(&bytes[..keep.min(bytes.len())])?;
        file.flush()?;
        return Err(FailPlan::crash_error(CrashPoint::DeltaTornAppend));
    }
    file.write_all(line.as_bytes())?;
    // sync_all (not just flush): an emitted frame must survive an OS
    // crash/power cut, or replay could skip a hole in the chain.
    file.sync_all()?;
    if created {
        sync_parent_dir(path)?;
    }
    Ok(())
}

/// What [`wal_replay`] recovered.
#[derive(Debug, Clone, Default)]
pub struct WalReplay {
    /// Intact records in file order: `(seq, payload)`.
    pub records: Vec<(u64, String)>,
    /// Whether a torn/corrupt tail was logically truncated (everything
    /// before it is still trusted).
    pub dropped_tail: bool,
    /// Byte length of the intact prefix (every accepted record including
    /// its trailing newline). When `dropped_tail` is set, the file must
    /// be physically truncated to this offset before any new append —
    /// otherwise the next record lands on the torn line, fails its
    /// checksum on the following replay, and takes every acknowledged
    /// record after it down too.
    pub valid_len: u64,
}

/// Replays the WAL at `path`. A missing file is an empty WAL. Records
/// are trusted up to the first violation — bad checksum, unparsable
/// line, or non-increasing sequence number — which truncates the
/// logical log there (`dropped_tail`), exactly the torn-tail semantics
/// of a crash mid-append.
pub fn wal_replay(path: &Path) -> io::Result<WalReplay> {
    let bytes = match std::fs::read(path) {
        Ok(bytes) => bytes,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(WalReplay::default()),
        Err(e) => return Err(e),
    };
    let mut replay = WalReplay::default();
    // A torn write can split a multi-byte character: trust the valid
    // UTF-8 prefix and truncate there.
    let text = match String::from_utf8(bytes) {
        Ok(text) => text,
        Err(e) => {
            replay.dropped_tail = true;
            let valid = e.utf8_error().valid_up_to();
            let mut bytes = e.into_bytes();
            bytes.truncate(valid);
            match String::from_utf8(bytes) {
                Ok(prefix) => prefix,
                // Unreachable by construction (the prefix up to
                // valid_up_to is valid), but recovery never panics:
                // treat it as a fully torn log.
                Err(_) => return Ok(replay),
            }
        }
    };
    let lines: Vec<&str> = text.split('\n').collect();
    let mut last_seq: Option<u64> = None;
    for (i, line) in lines.iter().enumerate() {
        if line.is_empty() {
            // The empty tail after the final newline is well-formed;
            // a blank line anywhere else is corruption.
            if i + 1 != lines.len() {
                replay.dropped_tail = true;
            }
            break;
        }
        // An unterminated final line tore on its last byte(s): the
        // newline is part of the record, so without it the record was
        // never fully durable and the next append would merge into it.
        if i + 1 == lines.len() {
            replay.dropped_tail = true;
            break;
        }
        let Some((head, sum_hex)) = line.rsplit_once('\t') else {
            replay.dropped_tail = true;
            break;
        };
        let checks_out = u64::from_str_radix(sum_hex, 16)
            .map(|sum| sum == fnv64(head.as_bytes()))
            .unwrap_or(false);
        if !checks_out {
            replay.dropped_tail = true;
            break;
        }
        let Some((seq_hex, payload)) = head.split_once('\t') else {
            replay.dropped_tail = true;
            break;
        };
        let Ok(seq) = u64::from_str_radix(seq_hex, 16) else {
            replay.dropped_tail = true;
            break;
        };
        if last_seq.is_some_and(|prev| seq <= prev) {
            replay.dropped_tail = true;
            break;
        }
        replay.valid_len += line.len() as u64 + 1;
        replay.records.push((seq, payload.to_string()));
        last_seq = Some(seq);
    }
    Ok(replay)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dir(name: &str) -> PathBuf {
        let d =
            std::env::temp_dir().join(format!("aida-snapshot-test-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    #[test]
    fn file_frame_round_trips_and_rejects_corruption() {
        let body = "alpha\tone\nbeta\ttwo\n";
        let framed = encode_file("test v1", body);
        assert_eq!(decode_file("test v1", &framed).unwrap(), body);
        assert!(matches!(
            decode_file("other v1", &framed),
            Err(SnapshotError::Format(_))
        ));
        let mut garbled = framed.clone().into_bytes();
        let last = garbled.len() - 2;
        garbled[last] = garbled[last].wrapping_add(1);
        let garbled = String::from_utf8(garbled).unwrap();
        assert!(matches!(
            decode_file("test v1", &garbled),
            Err(SnapshotError::Format(_))
        ));
    }

    #[test]
    fn commit_atomic_never_exposes_a_partial_file() {
        let d = dir("atomic");
        let path = d.join("state.snap");
        commit_atomic(&path, "first\n", None).unwrap();
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "first\n");

        // A torn write dies mid-temp-file; the real path still holds the
        // previous committed contents.
        let plan = FailPlan::new(CrashPoint::SnapshotTornWrite).torn_keep(3);
        let err = commit_atomic(&path, "second\n", Some(&plan)).unwrap_err();
        assert!(FailPlan::is_crash(&err));
        assert!(plan.tripped());
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "first\n");

        // After the commit point the new contents ARE durable even
        // though the caller sees a crash.
        let plan = FailPlan::new(CrashPoint::SnapshotAfterCommit);
        let err = commit_atomic(&path, "third\n", Some(&plan)).unwrap_err();
        assert!(FailPlan::is_crash(&err));
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "third\n");
        let _ = std::fs::remove_dir_all(&d);
    }

    #[test]
    fn wal_replay_truncates_at_torn_tail() {
        let d = dir("wal");
        let path = d.join("ledger.wal");
        wal_append(&path, 0, "admit\tacme", None).unwrap();
        wal_append(&path, 1, "spend\tacme\t42", None).unwrap();
        let plan = FailPlan::new(CrashPoint::WalTornAppend).torn_keep(9);
        let err = wal_append(&path, 2, "spend\tbolt\t7", Some(&plan)).unwrap_err();
        assert!(FailPlan::is_crash(&err));

        let replay = wal_replay(&path).unwrap();
        assert!(replay.dropped_tail);
        assert_eq!(
            replay.records,
            vec![
                (0, "admit\tacme".to_string()),
                (1, "spend\tacme\t42".to_string())
            ]
        );
        // valid_len marks the end of the intact prefix: truncating there
        // removes exactly the torn bytes.
        let intact = wal_record_line(0, "admit\tacme") + &wal_record_line(1, "spend\tacme\t42");
        assert_eq!(replay.valid_len, intact.len() as u64);
        assert!((replay.valid_len as usize) < std::fs::read(&path).unwrap().len());
        let _ = std::fs::remove_dir_all(&d);
    }

    #[test]
    fn wal_replay_drops_an_unterminated_final_record() {
        let d = dir("walnoterm");
        let path = d.join("ledger.wal");
        wal_append(&path, 0, "a", None).unwrap();
        wal_append(&path, 1, "b", None).unwrap();
        // Tear off only the final newline: the record's bytes are all
        // present, but an append would merge into its line, so replay
        // must treat it as torn.
        let text = std::fs::read_to_string(&path).unwrap();
        std::fs::write(&path, text.trim_end_matches('\n')).unwrap();
        let replay = wal_replay(&path).unwrap();
        assert!(replay.dropped_tail);
        assert_eq!(replay.records.len(), 1);
        assert_eq!(replay.valid_len, wal_record_line(0, "a").len() as u64);
        let _ = std::fs::remove_dir_all(&d);
    }

    #[test]
    fn wal_replay_rejects_non_monotone_sequences() {
        let d = dir("walseq");
        let path = d.join("ledger.wal");
        wal_append(&path, 3, "a", None).unwrap();
        wal_append(&path, 4, "b", None).unwrap();
        // A duplicated sequence number (e.g. a buggy writer re-appending
        // after a partial recovery) truncates the log at the violation.
        let mut text = std::fs::read_to_string(&path).unwrap();
        text.push_str(&wal_record_line(4, "dup"));
        std::fs::write(&path, text).unwrap();
        let replay = wal_replay(&path).unwrap();
        assert!(replay.dropped_tail);
        assert_eq!(replay.records.len(), 2);
        let _ = std::fs::remove_dir_all(&d);
    }

    #[test]
    fn missing_wal_is_empty() {
        let replay = wal_replay(Path::new("/nonexistent/aida/ledger.wal")).unwrap();
        assert!(replay.records.is_empty());
        assert!(!replay.dropped_tail);
    }

    #[test]
    fn firing_plan_dumps_the_flight_recorder() {
        let d = dir("flight");
        let dump = d.join("flight.jsonl");
        let recorder = aida_obs::Recorder::new();
        recorder.set_flight_autodump(&dump);
        recorder.flight("test", "setup", "before crash");
        let plan = FailPlan::new(CrashPoint::WalBeforeAppend).with_recorder(recorder.clone());
        assert!(plan.check(CrashPoint::WalBeforeAppend).is_err());
        let text = std::fs::read_to_string(&dump).unwrap();
        assert!(text
            .lines()
            .next()
            .unwrap()
            .contains(r#""flight":"crash_point""#));
        assert!(text.contains(r#""kind":"crash_point","detail":"WalBeforeAppend""#));
        // The crash itself is the last record in the ring.
        let records = recorder.flight_records();
        assert_eq!(records.last().unwrap().kind, "crash_point");
        let _ = std::fs::remove_dir_all(&d);
    }

    #[test]
    fn wal_append_batch_is_one_tail_and_replays_in_order() {
        let d = dir("walbatch");
        let path = d.join("ledger.wal");
        wal_append(&path, 0, "admit\tacme", None).unwrap();
        let batch = vec!["spend\tacme\t1".to_string(), "spend\tbolt\t2".to_string()];
        wal_append_batch(&path, 1, &batch, None).unwrap();
        let replay = wal_replay(&path).unwrap();
        assert!(!replay.dropped_tail);
        assert_eq!(
            replay.records,
            vec![
                (0, "admit\tacme".to_string()),
                (1, "spend\tacme\t1".to_string()),
                (2, "spend\tbolt\t2".to_string()),
            ]
        );
        let _ = std::fs::remove_dir_all(&d);
    }

    #[test]
    fn group_flush_crash_loses_the_whole_batch() {
        let d = dir("groupflush");
        let path = d.join("ledger.wal");
        wal_append(&path, 0, "admit\tacme", None).unwrap();
        let before = std::fs::read(&path).unwrap();
        let plan = FailPlan::new(CrashPoint::GroupCommitFlush);
        let batch = vec!["spend\tacme\t1".to_string(), "spend\tbolt\t2".to_string()];
        let err = wal_append_batch(&path, 1, &batch, Some(&plan)).unwrap_err();
        assert!(FailPlan::is_crash(&err));
        // Not a single byte of the batch landed: the log is exactly the
        // pre-crash log (trails memory by one batch, never a torn one).
        assert_eq!(std::fs::read(&path).unwrap(), before);
        let _ = std::fs::remove_dir_all(&d);
    }

    #[test]
    fn torn_batch_keeps_an_intact_prefix() {
        let d = dir("tornbatch");
        let path = d.join("ledger.wal");
        let first = wal_record_line(0, "spend\tacme\t1");
        let plan = FailPlan::new(CrashPoint::WalTornAppend).torn_keep(first.len() + 5);
        let batch = vec!["spend\tacme\t1".to_string(), "spend\tbolt\t2".to_string()];
        let err = wal_append_batch(&path, 0, &batch, Some(&plan)).unwrap_err();
        assert!(FailPlan::is_crash(&err));
        let replay = wal_replay(&path).unwrap();
        assert!(replay.dropped_tail);
        assert_eq!(replay.records, vec![(0, "spend\tacme\t1".to_string())]);
        let _ = std::fs::remove_dir_all(&d);
    }

    #[test]
    fn seal_crash_leaves_the_tail_active() {
        let d = dir("seal");
        let tail = d.join("ledger.wal");
        let sealed = d.join("ledger.wal.0000000000000000.seg");
        wal_append(&tail, 0, "a", None).unwrap();
        let plan = FailPlan::new(CrashPoint::WalSegmentSeal);
        let err = wal_seal_segment(&tail, &sealed, Some(&plan)).unwrap_err();
        assert!(FailPlan::is_crash(&err));
        assert!(tail.exists() && !sealed.exists());
        // Without the plan the seal commits: same bytes, new name.
        wal_seal_segment(&tail, &sealed, None).unwrap();
        assert!(!tail.exists() && sealed.exists());
        assert_eq!(wal_replay(&sealed).unwrap().records.len(), 1);
        let _ = std::fs::remove_dir_all(&d);
    }

    #[test]
    fn delta_append_tears_like_a_wal_record() {
        let d = dir("delta");
        let path = d.join("state.delta");
        delta_append(&path, 0, "I\tctx-one", None).unwrap();
        let plan = FailPlan::new(CrashPoint::DeltaTornAppend).torn_keep(4);
        let err = delta_append(&path, 1, "E\tctx-one", Some(&plan)).unwrap_err();
        assert!(FailPlan::is_crash(&err));
        let replay = wal_replay(&path).unwrap();
        assert!(replay.dropped_tail);
        assert_eq!(replay.records, vec![(0, "I\tctx-one".to_string())]);
        let _ = std::fs::remove_dir_all(&d);
    }

    #[test]
    fn fail_plan_skips_then_fires_once() {
        let plan = FailPlan::nth(CrashPoint::WalBeforeAppend, 2);
        assert!(plan.check(CrashPoint::WalBeforeAppend).is_ok());
        assert!(plan.check(CrashPoint::SnapshotBeforeWrite).is_ok());
        assert!(plan.check(CrashPoint::WalBeforeAppend).is_ok());
        assert!(plan.check(CrashPoint::WalBeforeAppend).is_err());
        assert!(plan.tripped());
        // One-shot: recovery code after the crash runs unimpeded.
        assert!(plan.check(CrashPoint::WalBeforeAppend).is_ok());
    }
}
