//! Deterministic text embeddings.
//!
//! A feature-hashing embedder: lowercase word unigrams and bigrams are
//! hashed into a fixed-dimension vector with signed contributions, then
//! L2-normalized. Texts sharing vocabulary land close in cosine space,
//! which is all the Context-description retrieval and vector indexes need.

use crate::noise;

/// A deterministic feature-hashing embedder.
#[derive(Debug, Clone)]
pub struct Embedder {
    dims: usize,
}

impl Default for Embedder {
    fn default() -> Self {
        Embedder { dims: 128 }
    }
}

impl Embedder {
    /// Creates an embedder with `dims` dimensions (minimum 8).
    pub fn new(dims: usize) -> Self {
        Embedder { dims: dims.max(8) }
    }

    /// The embedding dimensionality.
    pub fn dims(&self) -> usize {
        self.dims
    }

    /// Embeds text into an L2-normalized vector. Empty text embeds to the
    /// zero vector.
    pub fn embed(&self, text: &str) -> Vec<f32> {
        let mut v = vec![0f32; self.dims];
        let words: Vec<String> = text
            .split(|c: char| !c.is_alphanumeric())
            .filter(|w| !w.is_empty())
            .map(|w| w.to_ascii_lowercase())
            .collect();
        for w in &words {
            self.bump(&mut v, w, 1.0);
        }
        for pair in words.windows(2) {
            self.bump(&mut v, &format!("{} {}", pair[0], pair[1]), 0.5);
        }
        normalize(&mut v);
        v
    }

    fn bump(&self, v: &mut [f32], feature: &str, weight: f32) {
        let h = noise::hash_str(feature);
        let idx = (h % self.dims as u64) as usize;
        let sign = if (h >> 32) & 1 == 0 { 1.0 } else { -1.0 };
        v[idx] += sign * weight;
    }
}

fn normalize(v: &mut [f32]) {
    let norm: f32 = v.iter().map(|x| x * x).sum::<f32>().sqrt();
    if norm > 0.0 {
        for x in v.iter_mut() {
            *x /= norm;
        }
    }
}

/// Cosine similarity of two vectors (0 when either is zero or lengths
/// differ).
pub fn cosine(a: &[f32], b: &[f32]) -> f32 {
    if a.len() != b.len() || a.is_empty() {
        return 0.0;
    }
    let dot: f32 = a.iter().zip(b).map(|(x, y)| x * y).sum();
    let na: f32 = a.iter().map(|x| x * x).sum::<f32>().sqrt();
    let nb: f32 = b.iter().map(|x| x * x).sum::<f32>().sqrt();
    if na == 0.0 || nb == 0.0 {
        0.0
    } else {
        dot / (na * nb)
    }
}

/// Squared Euclidean distance (used by the IVF trainer).
pub fn l2_sq(a: &[f32], b: &[f32]) -> f32 {
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn embeddings_are_deterministic_and_normalized() {
        let e = Embedder::default();
        let a = e.embed("identity theft reports in 2024");
        let b = e.embed("identity theft reports in 2024");
        assert_eq!(a, b);
        let norm: f32 = a.iter().map(|x| x * x).sum::<f32>().sqrt();
        assert!((norm - 1.0).abs() < 1e-5);
    }

    #[test]
    fn similar_texts_are_closer_than_dissimilar() {
        let e = Embedder::default();
        let q = e.embed("number of identity theft reports in 2024");
        let close = e.embed("identity theft reports by year, 2001 to 2024");
        let far = e.embed("quarterly natural gas pipeline maintenance schedule");
        assert!(cosine(&q, &close) > cosine(&q, &far));
        assert!(cosine(&q, &close) > 0.2);
    }

    #[test]
    fn empty_text_is_zero_vector() {
        let e = Embedder::default();
        let z = e.embed("");
        assert!(z.iter().all(|x| *x == 0.0));
        assert_eq!(cosine(&z, &z), 0.0);
    }

    #[test]
    fn cosine_of_identical_is_one() {
        let e = Embedder::default();
        let v = e.embed("hello world");
        assert!((cosine(&v, &v) - 1.0).abs() < 1e-5);
    }

    #[test]
    fn cosine_handles_mismatched_lengths() {
        assert_eq!(cosine(&[1.0], &[1.0, 0.0]), 0.0);
        assert_eq!(cosine(&[], &[]), 0.0);
    }

    #[test]
    fn l2_sq_is_zero_iff_equal() {
        let e = Embedder::default();
        let a = e.embed("alpha beta");
        let b = e.embed("gamma delta epsilon");
        assert_eq!(l2_sq(&a, &a), 0.0);
        assert!(l2_sq(&a, &b) > 0.0);
    }

    #[test]
    fn dims_respects_minimum() {
        assert_eq!(Embedder::new(2).dims(), 8);
        assert_eq!(Embedder::new(64).dims(), 64);
    }
}
