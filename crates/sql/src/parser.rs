//! SQL parser (recursive descent over [`crate::lexer`] tokens).

use crate::ast::*;
use crate::lexer::{lex, SqlTok};
use crate::SqlError;
use aida_data::Value;

/// Parses one SELECT statement.
pub fn parse(sql: &str) -> Result<Query, SqlError> {
    let tokens = lex(sql)?;
    let mut p = Parser { tokens, pos: 0 };
    let query = p.query()?;
    p.expect_eof()?;
    Ok(query)
}

struct Parser {
    tokens: Vec<SqlTok>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> &SqlTok {
        &self.tokens[self.pos]
    }

    fn advance(&mut self) -> SqlTok {
        let tok = self.tokens[self.pos].clone();
        if self.pos < self.tokens.len() - 1 {
            self.pos += 1;
        }
        tok
    }

    fn err(&self, message: impl Into<String>) -> SqlError {
        SqlError::Parse(message.into())
    }

    /// Case-insensitive keyword check (does not consume).
    fn at_keyword(&self, kw: &str) -> bool {
        matches!(self.peek(), SqlTok::Ident(w) if w.eq_ignore_ascii_case(kw))
    }

    /// Consumes a keyword if present.
    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.at_keyword(kw) {
            self.advance();
            true
        } else {
            false
        }
    }

    fn expect_keyword(&mut self, kw: &str) -> Result<(), SqlError> {
        if self.eat_keyword(kw) {
            Ok(())
        } else {
            Err(self.err(format!("expected {kw}, found {:?}", self.peek())))
        }
    }

    fn expect_tok(&mut self, tok: SqlTok, what: &str) -> Result<(), SqlError> {
        if self.peek() == &tok {
            self.advance();
            Ok(())
        } else {
            Err(self.err(format!("expected {what}, found {:?}", self.peek())))
        }
    }

    fn expect_eof(&mut self) -> Result<(), SqlError> {
        if matches!(self.peek(), SqlTok::Eof) {
            Ok(())
        } else {
            Err(self.err(format!("unexpected trailing input: {:?}", self.peek())))
        }
    }

    fn ident(&mut self, what: &str) -> Result<String, SqlError> {
        match self.advance() {
            SqlTok::Ident(name) => Ok(name),
            other => Err(self.err(format!("expected {what}, found {other:?}"))),
        }
    }

    fn query(&mut self) -> Result<Query, SqlError> {
        self.expect_keyword("SELECT")?;
        let distinct = self.eat_keyword("DISTINCT");
        let mut items = Vec::new();
        loop {
            if matches!(self.peek(), SqlTok::Star) {
                self.advance();
                items.push(SelectItem::Wildcard);
            } else {
                let expr = self.expr()?;
                let alias = if self.eat_keyword("AS") {
                    Some(self.ident("alias")?)
                } else if let SqlTok::Ident(w) = self.peek() {
                    // Bare alias, unless it's a clause keyword.
                    let upper = w.to_ascii_uppercase();
                    if matches!(
                        upper.as_str(),
                        "FROM" | "WHERE" | "GROUP" | "HAVING" | "ORDER" | "LIMIT"
                    ) {
                        None
                    } else {
                        Some(self.ident("alias")?)
                    }
                } else {
                    None
                };
                items.push(SelectItem::Expr(expr, alias));
            }
            if !matches!(self.peek(), SqlTok::Comma) {
                break;
            }
            self.advance();
        }
        self.expect_keyword("FROM")?;
        let table = self.ident("table name")?;
        let alias = self.bare_alias();
        // Outer/cross joins are unsupported: reject them explicitly rather
        // than letting the join word parse as a table alias.
        for unsupported in ["LEFT", "RIGHT", "FULL", "OUTER", "CROSS"] {
            if self.at_keyword(unsupported) {
                return Err(self.err(format!(
                    "{unsupported} JOIN is not supported (only [INNER] JOIN)"
                )));
            }
        }
        let join = if self.eat_keyword("JOIN")
            || (self.eat_keyword("INNER") && self.expect_keyword("JOIN").map(|_| true)?)
        {
            let join_table = self.ident("join table name")?;
            let join_alias = self.bare_alias();
            self.expect_keyword("ON")?;
            let left_key = self.column_ref()?;
            self.expect_tok(SqlTok::Eq, "'=' in join condition")?;
            let right_key = self.column_ref()?;
            Some(JoinClause {
                table: join_table,
                alias: join_alias,
                left_key,
                right_key,
            })
        } else {
            None
        };
        let filter = if self.eat_keyword("WHERE") {
            Some(self.expr()?)
        } else {
            None
        };
        let mut group_by = Vec::new();
        if self.eat_keyword("GROUP") {
            self.expect_keyword("BY")?;
            loop {
                group_by.push(self.expr()?);
                if !matches!(self.peek(), SqlTok::Comma) {
                    break;
                }
                self.advance();
            }
        }
        let having = if self.eat_keyword("HAVING") {
            Some(self.expr()?)
        } else {
            None
        };
        let mut order_by = Vec::new();
        if self.eat_keyword("ORDER") {
            self.expect_keyword("BY")?;
            loop {
                let expr = self.expr()?;
                let desc = if self.eat_keyword("DESC") {
                    true
                } else {
                    self.eat_keyword("ASC");
                    false
                };
                order_by.push(OrderKey { expr, desc });
                if !matches!(self.peek(), SqlTok::Comma) {
                    break;
                }
                self.advance();
            }
        }
        let limit = if self.eat_keyword("LIMIT") {
            match self.advance() {
                SqlTok::Int(n) if n >= 0 => Some(n as usize),
                other => return Err(self.err(format!("bad LIMIT value {other:?}"))),
            }
        } else {
            None
        };
        Ok(Query {
            distinct,
            items,
            table,
            alias,
            join,
            filter,
            group_by,
            having,
            order_by,
            limit,
        })
    }

    /// A bare (non-keyword) alias after a table name.
    fn bare_alias(&mut self) -> Option<String> {
        if let SqlTok::Ident(w) = self.peek() {
            let upper = w.to_ascii_uppercase();
            if !matches!(
                upper.as_str(),
                "WHERE"
                    | "GROUP"
                    | "HAVING"
                    | "ORDER"
                    | "LIMIT"
                    | "JOIN"
                    | "INNER"
                    | "ON"
                    | "LEFT"
                    | "RIGHT"
                    | "FULL"
                    | "OUTER"
                    | "CROSS"
            ) {
                let name = w.clone();
                self.advance();
                return Some(name);
            }
        }
        None
    }

    /// A possibly-qualified column reference (`col` or `alias.col`).
    fn column_ref(&mut self) -> Result<String, SqlError> {
        let mut name = self.ident("column name")?;
        if matches!(self.peek(), SqlTok::Dot) {
            self.advance();
            let col = self.ident("column name")?;
            name = format!("{name}.{col}");
        }
        Ok(name)
    }

    fn expr(&mut self) -> Result<Expr, SqlError> {
        self.or_expr()
    }

    fn or_expr(&mut self) -> Result<Expr, SqlError> {
        let mut left = self.and_expr()?;
        while self.eat_keyword("OR") {
            let right = self.and_expr()?;
            left = Expr::Binary(SqlBinOp::Or, Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn and_expr(&mut self) -> Result<Expr, SqlError> {
        let mut left = self.not_expr()?;
        while self.eat_keyword("AND") {
            let right = self.not_expr()?;
            left = Expr::Binary(SqlBinOp::And, Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn not_expr(&mut self) -> Result<Expr, SqlError> {
        if self.eat_keyword("NOT") {
            let inner = self.not_expr()?;
            return Ok(Expr::Not(Box::new(inner)));
        }
        self.comparison()
    }

    fn comparison(&mut self) -> Result<Expr, SqlError> {
        let left = self.additive()?;
        // IS [NOT] NULL
        if self.eat_keyword("IS") {
            let negated = self.eat_keyword("NOT");
            self.expect_keyword("NULL")?;
            return Ok(Expr::IsNull(Box::new(left), negated));
        }
        // [NOT] IN / [NOT] LIKE
        let negated = self.eat_keyword("NOT");
        if self.eat_keyword("IN") {
            self.expect_tok(SqlTok::LParen, "'('")?;
            let mut items = Vec::new();
            loop {
                items.push(self.expr()?);
                if !matches!(self.peek(), SqlTok::Comma) {
                    break;
                }
                self.advance();
            }
            self.expect_tok(SqlTok::RParen, "')'")?;
            return Ok(Expr::InList(Box::new(left), items, negated));
        }
        if self.eat_keyword("LIKE") {
            let pattern = self.additive()?;
            let like = Expr::Binary(SqlBinOp::Like, Box::new(left), Box::new(pattern));
            return Ok(if negated {
                Expr::Not(Box::new(like))
            } else {
                like
            });
        }
        if negated {
            return Err(self.err("expected IN or LIKE after NOT"));
        }
        let op = match self.peek() {
            SqlTok::Eq => Some(SqlBinOp::Eq),
            SqlTok::NotEq => Some(SqlBinOp::NotEq),
            SqlTok::Lt => Some(SqlBinOp::Lt),
            SqlTok::LtEq => Some(SqlBinOp::LtEq),
            SqlTok::Gt => Some(SqlBinOp::Gt),
            SqlTok::GtEq => Some(SqlBinOp::GtEq),
            _ => None,
        };
        if let Some(op) = op {
            self.advance();
            let right = self.additive()?;
            return Ok(Expr::Binary(op, Box::new(left), Box::new(right)));
        }
        Ok(left)
    }

    fn additive(&mut self) -> Result<Expr, SqlError> {
        let mut left = self.multiplicative()?;
        loop {
            let op = match self.peek() {
                SqlTok::Plus => SqlBinOp::Add,
                SqlTok::Minus => SqlBinOp::Sub,
                _ => break,
            };
            self.advance();
            let right = self.multiplicative()?;
            left = Expr::Binary(op, Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn multiplicative(&mut self) -> Result<Expr, SqlError> {
        let mut left = self.unary()?;
        loop {
            let op = match self.peek() {
                SqlTok::Star => SqlBinOp::Mul,
                SqlTok::Slash => SqlBinOp::Div,
                SqlTok::Percent => SqlBinOp::Mod,
                _ => break,
            };
            self.advance();
            let right = self.unary()?;
            left = Expr::Binary(op, Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn unary(&mut self) -> Result<Expr, SqlError> {
        if matches!(self.peek(), SqlTok::Minus) {
            self.advance();
            let inner = self.unary()?;
            return Ok(Expr::Neg(Box::new(inner)));
        }
        self.atom()
    }

    fn atom(&mut self) -> Result<Expr, SqlError> {
        match self.advance() {
            SqlTok::Int(v) => Ok(Expr::Literal(Value::Int(v))),
            SqlTok::Float(v) => Ok(Expr::Literal(Value::Float(v))),
            SqlTok::Str(s) => Ok(Expr::Literal(Value::Str(s))),
            SqlTok::LParen => {
                let inner = self.expr()?;
                self.expect_tok(SqlTok::RParen, "')'")?;
                Ok(inner)
            }
            SqlTok::Ident(word) => {
                let upper = word.to_ascii_uppercase();
                match upper.as_str() {
                    "NULL" => return Ok(Expr::Literal(Value::Null)),
                    "TRUE" => return Ok(Expr::Literal(Value::Bool(true))),
                    "FALSE" => return Ok(Expr::Literal(Value::Bool(false))),
                    _ => {}
                }
                if matches!(self.peek(), SqlTok::Dot) {
                    // Qualified column: alias.col
                    self.advance();
                    let col = self.ident("column name")?;
                    return Ok(Expr::Column(format!("{word}.{col}")));
                }
                if matches!(self.peek(), SqlTok::LParen) {
                    self.advance();
                    if let Some(agg) = AggFunc::parse(&word) {
                        // COUNT(*) or AGG(expr)
                        if matches!(self.peek(), SqlTok::Star) {
                            self.advance();
                            self.expect_tok(SqlTok::RParen, "')'")?;
                            if agg != AggFunc::Count {
                                return Err(self.err(format!("{}(*) is not valid", agg.name())));
                            }
                            return Ok(Expr::Agg(AggFunc::Count, None));
                        }
                        let arg = self.expr()?;
                        self.expect_tok(SqlTok::RParen, "')'")?;
                        return Ok(Expr::Agg(agg, Some(Box::new(arg))));
                    }
                    // Scalar function.
                    let mut args = Vec::new();
                    if !matches!(self.peek(), SqlTok::RParen) {
                        loop {
                            args.push(self.expr()?);
                            if !matches!(self.peek(), SqlTok::Comma) {
                                break;
                            }
                            self.advance();
                        }
                    }
                    self.expect_tok(SqlTok::RParen, "')'")?;
                    return Ok(Expr::Func(upper, args));
                }
                Ok(Expr::Column(word))
            }
            other => Err(self.err(format!("unexpected token {other:?}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_full_query() {
        let q = parse(
            "SELECT state, SUM(thefts) AS total FROM reports \
             WHERE year = 2024 AND state != 'PR' \
             GROUP BY state HAVING SUM(thefts) > 100 \
             ORDER BY total DESC LIMIT 5",
        )
        .unwrap();
        assert_eq!(q.table, "reports");
        assert_eq!(q.items.len(), 2);
        assert!(q.filter.is_some());
        assert_eq!(q.group_by.len(), 1);
        assert!(q.having.is_some());
        assert_eq!(q.order_by.len(), 1);
        assert!(q.order_by[0].desc);
        assert_eq!(q.limit, Some(5));
    }

    #[test]
    fn parses_wildcard_and_count_star() {
        let q = parse("SELECT *, COUNT(*) FROM t").unwrap();
        assert_eq!(q.items[0], SelectItem::Wildcard);
        assert!(matches!(
            q.items[1],
            SelectItem::Expr(Expr::Agg(AggFunc::Count, None), None)
        ));
    }

    #[test]
    fn keywords_are_case_insensitive() {
        assert!(parse("select a from t where a > 1 order by a limit 1").is_ok());
    }

    #[test]
    fn parses_like_in_isnull() {
        let q =
            parse("SELECT a FROM t WHERE name LIKE '%theft%' AND a IN (1, 2) AND b IS NOT NULL")
                .unwrap();
        let mut cols = Vec::new();
        q.filter.unwrap().columns(&mut cols);
        assert!(cols.contains(&"name".to_string()));
        assert!(cols.contains(&"b".to_string()));
    }

    #[test]
    fn parses_not_variants() {
        assert!(parse("SELECT a FROM t WHERE a NOT IN (1)").is_ok());
        assert!(parse("SELECT a FROM t WHERE a NOT LIKE 'x%'").is_ok());
        assert!(parse("SELECT a FROM t WHERE NOT a = 1").is_ok());
        assert!(parse("SELECT a FROM t WHERE a NOT b").is_err());
    }

    #[test]
    fn arithmetic_precedence() {
        let q = parse("SELECT a + b * 2 FROM t").unwrap();
        match &q.items[0] {
            SelectItem::Expr(Expr::Binary(SqlBinOp::Add, _, rhs), _) => {
                assert!(matches!(**rhs, Expr::Binary(SqlBinOp::Mul, _, _)));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn bare_alias_without_as() {
        let q = parse("SELECT a total FROM t").unwrap();
        match &q.items[0] {
            SelectItem::Expr(_, Some(alias)) => assert_eq!(alias, "total"),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("SELECT FROM t").is_err());
        assert!(parse("SELECT a").is_err());
        assert!(parse("SELECT a FROM t extra garbage ,").is_err());
        assert!(parse("SUM(*) wrong").is_err());
        assert!(parse("SELECT AVG(*) FROM t").is_err());
    }

    #[test]
    fn scalar_functions_parse() {
        let q = parse("SELECT ROUND(a / b, 2), LOWER(name) FROM t").unwrap();
        assert!(
            matches!(&q.items[0], SelectItem::Expr(Expr::Func(f, args), _)
            if f == "ROUND" && args.len() == 2)
        );
    }

    #[test]
    fn null_true_false_literals() {
        let q = parse("SELECT NULL, TRUE, FALSE FROM t").unwrap();
        assert_eq!(q.items.len(), 3);
        assert!(matches!(
            &q.items[0],
            SelectItem::Expr(Expr::Literal(Value::Null), _)
        ));
    }
}
