//! `aida-sql`: a small SQL engine over in-memory tables.
//!
//! The paper argues the runtime should "leverage structured information,
//! possibly generated from unstructured data, which it can then query using
//! SQL" — materialized tables produced by `compute`/`search` executions are
//! re-queried cheaply instead of re-running LLM extraction. This crate is
//! that structured side: a catalog of [`aida_data::Table`]s and a SELECT
//! engine supporting projections, expressions, `WHERE`, `GROUP BY`/`HAVING`
//! with the classic aggregates, `ORDER BY`, and `LIMIT`.
//!
//! # Example
//!
//! ```
//! use aida_sql::{Catalog, execute};
//! use aida_data::{Schema, Table, Value};
//!
//! let mut reports = Table::new(Schema::of(["year", "thefts"]));
//! reports.push_row(vec![Value::Int(2001), Value::Int(86_250)]).unwrap();
//! reports.push_row(vec![Value::Int(2024), Value::Int(1_135_291)]).unwrap();
//!
//! let mut catalog = Catalog::new();
//! catalog.register("reports", reports);
//!
//! let out = execute("SELECT thefts FROM reports WHERE year = 2024", &catalog).unwrap();
//! assert_eq!(out.cell(0, "thefts"), Some(&Value::Int(1_135_291)));
//! ```

pub mod ast;
pub mod catalog;
pub mod exec;
pub mod lexer;
pub mod parser;

pub use ast::{Expr, Query, SelectItem};
pub use catalog::Catalog;
pub use exec::{execute_query, explain};

use aida_data::Table;
use std::fmt;

/// SQL errors.
#[derive(Debug, Clone, PartialEq)]
pub enum SqlError {
    /// Tokenizer failure.
    Lex(String),
    /// Parser failure.
    Parse(String),
    /// Unknown table.
    UnknownTable(String),
    /// Unknown column.
    UnknownColumn(String),
    /// Type/aggregation misuse.
    Eval(String),
}

impl fmt::Display for SqlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SqlError::Lex(m) => write!(f, "sql lex error: {m}"),
            SqlError::Parse(m) => write!(f, "sql parse error: {m}"),
            SqlError::UnknownTable(t) => write!(f, "unknown table: {t}"),
            SqlError::UnknownColumn(c) => write!(f, "unknown column: {c}"),
            SqlError::Eval(m) => write!(f, "sql evaluation error: {m}"),
        }
    }
}

impl std::error::Error for SqlError {}

/// Parses and executes a single SELECT statement against a catalog.
pub fn execute(sql: &str, catalog: &Catalog) -> Result<Table, SqlError> {
    let query = parser::parse(sql)?;
    exec::execute_query(&query, catalog)
}

/// The result of a general SQL statement.
#[derive(Debug, Clone, PartialEq)]
pub enum StatementResult {
    /// Rows from a SELECT or EXPLAIN.
    Rows(Table),
    /// A table was created (name, row count).
    Created(String, usize),
    /// A table was dropped.
    Dropped(String),
}

impl StatementResult {
    /// The rows, when the statement produced any.
    pub fn rows(&self) -> Option<&Table> {
        match self {
            StatementResult::Rows(t) => Some(t),
            _ => None,
        }
    }
}

/// Parses and executes one statement, mutating the catalog when needed.
///
/// Supported statements:
/// * `SELECT …` — returns rows;
/// * `CREATE TABLE <name> AS SELECT …` — materializes the query;
/// * `DROP TABLE <name>` — removes a table;
/// * `EXPLAIN SELECT …` — returns a one-column description of the plan.
pub fn execute_statement(sql: &str, catalog: &mut Catalog) -> Result<StatementResult, SqlError> {
    let trimmed = sql.trim();
    let upper = trimmed.to_ascii_uppercase();
    if let Some(rest) = upper.strip_prefix("CREATE TABLE ") {
        let as_pos = rest
            .find(" AS ")
            .ok_or_else(|| SqlError::Parse("CREATE TABLE requires AS SELECT".into()))?;
        let name = trimmed["CREATE TABLE ".len().."CREATE TABLE ".len() + as_pos]
            .trim()
            .to_string();
        if name.is_empty() || !name.chars().all(|c| c.is_alphanumeric() || c == '_') {
            return Err(SqlError::Parse(format!("invalid table name '{name}'")));
        }
        let select_sql = &trimmed["CREATE TABLE ".len() + as_pos + " AS ".len()..];
        let table = execute(select_sql, catalog)?;
        let rows = table.len();
        catalog.register(&name, table);
        return Ok(StatementResult::Created(name, rows));
    }
    if let Some(rest) = upper.strip_prefix("DROP TABLE ") {
        let name = trimmed["DROP TABLE ".len().."DROP TABLE ".len() + rest.len()]
            .trim()
            .trim_end_matches(';')
            .to_string();
        return match catalog.drop_table(&name) {
            Some(_) => Ok(StatementResult::Dropped(name)),
            None => Err(SqlError::UnknownTable(name)),
        };
    }
    if upper.starts_with("EXPLAIN ") {
        let select_sql = &trimmed["EXPLAIN ".len()..];
        let query = parser::parse(select_sql)?;
        let mut table = Table::new(aida_data::Schema::of(["plan"]));
        for line in exec::explain(&query) {
            table
                .push_row(vec![aida_data::Value::Str(line)])
                .map_err(|e| SqlError::Eval(e.to_string()))?;
        }
        return Ok(StatementResult::Rows(table));
    }
    execute(trimmed, catalog).map(StatementResult::Rows)
}

#[cfg(test)]
mod statement_tests {
    use super::*;
    use aida_data::{Schema, Value};

    fn catalog() -> Catalog {
        let mut t = Table::new(Schema::of(["year", "thefts"]));
        t.push_row(vec![Value::Int(2001), Value::Int(86_250)])
            .unwrap();
        t.push_row(vec![Value::Int(2024), Value::Int(1_135_291)])
            .unwrap();
        let mut cat = Catalog::new();
        cat.register("reports", t);
        cat
    }

    #[test]
    fn create_table_as_select_materializes() {
        let mut cat = catalog();
        let result = execute_statement(
            "CREATE TABLE recent AS SELECT year, thefts FROM reports WHERE year > 2010",
            &mut cat,
        )
        .unwrap();
        assert_eq!(result, StatementResult::Created("recent".into(), 1));
        let rows = execute("SELECT thefts FROM recent", &cat).unwrap();
        assert_eq!(rows.cell(0, "thefts"), Some(&Value::Int(1_135_291)));
    }

    #[test]
    fn create_rejects_bad_names_and_missing_as() {
        let mut cat = catalog();
        assert!(
            execute_statement("CREATE TABLE bad name AS SELECT 1 FROM reports", &mut cat).is_err()
        );
        assert!(execute_statement("CREATE TABLE x SELECT 1 FROM reports", &mut cat).is_err());
    }

    #[test]
    fn drop_table_removes_and_errors_on_missing() {
        let mut cat = catalog();
        assert_eq!(
            execute_statement("DROP TABLE reports", &mut cat).unwrap(),
            StatementResult::Dropped("reports".into())
        );
        assert!(matches!(
            execute_statement("DROP TABLE reports", &mut cat),
            Err(SqlError::UnknownTable(_))
        ));
    }

    #[test]
    fn explain_describes_the_pipeline() {
        let mut cat = catalog();
        let result = execute_statement(
            "EXPLAIN SELECT year, SUM(thefts) AS t FROM reports WHERE year > 2000 \
             GROUP BY year ORDER BY t DESC LIMIT 3",
            &mut cat,
        )
        .unwrap();
        let rows = result.rows().unwrap();
        let text: Vec<String> = rows
            .rows()
            .iter()
            .map(|r| r[0].as_str().unwrap().to_string())
            .collect();
        assert!(text[0].starts_with("Scan: reports"));
        assert!(text.iter().any(|l| l.starts_with("Filter")));
        assert!(text.iter().any(|l| l.starts_with("Aggregate")));
        assert!(text.iter().any(|l| l.starts_with("Sort")));
        assert!(text.iter().any(|l| l.starts_with("Limit: 3")));
    }

    #[test]
    fn plain_select_passes_through() {
        let mut cat = catalog();
        let result = execute_statement("SELECT COUNT(*) AS n FROM reports", &mut cat).unwrap();
        assert_eq!(result.rows().unwrap().cell(0, "n"), Some(&Value::Int(2)));
    }
}
