//! SELECT execution.
//!
//! Pipeline: scan → WHERE → (GROUP BY + aggregate | plain project) →
//! HAVING → ORDER BY → LIMIT. Aggregation materializes groups in first-seen
//! order (deterministic output without ORDER BY).

use crate::ast::*;
use crate::catalog::Catalog;
use crate::SqlError;
use aida_data::{Schema, Table, Value};
use std::collections::HashMap;

/// Executes a parsed query against a catalog.
pub fn execute_query(query: &Query, catalog: &Catalog) -> Result<Table, SqlError> {
    let (schema, input_rows) = build_input(query, catalog)?;

    // WHERE
    let mut rows: Vec<Vec<Value>> = Vec::new();
    for row in input_rows {
        let keep = match &query.filter {
            Some(pred) => eval(pred, &schema, &row)?.truthy(),
            None => true,
        };
        if keep {
            rows.push(row);
        }
    }
    let row_refs: Vec<&Vec<Value>> = rows.iter().collect();

    let is_aggregate = !query.group_by.is_empty()
        || query.items.iter().any(|item| match item {
            SelectItem::Expr(e, _) => e.has_aggregate(),
            SelectItem::Wildcard => false,
        });

    let mut out = if is_aggregate {
        execute_aggregate(query, &schema, &row_refs)?
    } else {
        execute_plain(query, &schema, &row_refs)?
    };

    if query.distinct {
        out = dedupe(out);
    }
    // ORDER BY runs over the *output* table; keys may reference output
    // columns (aliases) or, for plain queries, input columns already
    // projected through.
    if !query.order_by.is_empty() {
        out = apply_order(&out, &query.order_by)?;
    }
    if let Some(limit) = query.limit {
        out = truncate(out, limit);
    }
    Ok(out)
}

/// Renders a human-readable description of a query's pipeline, one stage
/// per line (the `EXPLAIN` output).
pub fn explain(query: &Query) -> Vec<String> {
    let mut out = Vec::new();
    match &query.join {
        Some(join) => out.push(format!(
            "HashJoin: {} ⋈ {} ON {} = {}",
            query.table, join.table, join.left_key, join.right_key
        )),
        None => out.push(format!("Scan: {}", query.table)),
    }
    if let Some(filter) = &query.filter {
        let mut cols = Vec::new();
        filter.columns(&mut cols);
        out.push(format!("Filter: over columns {cols:?}"));
    }
    if !query.group_by.is_empty() {
        out.push(format!("Aggregate: {} group key(s)", query.group_by.len()));
    } else if query
        .items
        .iter()
        .any(|i| matches!(i, SelectItem::Expr(e, _) if e.has_aggregate()))
    {
        out.push("Aggregate: global".into());
    }
    if query.having.is_some() {
        out.push("Having".into());
    }
    out.push(format!("Project: {} item(s)", query.items.len()));
    if query.distinct {
        out.push("Distinct".into());
    }
    if !query.order_by.is_empty() {
        out.push(format!("Sort: {} key(s)", query.order_by.len()));
    }
    if let Some(n) = query.limit {
        out.push(format!("Limit: {n}"));
    }
    out
}

/// Builds the working input relation: the FROM table, optionally
/// hash-joined with the JOIN table. Join output columns are qualified as
/// `<alias>.<column>`; bare references stay resolvable via
/// [`resolve_col`]'s suffix rule when unambiguous.
fn build_input(query: &Query, catalog: &Catalog) -> Result<(Schema, Vec<Vec<Value>>), SqlError> {
    let left = catalog.get(&query.table)?;
    let Some(join) = &query.join else {
        return Ok((left.schema().clone(), left.rows().to_vec()));
    };
    let right = catalog.get(&join.table)?;
    let left_alias = query.alias.clone().unwrap_or_else(|| query.table.clone());
    let right_alias = join.alias.clone().unwrap_or_else(|| join.table.clone());
    if left_alias == right_alias {
        return Err(SqlError::Eval(format!(
            "both join sides are named '{left_alias}'; alias one of them"
        )));
    }
    let qualify = |alias: &str, schema: &Schema| -> Vec<String> {
        schema
            .names()
            .iter()
            .map(|n| format!("{alias}.{n}"))
            .collect()
    };
    let mut names = qualify(&left_alias, left.schema());
    names.extend(qualify(&right_alias, right.schema()));
    let schema = Schema::of(names);

    // Resolve the key columns against each side.
    let key_idx = |key: &str, alias: &str, side: &Table| -> Result<usize, SqlError> {
        let bare = key.strip_prefix(&format!("{alias}.")).unwrap_or(key);
        side.schema()
            .index_of(bare)
            .ok_or_else(|| SqlError::UnknownColumn(key.to_string()))
    };
    // Accept the keys in either order (ON a.x = b.y or ON b.y = a.x).
    let (lk, rk) = match (
        key_idx(&join.left_key, &left_alias, left),
        key_idx(&join.right_key, &right_alias, right),
    ) {
        (Ok(l), Ok(r)) => (l, r),
        _ => (
            key_idx(&join.right_key, &left_alias, left)?,
            key_idx(&join.left_key, &right_alias, right)?,
        ),
    };

    // Hash join (inner): null keys never match.
    let mut index: HashMap<String, Vec<&Vec<Value>>> = HashMap::new();
    for row in right.rows() {
        if let Some(key) = join_key(&row[rk]) {
            index.entry(key).or_default().push(row);
        }
    }
    let mut rows = Vec::new();
    for lrow in left.rows() {
        let Some(key) = join_key(&lrow[lk]) else {
            continue;
        };
        if let Some(matches) = index.get(&key) {
            for rrow in matches {
                let mut combined = lrow.clone();
                combined.extend(rrow.iter().cloned());
                rows.push(combined);
            }
        }
    }
    Ok((schema, rows))
}

/// Canonical hash key for a join value (`Int(2)` and `Float(2.0)` match).
fn join_key(value: &Value) -> Option<String> {
    match value {
        Value::Null => None,
        Value::Int(i) => Some(format!("n:{}", *i as f64)),
        Value::Float(f) => Some(format!("n:{f}")),
        other => Some(format!("s:{other}")),
    }
}

/// Drops duplicate rows, keeping first occurrences.
fn dedupe(table: Table) -> Table {
    let schema = table.schema().clone();
    let mut seen = std::collections::HashSet::new();
    let mut out = Table::new(schema);
    for row in table.rows() {
        let key: String = row
            .iter()
            .map(|v| format!("{}|{v}", v.type_name()))
            .collect::<Vec<_>>()
            .join("\u{1f}");
        if seen.insert(key) {
            out.push_row(row.clone()).expect("same schema");
        }
    }
    out
}

fn output_name(item: &SelectItem, idx: usize) -> String {
    match item {
        SelectItem::Wildcard => unreachable!("wildcard expanded before naming"),
        SelectItem::Expr(expr, alias) => match alias {
            Some(a) => a.clone(),
            None => match expr {
                Expr::Column(c) => c.clone(),
                Expr::Agg(f, _) => format!("{}_{idx}", f.name()),
                _ => format!("expr_{idx}"),
            },
        },
    }
}

fn expand_items(query: &Query, schema: &Schema) -> Vec<(String, Expr)> {
    let mut out = Vec::new();
    for (idx, item) in query.items.iter().enumerate() {
        match item {
            SelectItem::Wildcard => {
                for field in schema.fields() {
                    out.push((field.name.clone(), Expr::Column(field.name.clone())));
                }
            }
            SelectItem::Expr(expr, _) => {
                out.push((output_name(item, idx), expr.clone()));
            }
        }
    }
    out
}

fn execute_plain(query: &Query, schema: &Schema, rows: &[&Vec<Value>]) -> Result<Table, SqlError> {
    let items = expand_items(query, schema);
    let out_schema = Schema::of(items.iter().map(|(n, _)| n.clone()));
    let mut out = Table::new(out_schema);
    for row in rows {
        let mut cells = Vec::with_capacity(items.len());
        for (_, expr) in &items {
            cells.push(eval(expr, schema, row)?);
        }
        out.push_row(cells)
            .map_err(|e| SqlError::Eval(e.to_string()))?;
    }
    Ok(out)
}

fn execute_aggregate(
    query: &Query,
    schema: &Schema,
    rows: &[&Vec<Value>],
) -> Result<Table, SqlError> {
    // Group rows by the rendered group-key.
    let mut group_order: Vec<String> = Vec::new();
    let mut groups: HashMap<String, Vec<&Vec<Value>>> = HashMap::new();
    for row in rows {
        let mut key = String::new();
        for g in &query.group_by {
            key.push_str(&eval(g, schema, row)?.to_string());
            key.push('\u{1f}');
        }
        if !groups.contains_key(&key) {
            group_order.push(key.clone());
        }
        groups.entry(key).or_default().push(row);
    }
    // A global aggregate with no GROUP BY has exactly one group — even when
    // the input is empty (COUNT(*) over nothing is 0).
    if query.group_by.is_empty() && group_order.is_empty() {
        group_order.push(String::new());
        groups.insert(String::new(), Vec::new());
    }

    let items = expand_items(query, schema);
    let out_schema = Schema::of(items.iter().map(|(n, _)| n.clone()));
    let mut out = Table::new(out_schema);
    for key in &group_order {
        let members = &groups[key];
        if let Some(having) = &query.having {
            if !eval_agg(having, schema, members)?.truthy() {
                continue;
            }
        }
        let mut cells = Vec::with_capacity(items.len());
        for (_, expr) in &items {
            cells.push(eval_agg(expr, schema, members)?);
        }
        out.push_row(cells)
            .map_err(|e| SqlError::Eval(e.to_string()))?;
    }
    Ok(out)
}

fn apply_order(table: &Table, keys: &[OrderKey]) -> Result<Table, SqlError> {
    let schema = table.schema().clone();
    let mut indexed: Vec<(usize, &Vec<Value>)> = table.rows().iter().enumerate().collect();
    // Pre-compute sort keys (fallible eval outside the comparator).
    let mut sort_keys: Vec<Vec<Value>> = Vec::with_capacity(indexed.len());
    for (_, row) in &indexed {
        let mut ks = Vec::with_capacity(keys.len());
        for key in keys {
            ks.push(eval(&key.expr, &schema, row)?);
        }
        sort_keys.push(ks);
    }
    indexed.sort_by(|(ia, _), (ib, _)| {
        for (k, key) in keys.iter().enumerate() {
            let (a, b) = (&sort_keys[*ia][k], &sort_keys[*ib][k]);
            let ord = a.partial_cmp_value(b).unwrap_or(std::cmp::Ordering::Equal);
            let ord = if key.desc { ord.reverse() } else { ord };
            if ord != std::cmp::Ordering::Equal {
                return ord;
            }
        }
        ia.cmp(ib) // stable tiebreak on original position
    });
    let mut out = Table::new(schema);
    for (_, row) in indexed {
        out.push_row(row.clone())
            .map_err(|e| SqlError::Eval(e.to_string()))?;
    }
    Ok(out)
}

fn truncate(table: Table, limit: usize) -> Table {
    let schema = table.schema().clone();
    let mut out = Table::new(schema);
    for row in table.rows().iter().take(limit) {
        out.push_row(row.clone()).expect("same schema");
    }
    out
}

/// Evaluates a scalar expression against one row.
fn eval(expr: &Expr, schema: &Schema, row: &[Value]) -> Result<Value, SqlError> {
    match expr {
        Expr::Literal(v) => Ok(v.clone()),
        Expr::Column(name) => {
            let idx = resolve_col(schema, name)?;
            Ok(row[idx].clone())
        }
        Expr::Binary(op, l, r) => {
            let lv = eval(l, schema, row)?;
            // Short-circuit AND/OR with SQL-ish null handling (null is falsy).
            match op {
                SqlBinOp::And => {
                    if !lv.truthy() {
                        return Ok(Value::Bool(false));
                    }
                    return Ok(Value::Bool(eval(r, schema, row)?.truthy()));
                }
                SqlBinOp::Or => {
                    if lv.truthy() {
                        return Ok(Value::Bool(true));
                    }
                    return Ok(Value::Bool(eval(r, schema, row)?.truthy()));
                }
                _ => {}
            }
            let rv = eval(r, schema, row)?;
            binary(*op, &lv, &rv)
        }
        Expr::Not(e) => Ok(Value::Bool(!eval(e, schema, row)?.truthy())),
        Expr::Neg(e) => match eval(e, schema, row)? {
            Value::Int(i) => Ok(Value::Int(-i)),
            Value::Float(f) => Ok(Value::Float(-f)),
            other => Err(SqlError::Eval(format!(
                "cannot negate {}",
                other.type_name()
            ))),
        },
        Expr::IsNull(e, negated) => {
            let is_null = eval(e, schema, row)?.is_null();
            Ok(Value::Bool(is_null != *negated))
        }
        Expr::InList(e, items, negated) => {
            let needle = eval(e, schema, row)?;
            let mut found = false;
            for item in items {
                if eval(item, schema, row)?.loose_eq(&needle) {
                    found = true;
                    break;
                }
            }
            Ok(Value::Bool(found != *negated))
        }
        Expr::Agg(_, _) => Err(SqlError::Eval(
            "aggregate used outside GROUP BY context".into(),
        )),
        Expr::Func(name, args) => {
            let values: Vec<Value> = args
                .iter()
                .map(|a| eval(a, schema, row))
                .collect::<Result<_, _>>()?;
            scalar_func(name, &values)
        }
    }
}

/// Evaluates an expression that may contain aggregates over a group.
fn eval_agg(expr: &Expr, schema: &Schema, group: &[&Vec<Value>]) -> Result<Value, SqlError> {
    match expr {
        Expr::Agg(func, arg) => {
            let values: Vec<Value> = match arg {
                None => return Ok(Value::Int(group.len() as i64)),
                Some(a) => group
                    .iter()
                    .map(|row| eval(a, schema, row))
                    .collect::<Result<_, _>>()?,
            };
            let non_null: Vec<&Value> = values.iter().filter(|v| !v.is_null()).collect();
            match func {
                AggFunc::Count => Ok(Value::Int(non_null.len() as i64)),
                AggFunc::Sum | AggFunc::Avg => {
                    if non_null.is_empty() {
                        return Ok(Value::Null);
                    }
                    let mut sum = 0f64;
                    let mut all_int = true;
                    for v in &non_null {
                        match v {
                            Value::Int(i) => sum += *i as f64,
                            Value::Float(f) => {
                                all_int = false;
                                sum += f;
                            }
                            other => {
                                return Err(SqlError::Eval(format!(
                                    "cannot {} over {}",
                                    func.name(),
                                    other.type_name()
                                )))
                            }
                        }
                    }
                    if *func == AggFunc::Avg {
                        Ok(Value::Float(sum / non_null.len() as f64))
                    } else if all_int {
                        Ok(Value::Int(sum as i64))
                    } else {
                        Ok(Value::Float(sum))
                    }
                }
                AggFunc::Min | AggFunc::Max => {
                    let mut best: Option<&Value> = None;
                    for v in &non_null {
                        best = Some(match best {
                            None => v,
                            Some(b) => {
                                let ord = v
                                    .partial_cmp_value(b)
                                    .ok_or_else(|| SqlError::Eval("incomparable values".into()))?;
                                let take = if *func == AggFunc::Min {
                                    ord.is_lt()
                                } else {
                                    ord.is_gt()
                                };
                                if take {
                                    v
                                } else {
                                    b
                                }
                            }
                        });
                    }
                    Ok(best.cloned().unwrap_or(Value::Null))
                }
            }
        }
        Expr::Binary(op, l, r) => {
            let lv = eval_agg(l, schema, group)?;
            match op {
                SqlBinOp::And => {
                    if !lv.truthy() {
                        return Ok(Value::Bool(false));
                    }
                    return Ok(Value::Bool(eval_agg(r, schema, group)?.truthy()));
                }
                SqlBinOp::Or => {
                    if lv.truthy() {
                        return Ok(Value::Bool(true));
                    }
                    return Ok(Value::Bool(eval_agg(r, schema, group)?.truthy()));
                }
                _ => {}
            }
            let rv = eval_agg(r, schema, group)?;
            binary(*op, &lv, &rv)
        }
        Expr::Not(e) => Ok(Value::Bool(!eval_agg(e, schema, group)?.truthy())),
        Expr::Neg(e) => match eval_agg(e, schema, group)? {
            Value::Int(i) => Ok(Value::Int(-i)),
            Value::Float(f) => Ok(Value::Float(-f)),
            other => Err(SqlError::Eval(format!(
                "cannot negate {}",
                other.type_name()
            ))),
        },
        Expr::Func(name, args) => {
            let values: Vec<Value> = args
                .iter()
                .map(|a| eval_agg(a, schema, group))
                .collect::<Result<_, _>>()?;
            scalar_func(name, &values)
        }
        // Non-aggregate leaves evaluate against the group's first row
        // (grouping columns are constant within a group).
        other => match group.first() {
            Some(row) => eval(other, schema, row),
            None => Ok(Value::Null),
        },
    }
}

fn binary(op: SqlBinOp, l: &Value, r: &Value) -> Result<Value, SqlError> {
    use SqlBinOp::*;
    match op {
        Add | Sub | Mul | Div | Mod => {
            if l.is_null() || r.is_null() {
                return Ok(Value::Null);
            }
            match (l, r) {
                (Value::Int(a), Value::Int(b)) if op != Div => {
                    let result = match op {
                        Add => a.checked_add(*b),
                        Sub => a.checked_sub(*b),
                        Mul => a.checked_mul(*b),
                        Mod => {
                            if *b == 0 {
                                return Err(SqlError::Eval("modulo by zero".into()));
                            }
                            Some(a.rem_euclid(*b))
                        }
                        _ => unreachable!(),
                    };
                    result
                        .map(Value::Int)
                        .ok_or_else(|| SqlError::Eval("integer overflow".into()))
                }
                (Value::Str(a), Value::Str(b)) if op == Add => Ok(Value::Str(format!("{a}{b}"))),
                _ => {
                    let a = l.as_float().map_err(|_| type_mismatch(op, l, r))?;
                    let b = r.as_float().map_err(|_| type_mismatch(op, l, r))?;
                    match op {
                        Add => Ok(Value::Float(a + b)),
                        Sub => Ok(Value::Float(a - b)),
                        Mul => Ok(Value::Float(a * b)),
                        Div => {
                            if b == 0.0 {
                                Err(SqlError::Eval("division by zero".into()))
                            } else {
                                Ok(Value::Float(a / b))
                            }
                        }
                        Mod => Err(SqlError::Eval("'%' needs integers".into())),
                        _ => unreachable!(),
                    }
                }
            }
        }
        Eq => Ok(Value::Bool(l.loose_eq(r))),
        NotEq => Ok(Value::Bool(!l.loose_eq(r))),
        Lt | LtEq | Gt | GtEq => {
            let ord = l
                .partial_cmp_value(r)
                .ok_or_else(|| type_mismatch(op, l, r))?;
            Ok(Value::Bool(match op {
                Lt => ord.is_lt(),
                LtEq => ord.is_le(),
                Gt => ord.is_gt(),
                _ => ord.is_ge(),
            }))
        }
        Like => {
            let text = l.as_str().map_err(|_| type_mismatch(op, l, r))?;
            let pattern = r.as_str().map_err(|_| type_mismatch(op, l, r))?;
            Ok(Value::Bool(like_match(pattern, text)))
        }
        And | Or => unreachable!("short-circuited by callers"),
    }
}

/// Resolves a (possibly qualified) column name against a schema:
/// 1. exact match;
/// 2. a unique field whose `alias.name` suffix matches a bare name;
/// 3. the bare part of a qualified name, when the qualifier has been
///    stripped by projection.
fn resolve_col(schema: &Schema, name: &str) -> Result<usize, SqlError> {
    if let Some(idx) = schema.index_of(name) {
        return Ok(idx);
    }
    if !name.contains('.') {
        let suffix = format!(".{name}");
        let matches: Vec<usize> = schema
            .names()
            .iter()
            .enumerate()
            .filter(|(_, n)| n.ends_with(&suffix))
            .map(|(i, _)| i)
            .collect();
        match matches.len() {
            1 => return Ok(matches[0]),
            0 => {}
            _ => {
                return Err(SqlError::Eval(format!(
                    "column '{name}' is ambiguous across the join"
                )))
            }
        }
    } else if let Some((_, bare)) = name.split_once('.') {
        if let Some(idx) = schema.index_of(bare) {
            return Ok(idx);
        }
    }
    Err(SqlError::UnknownColumn(name.to_string()))
}

fn type_mismatch(op: SqlBinOp, l: &Value, r: &Value) -> SqlError {
    SqlError::Eval(format!(
        "cannot apply {op:?} to {} and {}",
        l.type_name(),
        r.type_name()
    ))
}

fn scalar_func(name: &str, args: &[Value]) -> Result<Value, SqlError> {
    let arity = |n: usize| -> Result<(), SqlError> {
        if args.len() == n {
            Ok(())
        } else {
            Err(SqlError::Eval(format!(
                "{name}() expects {n} argument(s), got {}",
                args.len()
            )))
        }
    };
    match name {
        "ABS" => {
            arity(1)?;
            match &args[0] {
                Value::Int(i) => Ok(Value::Int(i.abs())),
                Value::Float(f) => Ok(Value::Float(f.abs())),
                Value::Null => Ok(Value::Null),
                other => Err(SqlError::Eval(format!("ABS of {}", other.type_name()))),
            }
        }
        "ROUND" => {
            if args.is_empty() || args.len() > 2 {
                return Err(SqlError::Eval("ROUND expects 1 or 2 arguments".into()));
            }
            if args[0].is_null() {
                return Ok(Value::Null);
            }
            let v = args[0]
                .as_float()
                .map_err(|_| SqlError::Eval("ROUND of non-number".into()))?;
            let digits = if args.len() == 2 {
                args[1]
                    .as_int()
                    .map_err(|_| SqlError::Eval("ROUND digits must be int".into()))?
            } else {
                0
            };
            let scale = 10f64.powi(digits as i32);
            Ok(Value::Float((v * scale).round() / scale))
        }
        "LOWER" => {
            arity(1)?;
            Ok(match &args[0] {
                Value::Str(s) => Value::Str(s.to_lowercase()),
                Value::Null => Value::Null,
                other => return Err(SqlError::Eval(format!("LOWER of {}", other.type_name()))),
            })
        }
        "UPPER" => {
            arity(1)?;
            Ok(match &args[0] {
                Value::Str(s) => Value::Str(s.to_uppercase()),
                Value::Null => Value::Null,
                other => return Err(SqlError::Eval(format!("UPPER of {}", other.type_name()))),
            })
        }
        "LENGTH" => {
            arity(1)?;
            Ok(match &args[0] {
                Value::Str(s) => Value::Int(s.chars().count() as i64),
                Value::Null => Value::Null,
                other => return Err(SqlError::Eval(format!("LENGTH of {}", other.type_name()))),
            })
        }
        other => Err(SqlError::Eval(format!("unknown function {other}"))),
    }
}

/// SQL LIKE matching: `%` matches any run, `_` matches one character.
fn like_match(pattern: &str, text: &str) -> bool {
    fn rec(p: &[char], t: &[char]) -> bool {
        match p.first() {
            None => t.is_empty(),
            Some('%') => {
                // Try matching zero or more characters.
                (0..=t.len()).any(|skip| rec(&p[1..], &t[skip..]))
            }
            Some('_') => !t.is_empty() && rec(&p[1..], &t[1..]),
            Some(c) => !t.is_empty() && t[0].eq_ignore_ascii_case(c) && rec(&p[1..], &t[1..]),
        }
    }
    let p: Vec<char> = pattern.chars().collect();
    let t: Vec<char> = text.chars().collect();
    rec(&p, &t)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::execute;

    fn reports() -> Catalog {
        let mut t = Table::new(Schema::of(["year", "state", "thefts"]));
        let rows = [
            (2001, "AL", 1_000),
            (2001, "AK", 200),
            (2024, "AL", 9_000),
            (2024, "AK", 1_500),
            (2024, "AZ", 12_000),
        ];
        for (y, s, n) in rows {
            t.push_row(vec![Value::Int(y), Value::Str(s.into()), Value::Int(n)])
                .unwrap();
        }
        let mut cat = Catalog::new();
        cat.register("reports", t);
        cat
    }

    #[test]
    fn where_and_projection() {
        let out = execute(
            "SELECT state, thefts FROM reports WHERE year = 2024",
            &reports(),
        )
        .unwrap();
        assert_eq!(out.len(), 3);
        assert_eq!(out.schema().names(), vec!["state", "thefts"]);
    }

    #[test]
    fn wildcard_selects_all_columns() {
        let out = execute("SELECT * FROM reports LIMIT 2", &reports()).unwrap();
        assert_eq!(out.schema().names(), vec!["year", "state", "thefts"]);
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn group_by_with_aggregates() {
        let out = execute(
            "SELECT year, SUM(thefts) AS total, COUNT(*) AS n FROM reports GROUP BY year",
            &reports(),
        )
        .unwrap();
        assert_eq!(out.len(), 2);
        assert_eq!(
            out.find_row("year", &Value::Int(2001)).unwrap()[1],
            Value::Int(1_200)
        );
        assert_eq!(
            out.find_row("year", &Value::Int(2024)).unwrap()[1],
            Value::Int(22_500)
        );
        assert_eq!(
            out.find_row("year", &Value::Int(2024)).unwrap()[2],
            Value::Int(3)
        );
    }

    #[test]
    fn having_filters_groups() {
        let out = execute(
            "SELECT year, SUM(thefts) AS total FROM reports GROUP BY year HAVING SUM(thefts) > 2000",
            &reports(),
        )
        .unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(out.cell(0, "year"), Some(&Value::Int(2024)));
    }

    #[test]
    fn global_aggregate_without_group_by() {
        let out = execute("SELECT COUNT(*), AVG(thefts) FROM reports", &reports()).unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(out.rows()[0][0], Value::Int(5));
        assert_eq!(out.rows()[0][1], Value::Float(4_740.0));
    }

    #[test]
    fn global_aggregate_over_empty_input() {
        let out = execute("SELECT COUNT(*) FROM reports WHERE year = 1999", &reports()).unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(out.rows()[0][0], Value::Int(0));
    }

    #[test]
    fn order_by_desc_with_limit() {
        let out = execute(
            "SELECT state, thefts FROM reports WHERE year = 2024 ORDER BY thefts DESC LIMIT 2",
            &reports(),
        )
        .unwrap();
        assert_eq!(out.cell(0, "state"), Some(&Value::Str("AZ".into())));
        assert_eq!(out.cell(1, "state"), Some(&Value::Str("AL".into())));
    }

    #[test]
    fn order_by_multiple_keys_is_stable() {
        let out = execute(
            "SELECT year, state FROM reports ORDER BY year ASC, state ASC",
            &reports(),
        )
        .unwrap();
        assert_eq!(out.cell(0, "state"), Some(&Value::Str("AK".into())));
        assert_eq!(out.cell(0, "year"), Some(&Value::Int(2001)));
    }

    #[test]
    fn arithmetic_in_projection() {
        // The paper's headline query: the 2024/2001 theft ratio.
        let out = execute(
            "SELECT MAX(thefts) / MIN(thefts) AS ratio FROM reports WHERE state = 'AL'",
            &reports(),
        )
        .unwrap();
        assert_eq!(out.cell(0, "ratio"), Some(&Value::Float(9.0)));
    }

    #[test]
    fn like_and_in_and_null_predicates() {
        let out = execute(
            "SELECT state FROM reports WHERE state LIKE 'A%' AND state IN ('AL', 'AZ') AND state IS NOT NULL",
            &reports(),
        )
        .unwrap();
        assert_eq!(out.len(), 3);
        let out = execute(
            "SELECT state FROM reports WHERE state NOT LIKE 'A%'",
            &reports(),
        )
        .unwrap();
        assert!(out.is_empty());
    }

    #[test]
    fn like_matching_semantics() {
        assert!(like_match("%theft%", "identity theft reports"));
        assert!(like_match("theft", "THEFT"));
        assert!(like_match("the_t", "theft"));
        assert!(!like_match("theft", "thefts"));
        assert!(like_match("theft%", "thefts"));
        assert!(like_match("%", ""));
        assert!(!like_match("_", ""));
    }

    #[test]
    fn scalar_functions() {
        let out = execute(
            "SELECT LOWER(state) s, LENGTH(state) n, ABS(0 - thefts) a, ROUND(thefts / 7, 1) r \
             FROM reports LIMIT 1",
            &reports(),
        )
        .unwrap();
        assert_eq!(out.cell(0, "s"), Some(&Value::Str("al".into())));
        assert_eq!(out.cell(0, "n"), Some(&Value::Int(2)));
        assert_eq!(out.cell(0, "a"), Some(&Value::Int(1000)));
        assert_eq!(out.cell(0, "r"), Some(&Value::Float(142.9)));
    }

    #[test]
    fn unknown_table_and_column_errors() {
        assert!(matches!(
            execute("SELECT a FROM missing", &reports()),
            Err(SqlError::UnknownTable(_))
        ));
        assert!(matches!(
            execute("SELECT missing_col FROM reports", &reports()),
            Err(SqlError::UnknownColumn(_))
        ));
    }

    #[test]
    fn division_by_zero_errors() {
        assert!(matches!(
            execute("SELECT thefts / 0 FROM reports", &reports()),
            Err(SqlError::Eval(_))
        ));
    }

    #[test]
    fn nulls_propagate_through_arithmetic_and_skip_aggregates() {
        let mut t = Table::new(Schema::of(["x"]));
        t.push_row(vec![Value::Int(10)]).unwrap();
        t.push_row(vec![Value::Null]).unwrap();
        let mut cat = Catalog::new();
        cat.register("t", t);
        let out = execute("SELECT x + 1 FROM t", &cat).unwrap();
        assert_eq!(out.rows()[1][0], Value::Null);
        let out = execute("SELECT COUNT(x), SUM(x), AVG(x) FROM t", &cat).unwrap();
        assert_eq!(out.rows()[0][0], Value::Int(1));
        assert_eq!(out.rows()[0][1], Value::Int(10));
        assert_eq!(out.rows()[0][2], Value::Float(10.0));
    }

    #[test]
    fn aggregate_in_scalar_context_errors() {
        // ORDER BY over a plain (non-aggregate) query cannot use aggregates.
        assert!(execute("SELECT state FROM reports ORDER BY SUM(thefts)", &reports()).is_err());
    }

    fn join_catalog() -> Catalog {
        let mut cat = reports();
        let mut pop = Table::new(Schema::of(["state", "population"]));
        for (s, p) in [("AL", 5_100_000i64), ("AK", 730_000), ("AZ", 7_400_000)] {
            pop.push_row(vec![Value::Str(s.into()), Value::Int(p)])
                .unwrap();
        }
        cat.register("population", pop);
        cat
    }

    #[test]
    fn inner_join_matches_rows() {
        let out = execute(
            "SELECT r.state, r.thefts, p.population FROM reports r \
             JOIN population p ON r.state = p.state WHERE r.year = 2024 \
             ORDER BY r.thefts DESC",
            &join_catalog(),
        )
        .unwrap();
        assert_eq!(out.len(), 3);
        assert_eq!(
            out.schema().names(),
            vec!["r.state", "r.thefts", "p.population"]
        );
        assert_eq!(out.cell(0, "r.state"), Some(&Value::Str("AZ".into())));
        assert_eq!(out.cell(0, "p.population"), Some(&Value::Int(7_400_000)));
    }

    #[test]
    fn join_with_computed_projection() {
        // Reports per 100k population: cross-table arithmetic.
        let out = execute(
            "SELECT r.state, ROUND(r.thefts * 100000 / p.population, 1) AS per100k \
             FROM reports r JOIN population p ON r.state = p.state \
             WHERE r.year = 2024 ORDER BY per100k DESC LIMIT 1",
            &join_catalog(),
        )
        .unwrap();
        assert_eq!(out.cell(0, "r.state"), Some(&Value::Str("AK".into())));
        let v = out.cell(0, "per100k").unwrap().as_float().unwrap();
        assert!((v - 205.5).abs() < 0.1, "{v}");
    }

    #[test]
    fn join_without_aliases_uses_table_names() {
        let out = execute(
            "SELECT reports.state, population.population FROM reports \
             JOIN population ON reports.state = population.state LIMIT 1",
            &join_catalog(),
        )
        .unwrap();
        assert_eq!(out.len(), 1);
    }

    #[test]
    fn ambiguous_bare_column_in_join_errors() {
        // `state` exists on both sides.
        assert!(matches!(
            execute(
                "SELECT state FROM reports r JOIN population p ON r.state = p.state",
                &join_catalog()
            ),
            Err(SqlError::Eval(msg)) if msg.contains("ambiguous")
        ));
        // Unambiguous bare columns resolve through the join.
        let out = execute(
            "SELECT thefts FROM reports r JOIN population p ON r.state = p.state \
             WHERE year = 2001",
            &join_catalog(),
        )
        .unwrap();
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn join_aggregate_across_tables() {
        let out = execute(
            "SELECT p.state, SUM(r.thefts) AS total FROM reports r \
             JOIN population p ON r.state = p.state \
             GROUP BY p.state ORDER BY total DESC LIMIT 1",
            &join_catalog(),
        )
        .unwrap();
        assert_eq!(out.cell(0, "p.state"), Some(&Value::Str("AZ".into())));
        assert_eq!(out.cell(0, "total"), Some(&Value::Int(12_000)));
    }

    #[test]
    fn join_key_order_is_flexible() {
        let a = execute(
            "SELECT COUNT(*) FROM reports r JOIN population p ON r.state = p.state",
            &join_catalog(),
        )
        .unwrap();
        let b = execute(
            "SELECT COUNT(*) FROM reports r JOIN population p ON p.state = r.state",
            &join_catalog(),
        )
        .unwrap();
        assert_eq!(a.rows()[0][0], b.rows()[0][0]);
    }

    #[test]
    fn join_drops_null_and_unmatched_keys() {
        let mut cat = Catalog::new();
        let mut l = Table::new(Schema::of(["k", "v"]));
        l.push_row(vec![Value::Int(1), Value::Str("a".into())])
            .unwrap();
        l.push_row(vec![Value::Null, Value::Str("b".into())])
            .unwrap();
        l.push_row(vec![Value::Int(9), Value::Str("c".into())])
            .unwrap();
        let mut r = Table::new(Schema::of(["k", "w"]));
        r.push_row(vec![Value::Float(1.0), Value::Str("x".into())])
            .unwrap();
        cat.register("l", l);
        cat.register("r", r);
        let out = execute("SELECT l.v, r.w FROM l JOIN r ON l.k = r.k", &cat).unwrap();
        // Int(1) matches Float(1.0); Null and 9 drop.
        assert_eq!(out.len(), 1);
        assert_eq!(out.cell(0, "l.v"), Some(&Value::Str("a".into())));
    }

    #[test]
    fn same_alias_on_both_sides_errors() {
        assert!(matches!(
            execute("SELECT 1 FROM reports x JOIN population x ON x.state = x.state",
                &join_catalog()),
            Err(SqlError::Eval(msg)) if msg.contains("alias")
        ));
    }

    #[test]
    fn distinct_removes_duplicates() {
        let out = execute(
            "SELECT DISTINCT year FROM reports ORDER BY year",
            &reports(),
        )
        .unwrap();
        assert_eq!(out.len(), 2);
        assert_eq!(out.cell(0, "year"), Some(&Value::Int(2001)));
        let all = execute("SELECT year FROM reports", &reports()).unwrap();
        assert_eq!(all.len(), 5);
    }

    #[test]
    fn distinct_is_type_sensitive() {
        let mut cat = Catalog::new();
        let mut t = Table::new(Schema::of(["x"]));
        t.push_row(vec![Value::Int(1)]).unwrap();
        t.push_row(vec![Value::Str("1".into())]).unwrap();
        t.push_row(vec![Value::Int(1)]).unwrap();
        cat.register("t", t);
        let out = execute("SELECT DISTINCT x FROM t", &cat).unwrap();
        assert_eq!(out.len(), 2, "Int(1) and Str(\"1\") are distinct");
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        fn catalog_from(rows: &[(i64, i64)]) -> Catalog {
            let mut t = Table::new(Schema::of(["a", "b"]));
            for (a, b) in rows {
                t.push_row(vec![Value::Int(*a), Value::Int(*b)]).unwrap();
            }
            let mut cat = Catalog::new();
            cat.register("t", t);
            cat
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(64))]

            #[test]
            fn where_output_is_subset(rows in prop::collection::vec((0i64..100, 0i64..100), 0..40), threshold in 0i64..100) {
                let cat = catalog_from(&rows);
                let out = execute(&format!("SELECT a, b FROM t WHERE a < {threshold}"), &cat).unwrap();
                prop_assert!(out.len() <= rows.len());
                for row in out.rows() {
                    let a = row[0].as_int().unwrap();
                    prop_assert!(a < threshold);
                    prop_assert!(rows.contains(&(a, row[1].as_int().unwrap())));
                }
            }

            #[test]
            fn order_by_limit_matches_naive_sort(rows in prop::collection::vec((0i64..100, 0i64..100), 0..40), k in 0usize..10) {
                let cat = catalog_from(&rows);
                let out = execute(&format!("SELECT a FROM t ORDER BY a DESC LIMIT {k}"), &cat).unwrap();
                let mut expect: Vec<i64> = rows.iter().map(|(a, _)| *a).collect();
                expect.sort_unstable_by(|x, y| y.cmp(x));
                expect.truncate(k);
                let got: Vec<i64> = out.rows().iter().map(|r| r[0].as_int().unwrap()).collect();
                prop_assert_eq!(got, expect);
            }

            #[test]
            fn sum_and_count_match_naive(rows in prop::collection::vec((0i64..100, 0i64..1000), 0..40)) {
                let cat = catalog_from(&rows);
                let out = execute("SELECT COUNT(*) AS n, SUM(b) AS s FROM t", &cat).unwrap();
                prop_assert_eq!(out.cell(0, "n"), Some(&Value::Int(rows.len() as i64)));
                let expect_sum: i64 = rows.iter().map(|(_, b)| *b).sum();
                if rows.is_empty() {
                    prop_assert_eq!(out.cell(0, "s"), Some(&Value::Null));
                } else {
                    prop_assert_eq!(out.cell(0, "s"), Some(&Value::Int(expect_sum)));
                }
            }

            #[test]
            fn distinct_count_matches_naive(rows in prop::collection::vec((0i64..8, 0i64..8), 0..40)) {
                let cat = catalog_from(&rows);
                let out = execute("SELECT DISTINCT a, b FROM t", &cat).unwrap();
                let unique: std::collections::HashSet<(i64, i64)> = rows.iter().copied().collect();
                prop_assert_eq!(out.len(), unique.len());
            }

            #[test]
            fn group_by_partitions_rows(rows in prop::collection::vec((0i64..5, 0i64..100), 1..40)) {
                let cat = catalog_from(&rows);
                let out = execute("SELECT a, COUNT(*) AS n FROM t GROUP BY a", &cat).unwrap();
                let total: i64 = out.column("n").unwrap().iter().map(|v| v.as_int().unwrap()).sum();
                prop_assert_eq!(total, rows.len() as i64);
                let groups: std::collections::HashSet<i64> = rows.iter().map(|(a, _)| *a).collect();
                prop_assert_eq!(out.len(), groups.len());
            }

            #[test]
            fn parser_never_panics(text in ".{0,120}") {
                let _ = crate::parser::parse(&text);
            }
        }
    }
}
