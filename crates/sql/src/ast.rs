//! SQL abstract syntax.

use aida_data::Value;

/// Binary operators in SQL expressions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SqlBinOp {
    Add,
    Sub,
    Mul,
    Div,
    Mod,
    Eq,
    NotEq,
    Lt,
    LtEq,
    Gt,
    GtEq,
    And,
    Or,
    /// `LIKE` pattern match (`%` and `_` wildcards).
    Like,
}

/// Aggregate functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggFunc {
    Count,
    Sum,
    Avg,
    Min,
    Max,
}

impl AggFunc {
    /// Parses an aggregate function name (case-insensitive).
    pub fn parse(name: &str) -> Option<AggFunc> {
        match name.to_ascii_uppercase().as_str() {
            "COUNT" => Some(AggFunc::Count),
            "SUM" => Some(AggFunc::Sum),
            "AVG" => Some(AggFunc::Avg),
            "MIN" => Some(AggFunc::Min),
            "MAX" => Some(AggFunc::Max),
            _ => None,
        }
    }

    /// The canonical display name.
    pub fn name(self) -> &'static str {
        match self {
            AggFunc::Count => "count",
            AggFunc::Sum => "sum",
            AggFunc::Avg => "avg",
            AggFunc::Min => "min",
            AggFunc::Max => "max",
        }
    }
}

/// A SQL expression.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// A literal value.
    Literal(Value),
    /// A column reference.
    Column(String),
    /// Binary operation.
    Binary(SqlBinOp, Box<Expr>, Box<Expr>),
    /// Logical negation.
    Not(Box<Expr>),
    /// Arithmetic negation.
    Neg(Box<Expr>),
    /// `expr IS NULL` / `expr IS NOT NULL`.
    IsNull(Box<Expr>, bool),
    /// `expr IN (v1, v2, …)`, possibly negated.
    InList(Box<Expr>, Vec<Expr>, bool),
    /// Aggregate call; `None` argument means `COUNT(*)`.
    Agg(AggFunc, Option<Box<Expr>>),
    /// Scalar function call (`ABS`, `ROUND`, `LOWER`, `UPPER`, `LENGTH`).
    Func(String, Vec<Expr>),
}

impl Expr {
    /// True when the expression (transitively) contains an aggregate.
    pub fn has_aggregate(&self) -> bool {
        match self {
            Expr::Agg(_, _) => true,
            Expr::Literal(_) | Expr::Column(_) => false,
            Expr::Binary(_, l, r) => l.has_aggregate() || r.has_aggregate(),
            Expr::Not(e) | Expr::Neg(e) | Expr::IsNull(e, _) => e.has_aggregate(),
            Expr::InList(e, items, _) => e.has_aggregate() || items.iter().any(Expr::has_aggregate),
            Expr::Func(_, args) => args.iter().any(Expr::has_aggregate),
        }
    }

    /// Collects every column name referenced.
    pub fn columns(&self, out: &mut Vec<String>) {
        match self {
            Expr::Column(name) => {
                if !out.contains(name) {
                    out.push(name.clone());
                }
            }
            Expr::Literal(_) => {}
            Expr::Binary(_, l, r) => {
                l.columns(out);
                r.columns(out);
            }
            Expr::Not(e) | Expr::Neg(e) | Expr::IsNull(e, _) => e.columns(out),
            Expr::InList(e, items, _) => {
                e.columns(out);
                for item in items {
                    item.columns(out);
                }
            }
            Expr::Agg(_, arg) => {
                if let Some(a) = arg {
                    a.columns(out);
                }
            }
            Expr::Func(_, args) => {
                for a in args {
                    a.columns(out);
                }
            }
        }
    }
}

/// One item in the SELECT list.
#[derive(Debug, Clone, PartialEq)]
pub enum SelectItem {
    /// `*`
    Wildcard,
    /// An expression with an optional alias.
    Expr(Expr, Option<String>),
}

/// An ORDER BY key.
#[derive(Debug, Clone, PartialEq)]
pub struct OrderKey {
    /// Sort expression.
    pub expr: Expr,
    /// True for descending.
    pub desc: bool,
}

/// An equi-join clause: `JOIN <table> [<alias>] ON <left> = <right>`.
#[derive(Debug, Clone, PartialEq)]
pub struct JoinClause {
    /// Right-hand table name.
    pub table: String,
    /// Right-hand alias (defaults to the table name).
    pub alias: Option<String>,
    /// Left join key (possibly qualified).
    pub left_key: String,
    /// Right join key (possibly qualified).
    pub right_key: String,
}

/// A parsed SELECT query.
#[derive(Debug, Clone, PartialEq)]
pub struct Query {
    /// Whether `DISTINCT` was requested.
    pub distinct: bool,
    /// SELECT list.
    pub items: Vec<SelectItem>,
    /// FROM table name.
    pub table: String,
    /// FROM-table alias (defaults to the table name).
    pub alias: Option<String>,
    /// Optional inner equi-join.
    pub join: Option<JoinClause>,
    /// WHERE predicate.
    pub filter: Option<Expr>,
    /// GROUP BY expressions.
    pub group_by: Vec<Expr>,
    /// HAVING predicate.
    pub having: Option<Expr>,
    /// ORDER BY keys.
    pub order_by: Vec<OrderKey>,
    /// LIMIT row count.
    pub limit: Option<usize>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aggregate_detection_recurses() {
        let e = Expr::Binary(
            SqlBinOp::Div,
            Box::new(Expr::Agg(
                AggFunc::Sum,
                Some(Box::new(Expr::Column("x".into()))),
            )),
            Box::new(Expr::Literal(Value::Int(2))),
        );
        assert!(e.has_aggregate());
        assert!(!Expr::Column("x".into()).has_aggregate());
    }

    #[test]
    fn column_collection_deduplicates() {
        let e = Expr::Binary(
            SqlBinOp::Add,
            Box::new(Expr::Column("a".into())),
            Box::new(Expr::Binary(
                SqlBinOp::Mul,
                Box::new(Expr::Column("a".into())),
                Box::new(Expr::Column("b".into())),
            )),
        );
        let mut cols = Vec::new();
        e.columns(&mut cols);
        assert_eq!(cols, vec!["a", "b"]);
    }

    #[test]
    fn agg_func_parsing() {
        assert_eq!(AggFunc::parse("count"), Some(AggFunc::Count));
        assert_eq!(AggFunc::parse("AVG"), Some(AggFunc::Avg));
        assert_eq!(AggFunc::parse("median"), None);
        assert_eq!(AggFunc::Sum.name(), "sum");
    }
}
