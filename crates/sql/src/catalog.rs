//! Table catalog.

use crate::SqlError;
use aida_data::Table;
use std::collections::BTreeMap;

/// A named collection of in-memory tables.
///
/// The runtime registers every table it materializes from unstructured data
/// here, so later queries (and later *users*) can hit the structured copy
/// instead of re-running LLM extraction.
#[derive(Debug, Clone, Default)]
pub struct Catalog {
    tables: BTreeMap<String, Table>,
}

impl Catalog {
    /// Creates an empty catalog.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers (or replaces) a table under a name.
    pub fn register(&mut self, name: impl Into<String>, table: Table) {
        self.tables.insert(name.into(), table);
    }

    /// Removes a table.
    pub fn drop_table(&mut self, name: &str) -> Option<Table> {
        self.tables.remove(name)
    }

    /// Table lookup.
    pub fn get(&self, name: &str) -> Result<&Table, SqlError> {
        self.tables
            .get(name)
            .ok_or_else(|| SqlError::UnknownTable(name.to_string()))
    }

    /// True when the table exists.
    pub fn contains(&self, name: &str) -> bool {
        self.tables.contains_key(name)
    }

    /// Sorted table names.
    pub fn names(&self) -> Vec<&str> {
        self.tables.keys().map(String::as_str).collect()
    }

    /// Number of registered tables.
    pub fn len(&self) -> usize {
        self.tables.len()
    }

    /// True when no tables are registered.
    pub fn is_empty(&self) -> bool {
        self.tables.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aida_data::Schema;

    #[test]
    fn register_and_lookup() {
        let mut cat = Catalog::new();
        cat.register("t", Table::new(Schema::of(["a"])));
        assert!(cat.get("t").is_ok());
        assert!(cat.contains("t"));
        assert!(matches!(cat.get("nope"), Err(SqlError::UnknownTable(_))));
    }

    #[test]
    fn register_replaces_and_drop_removes() {
        let mut cat = Catalog::new();
        cat.register("t", Table::new(Schema::of(["a"])));
        cat.register("t", Table::new(Schema::of(["b"])));
        assert_eq!(cat.len(), 1);
        assert_eq!(cat.get("t").unwrap().schema().names(), vec!["b"]);
        assert!(cat.drop_table("t").is_some());
        assert!(cat.is_empty());
    }

    #[test]
    fn names_sorted() {
        let mut cat = Catalog::new();
        cat.register("zeta", Table::new(Schema::empty()));
        cat.register("alpha", Table::new(Schema::empty()));
        assert_eq!(cat.names(), vec!["alpha", "zeta"]);
    }
}
