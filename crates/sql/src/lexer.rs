//! SQL tokenizer.

use crate::SqlError;

/// A SQL token.
#[derive(Debug, Clone, PartialEq)]
pub enum SqlTok {
    /// Bare identifier or keyword (keywords are recognized by the parser,
    /// case-insensitively).
    Ident(String),
    /// Integer literal.
    Int(i64),
    /// Float literal.
    Float(f64),
    /// Single-quoted string literal ('' escapes a quote).
    Str(String),
    /// `*`
    Star,
    /// `,`
    Comma,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `=`
    Eq,
    /// `!=` or `<>`
    NotEq,
    /// `<`
    Lt,
    /// `<=`
    LtEq,
    /// `>`
    Gt,
    /// `>=`
    GtEq,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `/`
    Slash,
    /// `%`
    Percent,
    /// `.`
    Dot,
    /// End of input.
    Eof,
}

/// Tokenizes a SQL string.
pub fn lex(sql: &str) -> Result<Vec<SqlTok>, SqlError> {
    let chars: Vec<char> = sql.chars().collect();
    let mut tokens = Vec::new();
    let mut i = 0usize;
    while i < chars.len() {
        let c = chars[i];
        match c {
            c if c.is_whitespace() => i += 1,
            '-' if chars.get(i + 1) == Some(&'-') => {
                // Line comment.
                while i < chars.len() && chars[i] != '\n' {
                    i += 1;
                }
            }
            '0'..='9' => {
                let start = i;
                let mut saw_dot = false;
                while i < chars.len()
                    && (chars[i].is_ascii_digit() || (chars[i] == '.' && !saw_dot))
                {
                    if chars[i] == '.' {
                        saw_dot = true;
                    }
                    i += 1;
                }
                let text: String = chars[start..i].iter().collect();
                if saw_dot {
                    tokens.push(SqlTok::Float(text.parse().map_err(|_| {
                        SqlError::Lex(format!("bad numeric literal '{text}'"))
                    })?));
                } else {
                    tokens.push(SqlTok::Int(text.parse().map_err(|_| {
                        SqlError::Lex(format!("bad numeric literal '{text}'"))
                    })?));
                }
            }
            '\'' => {
                i += 1;
                let mut text = String::new();
                let mut closed = false;
                while i < chars.len() {
                    if chars[i] == '\'' {
                        if chars.get(i + 1) == Some(&'\'') {
                            text.push('\'');
                            i += 2;
                        } else {
                            closed = true;
                            i += 1;
                            break;
                        }
                    } else {
                        text.push(chars[i]);
                        i += 1;
                    }
                }
                if !closed {
                    return Err(SqlError::Lex("unterminated string literal".into()));
                }
                tokens.push(SqlTok::Str(text));
            }
            c if c.is_alphabetic() || c == '_' => {
                let start = i;
                while i < chars.len() && (chars[i].is_alphanumeric() || chars[i] == '_') {
                    i += 1;
                }
                tokens.push(SqlTok::Ident(chars[start..i].iter().collect()));
            }
            '*' => {
                tokens.push(SqlTok::Star);
                i += 1;
            }
            ',' => {
                tokens.push(SqlTok::Comma);
                i += 1;
            }
            '(' => {
                tokens.push(SqlTok::LParen);
                i += 1;
            }
            ')' => {
                tokens.push(SqlTok::RParen);
                i += 1;
            }
            '=' => {
                tokens.push(SqlTok::Eq);
                i += 1;
            }
            '!' if chars.get(i + 1) == Some(&'=') => {
                tokens.push(SqlTok::NotEq);
                i += 2;
            }
            '<' => match chars.get(i + 1) {
                Some('=') => {
                    tokens.push(SqlTok::LtEq);
                    i += 2;
                }
                Some('>') => {
                    tokens.push(SqlTok::NotEq);
                    i += 2;
                }
                _ => {
                    tokens.push(SqlTok::Lt);
                    i += 1;
                }
            },
            '>' => {
                if chars.get(i + 1) == Some(&'=') {
                    tokens.push(SqlTok::GtEq);
                    i += 2;
                } else {
                    tokens.push(SqlTok::Gt);
                    i += 1;
                }
            }
            '+' => {
                tokens.push(SqlTok::Plus);
                i += 1;
            }
            '-' => {
                tokens.push(SqlTok::Minus);
                i += 1;
            }
            '/' => {
                tokens.push(SqlTok::Slash);
                i += 1;
            }
            '%' => {
                tokens.push(SqlTok::Percent);
                i += 1;
            }
            '.' => {
                tokens.push(SqlTok::Dot);
                i += 1;
            }
            ';' => i += 1, // trailing semicolons are harmless
            other => return Err(SqlError::Lex(format!("unexpected character '{other}'"))),
        }
    }
    tokens.push(SqlTok::Eof);
    Ok(tokens)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lexes_select_statement() {
        let toks = lex("SELECT a, b FROM t WHERE a >= 10").unwrap();
        assert_eq!(toks[0], SqlTok::Ident("SELECT".into()));
        assert!(toks.contains(&SqlTok::GtEq));
        assert!(toks.contains(&SqlTok::Int(10)));
    }

    #[test]
    fn string_literals_with_escapes() {
        let toks = lex("SELECT 'it''s'").unwrap();
        assert_eq!(toks[1], SqlTok::Str("it's".into()));
        assert!(lex("SELECT 'oops").is_err());
    }

    #[test]
    fn both_not_equal_spellings() {
        assert!(lex("a != b").unwrap().contains(&SqlTok::NotEq));
        assert!(lex("a <> b").unwrap().contains(&SqlTok::NotEq));
    }

    #[test]
    fn comments_and_semicolons_skipped() {
        let toks = lex("SELECT 1 -- trailing comment\n;").unwrap();
        assert_eq!(
            toks,
            vec![SqlTok::Ident("SELECT".into()), SqlTok::Int(1), SqlTok::Eof]
        );
    }

    #[test]
    fn floats_and_ints() {
        let toks = lex("1.5 2").unwrap();
        assert_eq!(toks[0], SqlTok::Float(1.5));
        assert_eq!(toks[1], SqlTok::Int(2));
    }
}
