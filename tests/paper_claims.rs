//! The paper's headline experimental claims, asserted as tests (single
//! trial each; the 3-trial versions run in the `aida-bench` binaries).
//!
//! 1. `compute` achieves lower error than the handcrafted semantic-operator
//!    program and the CodeAgent on the Kramabench query (Table 1).
//! 2. `compute` matches CodeAgent+ quality at a large cost/runtime saving
//!    on the Enron query (Table 2; paper: 76.8% cost, 72.7% time).
//! 3. The plain CodeAgent has high precision but low recall on Enron
//!    (keyword shortcuts).
//! 4. Context reuse makes a similar follow-up query cheaper (§3).

#[test]
fn claim_compute_beats_baselines_on_kramabench() {
    let report = aida::eval::table1(&[1]);
    let compute_err = report.row("PZ compute").unwrap().get("pct_err").unwrap();
    let semops_err = report.row("Sem. Ops").unwrap().get("pct_err").unwrap();
    let agent_err = report.row("CodeAgent").unwrap().get("pct_err").unwrap();
    assert!(compute_err < 0.05, "compute err {compute_err}");
    assert!(
        compute_err <= semops_err,
        "compute {compute_err} vs semops {semops_err}"
    );
    assert!(
        compute_err <= agent_err,
        "compute {compute_err} vs agent {agent_err}"
    );
}

#[test]
fn claim_compute_saves_cost_and_time_vs_codeagent_plus() {
    let report = aida::eval::table2(&[1]);
    let compute = report.row("PZ compute").unwrap();
    let plus = report.row("CodeAgent+").unwrap();
    // Quality parity (within a few points).
    assert!(
        (compute.get("f1").unwrap() - plus.get("f1").unwrap()).abs() < 0.08,
        "compute F1 {} vs CodeAgent+ F1 {}",
        compute.get("f1").unwrap(),
        plus.get("f1").unwrap()
    );
    // Large savings (paper: 76.8% cost, 72.7% time).
    let cost_saving = 1.0 - compute.get("cost").unwrap() / plus.get("cost").unwrap();
    let time_saving = 1.0 - compute.get("time_s").unwrap() / plus.get("time_s").unwrap();
    assert!(cost_saving > 0.5, "cost saving {cost_saving:.2}");
    assert!(time_saving > 0.5, "time saving {time_saving:.2}");
}

#[test]
fn claim_codeagent_is_high_precision_low_recall_on_enron() {
    let report = aida::eval::table2(&[1]);
    let agent = report.row("CodeAgent").unwrap();
    assert!(
        agent.get("precision").unwrap() > 0.7,
        "precision {}",
        agent.get("precision").unwrap()
    );
    assert!(
        agent.get("recall").unwrap() < 0.6,
        "recall {}",
        agent.get("recall").unwrap()
    );
    // And it is by far the cheapest/fastest system.
    let compute = report.row("PZ compute").unwrap();
    assert!(agent.get("cost").unwrap() < compute.get("cost").unwrap() * 0.3);
    assert!(agent.get("time_s").unwrap() < compute.get("time_s").unwrap());
}

#[test]
fn claim_f1_improvement_over_open_deep_research() {
    // Paper: up to 1.95x better F1 than the open Deep Research agent.
    let report = aida::eval::table2(&[1]);
    let ratio = report.row("PZ compute").unwrap().get("f1").unwrap()
        / report.row("CodeAgent").unwrap().get("f1").unwrap();
    assert!(ratio > 1.5, "F1 improvement {ratio:.2}x");
}

#[test]
fn claim_context_reuse_cuts_second_query_cost() {
    let report = aida::eval::ablation_reuse(&[1]);
    let on = report.row("reuse on").unwrap();
    let off = report.row("reuse off").unwrap();
    assert!(
        on.get("cost").unwrap() < off.get("cost").unwrap(),
        "reuse on {} vs off {}",
        on.get("cost").unwrap(),
        off.get("cost").unwrap()
    );
    assert!(on.get("time_s").unwrap() < off.get("time_s").unwrap());
}

#[test]
fn claim_optimizer_model_selection_balances_quality_and_cost() {
    let report = aida::eval::ablation_optimizer(&[1]);
    let optimized = report.row("optimized").unwrap();
    let flagship = report.row("flagship").unwrap();
    let nano = report.row("nano").unwrap();
    // Near-flagship quality...
    assert!(
        optimized.get("f1").unwrap() > flagship.get("f1").unwrap() - 0.1,
        "optimized F1 {} vs flagship {}",
        optimized.get("f1").unwrap(),
        flagship.get("f1").unwrap()
    );
    // ...at well below flagship cost...
    assert!(optimized.get("cost").unwrap() < flagship.get("cost").unwrap() * 0.8);
    // ...and far above nano quality.
    assert!(optimized.get("f1").unwrap() > nano.get("f1").unwrap() + 0.05);
}

#[test]
fn claim_index_access_scales_better_than_full_scan() {
    let report = aida::eval::ablation_access(&[10, 100], 1);
    // At the larger size, indexed access is much cheaper than scanning.
    let scan_cost = report
        .rows
        .iter()
        .find(|r| r.system.starts_with("scan@2"))
        .unwrap()
        .get("cost")
        .unwrap();
    let index_cost = report
        .rows
        .iter()
        .find(|r| r.system.starts_with("index@2"))
        .unwrap()
        .get("cost")
        .unwrap();
    assert!(
        index_cost < scan_cost * 0.25,
        "index ${index_cost} vs scan ${scan_cost}"
    );
}
